//===- clients/Explain.h - Derivation-chain queries -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Queries over a recorded provenance graph (domain/Provenance.h): the
/// `cpsflow explain` chain walk ("why is x ⊤?"), the compare-mode loss
/// attribution, and the DOT/JSON graph exports (docs/EXPLAIN.md).
///
/// The walk answers, for a (variable, store) fact, which derivation edge
/// *defined* the variable's value there, then expands that edge's parents:
/// the value derivation (V1/V2), the variable's earlier value below the
/// write (joinAt joins the new value into the old one), and — when the
/// defining event is a whole-store merge — the fact on each parent store.
/// Because joins are involved, finding the defining edge needs the slot
/// *values*, so the walk is templated over the abstract value type and
/// consults the run's StoreInterner: at a merge, the slot's value is
/// compared against each parent's; if one parent already carries it the
/// walk descends there, otherwise the merge itself is the join point that
/// materialized the value (the Theorem 5.1/5.2 narratives fall out of
/// exactly this case).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_EXPLAIN_H
#define CPSFLOW_CLIENTS_EXPLAIN_H

#include "domain/AbsStore.h"
#include "domain/Provenance.h"
#include "domain/StoreInterner.h"
#include "syntax/Ast.h"

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace clients {

/// Version of the derivation-graph JSON document (provenanceJson).
inline constexpr int ProvenanceGraphSchemaVersion = 1;

/// One step of an explain walk: the edge, the variable slot it concerns
/// (NoSlot for pure value nodes), and the chain depth (for indentation).
struct ExplainStep {
  domain::ProvId Edge;
  uint32_t Slot;
  uint32_t Depth;
};

/// Walks the derivation of (\p Slot, \p S) in \p P, calling \p Emit for
/// each step outermost-first. \p Emit returns false to stop early. The
/// walk is cycle-safe (visited set) and bounded by \p MaxSteps.
template <typename V>
void walkDerivation(const domain::Provenance &P,
                    const domain::StoreInterner<V> &In, uint32_t Slot,
                    domain::StoreId S,
                    const std::function<bool(const ExplainStep &)> &Emit,
                    size_t MaxSteps = 256) {
  using domain::NoProv;
  using domain::NoSlot;
  using domain::NoStore;
  using domain::ProvId;
  using domain::StoreId;

  // The event that defined \p Slot's value in \p At: a recorded write, or
  // the whole-store merge that materialized it (see file comment).
  auto FactFor = [&](uint32_t Sl, StoreId At) -> ProvId {
    for (int Guard = 0; Guard < 4096 && At != NoStore; ++Guard) {
      if (ProvId F = P.factOf(Sl, At); F != NoProv)
        return F;
      ProvId O = P.originOf(At);
      if (O == NoProv)
        return NoProv; // initial / bottom store: no recorded event
      const domain::ProvEdge &E = P.edge(O);
      if (E.Slot != NoSlot) {
        At = E.Base; // a write to some other slot; look below it
        continue;
      }
      // Store merge: descend into whichever parent already carried the
      // value; if neither did, the merge is the defining join point.
      const V &Cur = In.get(At, Sl);
      if (E.Base != NoStore && Cur == In.get(E.Base, Sl)) {
        At = E.Base;
        continue;
      }
      if (E.Base2 != NoStore && Cur == In.get(E.Base2, Sl)) {
        At = E.Base2;
        continue;
      }
      return O;
    }
    return NoProv;
  };

  std::set<std::pair<ProvId, uint32_t>> Visited;
  size_t Emitted = 0;
  bool Stop = false;

  std::function<void(ProvId, uint32_t, uint32_t)> Walk =
      [&](ProvId F, uint32_t Sl, uint32_t Depth) {
        if (Stop || F == NoProv || Emitted >= MaxSteps)
          return;
        if (!Visited.insert({F, Sl}).second)
          return;
        ++Emitted;
        if (!Emit(ExplainStep{F, Sl, Depth})) {
          Stop = true;
          return;
        }
        const domain::ProvEdge &E = P.edge(F);
        if (E.Slot != NoSlot) {
          // A write: expand the written value's derivation, then the
          // slot's earlier value that the write joined into. Value-chain
          // parents carry their own slot (they may concern other
          // variables), so they are walked with NoSlot context.
          if (E.V1 != NoProv)
            Walk(E.V1, NoSlot, Depth + 1);
          if (E.V2 != NoProv)
            Walk(E.V2, NoSlot, Depth + 1);
          if (E.Base != NoStore)
            Walk(FactFor(E.Slot, E.Base), E.Slot, Depth + 1);
        } else if (E.Result != NoStore) {
          // A store merge that materialized the slot's value: the fact on
          // each parent store is a parent of this step.
          if (Sl != NoSlot) {
            Walk(FactFor(Sl, E.Base), Sl, Depth + 1);
            if (E.Base2 != NoStore)
              Walk(FactFor(Sl, E.Base2), Sl, Depth + 1);
          }
        } else {
          // Pure value node (cut/widen/join of answers): V1/V2 only.
          if (E.V1 != NoProv)
            Walk(E.V1, NoSlot, Depth + 1);
          if (E.V2 != NoProv)
            Walk(E.V2, NoSlot, Depth + 1);
        }
      };

  Walk(FactFor(Slot, S), Slot, 0);
}

/// True for the edge kinds that lose precision (the paper's loss sites);
/// Flow/Init merely move values around.
inline bool isLossKind(domain::EdgeKind K) {
  switch (K) {
  case domain::EdgeKind::Join:
  case domain::EdgeKind::Cut:
  case domain::EdgeKind::CallMerge:
  case domain::EdgeKind::Widen:
    return true;
  case domain::EdgeKind::Init:
  case domain::EdgeKind::Flow:
    return false;
  }
  return false;
}

/// Renders one explain step as a human-readable line (the `cpsflow
/// explain` output format; docs/EXPLAIN.md).
template <typename V>
std::string renderStep(const domain::Provenance &P,
                       const domain::StoreInterner<V> &In,
                       const domain::VarIndex &Vars, const Context &Ctx,
                       const ExplainStep &Step) {
  const domain::ProvEdge &E = P.edge(Step.Edge);
  std::string Line(static_cast<size_t>(Step.Depth) * 2, ' ');
  uint32_t Sl = E.Slot != domain::NoSlot ? E.Slot : Step.Slot;
  if (E.Slot != domain::NoSlot) {
    Line += std::string(Ctx.spelling(Vars.symbolAt(E.Slot)));
    Line += " = ";
    Line += In.get(E.Result, E.Slot).str(Ctx);
    Line += "  via ";
  } else if (Sl != domain::NoSlot && E.Result != domain::NoStore) {
    Line += std::string(Ctx.spelling(Vars.symbolAt(Sl)));
    Line += " = ";
    Line += In.get(E.Result, Sl).str(Ctx);
    Line += "  via store-merge ";
  }
  Line += str(E.Kind);
  Line += " at ";
  Line += E.Loc.isValid() ? E.Loc.str()
                          : "<unknown> (node " + std::to_string(E.NodeId) +
                                ")";
  if (E.Degrade != support::DegradeReason::None) {
    Line += " [degraded: ";
    Line += support::str(E.Degrade);
    Line += "]";
  }
  return Line;
}

/// The full `explain` chain for (\p Slot, \p S), rendered outermost-first
/// with two-space indentation per chain depth.
template <typename V>
std::vector<std::string>
explainSlot(const domain::Provenance &P, const domain::StoreInterner<V> &In,
            const domain::VarIndex &Vars, const Context &Ctx, uint32_t Slot,
            domain::StoreId S, size_t MaxLines = 64) {
  std::vector<std::string> Lines;
  walkDerivation<V>(
      P, In, Slot, S,
      [&](const ExplainStep &Step) {
        Lines.push_back(renderStep(P, In, Vars, Ctx, Step));
        return Lines.size() < MaxLines;
      },
      MaxLines);
  return Lines;
}

/// The first precision-loss edge on the derivation chain of (\p Slot,
/// \p S), or NoProv when the chain contains none (pure flow). This is the
/// edge `cpsflow compare` reports when two legs disagree on a variable.
template <typename V>
domain::ProvId firstLossEdge(const domain::Provenance &P,
                             const domain::StoreInterner<V> &In,
                             uint32_t Slot, domain::StoreId S) {
  domain::ProvId Found = domain::NoProv;
  walkDerivation<V>(P, In, Slot, S, [&](const ExplainStep &Step) {
    if (isLossKind(P.edge(Step.Edge).Kind)) {
      Found = Step.Edge;
      return false;
    }
    return true;
  });
  return Found;
}

/// DOT rendering of the full derivation graph (Explain.cpp).
std::string provenanceDot(const domain::Provenance &P,
                          const domain::VarIndex &Vars, const Context &Ctx);

/// JSON rendering of the full derivation graph, schemaVersion 1
/// (Explain.cpp; format in docs/EXPLAIN.md).
std::string provenanceJson(const domain::Provenance &P,
                           const domain::VarIndex &Vars, const Context &Ctx);

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_EXPLAIN_H
