//===- analysis/PushdownAnalyzer.h - CFA2-style fifth analyzer --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A summarization-based pushdown analyzer over the ANF front-end: the
/// modern resolution (CFA2, Vardoulakis & Shivers; "Pushdown Control-Flow
/// Analysis for Free", Gilray et al.) of the return-point confusion that
/// Theorem 5.1 blames on syntactic CPS.
///
/// The analyzer keeps calls and returns matched *by construction*: a goal
/// is a (term, store) pair — no continuation component — and its answer is
/// the *set* of per-path results the term can produce, each a (value,
/// store) pair. The caller resumes its own continuation once per returned
/// pair, so distinct procedure returns are never confused (CallMerges is
/// identically zero) and distinct execution paths are never joined before
/// the continuation, unlike Figure 4's direct analyzer which joins all
/// callee answers (Theorem 5.2b) and both conditional arms (Theorem 5.2a)
/// at the merge point. The only join the analyzer ever performs is the
/// final one over the whole-program answer set.
///
/// Because goals carry no continuation, summaries are context-independent
/// and memoize on (term, store) alone — the "pushdown for free" trick:
/// the implicit call stack of the recursive walk plays the role of the
/// pushdown stack, and the memo table is the summary table.
///
/// Precision contract (the O7 oracle and tests/PushdownTests.cpp):
///  * never less precise than the syntactic-CPS analyzer — per-path
///    stores plus exact return matching dominate merged continuation
///    sets pointwise;
///  * exactly the semantic-CPS precision class: answers match direct
///    whenever direct performed no merge (Joins == 0, no dead paths),
///    which covers the Theorem 5.1 witness;
///  * sound against the concrete interpreter.
///
/// Termination and budgets follow Section 4.4 exactly as in Figure 4: an
/// active (term, store) repetition — or a Governor trip — cuts the goal
/// to the least precise single pair ((T, CL_T), sigma), tagged with the
/// usual DegradeReason taxonomy. The loop rule is direct's exact
/// Section 6.2 summary (the join of all naturals), so LoopBounded stays
/// false. Stores are hash-consed in the shared per-run StoreInterner, and
/// provenance/metrics/trace hooks are threaded exactly like the other
/// other four analyzers.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_PUSHDOWNANALYZER_H
#define CPSFLOW_ANALYSIS_PUSHDOWNANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/Universe.h"
#include "anf/Anf.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/StoreInterner.h"
#include "syntax/Analysis.h"
#include "syntax/Ast.h"
#include "syntax/Printer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {

/// The canonical spelling of \p Name ("direct", "semantic", "syntactic",
/// "dup", "pushdown"), resolving the CLI/serve alias table (scps, syncps,
/// pd, cfa2), or nullopt for an unknown analyzer (PushdownAnalyzer.cpp).
std::optional<std::string> canonicalAnalyzerName(std::string_view Name);

/// "direct|semantic|syntactic|dup|pushdown" — the valid-choices list for
/// rejection messages and usage text.
const char *knownAnalyzerNames();

/// The alias table rendered for usage text: "scps=semantic,
/// syncps=syntactic, pd=cfa2=pushdown".
const char *knownAnalyzerAliases();

/// The result shape is the direct analyzer's: a direct-world answer,
/// stats, the extracted control-flow graph, and per-variable final store
/// lookup — so Compare.h, the oracle battery, and every client treat the
/// pushdown leg as a drop-in direct-world result.
template <typename D> using PushdownResult = DirectResult<D>;

/// The pushdown analyzer, parameterized by the numeric domain \p D.
/// Single-use: construct and call run() once.
template <typename D> class PushdownAnalyzer {
public:
  using Val = domain::AbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  /// \pre \p Program is in A-normal form with unique binders; the lambdas
  /// referenced by \p Initial use binders disjoint from \p Program's.
  PushdownAnalyzer(const Context &Ctx, const syntax::Term *Program,
                   std::vector<DirectBinding<D>> Initial = {},
                   AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)), Opts(Opts) {
    assert(anf::isAnfQuick(Program) && "pushdown requires A-normal form");

    std::vector<const syntax::LamValue *> ExtraLams;
    std::vector<Symbol> ExtraVars;
    for (const DirectBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CloRef &C : B.Value.Clos)
        if (C.Tag == domain::CloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        directVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = directClosureUniverse(Program, ExtraLams);
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(Vars->size());
  }

  /// Runs the analysis from the initial store.
  PushdownResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const DirectBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, Vars->of(B.Var), B.Value);
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(B.Var), Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalTerm(Program, Sigma0, 0);

    // The one and only join: fold the whole-program answer set. Every
    // merge the direct analyzer performs mid-derivation is deferred to
    // here, which is exactly why the per-variable facts upstream stay
    // per-path precise.
    std::optional<IAns> Acc;
    domain::ProvId AccProv = domain::NoProv;
    for (const PdAns &P : Out.Pairs) {
      IAns Ai{P.V, P.S};
      if (!Acc) {
        Acc = std::move(Ai);
        AccProv = P.Prov;
      } else {
        ++Stats.Joins;
        if (Opts.Prov) {
          Acc = joinAnswers(Interner, *Acc, Ai, Opts.Prov,
                            domain::EdgeKind::Join, Program->id(),
                            Program->loc());
          AccProv = Opts.Prov->value(domain::EdgeKind::Join, Program->id(),
                                     Program->loc(), AccProv, P.Prov);
        } else {
          Acc = joinAnswers(Interner, *Acc, Ai);
        }
      }
    }

    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Prov)
      Opts.Prov->noteFinal(Acc ? Acc->Store : Interner.bottom());

    PushdownResult<D> R;
    R.Answer = Acc ? Answer{std::move(Acc->Value), Interner.store(Acc->Store)}
                   : Answer{Val::bot(), StoreT(Vars->size())};
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  /// The universe of abstract closures CL_T, used for the Section 4.4
  /// cut-off value.
  const domain::CloSet &closureUniverse() const { return CloTop; }

  /// The run's hash-consing table (observability: distinct stores seen).
  const domain::StoreInterner<Val> &interner() const { return Interner; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  using IAns = InternedAnswerOf<Val>;

  /// One per-path result of a goal: the value the term evaluated to, the
  /// store it finished in, and the derivation of the value.
  struct PdAns {
    Val V;
    domain::StoreId S;
    domain::ProvId Prov = domain::NoProv;
  };

  /// A goal's answer: the set of per-path results (deduped on (value,
  /// store), first-win on provenance, insertion-ordered so runs are
  /// deterministic), plus the shallowest active ancestor the
  /// subderivation was cut against (Unconstrained if none — then the
  /// summary is context-independent and cacheable). An empty set means
  /// the goal is dead: no execution path completes it.
  struct EvalOut {
    std::vector<PdAns> Pairs;
    uint32_t MinDep = Unconstrained;
  };

  struct Key {
    const void *Node;
    domain::StoreId Store;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.Store == B.Store;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashPointer(K.Node);
      hashCombine(H, K.Store);
      return H;
    }
  };

  /// Appends \p P unless an identical (value, store) pair is present.
  static void appendPair(std::vector<PdAns> &Out, PdAns P) {
    for (const PdAns &Q : Out)
      if (Q.S == P.S && Q.V == P.V)
        return;
    Out.push_back(std::move(P));
  }

  /// The Section 4.4 cut-off: a single least-precise path.
  EvalOut cutPairs(domain::StoreId Sigma, domain::ProvId Prov,
                   uint32_t MinDep) const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    EvalOut Out;
    Out.Pairs.push_back(PdAns{std::move(V), Sigma, Prov});
    Out.MinDep = MinDep;
    return Out;
  }

  // phi_e of Figure 4 — value forms are shared with the direct world.
  Val phi(const syntax::Value *V, domain::StoreId Sigma) const {
    using namespace syntax;
    switch (V->kind()) {
    case ValueKind::VK_Num:
      return Val::number(D::constant(cast<NumValue>(V)->value()));
    case ValueKind::VK_Var:
      return Interner.get(Sigma, Vars->of(cast<VarValue>(V)->name()));
    case ValueKind::VK_Prim:
      return Val::closures(domain::CloSet::single(
          cast<PrimValue>(V)->op() == PrimOp::Add1 ? domain::CloRef::inc()
                                                   : domain::CloRef::dec()));
    case ValueKind::VK_Lam:
      return Val::closures(
          domain::CloSet::single(domain::CloRef::lam(cast<LamValue>(V))));
    }
    assert(false && "unknown value kind");
    return Val::bot();
  }

  /// A Cut value node for provenance. Only called with Opts.Prov non-null.
  domain::ProvId cutProv(const syntax::Term *T,
                         support::DegradeReason R) const {
    return Opts.Prov->value(domain::EdgeKind::Cut, T->id(), T->loc(),
                            domain::NoProv, domain::NoProv, R);
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(const syntax::Value *V,
                             domain::StoreId Sigma) const {
    if (const auto *Var = syntax::dyn_cast<syntax::VarValue>(V))
      return Opts.Prov->factOf(Vars->of(Var->name()), Sigma);
    return domain::NoProv;
  }

  EvalOut evalTerm(const syntax::Term *T, domain::StoreId Sigma,
                   uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return cutPairs(Sigma,
                      Opts.Prov ? cutProv(T, Stats.Degraded) : domain::NoProv,
                      0);
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return cutPairs(Sigma, Opts.Prov ? cutProv(T, R) : domain::NoProv, 0);
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key K{T, Sigma};
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(K) != 0; });
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      return EvalOut{It->second, Unconstrained};
    }
    if (auto It = Active.find(K); It != Active.end()) {
      ++Stats.Cuts;
      return cutPairs(Sigma,
                      Opts.Prov ? cutProv(T, support::DegradeReason::None)
                                : domain::NoProv,
                      It->second);
    }

    size_t TraceLine = 0;
    if (Opts.DerivationSink &&
        Opts.DerivationSink->size() < Opts.DerivationMaxLines) {
      TraceLine = Opts.DerivationSink->size();
      Opts.DerivationSink->push_back(
          std::string(std::min<uint32_t>(Depth, 40), ' ') + "(" +
          syntax::print(Ctx, T) + ", sigma) |- ...");
    }

    Active.emplace(K, Depth);
    EvalOut Out = evalUncached(T, Sigma, Depth);
    Active.erase(K);

    if (Opts.DerivationSink && TraceLine < Opts.DerivationSink->size()) {
      std::string &Line = (*Opts.DerivationSink)[TraceLine];
      Line.resize(Line.size() - 3); // drop "..."
      if (Out.Pairs.empty())
        Line += "dead";
      else
        Line += std::to_string(Out.Pairs.size()) + " path(s), first " +
                Out.Pairs.front().V.str(Ctx);
    }
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(K, Out.Pairs);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  /// Binds every pair of \p Vals into slot \p X and resumes \p Body once
  /// per path, accumulating the resulting pair sets. This is the
  /// call-return matching point: each callee/branch path reaches the
  /// continuation with its own store and its own result, never a merge.
  EvalOut resumePerPath(const std::vector<PdAns> &Vals, uint32_t X,
                        const syntax::Term *Body, uint32_t Depth,
                        uint32_t NodeId, SourceLoc Loc) {
    EvalOut Out;
    for (const PdAns &P : Vals) {
      domain::StoreId S = Interner.joinAt(P.S, X, P.V);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, X, S, P.S, NodeId, Loc,
                          P.Prov);
      EvalOut B = evalTerm(Body, S, Depth + 1);
      Out.MinDep = std::min(Out.MinDep, B.MinDep);
      for (PdAns &Q : B.Pairs)
        appendPair(Out.Pairs, std::move(Q));
    }
    return Out;
  }

  EvalOut evalUncached(const syntax::Term *T, domain::StoreId Sigma,
                       uint32_t Depth) {
    using namespace syntax;

    // (V, sigma) |- {(phi_e(V, sigma), sigma)}: a value is one path.
    if (const auto *VT = dyn_cast<ValueTerm>(T)) {
      EvalOut Out;
      Out.Pairs.push_back(
          PdAns{phi(VT->value(), Sigma), Sigma,
                Opts.Prov ? provOfValue(VT->value(), Sigma) : domain::NoProv});
      return Out;
    }

    const auto *Let = cast<LetTerm>(T);
    const Term *Bound = Let->bound();
    uint32_t X = Vars->of(Let->var());

    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      // (let (x V) M): continue with sigma[x := sigma(x) join u].
      Val U = phi(cast<ValueTerm>(Bound)->value(), Sigma);
      domain::StoreId S = Interner.joinAt(Sigma, X, U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Sigma, Let->id(),
                          Let->loc(),
                          provOfValue(cast<ValueTerm>(Bound)->value(), Sigma));
      return evalTerm(Let->body(), S, Depth + 1);
    }

    case TermKind::TK_App: {
      // (let (x (V1 V2)) M): every abstract closure is applied, but the
      // answers are *not* joined — the body is resumed once per returned
      // (value, store) path, so the return of one call never merges into
      // another (the pushdown win over both Figure 4 and Figure 6).
      const auto *App = cast<AppTerm>(Bound);
      Val Fun = phi(cast<ValueTerm>(App->fun())->value(), Sigma);
      Val Arg = phi(cast<ValueTerm>(App->arg())->value(), Sigma);

      domain::CloSet &Rec = Cfg.Callees[App];
      for (const domain::CloRef &C : Fun.Clos)
        Rec.insert(C);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths; // the set over no paths
        return EvalOut{};
      }

      domain::ProvId ArgProv =
          Opts.Prov ? provOfValue(cast<ValueTerm>(App->arg())->value(), Sigma)
                    : domain::NoProv;
      std::vector<PdAns> Returned;
      uint32_t MinDep = Unconstrained;
      for (const domain::CloRef &C : Fun.Clos) {
        switch (C.Tag) {
        case domain::CloRef::K::Inc:
          appendPair(Returned,
                     PdAns{Val::number(D::add1(Arg.Num)), Sigma, ArgProv});
          break;
        case domain::CloRef::K::Dec:
          appendPair(Returned,
                     PdAns{Val::number(D::sub1(Arg.Num)), Sigma, ArgProv});
          break;
        case domain::CloRef::K::Lam: {
          domain::StoreId S =
              Interner.joinAt(Sigma, Vars->of(C.Lam->param()), Arg);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow,
                              Vars->of(C.Lam->param()), S, Sigma, App->id(),
                              App->loc(), ArgProv);
          EvalOut R = evalTerm(C.Lam->body(), S, Depth + 1);
          MinDep = std::min(MinDep, R.MinDep);
          for (PdAns &P : R.Pairs)
            appendPair(Returned, std::move(P));
          break;
        }
        }
      }
      if (Returned.empty())
        return EvalOut{{}, MinDep}; // every callee path died

      EvalOut Body = resumePerPath(Returned, X, Let->body(), Depth,
                                   App->id(), App->loc());
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_If0: {
      // (let (x (if0 V0 M1 M2)) M): with an unknown test both arms are
      // analyzed, but never joined — each arm's paths resume the body
      // separately (contrast Figure 4's merging two-branch rule).
      const auto *If = cast<If0Term>(Bound);
      Val U0 = phi(cast<ValueTerm>(If->cond())->value(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      std::vector<PdAns> ArmPairs;
      uint32_t MinDep = Unconstrained;
      if (!ElseOnly) {
        EvalOut B1 = evalTerm(If->thenBranch(), Sigma, Depth + 1);
        MinDep = std::min(MinDep, B1.MinDep);
        for (PdAns &P : B1.Pairs)
          appendPair(ArmPairs, std::move(P));
      }
      if (!ThenOnly) {
        EvalOut B2 = evalTerm(If->elseBranch(), Sigma, Depth + 1);
        MinDep = std::min(MinDep, B2.MinDep);
        for (PdAns &P : B2.Pairs)
          appendPair(ArmPairs, std::move(P));
      }
      if (ArmPairs.empty())
        return EvalOut{{}, MinDep}; // every feasible arm died

      EvalOut Body =
          resumePerPath(ArmPairs, X, Let->body(), Depth, If->id(), If->loc());
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_Loop: {
      // (loop, sigma) |- {(join_i (i, {}), sigma)}: Section 6.2's exact
      // computable summary, identical to the direct rule — no bounded
      // unrolling, so LoopBounded stays false.
      domain::StoreId S =
          Interner.joinAt(Sigma, X, Val::number(D::naturals()));
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Widen, X, S, Sigma, Let->id(),
                          Let->loc());
      return evalTerm(Let->body(), S, Depth + 1);
    }

    case TermKind::TK_Let:
      assert(false && "not ANF: let-bound let");
      return EvalOut{};
    }
    assert(false && "unknown term kind");
    return EvalOut{};
  }

  const Context &Ctx;
  const syntax::Term *Program;
  std::vector<DirectBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CloSet CloTop;
  domain::StoreInterner<Val> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  DirectCfg Cfg;

  std::unordered_map<Key, std::vector<PdAns>, KeyHash> Memo;
  std::unordered_map<Key, uint32_t, KeyHash> Active;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_PUSHDOWNANALYZER_H
