file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_cli.dir/cpsflow.cpp.o"
  "CMakeFiles/cpsflow_cli.dir/cpsflow.cpp.o.d"
  "cpsflow"
  "cpsflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
