# Empty dependencies file for cpsflow_syntax.
# This may be replaced when dependencies are built.
