; Function composition: one closure site applied at two call sites,
; exercising the abstract-closure join.
(define (compose f g) (lambda (x) (f (g x))))
(define (twice f) (compose f f))
((twice (twice add1)) 0)
