//===- syntax/Printer.h - Pretty-printer for language A ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders language-A terms back to the surface syntax. The printer emits a
/// canonical single-line form (print) and an indented multi-line form
/// (printIndented) used by the examples; parse(print(T)) is structurally
/// equal to T.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_PRINTER_H
#define CPSFLOW_SYNTAX_PRINTER_H

#include "syntax/Ast.h"

#include <string>

namespace cpsflow {
namespace syntax {

/// Single-line canonical rendering of \p T.
std::string print(const Context &Ctx, const Term *T);

/// Single-line canonical rendering of \p V.
std::string print(const Context &Ctx, const Value *V);

/// Multi-line rendering with two-space indentation per let/if0 nesting
/// level.
std::string printIndented(const Context &Ctx, const Term *T);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_PRINTER_H
