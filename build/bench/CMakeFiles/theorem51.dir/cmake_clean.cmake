file(REMOVE_RECURSE
  "CMakeFiles/theorem51.dir/theorem51.cpp.o"
  "CMakeFiles/theorem51.dir/theorem51.cpp.o.d"
  "theorem51"
  "theorem51.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
