//===- analysis/SyntacticCpsAnalyzer.h - Figure 6 analyzer ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic-CPS abstract collecting interpreter M_e^s of Figure 6,
/// derived from the Figure 3 interpreter. Abstract values are triples
/// (number, closures, continuations): because the CPS transformation
/// reifies the continuation into an ordinary value, the analysis must
/// *collect*, at each continuation variable k, the set of continuations k
/// may denote.
///
/// Characteristic behaviour:
///
///  * At a return `(k W)`, *every* continuation collected at k is applied
///    and the results merged — Section 6.1's *false return*: distinct
///    procedure returns are confused (Theorem 5.1's loss vs the direct
///    analysis, Theorem 5.5's loss vs the semantic-CPS analysis).
///  * At a conditional, each branch is a complete CPS program carrying its
///    continuation, so non-distributive information is propagated per
///    branch — Theorem 5.2's win over the direct analysis.
///  * The `loopk` rule mirrors the Figure 5 loop rule and is likewise
///    uncomputable exactly; see AnalyzerOptions::LoopUnroll.
///
/// Termination uses the Section 4.4 cut with the least precise value
/// (T, CL_T, K_T).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_TESTS_REFERENCE_REF_SYNTACTICCPSANALYZER_H
#define CPSFLOW_TESTS_REFERENCE_REF_SYNTACTICCPSANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/Universe.h"
#include "cps/Transform.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace refimpl {

using analysis::AnswerOf;
using analysis::cpsVariableUniverse;
using analysis::cpsClosureUniverse;
using analysis::cpsKontUniverse;
using analysis::AnalyzerOptions;
using analysis::AnalyzerStats;
using analysis::BranchInfo;
using analysis::CpsBinding;
using analysis::CpsCfg;
using analysis::SyntacticResult;


/// The Figure 6 analyzer. Single-use.
template <typename D> class RefSyntacticCpsAnalyzer {
public:
  using Val = domain::CpsAbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  RefSyntacticCpsAnalyzer(const Context &Ctx, const cps::CpsProgram &Program,
                       std::vector<CpsBinding<D>> Initial = {},
                       AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)), Opts(Opts) {
    std::vector<const cps::CpsLam *> ExtraLams;
    std::vector<Symbol> ExtraVars;
    for (const CpsBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CpsCloRef &C : B.Value.Clos)
        if (C.Tag == domain::CpsCloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        cpsVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = cpsClosureUniverse(Program, ExtraLams);
    KontTop = cpsKontUniverse(Program, ExtraLams);
  }

  /// Runs the analysis with TopK bound to {stop} (Section 5.1's initial
  /// store entry k |-> (bot, {}, {stop})).
  SyntacticResult<D> run() {
    StoreT Sigma0(Vars->size());
    for (const CpsBinding<D> &B : Initial)
      Sigma0.joinAt(Vars->of(B.Var), B.Value);
    Sigma0.joinAt(Vars->of(Program.TopK),
                  Val::konts(domain::KontSet::single(domain::KontRef::stop())));

    EvalOut Out = evalP(Program.Root, Sigma0, 0);

    SyntacticResult<D> R;
    R.Answer = std::move(Out.A);
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  const domain::CpsCloSet &closureUniverse() const { return CloTop; }
  const domain::KontSet &kontUniverse() const { return KontTop; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  struct EvalOut {
    Answer A;
    uint32_t MinDep;
  };

  struct Key {
    const void *Node;
    StoreT Store;
    uint64_t H;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return K.H; }
  };
  struct KeyEq {
    bool operator()(const Key &A, const Key &B) const {
      return A.Node == B.Node && A.Store == B.Store;
    }
  };

  Key makeKey(const void *Node, const StoreT &Sigma) const {
    uint64_t H = hashPointer(Node);
    hashCombine(H, Sigma.hashValue());
    return Key{Node, Sigma, H};
  }

  Answer bottomAnswer() const {
    return Answer{Val::bot(), StoreT(Vars->size())};
  }

  /// The Section 4.4 cut value (T, CL_T, K_T) with the current store.
  Answer cutAnswer(const StoreT &Sigma) const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    V.Konts = KontTop;
    return Answer{std::move(V), Sigma};
  }

  // phi_e^s of Figure 6.
  Val phi(const cps::CpsValue *W, const StoreT &Sigma) const {
    using namespace cps;
    switch (W->kind()) {
    case CpsValueKind::WK_Num:
      return Val::number(D::constant(cast<CpsNum>(W)->value()));
    case CpsValueKind::WK_Var:
      return Sigma.get(Vars->of(cast<CpsVar>(W)->name()));
    case CpsValueKind::WK_Prim:
      return Val::closures(domain::CpsCloSet::single(
          cast<CpsPrim>(W)->op() == CpsPrimOp::Add1k
              ? domain::CpsCloRef::inck()
              : domain::CpsCloRef::deck()));
    case CpsValueKind::WK_Lam:
      return Val::closures(domain::CpsCloSet::single(
          domain::CpsCloRef::lam(cast<CpsLam>(W))));
    }
    assert(false && "unknown cps value kind");
    return Val::bot();
  }

  /// appr_e^s over a single abstract continuation.
  EvalOut applyKont(const domain::KontRef &K, const Val &U,
                    const StoreT &Sigma, uint32_t Depth) {
    if (K.Tag == domain::KontRef::K::Stop)
      return EvalOut{Answer{U, Sigma}, Unconstrained};
    StoreT S = Sigma;
    S.joinAt(Vars->of(K.Cont->param()), U);
    return evalP(K.Cont->body(), S, Depth + 1);
  }

  /// appr_e^s over a continuation *set*: apply every continuation and
  /// merge — the false-return join of Section 6.1.
  EvalOut applyKontSet(const domain::KontSet &Ks, const Val &U,
                       const StoreT &Sigma, uint32_t Depth) {
    if (Ks.empty()) {
      ++Stats.DeadPaths; // join over no paths
      return EvalOut{bottomAnswer(), Unconstrained};
    }

    Answer Acc = bottomAnswer();
    uint32_t MinDep = Unconstrained;
    for (const domain::KontRef &K : Ks) {
      EvalOut Ri = applyKont(K, U, Sigma, Depth);
      Acc = Answer::join(Acc, Ri.A);
      MinDep = std::min(MinDep, Ri.MinDep);
    }
    return EvalOut{std::move(Acc), MinDep};
  }

  EvalOut evalP(const cps::CpsTerm *P, const StoreT &Sigma, uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{cutAnswer(Sigma), 0};
    ++Stats.Goals;
    if (Stats.Goals > Opts.MaxGoals) {
      Stats.BudgetExhausted = true;
      return EvalOut{cutAnswer(Sigma), 0};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key K = makeKey(P, Sigma);
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      return EvalOut{It->second, Unconstrained};
    }
    if (auto It = Active.find(K); It != Active.end()) {
      ++Stats.Cuts;
      return EvalOut{cutAnswer(Sigma), It->second};
    }

    Active.emplace(K, Depth);
    EvalOut Out = evalUncached(P, Sigma, Depth);
    Active.erase(K);
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(std::move(K), Out.A);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  EvalOut evalUncached(const cps::CpsTerm *P, const StoreT &Sigma,
                       uint32_t Depth) {
    using namespace cps;

    switch (P->kind()) {
    case CpsTermKind::PK_Ret: {
      // (k W): apply every continuation collected at k and merge.
      const auto *Ret = cast<CpsRet>(P);
      Val KVal = Sigma.get(Vars->of(Ret->kvar()));
      Val U = phi(Ret->arg(), Sigma);

      domain::KontSet &Rec = Cfg.Returns[Ret];
      for (const domain::KontRef &K : KVal.Konts)
        Rec.insert(K);

      return applyKontSet(KVal.Konts, U, Sigma, Depth);
    }

    case CpsTermKind::PK_LetVal: {
      const auto *Let = cast<CpsLetVal>(P);
      Val U = phi(Let->bound(), Sigma);
      StoreT S = Sigma;
      S.joinAt(Vars->of(Let->var()), U);
      return evalP(Let->body(), S, Depth + 1);
    }

    case CpsTermKind::PK_Call: {
      // (W1 W2 (lambda (x) P')): apply each closure; user closures get
      // the literal continuation *joined into* their k parameter's store
      // entry — the collection that later causes false returns.
      const auto *Call = cast<CpsCall>(P);
      Val Fun = phi(Call->fun(), Sigma);
      Val Arg = phi(Call->arg(), Sigma);
      domain::KontRef Kont = domain::KontRef::cont(Call->cont());

      domain::CpsCloSet &Rec = Cfg.Callees[Call];
      for (const domain::CpsCloRef &C : Fun.Clos)
        Rec.insert(C);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths; // join over no paths
        return EvalOut{bottomAnswer(), Unconstrained};
      }

      Answer Acc = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      for (const domain::CpsCloRef &C : Fun.Clos) {
        EvalOut Ri;
        switch (C.Tag) {
        case domain::CpsCloRef::K::Inck:
          Ri = applyKont(Kont, Val::number(D::add1(Arg.Num)), Sigma,
                         Depth + 1);
          break;
        case domain::CpsCloRef::K::Deck:
          Ri = applyKont(Kont, Val::number(D::sub1(Arg.Num)), Sigma,
                         Depth + 1);
          break;
        case domain::CpsCloRef::K::Lam: {
          StoreT S = Sigma;
          S.joinAt(Vars->of(C.Lam->param()), Arg);
          S.joinAt(Vars->of(C.Lam->kparam()),
                   Val::konts(domain::KontSet::single(Kont)));
          Ri = evalP(C.Lam->body(), S, Depth + 1);
          break;
        }
        }
        Acc = Answer::join(Acc, Ri.A);
        MinDep = std::min(MinDep, Ri.MinDep);
      }
      return EvalOut{std::move(Acc), MinDep};
    }

    case CpsTermKind::PK_If: {
      // (let (k (lambda (x) P')) (if0 W0 P1 P2)): name the join
      // continuation, then each feasible branch is analyzed as a complete
      // program (per-branch duplication, Theorem 5.2).
      const auto *If = cast<CpsIf>(P);
      Val U0 = phi(If->cond(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty() &&
                      U0.Konts.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      StoreT S = Sigma;
      S.joinAt(Vars->of(If->kvar()),
               Val::konts(domain::KontSet::single(
                   domain::KontRef::cont(If->join()))));

      if (ThenOnly || ElseOnly)
        return evalP(ThenOnly ? If->thenBranch() : If->elseBranch(), S,
                     Depth + 1);

      EvalOut B1 = evalP(If->thenBranch(), S, Depth + 1);
      EvalOut B2 = evalP(If->elseBranch(), S, Depth + 1);
      return EvalOut{Answer::join(B1.A, B2.A),
                     std::min(B1.MinDep, B2.MinDep)};
    }

    case CpsTermKind::PK_Loop: {
      // loopk: deliver each natural to the continuation and join —
      // uncomputable exactly (Section 6.2); bounded unroll as in Figure 5.
      const auto *Loop = cast<CpsLoop>(P);
      domain::KontRef Kont = domain::KontRef::cont(Loop->cont());
      // No finite unrolling is exact (Section 6.2): flag the truncation
      // unconditionally — a join that *looks* converged at the bound is
      // still untrustworthy (a probe beyond the bound may change it).
      Stats.LoopBounded = true;
      Answer Acc = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      for (uint32_t I = 0; I < Opts.LoopUnroll; ++I) {
        EvalOut Bi =
            applyKont(Kont, Val::number(D::constant(I)), Sigma, Depth + 1);
        Acc = Answer::join(Acc, Bi.A);
        MinDep = std::min(MinDep, Bi.MinDep);
        if (Stats.BudgetExhausted)
          break;
      }
      if (Opts.LoopSoundSummary) {
        EvalOut Bs =
            applyKont(Kont, Val::number(D::naturals()), Sigma, Depth + 1);
        Acc = Answer::join(Acc, Bs.A);
        MinDep = std::min(MinDep, Bs.MinDep);
      }
      return EvalOut{std::move(Acc), MinDep};
    }
    }
    assert(false && "unknown cps term kind");
    return EvalOut{bottomAnswer(), Unconstrained};
  }

  const Context &Ctx;
  const cps::CpsProgram &Program;
  std::vector<CpsBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CpsCloSet CloTop;
  domain::KontSet KontTop;
  AnalyzerStats Stats;
  CpsCfg Cfg;

  std::unordered_map<Key, Answer, KeyHash, KeyEq> Memo;
  std::unordered_map<Key, uint32_t, KeyHash, KeyEq> Active;
};

} // namespace refimpl
} // namespace cpsflow

#endif // CPSFLOW_TESTS_REFERENCE_REF_SYNTACTICCPSANALYZER_H
