//===- examples/constant_folder.cpp - Optimizer client demo -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uses the direct constant-propagation analysis to drive an optimizer:
/// primitive applications with known results fold to numerals, and
/// conditionals the analysis proved one-sided lose their dead branch —
/// the "advanced optimization" consumer the paper's introduction
/// motivates.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "anf/Anf.h"
#include "clients/ConstFold.h"
#include "interp/Direct.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <cstdio>

using namespace cpsflow;
using CD = domain::ConstantDomain;

int main() {
  Context Ctx;

  const char *Source =
      "(let (base (add1 (add1 0)))"                // 2, foldable
      " (let (scale (lambda (n) (add1 (add1 n))))" // n + 2
      "  (let (a (scale base))"                    // 4
      "   (let (c (if0 (sub1 (sub1 a)) 1 (sub1 a)))" // else branch: 3
      "    (add1 c)))))";                          // 4

  std::printf("== before ==\n%s\n\n", Source);

  Result<const syntax::Term *> Parsed = syntax::parseTerm(Ctx, Source);
  if (!Parsed) {
    std::printf("parse error: %s\n", Parsed.error().str().c_str());
    return 1;
  }
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, *Parsed);
  std::printf("== A-normal form (%zu nodes) ==\n%s\n\n",
              syntax::countNodes(Anf),
              syntax::printIndented(Ctx, Anf).c_str());

  auto Analysis = analysis::DirectAnalyzer<CD>(Ctx, Anf).run();
  clients::FoldResult F = clients::constantFold(Ctx, Anf, Analysis);

  std::printf("== after folding (%zu nodes) ==\n%s\n\n",
              syntax::countNodes(F.Folded),
              syntax::printIndented(Ctx, F.Folded).c_str());
  std::printf("folded %zu primitive applications, removed %zu dead "
              "branches\n\n",
              F.FoldedApps, F.ElimBranches);

  // Both versions still compute the same answer.
  interp::DirectInterp I1, I2;
  interp::RunResult R1 = I1.run(Anf);
  interp::RunResult R2 = I2.run(F.Folded);
  std::printf("original evaluates to %s in %llu steps;\n"
              "folded   evaluates to %s in %llu steps.\n",
              interp::str(Ctx, R1.Value).c_str(),
              (unsigned long long)R1.Steps,
              interp::str(Ctx, R2.Value).c_str(),
              (unsigned long long)R2.Steps);
  return 0;
}
