//===- bench/throughput_mt.cpp - E14: parallel corpus throughput *- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E14 — wall-clock scaling of the batch corpus driver over worker
/// threads. The corpus is a fixed set of generated programs (rendered to
/// source text so the bench exercises the driver's whole per-program
/// pipeline: parse, ANF, CPS, all five analyzers). The argument is the
/// thread count; analyses are per-program independent, so the results are
/// identical at every value — only the wall time should move.
///
//===----------------------------------------------------------------------===//

#include "clients/Batch.h"
#include "gen/Generator.h"
#include "syntax/Printer.h"

#include <benchmark/benchmark.h>

using namespace cpsflow;

namespace {

/// Eight deterministic programs, rendered to core-A text once. Chain
/// length is kept modest: the CPS analyzer legs pay the Section 6
/// duplication cost, and the bench must stay CI-friendly.
const std::vector<std::pair<std::string, std::string>> &corpus() {
  static const std::vector<std::pair<std::string, std::string>> C = [] {
    std::vector<std::pair<std::string, std::string>> Out;
    for (uint32_t Seed = 1; Seed <= 8; ++Seed) {
      Context Ctx;
      gen::GenOptions Opts;
      Opts.Seed = 2020 + Seed;
      Opts.ChainLength = 12;
      Opts.MaxDepth = 2;
      Opts.WellTyped = true;
      gen::ProgramGenerator Gen(Ctx, Opts);
      const syntax::Term *T = Gen.generate();
      Out.emplace_back("gen" + std::to_string(Seed),
                       syntax::print(Ctx, T));
    }
    return Out;
  }();
  return C;
}

void BM_BatchCorpus(benchmark::State &State) {
  clients::BatchOptions Opts;
  Opts.Threads = static_cast<unsigned>(State.range(0));
  Opts.IncludeTiming = false;
  size_t Failures = 0;
  for (auto _ : State) {
    clients::BatchResult R = clients::runBatch(corpus(), Opts);
    for (const clients::BatchProgramResult &P : R.Programs)
      if (!P.Ok)
        ++Failures;
    benchmark::DoNotOptimize(R.Programs.size());
  }
  State.counters["failures"] = static_cast<double>(Failures);
  State.counters["programs"] = static_cast<double>(corpus().size());
}

} // namespace

// Real time, not CPU time: the point is wall-clock scaling.
BENCHMARK(BM_BatchCorpus)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
