//===- fuzz/Rewrite.cpp - Structural term editing utilities -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Rewrite.h"

#include "syntax/Builder.h"

namespace cpsflow {
namespace fuzz {

using namespace syntax;

namespace {

void walkValue(const Value *V, std::vector<const Term *> *Terms,
               std::vector<const Value *> *Values);

void walkTerm(const Term *T, std::vector<const Term *> *Terms,
              std::vector<const Value *> *Values) {
  if (Terms)
    Terms->push_back(T);
  switch (T->kind()) {
  case TermKind::TK_Value:
    walkValue(cast<ValueTerm>(T)->value(), Terms, Values);
    break;
  case TermKind::TK_App:
    walkTerm(cast<AppTerm>(T)->fun(), Terms, Values);
    walkTerm(cast<AppTerm>(T)->arg(), Terms, Values);
    break;
  case TermKind::TK_Let:
    walkTerm(cast<LetTerm>(T)->bound(), Terms, Values);
    walkTerm(cast<LetTerm>(T)->body(), Terms, Values);
    break;
  case TermKind::TK_If0:
    walkTerm(cast<If0Term>(T)->cond(), Terms, Values);
    walkTerm(cast<If0Term>(T)->thenBranch(), Terms, Values);
    walkTerm(cast<If0Term>(T)->elseBranch(), Terms, Values);
    break;
  case TermKind::TK_Loop:
    break;
  }
}

void walkValue(const Value *V, std::vector<const Term *> *Terms,
               std::vector<const Value *> *Values) {
  if (Values)
    Values->push_back(V);
  if (const auto *L = dyn_cast<LamValue>(V))
    walkTerm(L->body(), Terms, Values);
}

const Value *rebuildValue(Context &Ctx, const Value *V, const EditMap &Edits);

const Term *rebuildTerm(Context &Ctx, const Term *T, const EditMap &Edits) {
  auto It = Edits.Terms.find(T);
  if (It != Edits.Terms.end())
    return It->second;
  Builder B(Ctx);
  switch (T->kind()) {
  case TermKind::TK_Value: {
    const Value *V = cast<ValueTerm>(T)->value();
    const Value *W = rebuildValue(Ctx, V, Edits);
    return W == V ? T : B.val(W);
  }
  case TermKind::TK_App: {
    const auto *A = cast<AppTerm>(T);
    const Term *F = rebuildTerm(Ctx, A->fun(), Edits);
    const Term *X = rebuildTerm(Ctx, A->arg(), Edits);
    return (F == A->fun() && X == A->arg()) ? T : B.app(F, X);
  }
  case TermKind::TK_Let: {
    const auto *L = cast<LetTerm>(T);
    const Term *Bound = rebuildTerm(Ctx, L->bound(), Edits);
    const Term *Body = rebuildTerm(Ctx, L->body(), Edits);
    return (Bound == L->bound() && Body == L->body())
               ? T
               : B.let(L->var(), Bound, Body);
  }
  case TermKind::TK_If0: {
    const auto *I = cast<If0Term>(T);
    const Term *C = rebuildTerm(Ctx, I->cond(), Edits);
    const Term *Th = rebuildTerm(Ctx, I->thenBranch(), Edits);
    const Term *El = rebuildTerm(Ctx, I->elseBranch(), Edits);
    return (C == I->cond() && Th == I->thenBranch() &&
            El == I->elseBranch())
               ? T
               : B.if0(C, Th, El);
  }
  case TermKind::TK_Loop:
    return T;
  }
  return T;
}

const Value *rebuildValue(Context &Ctx, const Value *V, const EditMap &Edits) {
  auto It = Edits.Values.find(V);
  if (It != Edits.Values.end())
    return It->second;
  if (const auto *L = dyn_cast<LamValue>(V)) {
    const Term *Body = rebuildTerm(Ctx, L->body(), Edits);
    return Body == L->body() ? V : Builder(Ctx).lam(L->param(), Body);
  }
  return V;
}

} // namespace

std::vector<const Term *> collectTerms(const Term *T) {
  std::vector<const Term *> Out;
  walkTerm(T, &Out, nullptr);
  return Out;
}

std::vector<const Value *> collectValues(const Term *T) {
  std::vector<const Value *> Out;
  walkTerm(T, nullptr, &Out);
  return Out;
}

std::vector<const LetTerm *> collectLets(const Term *T) {
  std::vector<const LetTerm *> Out;
  for (const Term *N : collectTerms(T))
    if (const auto *L = dyn_cast<LetTerm>(N))
      Out.push_back(L);
  return Out;
}

size_t letCount(const Term *T) { return collectLets(T).size(); }

const Term *rewriteTerm(Context &Ctx, const Term *T, const EditMap &Edits) {
  return rebuildTerm(Ctx, T, Edits);
}

} // namespace fuzz
} // namespace cpsflow
