//===- bench/duplication_cost.cpp - E6: wall-clock timings ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E6 (timing half) — wall-clock cost of the three analyzers on the
/// conditional-chain family, measured with google-benchmark. The chain
/// length is the benchmark argument; expect the direct analyzer's time to
/// grow linearly and the CPS analyzers' exponentially (Section 6.2).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

void BM_DirectOnConditionalChain(benchmark::State &State) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, State.range(0));
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R =
        DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    Goals = R.Stats.Goals;
    benchmark::DoNotOptimize(R.Answer.Value);
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

void BM_SemanticCpsOnConditionalChain(benchmark::State &State) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, State.range(0));
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    Goals = R.Stats.Goals;
    benchmark::DoNotOptimize(R.Answer.Value);
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

void BM_SyntacticCpsOnConditionalChain(benchmark::State &State) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, State.range(0));
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R =
        SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
    Goals = R.Stats.Goals;
    benchmark::DoNotOptimize(R.Answer.Value);
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

void BM_DupBudget2OnConditionalChain(benchmark::State &State) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, State.range(0));
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R =
        DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 2).run();
    Goals = R.Stats.Goals;
    benchmark::DoNotOptimize(R.Answer.Value);
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

} // namespace

BENCHMARK(BM_DirectOnConditionalChain)->DenseRange(2, 14, 2);
BENCHMARK(BM_SemanticCpsOnConditionalChain)->DenseRange(2, 14, 2);
BENCHMARK(BM_SyntacticCpsOnConditionalChain)->DenseRange(2, 14, 2);
BENCHMARK(BM_DupBudget2OnConditionalChain)->DenseRange(2, 14, 2);

BENCHMARK_MAIN();
