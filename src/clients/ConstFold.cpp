//===- clients/ConstFold.cpp - Constant folding client ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/ConstFold.h"

#include "anf/Anf.h"
#include "syntax/Builder.h"

using namespace cpsflow;
using namespace cpsflow::clients;
using namespace cpsflow::syntax;
using domain::CloRef;
using domain::ConstantDomain;

namespace {

class Folder {
public:
  Folder(Context &Ctx,
         const analysis::DirectResult<ConstantDomain> &Analysis)
      : Build(Ctx), Analysis(Analysis) {}

  size_t FoldedApps = 0;
  size_t ElimBranches = 0;

  const Term *term(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return Build.val(value(cast<ValueTerm>(T)->value()), T->loc());
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      return Build.app(term(App->fun()), term(App->arg()), T->loc());
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      const Term *Bound = foldBinding(Let);
      return Build.let(Let->var(), Bound, term(Let->body()), T->loc());
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      return Build.if0(term(If->cond()), term(If->thenBranch()),
                       term(If->elseBranch()), T->loc());
    }
    case TermKind::TK_Loop:
      return Build.loop(T->loc());
    }
    assert(false && "unknown term kind");
    return nullptr;
  }

private:
  /// Rewrites the right-hand side of one let, applying the two folds.
  const Term *foldBinding(const LetTerm *Let) {
    const Term *Bound = Let->bound();

    // Fold a primitive application with a constant abstract result.
    if (const auto *App = dyn_cast<AppTerm>(Bound)) {
      auto It = Analysis.Cfg.Callees.find(App);
      bool PrimsOnly = It != Analysis.Cfg.Callees.end() &&
                       !It->second.empty();
      if (PrimsOnly)
        for (const CloRef &C : It->second)
          if (C.Tag == CloRef::K::Lam)
            PrimsOnly = false;
      if (PrimsOnly) {
        auto V = Analysis.valueOf(Let->var());
        if (V.Num.Kind == ConstantDomain::Elem::K::Const && V.Clos.empty()) {
          ++FoldedApps;
          return Build.numTerm(V.Num.N, Bound->loc());
        }
      }
      return term(Bound);
    }

    // Remove a branch the analysis proved infeasible.
    if (const auto *If = dyn_cast<If0Term>(Bound)) {
      auto It = Analysis.Cfg.Branches.find(If);
      if (It != Analysis.Cfg.Branches.end()) {
        const analysis::BranchInfo &BI = It->second;
        if (BI.ThenFeasible != BI.ElseFeasible) {
          ++ElimBranches;
          return term(BI.ThenFeasible ? If->thenBranch()
                                      : If->elseBranch());
        }
      }
      return term(Bound);
    }

    return term(Bound);
  }

  const Value *value(const Value *V) {
    if (const auto *Lam = dyn_cast<LamValue>(V))
      return Build.lam(Lam->param(), term(Lam->body()), V->loc());
    return V;
  }

  Builder Build;
  const analysis::DirectResult<ConstantDomain> &Analysis;
};

} // namespace

FoldResult cpsflow::clients::constantFold(
    Context &Ctx, const syntax::Term *Anf,
    const analysis::DirectResult<ConstantDomain> &R) {
  Folder F(Ctx, R);
  const Term *Rewritten = F.term(Anf);

  FoldResult Out;
  // Branch removal splices a term into binding position; re-normalize to
  // restore ANF.
  Out.Folded = anf::normalize(Ctx, Rewritten);
  Out.FoldedApps = F.FoldedApps;
  Out.ElimBranches = F.ElimBranches;
  return Out;
}
