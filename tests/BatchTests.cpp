//===- tests/BatchTests.cpp - Batch corpus driver ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel corpus driver: the committed examples/corpus programs all
/// analyze, results and rendered JSON are identical at every thread count
/// (the driver's central contract), and per-program failures are isolated.
///
//===----------------------------------------------------------------------===//

#include "clients/Batch.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <algorithm>

#ifndef CPSFLOW_SOURCE_DIR
#error "tests require CPSFLOW_SOURCE_DIR"
#endif

using namespace cpsflow;
using namespace cpsflow::clients;

namespace {

std::string corpusDir() {
  return std::string(CPSFLOW_SOURCE_DIR) + "/examples/corpus";
}

TEST(Batch, CollectCorpusFindsCommittedPrograms) {
  Result<std::vector<std::string>> Files = collectCorpus(corpusDir());
  ASSERT_TRUE(Files.hasValue());
  EXPECT_GE(Files->size(), 8u);
  // Sorted for deterministic corpus order.
  EXPECT_TRUE(std::is_sorted(Files->begin(), Files->end()));
}

TEST(Batch, CollectCorpusReportsMissingDirectory) {
  Result<std::vector<std::string>> Missing =
      collectCorpus(corpusDir() + "/no-such-subdir");
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_NE(Missing.error().Message.find("corpus directory"),
            std::string::npos)
      << Missing.error().Message;

  // A file is not a directory either.
  Result<std::vector<std::string>> File =
      collectCorpus(std::string(CPSFLOW_SOURCE_DIR) + "/ROADMAP.md");
  EXPECT_FALSE(File.hasValue());
}

TEST(Batch, CommittedCorpusAnalyzesClean) {
  BatchOptions Opts;
  BatchResult R = runBatchFiles(collectCorpus(corpusDir()).take(), Opts);
  for (const BatchProgramResult &P : R.Programs) {
    EXPECT_TRUE(P.Ok) << P.Name << ": " << P.Error;
    EXPECT_GT(P.Nodes, 0u) << P.Name;
    // Every leg ran to the paper-defined budget-free end.
    EXPECT_FALSE(P.Direct.Stats.BudgetExhausted) << P.Name;
    EXPECT_GT(P.Direct.Stats.Goals, 0u) << P.Name;
    EXPECT_GT(P.Semantic.Stats.Goals, 0u) << P.Name;
    EXPECT_GT(P.Syntactic.Stats.Goals, 0u) << P.Name;
    EXPECT_GT(P.Dup.Stats.Goals, 0u) << P.Name;
  }
}

TEST(Batch, ThreadCountDoesNotChangeResults) {
  std::vector<std::string> Files = collectCorpus(corpusDir()).take();
  BatchOptions Opts;
  Opts.IncludeTiming = false; // timing-free JSON compares byte-for-byte

  Opts.Threads = 1;
  std::string Sequential = batchJson(runBatchFiles(Files, Opts), Opts);
  for (unsigned Threads : {2u, 4u, 8u}) {
    Opts.Threads = Threads;
    std::string Parallel = batchJson(runBatchFiles(Files, Opts), Opts);
    EXPECT_EQ(Sequential, Parallel) << "threads=" << Threads;
  }

  // The largest-first dispatch order is a scheduling detail only: with
  // summaries off (the legacy engine) the report is likewise identical
  // between sequential and work-sorted parallel runs.
  Opts.UseSummaries = false;
  Opts.Threads = 1;
  std::string SeqOff = batchJson(runBatchFiles(Files, Opts), Opts);
  Opts.Threads = 4;
  EXPECT_EQ(SeqOff, batchJson(runBatchFiles(Files, Opts), Opts));
}

TEST(Batch, FailuresAreIsolatedPerProgram) {
  std::vector<std::pair<std::string, std::string>> Sources = {
      {"good", "(add1 1)"},
      {"bad", "(let (x"},
      {"alsogood", "(if0 0 1 2)"},
  };
  BatchOptions Opts;
  BatchResult R = runBatch(Sources, Opts);
  ASSERT_EQ(R.Programs.size(), 3u);
  EXPECT_TRUE(R.Programs[0].Ok);
  EXPECT_FALSE(R.Programs[1].Ok);
  EXPECT_FALSE(R.Programs[1].Error.empty());
  EXPECT_TRUE(R.Programs[2].Ok);

  // The report carries the failure and still aggregates the successes.
  std::string Json = batchJson(R, Opts);
  EXPECT_NE(Json.find("\"failures\":1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ok\":false"), std::string::npos) << Json;
  // The failure is classified in the taxonomy, per-program and in totals.
  EXPECT_EQ(R.Programs[1].Kind, BatchFailKind::Parse);
  EXPECT_NE(Json.find("\"failKind\":\"parse\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"failureKinds\":{\"parse\":1"), std::string::npos)
      << Json;
}

TEST(Batch, JsonSchemaBasics) {
  BatchOptions Opts;
  Opts.Threads = 3;
  BatchResult R = runBatch({{"p", "(add1 41)"}}, Opts);
  std::string Json = batchJson(R, Opts);
  EXPECT_NE(Json.find("\"schemaVersion\":6"), std::string::npos);
  // Schema 4: per-leg precision-loss counters ride along with the work
  // counters, so bench_diff can track loss sites across revisions.
  EXPECT_NE(Json.find("\"joins\":"), std::string::npos);
  EXPECT_NE(Json.find("\"callMerges\":"), std::string::npos);
  // Schema 5: continuation-summary counters and their reuse-depth
  // histogram appear in every leg record (zero outside syntactic).
  EXPECT_NE(Json.find("\"summaryHits\":"), std::string::npos);
  EXPECT_NE(Json.find("\"summaryMisses\":"), std::string::npos);
  EXPECT_NE(Json.find("\"summaryEntries\":"), std::string::npos);
  EXPECT_NE(Json.find("\"summaryReuseDepth\":"), std::string::npos);
  EXPECT_NE(Json.find("\"degradeReason\":\"none\""), std::string::npos);
  EXPECT_NE(Json.find("\"failureKinds\":"), std::string::npos);
  EXPECT_NE(Json.find("\"domain\":\"constant\""), std::string::npos);
  EXPECT_NE(Json.find("\"threads\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"wallMs\":"), std::string::npos);
  EXPECT_NE(Json.find("\"direct\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dup\":"), std::string::npos);
  // Schema 6: the pushdown leg rides along in every program record.
  EXPECT_NE(Json.find("\"pushdown\":"), std::string::npos);
  EXPECT_NE(Json.find("\"answer\":\"(42"), std::string::npos) << Json;

  Opts.IncludeTiming = false;
  std::string Bare = batchJson(R, Opts);
  EXPECT_EQ(Bare.find("\"wallMs\":"), std::string::npos) << Bare;
  EXPECT_EQ(Bare.find("\"threads\":"), std::string::npos) << Bare;
}

TEST(Batch, MetricsSectionAggregatesPerLegDistributions) {
  BatchOptions Opts;
  BatchResult R = runBatch({{"a", "(add1 1)"}, {"b", "(if0 z 1 2)"}}, Opts);
  std::string Json = batchJson(R, Opts);

  Result<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue()) << Doc.error().Message;
  const JsonValue *Metrics = Doc->find("metrics");
  ASSERT_NE(Metrics, nullptr) << Json;
  for (const char *Leg :
       {"direct", "semantic", "syntactic", "dup", "pushdown"}) {
    const JsonValue *L = Metrics->find(Leg);
    ASSERT_NE(L, nullptr) << Leg;
    const JsonValue *Goals = L->find("goals");
    ASSERT_NE(Goals, nullptr) << Leg;
    // sum over two ok programs, nearest-rank quantiles, and the max.
    EXPECT_NE(Goals->find("p50"), nullptr);
    EXPECT_NE(Goals->find("p95"), nullptr);
    EXPECT_NE(Goals->find("max"), nullptr);
    EXPECT_GT(Goals->numberOr("sum", 0), 0) << Leg;
    EXPECT_NE(L->find("memoEntries"), nullptr) << Leg;
    EXPECT_NE(L->find("stores"), nullptr) << Leg;
  }
  // Timing on: a per-thread breakdown and per-program worker labels.
  EXPECT_NE(Metrics->find("perThread"), nullptr) << Json;

  // Timing off: every scheduler-dependent field disappears.
  Opts.IncludeTiming = false;
  std::string Bare = batchJson(R, Opts);
  EXPECT_EQ(Bare.find("\"perThread\""), std::string::npos) << Bare;
  EXPECT_EQ(Bare.find("\"worker\""), std::string::npos) << Bare;
  EXPECT_EQ(Bare.find("\"wallMs\""), std::string::npos) << Bare;
}

TEST(Batch, QuoteBearingNamesSurviveJsonEscaping) {
  // A corpus label with every character class jsonEscape must handle:
  // quotes, a backslash, and a control character.
  std::string Evil = "we\"ird\\na\tme.scm";
  BatchOptions Opts;
  Opts.IncludeTiming = false;
  BatchResult R = runBatch({{Evil, "(add1 1)"}}, Opts);
  std::string Json = batchJson(R, Opts);

  Result<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue())
      << "report with quote-bearing name is not valid JSON: "
      << Doc.error().Message;
  const JsonValue *Programs = Doc->find("programs");
  ASSERT_NE(Programs, nullptr);
  ASSERT_EQ(Programs->items().size(), 1u);
  const JsonValue *Name = Programs->items()[0].find("name");
  ASSERT_NE(Name, nullptr);
  EXPECT_EQ(Name->asString(), Evil) << "name must round-trip unchanged";
}

TEST(Batch, OtherDomainsRun) {
  for (const char *Domain : {"unit", "sign", "parity", "interval"}) {
    BatchOptions Opts;
    Opts.Domain = Domain;
    BatchResult R = runBatch({{"p", "(add1 (sub1 7))"}}, Opts);
    ASSERT_EQ(R.Programs.size(), 1u);
    EXPECT_TRUE(R.Programs[0].Ok) << Domain << ": " << R.Programs[0].Error;
  }
}

} // namespace
