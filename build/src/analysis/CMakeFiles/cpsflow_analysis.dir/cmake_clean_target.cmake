file(REMOVE_RECURSE
  "libcpsflow_analysis.a"
)
