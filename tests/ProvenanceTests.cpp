//===- tests/ProvenanceTests.cpp - Provenance gating ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The provenance recorder must be a pure observer: attaching it to any
/// of the four analyzers may not change the final store, the answer, or a
/// single work counter, on any committed corpus program (the PR-3 Metrics
/// gating test, extended to the derivation recorder). Also covers the
/// recorder's own arena semantics: first-win facts and origins, the
/// copy-on-write no-op, and reset().
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "domain/Provenance.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace cpsflow;
using CD = domain::ConstantDomain;

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Out;
  for (const fs::directory_entry &E : fs::directory_iterator(
           fs::path(CPSFLOW_SOURCE_DIR) / "examples/corpus"))
    if (E.is_regular_file() && E.path().extension() == ".scm")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Every observable field of AnalyzerStats, including the Joins and
/// CallMerges loss counters this PR adds — those are maintained
/// unconditionally and so must also be identical with the recorder on.
void expectStatsIdentical(const analysis::AnalyzerStats &A,
                          const analysis::AnalyzerStats &B) {
  EXPECT_EQ(A.Goals, B.Goals);
  EXPECT_EQ(A.CacheHits, B.CacheHits);
  EXPECT_EQ(A.Cuts, B.Cuts);
  EXPECT_EQ(A.Joins, B.Joins);
  EXPECT_EQ(A.CallMerges, B.CallMerges);
  EXPECT_EQ(A.MaxDepth, B.MaxDepth);
  EXPECT_EQ(A.DeadPaths, B.DeadPaths);
  EXPECT_EQ(A.PrunedBranches, B.PrunedBranches);
  EXPECT_EQ(A.MemoEntries, B.MemoEntries);
  EXPECT_EQ(A.InternedStores, B.InternedStores);
  EXPECT_EQ(A.InternerBytes, B.InternerBytes);
  EXPECT_EQ(A.LoopBounded, B.LoopBounded);
  EXPECT_EQ(A.BudgetExhausted, B.BudgetExhausted);
  EXPECT_EQ(A.Degraded, B.Degraded);
}

/// Runs one analyzer twice — recorder off, recorder on — and requires
/// byte-identical results. \p Run is called with the options to use.
template <typename RunFn>
void expectGated(const char *Leg, const analysis::AnalyzerOptions &Base,
                 const RunFn &Run) {
  SCOPED_TRACE(Leg);
  domain::Provenance Prov;
  analysis::AnalyzerOptions With = Base;
  With.Prov = &Prov;
  auto Off = Run(Base);
  auto On = Run(With);
  EXPECT_TRUE(Off.Answer == On.Answer);
  expectStatsIdentical(Off.Stats, On.Stats);
  // The enabled run must actually have recorded something (otherwise the
  // test only proves the recorder was never attached).
  EXPECT_GT(Prov.size(), 0u);
  EXPECT_NE(Prov.finalStore(), domain::NoStore);
}

void checkProgram(const fs::path &Path) {
  SCOPED_TRACE(Path.filename().string());
  Context Ctx;
  Result<const syntax::Term *> Raw =
      syntax::parseSugaredProgram(Ctx, slurp(Path));
  ASSERT_TRUE(Raw.hasValue());
  const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());

  std::vector<analysis::DirectBinding<CD>> Init;
  for (Symbol X : syntax::freeVars(T))
    Init.push_back({X, domain::AbsVal<CD>::number(CD::top())});
  std::vector<analysis::CpsBinding<CD>> CInit;
  for (const analysis::DirectBinding<CD> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<CD>(B.Value, *P)});

  analysis::AnalyzerOptions AOpts;
  AOpts.MaxGoals = 5'000'000;

  expectGated("direct", AOpts, [&](const analysis::AnalyzerOptions &O) {
    return analysis::DirectAnalyzer<CD>(Ctx, T, Init, O).run();
  });
  expectGated("semantic", AOpts, [&](const analysis::AnalyzerOptions &O) {
    return analysis::SemanticCpsAnalyzer<CD>(Ctx, T, Init, O).run();
  });
  expectGated("syntactic", AOpts, [&](const analysis::AnalyzerOptions &O) {
    return analysis::SyntacticCpsAnalyzer<CD>(Ctx, *P, CInit, O).run();
  });
  expectGated("dup", AOpts, [&](const analysis::AnalyzerOptions &O) {
    return analysis::DupAnalyzer<CD>(Ctx, T, Init, /*Budget=*/2, O).run();
  });
}

TEST(Provenance, RecorderNeverPerturbsAnyAnalyzerOnCorpus) {
  std::vector<fs::path> Files = corpusFiles();
  ASSERT_FALSE(Files.empty());
  for (const fs::path &P : Files)
    checkProgram(P);
}

TEST(Provenance, RecorderNeverPerturbsAnalyzersOnWitnesses) {
  Context Ctx;
  for (auto *Make : {analysis::theorem51, analysis::theorem52a,
                     analysis::theorem52b}) {
    analysis::Witness W = Make(Ctx);
    SCOPED_TRACE(W.Name);
    analysis::AnalyzerOptions AOpts;
    auto Init = analysis::directBindings<CD>(W);
    auto CInit = analysis::cpsBindings<CD>(W);
    expectGated("direct", AOpts, [&](const analysis::AnalyzerOptions &O) {
      return analysis::DirectAnalyzer<CD>(Ctx, W.Anf, Init, O).run();
    });
    expectGated("semantic", AOpts, [&](const analysis::AnalyzerOptions &O) {
      return analysis::SemanticCpsAnalyzer<CD>(Ctx, W.Anf, Init, O).run();
    });
    expectGated("syntactic",
                AOpts, [&](const analysis::AnalyzerOptions &O) {
                  return analysis::SyntacticCpsAnalyzer<CD>(Ctx, W.Cps,
                                                            CInit, O)
                      .run();
                });
    expectGated("dup", AOpts, [&](const analysis::AnalyzerOptions &O) {
      return analysis::DupAnalyzer<CD>(Ctx, W.Anf, Init, 2, O).run();
    });
  }
}

TEST(Provenance, AssignRecordsFirstWinFactsAndOrigins) {
  domain::Provenance P;
  // Store 1 produced from store 0 by writing slot 3.
  domain::ProvId A = P.assign(domain::EdgeKind::Flow, 3, 1, 0, 7,
                              SourceLoc{2, 5});
  ASSERT_NE(A, domain::NoProv);
  EXPECT_EQ(P.factOf(3, 1), A);
  EXPECT_EQ(P.originOf(1), A);
  EXPECT_EQ(P.edge(A).Kind, domain::EdgeKind::Flow);
  EXPECT_EQ(P.edge(A).Slot, 3u);
  EXPECT_EQ(P.edge(A).NodeId, 7u);
  // A second event producing the same (slot, store) does not overwrite —
  // first-win, mirroring the interner's dedup.
  domain::ProvId B = P.assign(domain::EdgeKind::Join, 3, 1, 0, 9,
                              SourceLoc{4, 1});
  EXPECT_NE(B, A);
  EXPECT_EQ(P.factOf(3, 1), A);
  EXPECT_EQ(P.originOf(1), A);
  // Unknown queries are NoProv, not crashes.
  EXPECT_EQ(P.factOf(99, 1), domain::NoProv);
  EXPECT_EQ(P.originOf(42), domain::NoProv);
}

TEST(Provenance, CopyOnWriteNoOpReturnsExistingFact) {
  domain::Provenance P;
  domain::ProvId A =
      P.assign(domain::EdgeKind::Flow, 0, 1, 0, 1, SourceLoc{});
  // joinAt returned its base unchanged: no new edge, the standing fact
  // (if any) is the answer.
  size_t Before = P.size();
  EXPECT_EQ(P.assign(domain::EdgeKind::Flow, 0, 1, 1, 2, SourceLoc{}), A);
  EXPECT_EQ(P.size(), Before);
  // Merges where one parent subsumed the other record nothing either.
  P.merge(1, 1, 0, domain::EdgeKind::Join, 3, SourceLoc{});
  EXPECT_EQ(P.size(), Before);
  EXPECT_EQ(P.originOf(1), A);
}

TEST(Provenance, MemoSideTableIsExactOnNodeAndStore) {
  domain::Provenance P;
  int N1 = 0, N2 = 0; // two distinct "AST node" addresses
  P.memoize(&N1, 5, 11);
  P.memoize(&N2, 5, 22);
  P.memoize(&N1, 6, 33);
  EXPECT_EQ(P.memoized(&N1, 5), 11u);
  EXPECT_EQ(P.memoized(&N2, 5), 22u);
  EXPECT_EQ(P.memoized(&N1, 6), 33u);
  EXPECT_EQ(P.memoized(&N2, 6), domain::NoProv);
  P.memoize(&N1, 5, 99); // first-win
  EXPECT_EQ(P.memoized(&N1, 5), 11u);
  P.reset();
  EXPECT_EQ(P.size(), 0u);
  EXPECT_EQ(P.memoized(&N1, 5), domain::NoProv);
  EXPECT_EQ(P.finalStore(), domain::NoStore);
}

} // namespace
