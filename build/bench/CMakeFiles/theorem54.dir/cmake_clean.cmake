file(REMOVE_RECURSE
  "CMakeFiles/theorem54.dir/theorem54.cpp.o"
  "CMakeFiles/theorem54.dir/theorem54.cpp.o.d"
  "theorem54"
  "theorem54.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem54.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
