//===- tests/SupportTests.cpp - Support library tests -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Hashing.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "support/Symbol.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

using namespace cpsflow;

namespace {

TEST(Symbol, InterningIsIdempotent) {
  SymbolTable Table;
  Symbol A = Table.intern("foo");
  Symbol B = Table.intern("foo");
  Symbol C = Table.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.spelling(A), "foo");
  EXPECT_EQ(Table.spelling(C), "bar");
}

TEST(Symbol, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  SymbolTable Table;
  EXPECT_TRUE(Table.intern("x").isValid());
}

TEST(Symbol, FreshNamesNeverCollide) {
  SymbolTable Table;
  Table.intern("x%0");
  std::set<Symbol> Seen;
  Seen.insert(Table.intern("x"));
  for (int I = 0; I < 100; ++I) {
    Symbol F = Table.fresh("x");
    EXPECT_TRUE(Seen.insert(F).second) << Table.spelling(F);
  }
}

TEST(Symbol, FreshPreservesStem) {
  SymbolTable Table;
  Symbol F = Table.fresh("acc");
  EXPECT_EQ(Table.spelling(F).substr(0, 4), "acc%");
}

TEST(Arena, AllocatesDistinctAlignedObjects) {
  Arena A;
  struct Node {
    uint64_t X;
    uint32_t Y;
  };
  Node *N1 = A.create<Node>(Node{1, 2});
  Node *N2 = A.create<Node>(Node{3, 4});
  EXPECT_NE(N1, N2);
  EXPECT_EQ(N1->X, 1u);
  EXPECT_EQ(N2->Y, 4u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(N1) % alignof(Node), 0u);
  EXPECT_EQ(A.numAllocations(), 2u);
}

TEST(Arena, SurvivesManySlabs) {
  Arena A;
  struct Big {
    char Data[1000];
  };
  char *First = &A.create<Big>()->Data[0];
  for (int I = 0; I < 1000; ++I)
    A.create<Big>();
  // The first object must still be readable (slabs never move).
  First[0] = 42;
  EXPECT_EQ(First[0], 42);
}

TEST(Arena, LargeAllocation) {
  Arena A;
  void *P = A.allocate(1 << 20, 64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  Rng A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Hashing, MixIsInjectiveOnSmallInputs) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 10000; ++I)
    EXPECT_TRUE(Seen.insert(mix64(I)).second);
}

TEST(Hashing, CombineOrderSensitive) {
  uint64_t A = 0, B = 0;
  hashCombine(A, 1);
  hashCombine(A, 2);
  hashCombine(B, 2);
  hashCombine(B, 1);
  EXPECT_NE(A, B);
}

TEST(Result, ValueAndError) {
  Result<int> Ok(5);
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_EQ(*Ok, 5);

  Result<int> Bad(Error("boom", SourceLoc{3, 7}));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_EQ(Bad.error().Message, "boom");
  EXPECT_EQ(Bad.error().str(), "3:7: boom");
}

TEST(Result, TakeMoves) {
  Result<std::string> R(std::string("hello"));
  std::string S = R.take();
  EXPECT_EQ(S, "hello");
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
  EXPECT_EQ((SourceLoc{2, 5}).str(), "2:5");
}

TEST(Hashing, SlotHashIsCommutativelySummable) {
  // The interner's store hash is the plain sum of hashSlot contributions,
  // so a one-slot update must be patchable as H - old + new.
  uint64_t H = hashSlot(0, 11) + hashSlot(1, 22) + hashSlot(2, 33);
  uint64_t Patched = H - hashSlot(1, 22) + hashSlot(1, 99);
  uint64_t Direct = hashSlot(0, 11) + hashSlot(1, 99) + hashSlot(2, 33);
  EXPECT_EQ(Patched, Direct);
  // Position matters: the same value in different slots contributes
  // differently (stores are not multisets).
  EXPECT_NE(hashSlot(0, 7), hashSlot(1, 7));
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  constexpr int Jobs = 200;
  std::vector<int> Hits(Jobs, 0);
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.threadCount(), 4u);
    for (int I = 0; I < Jobs; ++I)
      Pool.submit([I, &Hits] { Hits[I] += 1; });
    Pool.wait();
    for (int I = 0; I < Jobs; ++I)
      EXPECT_EQ(Hits[I], 1) << I;

    // The pool is reusable after a wait().
    Pool.submit([&Hits] { Hits[0] += 1; });
    Pool.wait();
    EXPECT_EQ(Hits[0], 2);
  }
}

TEST(ThreadPool, ZeroRequestedThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Ran] { ++Ran; });
    // No wait(): destruction must still run everything already queued.
  }
  EXPECT_EQ(Ran.load(), 50);
}

} // namespace
