//===- anf/Anf.cpp - A-normalization ----------------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "anf/Anf.h"

#include "syntax/Builder.h"
#include "syntax/Rename.h"

#include <functional>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

/// The normalizer in continuation style: `norm(M, K)` produces an ANF term
/// that computes M and delivers its result (a syntactic value) to the
/// term-building continuation K. Intermediate results of applications,
/// conditionals, and loops are named with fresh `t%N` variables.
class Normalizer {
  using ValueK = std::function<const Term *(const Value *)>;
  using Thunk = std::function<const Term *()>;

public:
  explicit Normalizer(Context &Ctx) : Ctx(Ctx), Build(Ctx) {}

  const Term *normTerm(const Term *T) {
    return norm(T, [&](const Value *V) -> const Term * {
      return Build.val(V, T->loc());
    });
  }

private:
  const Term *norm(const Term *T, const ValueK &K) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return K(normValue(cast<ValueTerm>(T)->value()));
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      return norm(App->fun(), [&](const Value *Fun) {
        return norm(App->arg(), [&](const Value *Arg) {
          Symbol Tmp = Ctx.fresh("t");
          return Build.let(Tmp, Build.appVV(Fun, Arg, T->loc()),
                           K(Build.var(Tmp, T->loc())), T->loc());
        });
      });
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      return bind(Let->bound(), Let->var(), Let->loc(),
                  [&] { return norm(Let->body(), K); });
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      return norm(If->cond(), [&](const Value *Cond) {
        Symbol Tmp = Ctx.fresh("t");
        const Term *Joined =
            Build.if0(Build.val(Cond, If->loc()), normTerm(If->thenBranch()),
                      normTerm(If->elseBranch()), If->loc());
        return Build.let(Tmp, Joined, K(Build.var(Tmp, T->loc())), T->loc());
      });
    }
    case TermKind::TK_Loop: {
      Symbol Tmp = Ctx.fresh("t");
      return Build.let(Tmp, Build.loop(T->loc()),
                       K(Build.var(Tmp, T->loc())), T->loc());
    }
    }
    assert(false && "unknown term kind");
    return nullptr;
  }

  /// Produces `(let (X B) Body())` where B is an ANF-legal binding for the
  /// term \p Bound; nested lets are flattened (the A-reorderings).
  const Term *bind(const Term *Bound, Symbol X, SourceLoc Loc,
                   const Thunk &Body) {
    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      const Value *V = normValue(cast<ValueTerm>(Bound)->value());
      return Build.let(X, Build.val(V, Bound->loc()), Body(), Loc);
    }
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      return norm(App->fun(), [&](const Value *Fun) {
        return norm(App->arg(), [&](const Value *Arg) {
          return Build.let(X, Build.appVV(Fun, Arg, Bound->loc()), Body(),
                           Loc);
        });
      });
    }
    case TermKind::TK_Let: {
      // (let (x (let (y N1) N2)) M) => (let (y N1) (let (x N2) M))
      const auto *Inner = cast<LetTerm>(Bound);
      return bind(Inner->bound(), Inner->var(), Inner->loc(),
                  [&] { return bind(Inner->body(), X, Loc, Body); });
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      return norm(If->cond(), [&](const Value *Cond) {
        const Term *Joined =
            Build.if0(Build.val(Cond, If->loc()), normTerm(If->thenBranch()),
                      normTerm(If->elseBranch()), If->loc());
        return Build.let(X, Joined, Body(), Loc);
      });
    }
    case TermKind::TK_Loop:
      return Build.let(X, Build.loop(Bound->loc()), Body(), Loc);
    }
    assert(false && "unknown term kind");
    return nullptr;
  }

  const Value *normValue(const Value *V) {
    if (const auto *Lam = dyn_cast<LamValue>(V))
      return Build.lam(Lam->param(), normTerm(Lam->body()), Lam->loc());
    return V;
  }

  Context &Ctx;
  Builder Build;
};

//===----------------------------------------------------------------------===//
// Grammar recognition
//===----------------------------------------------------------------------===//

Result<bool> checkAnfValue(const Value *V);

Result<bool> checkAnfTerm(const Term *T) {
  // Walk the let spine iteratively; bodies can be long.
  while (true) {
    if (const auto *VT = dyn_cast<ValueTerm>(T))
      return checkAnfValue(VT->value());

    const auto *Let = dyn_cast<LetTerm>(T);
    if (!Let)
      return Error("ANF violation: term is neither a value nor a let",
                   T->loc());

    const Term *Bound = Let->bound();
    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      Result<bool> R = checkAnfValue(cast<ValueTerm>(Bound)->value());
      if (!R)
        return R;
      break;
    }
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      const auto *Fun = dyn_cast<ValueTerm>(App->fun());
      const auto *Arg = dyn_cast<ValueTerm>(App->arg());
      if (!Fun || !Arg)
        return Error("ANF violation: application of non-values",
                     Bound->loc());
      if (Result<bool> R = checkAnfValue(Fun->value()); !R)
        return R;
      if (Result<bool> R = checkAnfValue(Arg->value()); !R)
        return R;
      break;
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      const auto *Cond = dyn_cast<ValueTerm>(If->cond());
      if (!Cond)
        return Error("ANF violation: if0 condition is not a value",
                     Bound->loc());
      if (Result<bool> R = checkAnfValue(Cond->value()); !R)
        return R;
      if (Result<bool> R = checkAnfTerm(If->thenBranch()); !R)
        return R;
      if (Result<bool> R = checkAnfTerm(If->elseBranch()); !R)
        return R;
      break;
    }
    case TermKind::TK_Loop:
      break;
    case TermKind::TK_Let:
      return Error("ANF violation: let-bound let (not flattened)",
                   Bound->loc());
    }
    T = Let->body();
  }
}

Result<bool> checkAnfValue(const Value *V) {
  if (const auto *Lam = dyn_cast<LamValue>(V))
    return checkAnfTerm(Lam->body());
  return true;
}

} // namespace

const Term *cpsflow::anf::normalize(Context &Ctx, const Term *T) {
  return Normalizer(Ctx).normTerm(T);
}

const Term *cpsflow::anf::normalizeProgram(Context &Ctx, const Term *T) {
  const Term *Unique = renameUnique(Ctx, T);
  return normalize(Ctx, Unique);
}

Result<bool> cpsflow::anf::isAnf(const Term *T) { return checkAnfTerm(T); }

bool cpsflow::anf::isAnfQuick(const Term *T) {
  Result<bool> R = isAnf(T);
  return R.hasValue();
}
