file(REMOVE_RECURSE
  "libcpsflow_cps.a"
)
