//===- interp/SyntacticCps.cpp - Figure 3: CPS-term machine -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/SyntacticCps.h"

#include "cps/Transform.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::cps;
using namespace cpsflow::interp;

CpsRunResult
SyntacticCpsInterp::run(const CpsProgram &Program,
                        const std::vector<CpsInitialBinding> &Initial) {
  CpsRunResult Result;
  Result.Status = RunStatus::Ok;

  const EnvNode *Env = nullptr;
  for (const CpsInitialBinding &B : Initial)
    Env = Envs.extend(Env, B.Var, TheStore.alloc(B.Var, B.Value));
  // `s[new(k) := stop]` (Lemma 3.3).
  Env = Envs.extend(Env, Program.TopK,
                    TheStore.alloc(Program.TopK, CpsRtValue::stop()));

  const CpsTerm *Ctl = Program.Root;

  auto Stuck = [&](const char *Why) {
    Result.Status = RunStatus::Stuck;
    Result.Message = Why;
  };

  // phi_c.
  auto Phi = [&](const CpsValue *W, const EnvNode *Rho,
                 CpsRtValue &Out) -> bool {
    switch (W->kind()) {
    case CpsValueKind::WK_Num:
      Out = CpsRtValue::number(cast<CpsNum>(W)->value());
      return true;
    case CpsValueKind::WK_Var: {
      const EnvNode *B = EnvArena::lookup(Rho, cast<CpsVar>(W)->name());
      if (!B) {
        Stuck("unbound variable");
        return false;
      }
      Out = TheStore.at(B->Location);
      return true;
    }
    case CpsValueKind::WK_Prim:
      Out = cast<CpsPrim>(W)->op() == CpsPrimOp::Add1k ? CpsRtValue::inck()
                                                       : CpsRtValue::deck();
      return true;
    case CpsValueKind::WK_Lam:
      Out = CpsRtValue::closure(cast<CpsLam>(W), Rho);
      return true;
    }
    Stuck("unknown cps value kind");
    return false;
  };

  // apprc: passes \p U to continuation \p K. Returns false when the machine
  // should halt (final answer or stuck).
  auto Apprc = [&](const CpsRtValue &K, const CpsRtValue &U) -> bool {
    switch (K.Tag) {
    case CpsRtValue::Kind::Stop:
      Result.Value = U;
      return false;
    case CpsRtValue::Kind::Cont: {
      Loc L = TheStore.alloc(K.Cont->param(), U);
      Env = Envs.extend(K.Env, K.Cont->param(), L);
      Ctl = K.Cont->body();
      return true;
    }
    default:
      Stuck("return through a non-continuation");
      return false;
    }
  };

  while (Result.Status == RunStatus::Ok) {
    if (++Result.Steps > Limits.MaxSteps) {
      Result.Status = RunStatus::OutOfFuel;
      Result.Message = "step budget exceeded";
      break;
    }

    if (TraceCtx && Trace.size() < MaxTrace)
      Trace.push_back("eval " +
                      snippet(cps::printCps(*TraceCtx, Ctl)));

    switch (Ctl->kind()) {
    case CpsTermKind::PK_Ret: {
      const auto *Ret = cast<CpsRet>(Ctl);
      const EnvNode *B = EnvArena::lookup(Env, Ret->kvar());
      if (!B) {
        Stuck("unbound continuation variable");
        break;
      }
      CpsRtValue K = TheStore.at(B->Location);
      CpsRtValue U;
      if (!Phi(Ret->arg(), Env, U))
        break;
      if (!Apprc(K, U))
        return Result;
      continue;
    }

    case CpsTermKind::PK_LetVal: {
      const auto *Let = cast<CpsLetVal>(Ctl);
      CpsRtValue U;
      if (!Phi(Let->bound(), Env, U))
        break;
      Loc L = TheStore.alloc(Let->var(), U);
      Env = Envs.extend(Env, Let->var(), L);
      Ctl = Let->body();
      continue;
    }

    case CpsTermKind::PK_Call: {
      const auto *Call = cast<CpsCall>(Ctl);
      CpsRtValue Fun, Arg;
      if (!Phi(Call->fun(), Env, Fun) || !Phi(Call->arg(), Env, Arg))
        break;
      CpsRtValue K = CpsRtValue::cont(Call->cont(), Env);
      // appc.
      switch (Fun.Tag) {
      case CpsRtValue::Kind::Inck:
      case CpsRtValue::Kind::Deck: {
        if (!Arg.isNum()) {
          Stuck("add1k/sub1k applied to a non-number");
          break;
        }
        CpsRtValue U = CpsRtValue::number(
            Fun.Tag == CpsRtValue::Kind::Inck ? Arg.Num + 1 : Arg.Num - 1);
        if (!Apprc(K, U))
          return Result;
        break;
      }
      case CpsRtValue::Kind::Closure: {
        Loc LX = TheStore.alloc(Fun.Lam->param(), Arg);
        Loc LK = TheStore.alloc(Fun.Lam->kparam(), K);
        const EnvNode *Rho =
            Envs.extend(Fun.Env, Fun.Lam->param(), LX);
        Env = Envs.extend(Rho, Fun.Lam->kparam(), LK);
        Ctl = Fun.Lam->body();
        break;
      }
      default:
        Stuck("application of a non-procedure");
        break;
      }
      continue;
    }

    case CpsTermKind::PK_If: {
      const auto *If = cast<CpsIf>(Ctl);
      CpsRtValue Cond;
      if (!Phi(If->cond(), Env, Cond))
        break;
      // s[new(k) := (co x, P, rho)].
      CpsRtValue Join = CpsRtValue::cont(If->join(), Env);
      Loc LK = TheStore.alloc(If->kvar(), Join);
      Env = Envs.extend(Env, If->kvar(), LK);
      bool TakeThen = Cond.isNum() && Cond.Num == 0;
      Ctl = TakeThen ? If->thenBranch() : If->elseBranch();
      continue;
    }

    case CpsTermKind::PK_Loop:
      Result.Status = RunStatus::Diverged;
      Result.Message = "loopk never returns";
      break;
    }
  }

  return Result;
}
