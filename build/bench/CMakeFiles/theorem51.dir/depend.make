# Empty dependencies file for theorem51.
# This may be replaced when dependencies are built.
