//===- tests/ClientTests.cpp - Optimizer client tests -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/ConstFold.h"
#include "clients/Reports.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/Witnesses.h"
#include "anf/Anf.h"
#include "gen/Generator.h"
#include "interp/Direct.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::clients;
using cpsflow::test::intBindings;
using cpsflow::test::mustParse;
using CD = domain::ConstantDomain;

namespace {

FoldResult foldProgram(Context &Ctx, const syntax::Term *T) {
  auto R = DirectAnalyzer<CD>(Ctx, T).run();
  return constantFold(Ctx, T, R);
}

TEST(ConstFold, FoldsPrimitiveApplications) {
  Context Ctx;
  const syntax::Term *T =
      mustParse(Ctx, "(let (x (add1 1)) (let (y (add1 x)) y))");
  FoldResult F = foldProgram(Ctx, T);
  EXPECT_EQ(F.FoldedApps, 2u);
  EXPECT_TRUE(anf::isAnf(F.Folded).hasValue());
  // The folded program still computes 3.
  interp::DirectInterp I;
  interp::RunResult R = I.run(F.Folded);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 3);
}

TEST(ConstFold, EliminatesInfeasibleBranches) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (c (add1 0)) (let (a (if0 c 10 (let (t (add1 c)) t))) a))");
  FoldResult F = foldProgram(Ctx, T);
  EXPECT_GE(F.ElimBranches, 1u);
  interp::DirectInterp I;
  interp::RunResult R = I.run(F.Folded);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 2);
}

TEST(ConstFold, LeavesUnknownsAlone) {
  Context Ctx;
  const syntax::Term *T = mustParse(Ctx, "(let (x (add1 z)) x)");
  std::vector<DirectBinding<CD>> Init = {
      {Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}};
  auto R = DirectAnalyzer<CD>(Ctx, T, Init).run();
  FoldResult F = constantFold(Ctx, T, R);
  EXPECT_EQ(F.FoldedApps, 0u);
  EXPECT_EQ(F.ElimBranches, 0u);
}

TEST(ConstFold, DoesNotFoldUserClosureCalls) {
  Context Ctx;
  // (f 1) has a constant result, but folding a closure call could change
  // termination; only prim applications fold.
  const syntax::Term *T = mustParse(
      Ctx, "(let (f (lambda (p) 7)) (let (a (f 1)) a))");
  FoldResult F = foldProgram(Ctx, T);
  EXPECT_EQ(F.FoldedApps, 0u);
}

class FoldPreservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FoldPreservation, FoldedProgramsEvaluateTheSame) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 8;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 25; ++I) {
    const syntax::Term *T = Gen.generate();
    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::constant(1))});
    auto A = DirectAnalyzer<CD>(Ctx, T, Init).run();
    FoldResult F = constantFold(Ctx, T, A);

    interp::RunLimits Limits;
    Limits.MaxSteps = 100000;
    interp::DirectInterp I1(Limits), I2(Limits);
    interp::RunResult R1 = I1.run(T, intBindings(T, {1}));
    interp::RunResult R2 = I2.run(F.Folded, intBindings(F.Folded, {1}));

    // Folding assumes well-behaved programs: compare only completing
    // originals (stuck programs may legitimately "improve").
    if (!R1.ok() || R2.Status == interp::RunStatus::OutOfFuel)
      continue;
    ASSERT_TRUE(R2.ok()) << syntax::print(Ctx, T);
    ASSERT_EQ(static_cast<int>(R1.Value.Tag),
              static_cast<int>(R2.Value.Tag));
    if (R1.Value.isNum())
      ASSERT_EQ(R1.Value.Num, R2.Value.Num) << syntax::print(Ctx, T);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldPreservation,
                         ::testing::Values(71, 72, 73, 74));

TEST(Reports, DescribeCfgShowsFalseReturns) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
  std::string S = describeCfg(Ctx, R.Cfg);
  EXPECT_NE(S.find("FALSE RETURN"), std::string::npos);
}

TEST(Reports, DescribeStatsMentionsFlags) {
  AnalyzerStats S;
  S.Goals = 5;
  S.BudgetExhausted = true;
  std::string Out = describeStats(S);
  EXPECT_NE(Out.find("goals=5"), std::string::npos);
  EXPECT_NE(Out.find("budget exhausted"), std::string::npos);
}

TEST(Reports, DescribeVarsRendersEntries) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  std::string S = describeVars(Ctx, R, W.InterestingVars);
  EXPECT_NE(S.find("a1 = (1, {})"), std::string::npos);
}

} // namespace
