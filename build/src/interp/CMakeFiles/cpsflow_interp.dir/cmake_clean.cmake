file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_interp.dir/Delta.cpp.o"
  "CMakeFiles/cpsflow_interp.dir/Delta.cpp.o.d"
  "CMakeFiles/cpsflow_interp.dir/Direct.cpp.o"
  "CMakeFiles/cpsflow_interp.dir/Direct.cpp.o.d"
  "CMakeFiles/cpsflow_interp.dir/Runtime.cpp.o"
  "CMakeFiles/cpsflow_interp.dir/Runtime.cpp.o.d"
  "CMakeFiles/cpsflow_interp.dir/SemanticCps.cpp.o"
  "CMakeFiles/cpsflow_interp.dir/SemanticCps.cpp.o.d"
  "CMakeFiles/cpsflow_interp.dir/SyntacticCps.cpp.o"
  "CMakeFiles/cpsflow_interp.dir/SyntacticCps.cpp.o.d"
  "libcpsflow_interp.a"
  "libcpsflow_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
