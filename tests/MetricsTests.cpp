//===- tests/MetricsTests.cpp - Counters and histograms ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics layer: log2-bucketed histograms (exact count/sum/max,
/// deterministic quantile bounds), the registry's insertion-order
/// iteration and merge semantics, the analyzers' per-run counters, and
/// the --metrics table renderer.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "clients/Reports.h"
#include "gen/Workloads.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::support;
using CD = domain::ConstantDomain;

namespace {

TEST(Histogram, BucketsByBitWidth) {
  Histogram H;
  H.record(0);
  H.record(1);
  H.record(2);
  H.record(3);
  H.record(4);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 10u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 4u);
  EXPECT_EQ(H.bucket(0), 1u); // value 0
  EXPECT_EQ(H.bucket(1), 1u); // value 1
  EXPECT_EQ(H.bucket(2), 2u); // values 2, 3
  EXPECT_EQ(H.bucket(3), 1u); // value 4
}

TEST(Histogram, QuantileBoundsAreDeterministicUpperEdges) {
  Histogram H;
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  // The p50 rank-50 sample (value 50) lands in bucket 6 = [32, 63].
  EXPECT_EQ(H.quantileBound(0.5), 63u);
  // p95 (rank 95) lands in bucket 7 = [64, 127], tightened by max=100.
  EXPECT_EQ(H.quantileBound(0.95), 100u);
  EXPECT_EQ(H.quantileBound(1.0), 100u);
  // Empty histogram: all summaries are zero, no division by N.
  Histogram E;
  EXPECT_EQ(E.quantileBound(0.5), 0u);
  EXPECT_EQ(E.min(), 0u);
}

TEST(Histogram, MergeAddsBucketsAndTracksExtremes) {
  Histogram A, B;
  A.record(1);
  A.record(8);
  B.record(100);
  A.merge(B);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_EQ(A.sum(), 109u);
  EXPECT_EQ(A.min(), 1u);
  EXPECT_EQ(A.max(), 100u);
  // Merging an empty histogram is a no-op on extremes.
  Histogram Empty;
  A.merge(Empty);
  EXPECT_EQ(A.min(), 1u);
  EXPECT_EQ(A.max(), 100u);
}

TEST(MetricsRegistry, CountersAndPeakSemantics) {
  MetricsRegistry M;
  M.add("goals", 3);
  M.add("goals", 4);
  EXPECT_EQ(M.counter("goals"), 7u);
  M.set("goals", 2);
  EXPECT_EQ(M.counter("goals"), 2u);
  M.setMax("peak", 10);
  M.setMax("peak", 4); // lower value must not regress the peak
  EXPECT_EQ(M.counter("peak"), 10u);
  EXPECT_TRUE(M.hasCounter("goals"));
  EXPECT_FALSE(M.hasCounter("goalDepth"));
  EXPECT_EQ(M.counter("absent"), 0u);
}

TEST(MetricsRegistry, IterationIsInsertionOrder) {
  MetricsRegistry M;
  M.add("zeta", 1);
  M.histogram("alpha").record(5);
  M.add("mid", 2);
  std::vector<std::string> Names;
  M.forEach([&](const std::string &N, uint64_t) { Names.push_back(N); },
            [&](const std::string &N, const Histogram &) {
              Names.push_back(N);
            });
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "zeta");
  EXPECT_EQ(Names[1], "alpha");
  EXPECT_EQ(Names[2], "mid");
  EXPECT_EQ(M.size(), 3u);
}

TEST(MetricsRegistry, MergeAddsCountersAndMergesHistograms) {
  MetricsRegistry A, B;
  A.add("goals", 5);
  B.add("goals", 7);
  B.add("cuts", 1);
  B.histogram("depth").record(4);
  A.merge(B);
  EXPECT_EQ(A.counter("goals"), 12u);
  EXPECT_EQ(A.counter("cuts"), 1u);
  ASSERT_NE(A.findHistogram("depth"), nullptr);
  EXPECT_EQ(A.findHistogram("depth")->count(), 1u);
}

TEST(Metrics, AnalyzerPopulatesRegistry) {
  Context Ctx;
  analysis::Witness W = gen::conditionalChain(Ctx, 4);
  analysis::AnalyzerOptions AOpts;
  MetricsRegistry M;
  AOpts.Metrics = &M;
  auto R = analysis::DirectAnalyzer<CD>(Ctx, W.Anf,
                                        analysis::directBindings<CD>(W),
                                        AOpts)
               .run();
  // The run's scalar stats land in the registry verbatim...
  EXPECT_EQ(M.counter("goals"), R.Stats.Goals);
  EXPECT_EQ(M.counter("cacheHits"), R.Stats.CacheHits);
  EXPECT_EQ(M.counter("memoEntries"), R.Stats.MemoEntries);
  EXPECT_EQ(M.counter("stores"), R.Stats.InternedStores);
  EXPECT_EQ(M.counter("storeBytes"), R.Stats.InternerBytes);
  EXPECT_GT(M.counter("storeBytesPeak"), 0u);
  // ...and the per-goal depth and per-store width distributions fill in.
  const Histogram *Depth = M.findHistogram("goalDepth");
  ASSERT_NE(Depth, nullptr);
  EXPECT_EQ(Depth->count(), R.Stats.Goals);
  const Histogram *Slots = M.findHistogram("storeSlots");
  ASSERT_NE(Slots, nullptr);
  EXPECT_EQ(Slots->count(), R.Stats.InternedStores);
  // Stats also carry the new interner observability fields directly.
  EXPECT_GT(R.Stats.InternedStores, 0u);
  EXPECT_GE(R.Stats.InternerPeakBytes, R.Stats.InternerBytes);
}

TEST(Metrics, DisabledRegistryLeavesStatsIdentical) {
  Context Ctx;
  analysis::Witness W = gen::conditionalChain(Ctx, 5);
  auto Init = analysis::directBindings<CD>(W);
  MetricsRegistry M;
  analysis::AnalyzerOptions WithM;
  WithM.Metrics = &M;
  auto A = analysis::DirectAnalyzer<CD>(Ctx, W.Anf, Init).run();
  auto B = analysis::DirectAnalyzer<CD>(Ctx, W.Anf, Init, WithM).run();
  // Observability must never perturb the analysis.
  EXPECT_TRUE(A.Answer == B.Answer);
  EXPECT_EQ(A.Stats.Goals, B.Stats.Goals);
  EXPECT_EQ(A.Stats.CacheHits, B.Stats.CacheHits);
  EXPECT_EQ(A.Stats.Cuts, B.Stats.Cuts);
  EXPECT_EQ(A.Stats.InternedStores, B.Stats.InternedStores);
}

TEST(Metrics, TableRendersUnionOfLegs) {
  MetricsRegistry A, B;
  A.add("goals", 12);
  A.histogram("goalDepth").record(3);
  B.add("goals", 7);
  B.add("cuts", 2);
  std::string T = clients::metricsTable(
      {{"direct", &A}, {"semantic", &B}});
  // Header row names every leg; absent cells render as "-".
  EXPECT_NE(T.find("metric"), std::string::npos);
  EXPECT_NE(T.find("direct"), std::string::npos);
  EXPECT_NE(T.find("semantic"), std::string::npos);
  EXPECT_NE(T.find("goals"), std::string::npos);
  EXPECT_NE(T.find("12"), std::string::npos);
  EXPECT_NE(T.find("goalDepth"), std::string::npos);
  EXPECT_NE(T.find("n=1"), std::string::npos);
  EXPECT_NE(T.find("-"), std::string::npos);
}

} // namespace
