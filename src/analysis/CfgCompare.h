//===- analysis/CfgCompare.h - Cross-analyzer CFG comparison ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's framing — "all analyzers compute the control flow graph of
/// the source program and hence our results apply to a large class of
/// data flow analyses" — requires the CPS analyzer's control-flow facts
/// to be readable at source-program points. This module maps a CpsCfg
/// back through the transformation's correspondence maps (continuation
/// lambda -> source let, CPS lambda -> source lambda) and compares the
/// resulting source-level call graphs across analyzers.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_CFGCOMPARE_H
#define CPSFLOW_ANALYSIS_CFGCOMPARE_H

#include "analysis/Cfg.h"
#include "cps/Transform.h"

#include <string>

namespace cpsflow {
namespace analysis {

/// Translates \p Cfg to source-level program points: call sites become
/// the source applications their continuation lambdas were generated
/// from, callees map through delta_e inverse (inck -> inc, CPS lambda ->
/// source lambda). Return points have no source analog (the reified
/// continuation is the CPS transformation's artifact) and are dropped —
/// their information is exactly what the false-return analysis loses.
DirectCfg sourceView(const cps::CpsProgram &Program, const CpsCfg &Cfg);

/// Site-by-site comparison of two source-level CFGs.
struct CfgComparison {
  size_t CallSites = 0;      ///< call sites present in either CFG
  size_t EqualSites = 0;     ///< identical callee sets
  size_t LeftExtra = 0;      ///< sites where left has extra callees
  size_t RightExtra = 0;     ///< sites where right has extra callees
  size_t IncomparableSites = 0;
  size_t Branches = 0;       ///< conditionals present in either CFG
  size_t EqualBranches = 0;  ///< identical feasibility

  bool identical() const {
    return EqualSites == CallSites && EqualBranches == Branches;
  }
};

/// Compares two source-level CFGs site by site.
CfgComparison compareCfgs(const DirectCfg &Left, const DirectCfg &Right);

/// Renders a comparison as one line.
std::string str(const CfgComparison &C);

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_CFGCOMPARE_H
