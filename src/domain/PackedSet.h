//===- domain/PackedSet.h - Word-packed lattice sets ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-packed representations of the analyzer's finite powerset lattices.
///
/// A syntactic-CPS run draws every closure and continuation from a fixed,
/// program-derived universe (Universe.cpp). When that universe fits in
/// 128 elements — every corpus program and fuzz workload by a wide
/// margin — a set is two machine words over the universe's sorted-rank
/// enumeration, and the lattice operations are branch-free word ops:
/// join is OR, ⊑ is `(a & ~b) == 0`, equality is word compare. Iteration
/// yields ascending ranks, which by construction is the same order as
/// `SortedSet` iteration over the corresponding refs, so packing is an
/// order-preserving lattice isomorphism: an engine computing over
/// `PackedCpsVal` performs exactly the joins the `CpsAbsVal` engine
/// performs, and unpacking at the boundary reproduces its answers
/// bitwise.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_PACKEDSET_H
#define CPSFLOW_DOMAIN_PACKEDSET_H

#include "support/Hashing.h"

#include <cstdint>

namespace cpsflow {
namespace domain {

/// A subset of a dense universe of at most 128 elements, in two words.
struct Bits128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  static Bits128 single(uint32_t I) {
    Bits128 B;
    B.set(I);
    return B;
  }

  /// The first \p N universe elements — the packed "top" set.
  static Bits128 firstN(uint32_t N) {
    Bits128 B;
    B.Lo = N >= 64 ? ~0ull : (N ? (~0ull >> (64 - N)) : 0);
    B.Hi = N <= 64 ? 0 : (N >= 128 ? ~0ull : (~0ull >> (128 - N)));
    return B;
  }

  void set(uint32_t I) { (I < 64 ? Lo : Hi) |= 1ull << (I & 63); }
  bool test(uint32_t I) const {
    return (((I < 64 ? Lo : Hi) >> (I & 63)) & 1) != 0;
  }
  bool empty() const { return (Lo | Hi) == 0; }
  uint32_t size() const {
    return static_cast<uint32_t>(__builtin_popcountll(Lo) +
                                 __builtin_popcountll(Hi));
  }

  static Bits128 join(Bits128 A, Bits128 B) {
    return Bits128{A.Lo | B.Lo, A.Hi | B.Hi};
  }
  static bool leq(Bits128 A, Bits128 B) {
    return ((A.Lo & ~B.Lo) | (A.Hi & ~B.Hi)) == 0;
  }

  friend bool operator==(Bits128 A, Bits128 B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(Bits128 A, Bits128 B) { return !(A == B); }

  /// Visits members in ascending rank — the `SortedSet` iteration order
  /// of the corresponding refs.
  template <typename F> void forEach(F Fn) const {
    for (uint64_t W = Lo; W; W &= W - 1)
      Fn(static_cast<uint32_t>(__builtin_ctzll(W)));
    for (uint64_t W = Hi; W; W &= W - 1)
      Fn(static_cast<uint32_t>(64 + __builtin_ctzll(W)));
  }

  uint64_t hashValue() const {
    uint64_t H = 0x5e75; // same family as SortedSet's seed
    hashCombine(H, Lo);
    hashCombine(H, Hi);
    return H;
  }
};

/// The packed mirror of CpsAbsVal<D>: (number, closure ranks,
/// continuation ranks). Interface-compatible with what AbsStore and
/// StoreInterner require of a value type.
template <typename D> struct PackedCpsVal {
  typename D::Elem Num = D::bot();
  Bits128 Clos;
  Bits128 Konts;

  static PackedCpsVal bot() { return PackedCpsVal(); }

  static PackedCpsVal number(typename D::Elem E) {
    PackedCpsVal V;
    V.Num = E;
    return V;
  }

  static PackedCpsVal closures(Bits128 S) {
    PackedCpsVal V;
    V.Clos = S;
    return V;
  }

  static PackedCpsVal konts(Bits128 S) {
    PackedCpsVal V;
    V.Konts = S;
    return V;
  }

  bool isBot() const {
    return D::leq(Num, D::bot()) && Clos.empty() && Konts.empty();
  }

  static PackedCpsVal join(const PackedCpsVal &A, const PackedCpsVal &B) {
    PackedCpsVal V;
    V.Num = D::join(A.Num, B.Num);
    V.Clos = Bits128::join(A.Clos, B.Clos);
    V.Konts = Bits128::join(A.Konts, B.Konts);
    return V;
  }

  static bool leq(const PackedCpsVal &A, const PackedCpsVal &B) {
    return D::leq(A.Num, B.Num) && Bits128::leq(A.Clos, B.Clos) &&
           Bits128::leq(A.Konts, B.Konts);
  }

  friend bool operator==(const PackedCpsVal &A, const PackedCpsVal &B) {
    return A.Num == B.Num && A.Clos == B.Clos && A.Konts == B.Konts;
  }
  friend bool operator!=(const PackedCpsVal &A, const PackedCpsVal &B) {
    return !(A == B);
  }

  uint64_t hashValue() const {
    uint64_t H = D::hash(Num);
    hashCombine(H, Clos.hashValue());
    hashCombine(H, Konts.hashValue());
    return H;
  }
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_PACKEDSET_H
