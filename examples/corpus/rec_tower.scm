; rec-sugar self-application plus a caller chain: deep derivations with
; reconverging stores, where the memo table should earn its keep.
(define (apply3 f x) (f (f (f x))))
(apply3 (rec (sum n) (if0 n 0 (add1 (sum (sub1 n))))) 2)
