//===- support/Json.h - Minimal JSON writer ---------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer for machine-readable tool output (the
/// CLI's --json mode). Handles escaping and comma placement; nesting is
/// the caller's responsibility (beginObject/endObject must balance).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_JSON_H
#define CPSFLOW_SUPPORT_JSON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cpsflow {

/// Escapes \p S for embedding inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control characters
/// become \n/\t/\r or \u00XX. Every string field of every JSON document
/// this project emits must pass through here (JsonWriter does so
/// automatically) — a corpus filename or parse-error message containing a
/// quote or backslash must still yield a valid document.
inline std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Streaming JSON writer.
///
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("answer").value("(1, {})");
///   W.key("stats").beginObject();
///   W.key("goals").value(42);
///   W.endObject();
///   W.endObject();
///   std::string S = W.str();
/// \endcode
class JsonWriter {
public:
  JsonWriter &beginObject() {
    comma();
    Out << '{';
    Stack.push_back(State::FirstInObject);
    return *this;
  }

  JsonWriter &endObject() {
    assert(!Stack.empty() && "unbalanced endObject");
    Out << '}';
    Stack.pop_back();
    return *this;
  }

  JsonWriter &beginArray() {
    comma();
    Out << '[';
    Stack.push_back(State::FirstInArray);
    return *this;
  }

  JsonWriter &endArray() {
    assert(!Stack.empty() && "unbalanced endArray");
    Out << ']';
    Stack.pop_back();
    return *this;
  }

  /// Writes an object key; the next value call supplies its value.
  JsonWriter &key(std::string_view K) {
    comma();
    writeString(K);
    Out << ':';
    PendingValue = true;
    return *this;
  }

  JsonWriter &value(std::string_view V) {
    comma();
    writeString(V);
    return *this;
  }
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(int64_t V) {
    comma();
    Out << V;
    return *this;
  }
  JsonWriter &value(uint64_t V) {
    comma();
    Out << V;
    return *this;
  }
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(double V) {
    comma();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    Out << Buf;
    return *this;
  }
  JsonWriter &value(bool V) {
    comma();
    Out << (V ? "true" : "false");
    return *this;
  }

  /// The serialized document (call after balancing all begins/ends).
  std::string str() const {
    assert(Stack.empty() && "unbalanced JSON document");
    return Out.str();
  }

private:
  enum class State : uint8_t { FirstInObject, InObject, FirstInArray,
                               InArray };

  void comma() {
    if (PendingValue) {
      // A key was just written; this is its value — no comma.
      PendingValue = false;
      return;
    }
    if (Stack.empty())
      return;
    switch (Stack.back()) {
    case State::FirstInObject:
      Stack.back() = State::InObject;
      break;
    case State::FirstInArray:
      Stack.back() = State::InArray;
      break;
    case State::InObject:
    case State::InArray:
      Out << ',';
      break;
    }
  }

  void writeString(std::string_view S) { Out << '"' << jsonEscape(S) << '"'; }

  std::ostringstream Out;
  std::vector<State> Stack;
  bool PendingValue = false;
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_JSON_H
