//===- serve/Analyze.h - One contained serve analysis -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve worker's unit of work: one program, one analyzer leg, one
/// domain, fully contained. Unlike the batch driver (which runs all four
/// legs per program), a service request names exactly the leg it wants,
/// so this path parses, normalizes, CPS-transforms, and runs that single
/// analyzer under the request's governor budgets.
///
/// Containment is total: parse and CPS failures, governor trips,
/// allocation failure, and any escaping exception (including injected
/// faults) all come back as a structured outcome — the caller always has
/// a response to write, and a worker thread never dies.
///
/// The success payload is deterministic (no wall-clock fields), which is
/// what makes it cacheable byte-for-byte: a cache hit is
/// indistinguishable from a recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_ANALYZE_H
#define CPSFLOW_SERVE_ANALYZE_H

#include "serve/Protocol.h"
#include "support/Governor.h"
#include "support/Trace.h"

#include <memory>
#include <string>

namespace cpsflow {
namespace serve {

class MemoStore;

/// Server-side budgets and ceilings applied to one analysis. The caller
/// (Server) resolves these from its own defaults and the request's
/// overrides before dispatching.
struct AnalyzeConfig {
  uint64_t MaxGoals = 5'000'000;
  double DeadlineMs = 10'000; ///< <=0 disables the deadline
  uint64_t MaxStoreBytes = 256ull << 20;
  uint32_t MaxDepth = 0;
  /// Process-wide drain/interrupt token; in-flight analyses degrade
  /// through the governor when it fires.
  std::shared_ptr<support::CancelToken> Interrupt;
  /// Hot cross-request memo store, or null to run every request cold.
  /// Consulted only when the request also asks for incremental mode.
  MemoStore *Memo = nullptr;
  /// When non-null, the run wraps its phases in TraceSpans and samples
  /// per-goal instants here (slow-request capture: the worker owns one
  /// tracer, clears it per request, and spills the events only when the
  /// request turns out slow). Never affects the deterministic payload.
  support::Tracer *Trace = nullptr;
  /// Track id for Trace events (the worker index).
  uint32_t TraceTid = 0;
};

struct AnalyzeOutcome {
  bool Ok = false;
  // -- failure half
  ServeErrorKind Kind = ServeErrorKind::Internal;
  std::string Message;
  // -- success half
  std::string PayloadJson; ///< deterministic result object
  bool Degraded = false;   ///< some governor/budget wall was hit
  std::string Answer;      ///< rendered abstract answer (loadgen --verify)
  /// True when memo replay participated (replayHits/replayMisses != 0):
  /// the answer is byte-identical to a cold run's, but the stats block
  /// reflects the warm walk, so the payload must not enter the
  /// byte-canonical result cache.
  bool Incremental = false;
  uint64_t ReplayHits = 0;
  uint64_t ReplayMisses = 0;

  // -- observability (request-log material; never part of PayloadJson,
  // so the payload stays deterministic and cacheable)
  uint64_t Goals = 0;
  /// The governor wall that degraded the run ("none" when clean) — the
  /// same spelling the payload's stats block carries.
  std::string DegradeReason = "none";
  double ParseUs = 0;   ///< parse + ANF normalization
  double CpsUs = 0;     ///< CPS transform
  double AnalyzeUs = 0; ///< the analyzer run itself
};

/// Runs Req.Program through Req.Analyzer at Req.Domain under \p Cfg.
/// Never throws.
AnalyzeOutcome runServeAnalyze(const ServeRequest &Req,
                               const AnalyzeConfig &Cfg,
                               uint64_t RequestOrdinal);

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_ANALYZE_H
