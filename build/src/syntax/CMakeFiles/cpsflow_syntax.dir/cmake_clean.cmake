file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_syntax.dir/Analysis.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Analysis.cpp.o.d"
  "CMakeFiles/cpsflow_syntax.dir/Parser.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Parser.cpp.o.d"
  "CMakeFiles/cpsflow_syntax.dir/Printer.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Printer.cpp.o.d"
  "CMakeFiles/cpsflow_syntax.dir/Rename.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Rename.cpp.o.d"
  "CMakeFiles/cpsflow_syntax.dir/Sexpr.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Sexpr.cpp.o.d"
  "CMakeFiles/cpsflow_syntax.dir/Sugar.cpp.o"
  "CMakeFiles/cpsflow_syntax.dir/Sugar.cpp.o.d"
  "libcpsflow_syntax.a"
  "libcpsflow_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
