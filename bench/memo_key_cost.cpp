//===- bench/memo_key_cost.cpp - E13: memo key representation ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E13 — per-goal cost of the analyzers' memo keys, dense vs interned.
///
/// Both variants replay the same synthetic goal stream: each goal derives
/// a store from its parent by joining one slot, builds a (node, store)
/// memo key, and probes the table — exactly the per-goal key traffic of
/// the Section 4.4 loop-detection machinery. The constant-domain slots
/// saturate after a few rounds (constant join constant' = top), so the
/// stream has the fixpoint tail real runs have, where most joins don't
/// move the store.
///
/// The dense variant carries a full AbsStore in the key (the seed
/// representation): O(|vars|) copy + O(|vars|) hash + O(|vars|) equality
/// per goal. The interned variant carries a StoreId: copy-on-write joinAt
/// with an O(1) hash patch, O(1) key build/hash/compare. The argument is
/// the store width |vars|.
///
//===----------------------------------------------------------------------===//

#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/NumDomain.h"
#include "domain/StoreInterner.h"
#include "support/Hashing.h"

#include <benchmark/benchmark.h>

#include <unordered_map>

using namespace cpsflow;

namespace {

using CD = domain::ConstantDomain;
using Val = domain::AbsVal<CD>;
using StoreT = domain::AbsStore<Val>;

constexpr uint32_t GoalsPerIter = 4096;

/// Fake arena nodes: addresses are hashed, never dereferenced. A small
/// pool makes goals revisit nodes, as real derivations do.
const void *nodeAt(uint32_t G) {
  static int Pool[64];
  return &Pool[G % 64];
}

/// The slot joined and the value joined in at goal \p G: every slot
/// cycles through a few constants, then saturates at top.
uint32_t slotAt(uint32_t G, uint32_t Width) { return G % Width; }
Val valueAt(uint32_t G, uint32_t Width) {
  return Val::number(CD::constant((G / Width) % 3));
}

/// Seed-style key: the store itself rides in the key.
struct DenseKey {
  const void *Node;
  StoreT Store;

  friend bool operator==(const DenseKey &A, const DenseKey &B) {
    return A.Node == B.Node && A.Store == B.Store;
  }
};
struct DenseKeyHash {
  size_t operator()(const DenseKey &K) const {
    uint64_t H = hashPointer(K.Node);
    hashCombine(H, K.Store.hashValue());
    return static_cast<size_t>(H);
  }
};

/// Interned key: the store is a 32-bit id.
struct InternedKey {
  const void *Node;
  domain::StoreId Store;

  friend bool operator==(const InternedKey &A, const InternedKey &B) {
    return A.Node == B.Node && A.Store == B.Store;
  }
};
struct InternedKeyHash {
  size_t operator()(const InternedKey &K) const {
    uint64_t H = hashPointer(K.Node);
    hashCombine(H, K.Store);
    return static_cast<size_t>(H);
  }
};

void BM_DenseKeys(benchmark::State &State) {
  const uint32_t Width = static_cast<uint32_t>(State.range(0));
  uint64_t Hits = 0;
  for (auto _ : State) {
    StoreT Cur(Width);
    std::unordered_map<DenseKey, uint32_t, DenseKeyHash> Memo;
    for (uint32_t G = 0; G < GoalsPerIter; ++G) {
      StoreT Next = Cur;
      Next.joinAt(slotAt(G, Width), valueAt(G, Width));
      auto [It, Inserted] =
          Memo.try_emplace(DenseKey{nodeAt(G), Next}, G);
      if (!Inserted)
        ++Hits;
      Cur = std::move(Next);
    }
    benchmark::DoNotOptimize(Memo.size());
  }
  State.counters["hits"] = static_cast<double>(Hits);
  State.SetItemsProcessed(State.iterations() * GoalsPerIter);
}

void BM_InternedKeys(benchmark::State &State) {
  const uint32_t Width = static_cast<uint32_t>(State.range(0));
  uint64_t Hits = 0;
  domain::StoreInterner<Val> In;
  for (auto _ : State) {
    In.reset(Width);
    domain::StoreId Cur = In.bottom();
    std::unordered_map<InternedKey, uint32_t, InternedKeyHash> Memo;
    for (uint32_t G = 0; G < GoalsPerIter; ++G) {
      domain::StoreId Next =
          In.joinAt(Cur, slotAt(G, Width), valueAt(G, Width));
      auto [It, Inserted] =
          Memo.try_emplace(InternedKey{nodeAt(G), Next}, G);
      if (!Inserted)
        ++Hits;
      Cur = Next;
    }
    benchmark::DoNotOptimize(Memo.size());
  }
  State.counters["hits"] = static_cast<double>(Hits);
  State.SetItemsProcessed(State.iterations() * GoalsPerIter);
}

} // namespace

BENCHMARK(BM_DenseKeys)->RangeMultiplier(2)->Range(64, 512);
BENCHMARK(BM_InternedKeys)->RangeMultiplier(2)->Range(64, 512);

BENCHMARK_MAIN();
