//===- syntax/Parser.h - Parser for language A ------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the surface syntax of language A into the AST:
///
/// \code
///   M ::= V | (M M) | (let (x M) M) | (if0 M M M) | (loop)
///   V ::= n | x | add1 | sub1 | (lambda (x) M)
/// \endcode
///
/// `lambda` may also be spelled `λ`. The keywords `let`, `if0`, `lambda`,
/// `loop`, `add1`, and `sub1` are reserved and cannot be variable names.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_PARSER_H
#define CPSFLOW_SYNTAX_PARSER_H

#include "support/Result.h"
#include "syntax/Ast.h"
#include "syntax/Sexpr.h"

#include <string_view>

namespace cpsflow {
namespace syntax {

/// Term-nesting cap for the recursive-descent term parser and the
/// desugarer. Deliberately below the s-expression reader's 4000-element
/// list cap (Sexpr.cpp) so the term-level guard is reachable: desugaring
/// can spend several native frames per source level, so the term walk
/// needs its own, tighter wall. A program this deep is adversarial input,
/// not a real analysis subject — rejecting it with a parse error keeps
/// every entry point (CLI, batch workers, serve handlers) off the
/// unbounded native stack.
inline constexpr unsigned MaxTermDepth = 2000;

/// Parses \p Source as a single language-A term allocated in \p Ctx.
Result<const Term *> parseTerm(Context &Ctx, std::string_view Source);

/// Converts an already-read s-expression to a term.
Result<const Term *> termFromSexpr(Context &Ctx, const Sexpr &E);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_PARSER_H
