//===- syntax/Parser.cpp - Parser for language A ----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Parser.h"

#include "syntax/Builder.h"

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

bool isReservedWord(std::string_view Text) {
  return Text == "let" || Text == "if0" || Text == "lambda" || Text == "λ" ||
         Text == "loop" || Text == "add1" || Text == "sub1";
}

class TermParser {
public:
  explicit TermParser(Context &Ctx) : Ctx(Ctx), Build(Ctx) {}

  Result<const Term *> term(const Sexpr &E) {
    // Every recursive term step passes through here (value() only
    // recurses via a lambda body's term()), so this one guard bounds the
    // whole descent.
    if (Depth >= MaxTermDepth)
      return Error("program nesting exceeds the supported depth (" +
                       std::to_string(MaxTermDepth) + ")",
                   E.Loc);
    ++Depth;
    Result<const Term *> T = termImpl(E);
    --Depth;
    return T;
  }

private:
  Result<const Term *> termImpl(const Sexpr &E) {
    // Atoms are values in term position.
    if (E.isNumber() || E.isSymbol()) {
      Result<const Value *> V = value(E);
      if (!V)
        return V.error();
      return static_cast<const Term *>(Build.val(*V, E.Loc));
    }

    if (E.size() == 0)
      return Error("empty application '()'", E.Loc);

    const Sexpr &Head = E[0];
    if (Head.isSymbol("let"))
      return letTerm(E);
    if (Head.isSymbol("if0"))
      return if0Term(E);
    if (Head.isSymbol("loop"))
      return loopTerm(E);
    if (Head.isSymbol("lambda") || Head.isSymbol("λ")) {
      Result<const Value *> V = value(E);
      if (!V)
        return V.error();
      return static_cast<const Term *>(Build.val(*V, E.Loc));
    }
    return appTerm(E);
  }

private:
  Result<const Value *> value(const Sexpr &E) {
    if (E.isNumber())
      return static_cast<const Value *>(Build.num(E.Number, E.Loc));
    if (E.isSymbol()) {
      if (E.Text == "add1")
        return static_cast<const Value *>(Build.add1(E.Loc));
      if (E.Text == "sub1")
        return static_cast<const Value *>(Build.sub1(E.Loc));
      if (isReservedWord(E.Text))
        return Error("reserved word '" + E.Text +
                         "' cannot be used as a variable",
                     E.Loc);
      return static_cast<const Value *>(Build.var(Ctx.intern(E.Text), E.Loc));
    }
    // (lambda (x) M)
    if (E.size() != 3 || !(E[0].isSymbol("lambda") || E[0].isSymbol("λ")))
      return Error("expected a value", E.Loc);
    const Sexpr &Params = E[1];
    if (!Params.isList() || Params.size() != 1 || !Params[0].isSymbol())
      return Error("lambda expects a single-parameter list, e.g. "
                   "(lambda (x) M)",
                   E[1].Loc);
    if (isReservedWord(Params[0].Text))
      return Error("reserved word '" + Params[0].Text +
                       "' cannot be a parameter",
                   Params[0].Loc);
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body.error();
    return static_cast<const Value *>(
        Build.lam(Ctx.intern(Params[0].Text), *Body, E.Loc));
  }

  Result<const Term *> letTerm(const Sexpr &E) {
    if (E.size() != 3)
      return Error("let expects a binding and a body: (let (x M) M)", E.Loc);
    const Sexpr &Binding = E[1];
    if (!Binding.isList() || Binding.size() != 2 || !Binding[0].isSymbol())
      return Error("let binding must have the shape (x M)", E[1].Loc);
    if (isReservedWord(Binding[0].Text))
      return Error("reserved word '" + Binding[0].Text +
                       "' cannot be let-bound",
                   Binding[0].Loc);
    Result<const Term *> Bound = term(Binding[1]);
    if (!Bound)
      return Bound;
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body;
    return static_cast<const Term *>(
        Build.let(Ctx.intern(Binding[0].Text), *Bound, *Body, E.Loc));
  }

  Result<const Term *> if0Term(const Sexpr &E) {
    if (E.size() != 4)
      return Error("if0 expects three subterms: (if0 M M M)", E.Loc);
    Result<const Term *> Cond = term(E[1]);
    if (!Cond)
      return Cond;
    Result<const Term *> Then = term(E[2]);
    if (!Then)
      return Then;
    Result<const Term *> Else = term(E[3]);
    if (!Else)
      return Else;
    return static_cast<const Term *>(Build.if0(*Cond, *Then, *Else, E.Loc));
  }

  Result<const Term *> loopTerm(const Sexpr &E) {
    if (E.size() != 1)
      return Error("loop takes no arguments: (loop)", E.Loc);
    return static_cast<const Term *>(Build.loop(E.Loc));
  }

  Result<const Term *> appTerm(const Sexpr &E) {
    if (E.size() != 2)
      return Error("application expects exactly two subterms: (M M)", E.Loc);
    Result<const Term *> Fun = term(E[0]);
    if (!Fun)
      return Fun;
    Result<const Term *> Arg = term(E[1]);
    if (!Arg)
      return Arg;
    return static_cast<const Term *>(Build.app(*Fun, *Arg, E.Loc));
  }

  Context &Ctx;
  Builder Build;
  unsigned Depth = 0;
};

} // namespace

Result<const Term *> cpsflow::syntax::termFromSexpr(Context &Ctx,
                                                    const Sexpr &E) {
  return TermParser(Ctx).term(E);
}

Result<const Term *> cpsflow::syntax::parseTerm(Context &Ctx,
                                                std::string_view Source) {
  Result<Sexpr> E = parseSexpr(Source);
  if (!E)
    return E.error();
  return termFromSexpr(Ctx, *E);
}
