//===- serve/RequestLog.h - Structured per-request logging ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured request logging for `cpsflow serve`: every admitted analyze
/// request leaves exactly one line-delimited JSON record carrying its
/// identity (the request id minted at admission), what was asked
/// (analyzer/domain/source digest), what happened (outcome, failure
/// taxonomy kind, degrade reason, cache interaction, replay counters),
/// and where the time went (queue / parse / cps / analyze / total).
///
/// Two consumers share the record type:
///
///  * RequestLog — the durable `--log-out FILE` sink. Appends are atomic
///    (one write(2) per record to an O_APPEND descriptor, serialized by a
///    mutex), and the file rotates by size: at the cap it is renamed to
///    FILE.1 (replacing any previous FILE.1) and reopened fresh, so the
///    daemon holds at most ~2x the cap on disk.
///  * FlightRecorder (FlightRecorder.h) — the in-memory ring of the last
///    N records, dumped on drain or on demand.
///
/// The record deliberately carries timings and is therefore NOT part of
/// any deterministic payload: the analyze response body a client sees is
/// byte-identical whether logging is on or off.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_REQUESTLOG_H
#define CPSFLOW_SERVE_REQUESTLOG_H

#include <cstdint>
#include <mutex>
#include <string>

namespace cpsflow {
namespace serve {

/// Schema version stamped into every log record and flight-recorder
/// dump ("schema" field). Bump on any breaking field change; `cpsflow
/// version` reports it.
inline constexpr int RequestLogSchemaVersion = 1;

/// Everything the serving layer knows about one admitted request.
/// Filled incrementally: admission mints ReqId and the identity fields,
/// the worker adds outcome/timings, finishRequest() seals it.
struct RequestRecord {
  // -- identity, set at admission
  uint64_t ReqId = 0;        ///< daemon-unique, minted at admission
  uint64_t ClientId = 0;     ///< client correlation id ("id" field)
  bool HasClientId = false;
  std::string Analyzer;      ///< canonical analyzer name
  std::string Domain;
  uint64_t SourceLen = 0;    ///< program length in bytes
  uint64_t SourceDigest = 0; ///< gen::textDigest of the program

  // -- outcome, set at completion
  /// One of: "ok" | "degraded" | "shed" | "failed". Degraded responses
  /// are successful responses whose stats carry a degrade reason.
  std::string Outcome;
  std::string ErrorKind;     ///< taxonomy kind when Outcome == "failed"
  std::string DegradeReason; ///< governor wall name, "none" otherwise
  /// Result-cache interaction: "hit" | "store" | "miss" | "bypass"
  /// (request said noCache) | "off" (no cache configured) | "" (request
  /// never reached the cache, e.g. shed).
  std::string CacheOutcome;
  uint64_t Goals = 0;
  uint64_t ReplayHits = 0;
  uint64_t ReplayMisses = 0;

  // -- timing phases, microseconds
  double QueueUs = 0;   ///< admission to worker pickup
  double ParseUs = 0;
  double CpsUs = 0;
  double AnalyzeUs = 0;
  double TotalUs = 0;   ///< admission to response written
  uint32_t Worker = 0;  ///< worker index that served it (0 when shed)

  /// Path of the captured slow-request trace, when one was spilled.
  std::string SlowTracePath;
};

/// Renders \p R as one JSON object line (no trailing newline), schema
/// RequestLogSchemaVersion. Field order is fixed, so tests can assert on
/// the rendering deterministically (timing values aside).
std::string renderRequestRecord(const RequestRecord &R);

/// The durable request-log sink. See the file comment for the append and
/// rotation discipline. Thread-safe.
class RequestLog {
public:
  /// Opens \p Path for appending. \p RotateBytes of 0 disables rotation.
  RequestLog(std::string Path, uint64_t RotateBytes);
  ~RequestLog();

  RequestLog(const RequestLog &) = delete;
  RequestLog &operator=(const RequestLog &) = delete;

  /// False when the file could not be opened; append() is then a no-op
  /// that counts a failure.
  bool ok() const;

  /// Renders and appends one record (atomic whole-line write).
  void append(const RequestRecord &R);

  uint64_t written() const;   ///< records successfully appended
  uint64_t failures() const;  ///< failed appends (disk full, bad fd)
  uint64_t rotations() const; ///< size-triggered rotations

private:
  void rotateLocked();

  std::string Path;
  uint64_t RotateBytes;
  mutable std::mutex Mu;
  int Fd = -1;
  uint64_t CurBytes = 0;
  uint64_t Written = 0;
  uint64_t Failures = 0;
  uint64_t Rotations = 0;
};

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_REQUESTLOG_H
