//===- domain/Provenance.h - Derivation recording ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Provenance arena: a compact derivation graph over interned stores.
///
/// Each abstract fact — the value a store binds to a variable slot — is
/// given a derivation edge saying where it came from:
///
///   init       initial binding installed before analysis (run() preamble)
///   flow       a plain binding from a program point (Figure 4-6 let/call)
///   join       merge of two branches: an if0 with both arms feasible, a
///              multi-callee application, or a memo-entry join (Thm 5.2)
///   cut        Section 4.4 goal repetition — the active-path check fired
///              and the least-precise value was substituted; carries the
///              Governor DegradeReason when the cut was budget-induced
///   call-merge the syntactic-CPS continuation-set union at a return
///              point, the Theorem 5.1 loss site
///   widen      the loop rule's naturals()/iterate summarisation
///
/// Because stores are hash-consed (StoreInterner), store ids are dense and
/// a store's creation event is recorded once, first-win — matching the
/// interner's own first-win dedup, so the recorded graph is deterministic.
/// The recorder is attached via the nullable AnalyzerOptions::Prov pointer
/// and every analyzer hook is guarded by a single (predicted-false)
/// pointer test, exactly like Metrics/Trace: the disabled path performs no
/// work and the analyzers' stores and work counters are byte-identical
/// either way (tests/ProvenanceTests.cpp holds this).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_PROVENANCE_H
#define CPSFLOW_DOMAIN_PROVENANCE_H

#include "domain/StoreInterner.h"
#include "support/Governor.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace domain {

/// Derivation-edge taxonomy. See the file comment for the paper section
/// behind each kind (docs/EXPLAIN.md has the full mapping).
enum class EdgeKind : uint8_t { Init, Flow, Join, Cut, CallMerge, Widen };

inline const char *str(EdgeKind K) {
  switch (K) {
  case EdgeKind::Init:
    return "init";
  case EdgeKind::Flow:
    return "flow";
  case EdgeKind::Join:
    return "join";
  case EdgeKind::Cut:
    return "cut";
  case EdgeKind::CallMerge:
    return "call-merge";
  case EdgeKind::Widen:
    return "widen";
  }
  return "?";
}

/// Index into the provenance arena; NoProv is the absent edge (leaves:
/// literals, lambdas, primitives, and the pre-analysis bottom store).
using ProvId = uint32_t;
inline constexpr ProvId NoProv = ~0u;

/// Sentinels for the optional store/slot fields of an Edge.
inline constexpr StoreId NoStore = ~0u;
inline constexpr uint32_t NoSlot = ~0u;

/// One derivation edge. Three shapes share the struct:
///   - store writes (assign/init): Slot is the written variable, Result
///     the store produced, Base its predecessor, V1/V2 the provenance of
///     the value written (V2 only for joins of two sub-answers);
///   - store merges (join/call-merge over whole stores): Slot == NoSlot,
///     Base/Base2 are the two parents;
///   - value nodes (cut/widen/join of answer values, no store written):
///     Result == NoStore, V1/V2 are the value parents.
struct ProvEdge {
  EdgeKind Kind = EdgeKind::Flow;
  support::DegradeReason Degrade = support::DegradeReason::None;
  uint32_t Slot = NoSlot;
  StoreId Result = NoStore;
  StoreId Base = NoStore;
  StoreId Base2 = NoStore;
  ProvId V1 = NoProv;
  ProvId V2 = NoProv;
  uint32_t NodeId = 0; ///< AST node id (syntax or CPS), 0 when absent
  SourceLoc Loc;
};

/// The recorder. One instance per analyzer run (it holds StoreIds, which
/// are only meaningful against that run's interner); reset() between runs.
class Provenance {
public:
  void reset() {
    Edges.clear();
    StoreOrigin.clear();
    Facts.clear();
    Memo.clear();
    Final = NoStore;
  }

  size_t size() const { return Edges.size(); }
  const ProvEdge &edge(ProvId P) const { return Edges[P]; }

  /// Records a pure value node (cut, widen, join-of-answer-values); no
  /// store is produced. Returns the new edge's id.
  ProvId value(EdgeKind K, uint32_t NodeId, SourceLoc Loc,
               ProvId P1 = NoProv, ProvId P2 = NoProv,
               support::DegradeReason D = support::DegradeReason::None) {
    ProvId Id = static_cast<ProvId>(Edges.size());
    Edges.push_back({K, D, NoSlot, NoStore, NoStore, NoStore, P1, P2,
                     NodeId, Loc});
    return Id;
  }

  /// Records a store write: \p Result was produced from \p Base by
  /// joining the value (derived by \p VProv) into \p Slot. No-op when the
  /// write did not move the store (copy-on-write joinAt returned Base) —
  /// the existing fact, if any, already explains the slot. Returns the
  /// fact's edge id (new or pre-existing), or NoProv.
  ProvId assign(EdgeKind K, uint32_t Slot, StoreId Result, StoreId Base,
                uint32_t NodeId, SourceLoc Loc, ProvId VProv = NoProv,
                ProvId VProv2 = NoProv,
                support::DegradeReason D = support::DegradeReason::None) {
    if (Result == Base)
      return factOf(Slot, Result);
    ProvId Id = static_cast<ProvId>(Edges.size());
    Edges.push_back({K, D, Slot, Result, Base, NoStore, VProv, VProv2,
                     NodeId, Loc});
    noteOrigin(Result, Id);
    Facts.emplace(factKey(Slot, Result), Id); // first-win
    return Id;
  }

  /// Records a pointwise merge of two whole stores (join/call-merge over
  /// answers). First-win on the result's origin, like the interner.
  void merge(StoreId Result, StoreId A, StoreId B, EdgeKind K,
             uint32_t NodeId, SourceLoc Loc) {
    if (Result == A || Result == B)
      return; // one side subsumed the other; its own origin stands
    ProvId Id = static_cast<ProvId>(Edges.size());
    Edges.push_back(
        {K, support::DegradeReason::None, NoSlot, Result, A, B, NoProv,
         NoProv, NodeId, Loc});
    noteOrigin(Result, Id);
  }

  /// Records a pre-analysis initial binding (run() preamble).
  void init(uint32_t Slot, StoreId Result, StoreId Base) {
    assign(EdgeKind::Init, Slot, Result, Base, 0, SourceLoc{});
  }

  /// The event that created \p S, or NoProv for bottom / initial stores.
  ProvId originOf(StoreId S) const {
    return S < StoreOrigin.size() ? StoreOrigin[S] : NoProv;
  }

  /// The assign edge that last *moved* \p Slot when producing \p S, if
  /// that exact write was recorded. Falls back to NoProv — callers then
  /// walk originOf(S) backwards (see clients/Explain.h).
  ProvId factOf(uint32_t Slot, StoreId S) const {
    auto It = Facts.find(factKey(Slot, S));
    return It == Facts.end() ? NoProv : It->second;
  }

  /// The analyzer's final store, noted at the end of run() so explain
  /// clients can anchor the chain walk without re-interning the result.
  void noteFinal(StoreId S) { Final = S; }
  StoreId finalStore() const { return Final; }

  /// Memo side-table so cache hits can return the cached goal's value
  /// provenance without widening the analyzers' own memo tables.
  void memoize(const void *Node, StoreId S, ProvId P) {
    Memo.emplace(std::make_pair(Node, S), P); // first-win
  }
  ProvId memoized(const void *Node, StoreId S) const {
    auto It = Memo.find(std::make_pair(Node, S));
    return It == Memo.end() ? NoProv : It->second;
  }

private:
  void noteOrigin(StoreId S, ProvId Id) {
    if (S >= StoreOrigin.size())
      StoreOrigin.resize(S + 1, NoProv);
    if (StoreOrigin[S] == NoProv)
      StoreOrigin[S] = Id;
  }

  static uint64_t factKey(uint32_t Slot, StoreId S) {
    return (static_cast<uint64_t>(Slot) << 32) | S;
  }

  std::deque<ProvEdge> Edges;
  std::vector<ProvId> StoreOrigin; ///< dense StoreId -> creating edge
  std::unordered_map<uint64_t, ProvId> Facts;
  std::map<std::pair<const void *, StoreId>, ProvId> Memo;
  StoreId Final = NoStore;
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_PROVENANCE_H
