file(REMOVE_RECURSE
  "CMakeFiles/precision_lab.dir/precision_lab.cpp.o"
  "CMakeFiles/precision_lab.dir/precision_lab.cpp.o.d"
  "precision_lab"
  "precision_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
