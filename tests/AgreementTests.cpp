//===- tests/AgreementTests.cpp - Lemmas 3.1 and 3.3 ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lemma 3.1: the direct interpreter M and the semantic-CPS machine C
/// produce the same answers on A-normal forms.
///
/// Lemma 3.3: running F_k[M] under the syntactic-CPS machine with k bound
/// to `stop` produces the delta-image of M's answer, and a store whose
/// source-variable cells are the delta-images of M's cells (continuation
/// cells aside).
///
/// Both are checked on handwritten programs and on random ANF corpora.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "interp/Delta.h"
#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::interp;
using cpsflow::test::intBindings;
using cpsflow::test::intCpsBindings;
using cpsflow::test::mustParse;

namespace {

/// Checks both lemmas on one ANF term with integer free-var bindings.
void checkAgreement(Context &Ctx, const syntax::Term *T,
                    const std::vector<int64_t> &Ints) {
  ASSERT_TRUE(anf::isAnfQuick(T)) << syntax::print(Ctx, T);

  RunLimits Limits;
  Limits.MaxSteps = 300000;

  DirectInterp Direct(Limits);
  RunResult RD = Direct.run(T, intBindings(T, Ints));

  SemanticCpsInterp Semantic(Limits);
  RunResult RS = Semantic.run(T, intBindings(T, Ints));

  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());
  SyntacticCpsInterp Syntactic(Limits);
  CpsRunResult RC = Syntactic.run(*P, intCpsBindings(T, Ints));

  // Fuel exhaustion is a budget artifact, not a semantic difference: the
  // three machines count steps differently.
  if (RD.Status == RunStatus::OutOfFuel ||
      RS.Status == RunStatus::OutOfFuel ||
      RC.Status == RunStatus::OutOfFuel)
    return;

  // Lemma 3.1: identical status and answer.
  ASSERT_EQ(static_cast<int>(RD.Status), static_cast<int>(RS.Status))
      << syntax::print(Ctx, T);
  if (RD.ok()) {
    ASSERT_EQ(static_cast<int>(RD.Value.Tag),
              static_cast<int>(RS.Value.Tag));
    if (RD.Value.isNum())
      ASSERT_EQ(RD.Value.Num, RS.Value.Num);
    if (RD.Value.isClosure())
      ASSERT_EQ(RD.Value.Lam, RS.Value.Lam);
    // The machines also build identical per-variable store histories.
    for (Symbol X : syntax::boundVars(T)) {
      std::vector<RtValue> HD = Direct.store().valuesAt(X);
      std::vector<RtValue> HS = Semantic.store().valuesAt(X);
      ASSERT_EQ(HD.size(), HS.size()) << Ctx.spelling(X);
      for (size_t I = 0; I < HD.size(); ++I) {
        ASSERT_EQ(static_cast<int>(HD[I].Tag),
                  static_cast<int>(HS[I].Tag));
        if (HD[I].isNum())
          ASSERT_EQ(HD[I].Num, HS[I].Num);
      }
    }
  }

  // Lemma 3.3: delta-related answers and stores.
  ASSERT_EQ(static_cast<int>(RD.Status), static_cast<int>(RC.Status))
      << syntax::print(Ctx, T);
  if (RD.ok()) {
    EXPECT_TRUE(deltaRelated(RD.Value, RC.Value, *P))
        << syntax::print(Ctx, T) << "\n direct: " << str(Ctx, RD.Value)
        << "\n cps:    " << str(Ctx, RC.Value);
    std::string Why;
    EXPECT_TRUE(storesDeltaRelated(Ctx, Direct.store(), Syntactic.store(),
                                   *P, &Why))
        << syntax::print(Ctx, T) << "\n " << Why;
  }
}

TEST(Agreement, HandwrittenPrograms) {
  Context Ctx;
  for (const char *Text : {
           "42",
           "(let (x 1) x)",
           "(let (x (add1 4)) x)",
           "(let (x (sub1 z0)) x)",
           "(let (a (if0 0 1 2)) a)",
           "(let (a (if0 7 1 2)) a)",
           "(let (a (if0 z0 1 2)) (let (b (add1 a)) b))",
           "(let (f (lambda (x) (let (r (add1 x)) r))) (let (a (f 4)) a))",
           "(let (f (lambda (x) x)) (let (a (f 1)) (let (b (f 2)) b)))",
           "(let (f (lambda (x) (let (g (lambda (y) x)) g))) "
           "(let (h (f 1)) (let (r (h 2)) r)))",
           "(let (a (1 2)) a)",                   // stuck
           "(let (a (add1 z0)) (let (b (b1 a)) b))", // stuck: unbound b1
       }) {
    checkAgreement(Ctx, mustParse(Ctx, Text), {0, 5});
    checkAgreement(Ctx, mustParse(Ctx, Text), {3, -1});
  }
}

TEST(Agreement, RecursionThroughSelfApplication) {
  Context Ctx;
  analysis::Witness W = gen::counterLoop(Ctx, 5);
  checkAgreement(Ctx, W.Anf, {});
  // And the countdown really reaches 0.
  DirectInterp I;
  RunResult R = I.run(W.Anf);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 0);
}

TEST(Agreement, WorkloadFamilies) {
  Context Ctx;
  for (analysis::Witness W :
       {gen::conditionalChain(Ctx, 4), gen::callMergeChain(Ctx, 3),
        gen::closureTower(Ctx, 5)}) {
    // callMergeChain's f_i live only in the abstract store; bind them
    // concretely too? They are free variables, so integer bindings make
    // the program stuck at the call — still a valid agreement check.
    checkAgreement(Ctx, W.Anf, {0, 1});
  }
}

class AgreementSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgreementSweep, RandomAnfCorpus) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 10;
  Opts.MaxDepth = 3;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 30; ++I) {
    const syntax::Term *T = Gen.generate();
    checkAgreement(Ctx, T, {0, 2});
    checkAgreement(Ctx, T, {1, -3});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

} // namespace
