//===- tests/SoundnessTests.cpp - Abstract vs concrete ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.3 correctness criterion as a property test: whenever a
/// concrete run completes, the corresponding abstract run approximates its
/// answer and every store cell it allocated. Checked for all three
/// analyzers, across numeric domains, on random ANF corpora and on the
/// workload families. Also checks the Theorem 5.4/5.5 orderings on the
/// random corpus.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "interp/Delta.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::interp;
using cpsflow::test::intBindings;
using cpsflow::test::intCpsBindings;

namespace {

/// Abstraction of a direct run-time value.
template <typename D> domain::AbsVal<D> alpha(const RtValue &V) {
  using Val = domain::AbsVal<D>;
  switch (V.Tag) {
  case RtValue::Kind::Num:
    return Val::number(D::constant(V.Num));
  case RtValue::Kind::Inc:
    return Val::closures(domain::CloSet::single(domain::CloRef::inc()));
  case RtValue::Kind::Dec:
    return Val::closures(domain::CloSet::single(domain::CloRef::dec()));
  case RtValue::Kind::Closure:
    return Val::closures(
        domain::CloSet::single(domain::CloRef::lam(V.Lam)));
  }
  return Val::bot();
}

/// Abstraction of a CPS run-time value.
template <typename D> domain::CpsAbsVal<D> alphaCps(const CpsRtValue &V) {
  using Val = domain::CpsAbsVal<D>;
  switch (V.Tag) {
  case CpsRtValue::Kind::Num:
    return Val::number(D::constant(V.Num));
  case CpsRtValue::Kind::Inck:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::inck()));
  case CpsRtValue::Kind::Deck:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::deck()));
  case CpsRtValue::Kind::Closure:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::lam(V.Lam)));
  case CpsRtValue::Kind::Cont:
    return Val::konts(domain::KontSet::single(domain::KontRef::cont(V.Cont)));
  case CpsRtValue::Kind::Stop:
    return Val::konts(domain::KontSet::single(domain::KontRef::stop()));
  }
  return Val::bot();
}

/// Abstract initial bindings matching the concrete integer bindings.
template <typename D>
std::vector<DirectBinding<D>>
absBindings(const syntax::Term *T, const std::vector<int64_t> &Ints) {
  std::vector<DirectBinding<D>> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(DirectBinding<D>{
        S, domain::AbsVal<D>::number(D::constant(V))});
  }
  return Out;
}

template <typename D>
std::vector<CpsBinding<D>>
absCpsBindings(const syntax::Term *T, const std::vector<int64_t> &Ints) {
  std::vector<CpsBinding<D>> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(CpsBinding<D>{
        S, domain::CpsAbsVal<D>::number(D::constant(V))});
  }
  return Out;
}

/// Runs all the soundness checks for one program under domain D.
template <typename D>
void checkSoundness(Context &Ctx, const syntax::Term *T,
                    const std::vector<int64_t> &Ints) {
  RunLimits Limits;
  Limits.MaxSteps = 200000;

  // --- Concrete runs.
  DirectInterp CI(Limits);
  RunResult CR = CI.run(T, intBindings(T, Ints));

  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());
  SyntacticCpsInterp CCI(Limits);
  CpsRunResult CCR = CCI.run(*P, intCpsBindings(T, Ints));

  // --- Abstract runs.
  AnalyzerOptions Opts;
  Opts.MaxGoals = 2'000'000;
  DirectResult<D> AD =
      DirectAnalyzer<D>(Ctx, T, absBindings<D>(T, Ints), Opts).run();
  SemanticResult<D> AS =
      SemanticCpsAnalyzer<D>(Ctx, T, absBindings<D>(T, Ints), Opts).run();
  SyntacticResult<D> AC =
      SyntacticCpsAnalyzer<D>(Ctx, *P, absCpsBindings<D>(T, Ints), Opts)
          .run();

  if (AD.Stats.BudgetExhausted || AS.Stats.BudgetExhausted ||
      AC.Stats.BudgetExhausted)
    return;

  std::string Prog = syntax::print(Ctx, T);

  // --- Value soundness.
  if (CR.ok()) {
    EXPECT_TRUE(domain::AbsVal<D>::leq(alpha<D>(CR.Value), AD.Answer.Value))
        << Prog << "\n direct value " << str(Ctx, CR.Value) << " not below "
        << AD.Answer.Value.str(Ctx);
    EXPECT_TRUE(domain::AbsVal<D>::leq(alpha<D>(CR.Value), AS.Answer.Value))
        << Prog << " (semantic)";
  }
  if (CCR.ok())
    EXPECT_TRUE(
        domain::CpsAbsVal<D>::leq(alphaCps<D>(CCR.Value), AC.Answer.Value))
        << Prog << " (syntactic)";

  // --- Store soundness: every concrete cell is covered by the final
  // abstract store entry of its variable.
  if (CR.ok()) {
    for (const auto &Cell : CI.store().cells()) {
      EXPECT_TRUE(
          domain::AbsVal<D>::leq(alpha<D>(Cell.Value), AD.valueOf(Cell.Var)))
          << Prog << "\n direct store at " << Ctx.spelling(Cell.Var);
      EXPECT_TRUE(
          domain::AbsVal<D>::leq(alpha<D>(Cell.Value), AS.valueOf(Cell.Var)))
          << Prog << "\n semantic store at " << Ctx.spelling(Cell.Var);
    }
  }
  if (CCR.ok())
    for (const auto &Cell : CCI.store().cells())
      EXPECT_TRUE(domain::CpsAbsVal<D>::leq(alphaCps<D>(Cell.Value),
                                            AC.valueOf(Cell.Var)))
          << Prog << "\n cps store at " << Ctx.spelling(Cell.Var);

  // --- Theorem 5.4: semantic at least as precise as direct.
  std::vector<Symbol> Vars = syntax::collectVariables(T);
  Comparison C54 = compareDirectWorld<D>(Ctx, AS, AD, Vars);
  EXPECT_TRUE(C54.Overall == PrecisionOrder::Equal ||
              C54.Overall == PrecisionOrder::LeftMorePrecise)
      << Prog << "\n 5.4 violated: " << str(C54.Overall);

  // --- Theorem 5.5: semantic at least as precise as syntactic. The
  // theorem concerns the ideal analyses; the *terminating* versions can
  // violate the store half of the relation on recursive programs, because
  // the Section 4.4 cut value is delivered to the continuation in the
  // semantic analyzer (binding downstream variables to top) but returned
  // as the goal answer in the syntactic one (leaving its store alone) —
  // e.g. omega, where the syntactic analysis keeps r = bottom exactly.
  // So the full check is scoped to cut-free runs; under cuts we still
  // require the answer-value half.
  Comparison C55 = compareWithSyntactic<D>(Ctx, AS, AC, *P, Vars);
  if (AS.Stats.Cuts == 0 && AC.Stats.Cuts == 0) {
    EXPECT_TRUE(C55.Overall == PrecisionOrder::Equal ||
                C55.Overall == PrecisionOrder::LeftMorePrecise)
        << Prog << "\n 5.5 violated: " << str(C55.Overall);
  } else {
    EXPECT_TRUE(C55.OnValue == PrecisionOrder::Equal ||
                C55.OnValue == PrecisionOrder::LeftMorePrecise)
        << Prog << "\n 5.5 (value) violated under cuts: "
        << str(C55.OnValue);
  }

  // --- Theorem 5.4 equality under a distributive analysis: with no loop
  // cut-offs and no dead paths involved, the unit-domain analyses must
  // coincide. (Dead paths break exact equality: the direct analysis keeps
  // a dead path's store effects up to the point of death while the
  // per-path analysis drops the whole path; see DESIGN.md section 7.)
  // Value-dependent branch pruning (if0 of a closure-only value) is a
  // further non-distributive ingredient, so the equality check also
  // requires PrunedBranches == 0 under the unit domain.
  if (std::is_same_v<D, domain::UnitDomain> && AD.Stats.Cuts == 0 &&
      AS.Stats.Cuts == 0 && AD.Stats.DeadPaths == 0 &&
      AS.Stats.DeadPaths == 0 && AD.Stats.PrunedBranches == 0 &&
      AS.Stats.PrunedBranches == 0)
    EXPECT_EQ(C54.Overall, PrecisionOrder::Equal) << Prog;
}

template <typename D> void sweep(uint64_t Seed) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = Seed;
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 25; ++I) {
    const syntax::Term *T = Gen.generate();
    checkSoundness<D>(Ctx, T, {0, 3});
  }
}

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessSweep, ConstantDomain) {
  sweep<domain::ConstantDomain>(GetParam());
}
TEST_P(SoundnessSweep, UnitDomain) { sweep<domain::UnitDomain>(GetParam()); }
TEST_P(SoundnessSweep, SignDomain) { sweep<domain::SignDomain>(GetParam()); }
TEST_P(SoundnessSweep, ParityDomain) {
  sweep<domain::ParityDomain>(GetParam());
}
TEST_P(SoundnessSweep, IntervalDomain) {
  sweep<domain::IntervalDomain>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Soundness, WorkloadFamilies) {
  Context Ctx;
  for (Witness W : {gen::conditionalChain(Ctx, 4), gen::closureTower(Ctx, 4),
                    gen::counterLoop(Ctx, 3), gen::omega(Ctx)})
    checkSoundness<domain::ConstantDomain>(Ctx, W.Anf, {0, 1});
}

TEST(Soundness, RecursiveProgramsTerminateAbstractly) {
  // The Section 4.4 cut keeps the analyses terminating on divergent and
  // recursive programs.
  Context Ctx;
  Witness W = gen::omega(Ctx);
  using D = domain::ConstantDomain;
  DirectResult<D> R = DirectAnalyzer<D>(Ctx, W.Anf).run();
  EXPECT_GT(R.Stats.Cuts, 0u);
  EXPECT_FALSE(R.Stats.BudgetExhausted);

  SemanticResult<D> S = SemanticCpsAnalyzer<D>(Ctx, W.Anf).run();
  EXPECT_GT(S.Stats.Cuts, 0u);
  EXPECT_FALSE(S.Stats.BudgetExhausted);

  SyntacticResult<D> C = SyntacticCpsAnalyzer<D>(Ctx, W.Cps).run();
  EXPECT_GT(C.Stats.Cuts, 0u);
  EXPECT_FALSE(C.Stats.BudgetExhausted);
}

} // namespace
