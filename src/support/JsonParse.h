//===- support/JsonParse.h - Minimal JSON reader ----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser — the read half of
/// support/Json.h. Consumers are tools/bench_diff (comparing two batch
/// reports) and the tests that assert our own emitters (batch reports,
/// Chrome traces) produce valid, well-shaped JSON.
///
/// Scope: full JSON syntax, numbers as double (every number we emit fits
/// exactly or is a timing), object keys kept in document order,
/// \uXXXX escapes decoded to UTF-8 (surrogate pairs combined; lone
/// surrogates and overflowing numerals rejected). Depth-capped to keep
/// hostile inputs from overflowing the stack.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_JSONPARSE_H
#define CPSFLOW_SUPPORT_JSONPARSE_H

#include "support/Result.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cpsflow {

/// A parsed JSON document node.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static JsonValue number(double N) {
    JsonValue V;
    V.K = Kind::Number;
    V.Num = N;
    return V;
  }
  static JsonValue string(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &items() const { return Items; }
  std::vector<JsonValue> &items() { return Items; }

  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  std::vector<std::pair<std::string, JsonValue>> &members() {
    return Members;
  }

  /// First member named \p Name, or null if absent (objects only).
  const JsonValue *find(std::string_view Name) const {
    for (const auto &[Key, Val] : Members)
      if (Key == Name)
        return &Val;
    return nullptr;
  }

  /// Convenience: numeric member \p Name, or \p Default when absent or
  /// not a number.
  double numberOr(std::string_view Name, double Default) const {
    const JsonValue *V = find(Name);
    return V && V->isNumber() ? V->asNumber() : Default;
  }

private:
  Kind K;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parser knobs. The depth cap bounds the recursive descent so hostile
/// deeply-nested input ("[[[[...") returns a parse error instead of
/// overflowing the native stack; servers reading untrusted request
/// bodies may want it lower still.
struct JsonParseOptions {
  unsigned MaxDepth = 256;
};

namespace json_detail {

class Parser {
public:
  explicit Parser(std::string_view Text, JsonParseOptions Opts)
      : Text(Text), MaxDepth(Opts.MaxDepth) {}

  Result<JsonValue> parse() {
    skipWs();
    Result<JsonValue> V = parseValue(0);
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return err("trailing content after JSON value");
    return V;
  }

private:
  Error err(const std::string &Message) const {
    return Error("JSON parse error at offset " + std::to_string(Pos) +
                 ": " + Message);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return err("nesting too deep (cap " + std::to_string(MaxDepth) + ")");
    if (Pos >= Text.size())
      return err("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"': {
      Result<std::string> S = parseString();
      if (!S)
        return S.error();
      return JsonValue::string(std::move(*S));
    }
    case 't':
      if (consumeWord("true"))
        return JsonValue::boolean(true);
      return err("invalid literal");
    case 'f':
      if (consumeWord("false"))
        return JsonValue::boolean(false);
      return err("invalid literal");
    case 'n':
      if (consumeWord("null"))
        return JsonValue::null();
      return err("invalid literal");
    default:
      return parseNumber();
    }
  }

  Result<JsonValue> parseObject(unsigned Depth) {
    consume('{');
    JsonValue O = JsonValue::object();
    skipWs();
    if (consume('}'))
      return O;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected object key");
      Result<std::string> Key = parseString();
      if (!Key)
        return Key.error();
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      skipWs();
      Result<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      O.members().emplace_back(std::move(*Key), std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return O;
      return err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parseArray(unsigned Depth) {
    consume('[');
    JsonValue A = JsonValue::array();
    skipWs();
    if (consume(']'))
      return A;
    for (;;) {
      skipWs();
      Result<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      A.items().push_back(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return A;
      return err("expected ',' or ']' in array");
    }
  }

  Result<std::string> parseString() {
    consume('"');
    std::string S;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return S;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return err("unescaped control character in string");
      if (C != '\\') {
        S.push_back(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        S.push_back(E);
        break;
      case 'b':
        S.push_back('\b');
        break;
      case 'f':
        S.push_back('\f');
        break;
      case 'n':
        S.push_back('\n');
        break;
      case 'r':
        S.push_back('\r');
        break;
      case 't':
        S.push_back('\t');
        break;
      case 'u': {
        uint32_t Code = 0;
        if (!parseHex4(Code))
          return err("invalid \\u escape");
        // Surrogate pair: a high surrogate must be followed by a \uXXXX
        // low surrogate, and the pair decodes to one supplementary code
        // point. Anything else in the surrogate range is malformed input
        // (emitting it raw would produce invalid UTF-8/CESU-8).
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (!consume('\\') || !consume('u'))
            return err("unpaired surrogate in \\u escape");
          uint32_t Low = 0;
          if (!parseHex4(Low))
            return err("invalid \\u escape");
          if (Low < 0xDC00 || Low > 0xDFFF)
            return err("unpaired surrogate in \\u escape");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return err("unpaired surrogate in \\u escape");
        }
        appendUtf8(S, Code);
        break;
      }
      default:
        return err("unknown escape character");
      }
    }
    return err("unterminated string");
  }

  /// Reads exactly four hex digits into \p Code. False on truncation or
  /// a non-hex character (Pos is left mid-escape; the caller errors out).
  bool parseHex4(uint32_t &Code) {
    if (Pos + 4 > Text.size())
      return false;
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<uint32_t>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<uint32_t>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<uint32_t>(H - 'A' + 10);
      else
        return false;
    }
    return true;
  }

  static void appendUtf8(std::string &S, uint32_t Code) {
    if (Code < 0x80) {
      S.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      S.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      S.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      S.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  Result<JsonValue> parseNumber() {
    size_t Start = Pos;
    // JSON forbids a leading '+' (strtod below would accept it).
    if (Pos < Text.size() && Text[Pos] == '+')
      return err("expected a value");
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return err("expected a value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return err("malformed number '" + Num + "'");
    // Overflowing literals (1e999) would otherwise flow downstream as
    // infinities and poison report arithmetic.
    if (!std::isfinite(D))
      return err("number out of range '" + Num + "'");
    return JsonValue::number(D);
  }

  std::string_view Text;
  unsigned MaxDepth;
  size_t Pos = 0;
};

} // namespace json_detail

/// Parses \p Text as one JSON document.
inline Result<JsonValue> parseJson(std::string_view Text,
                                   JsonParseOptions Opts = {}) {
  return json_detail::Parser(Text, Opts).parse();
}

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_JSONPARSE_H
