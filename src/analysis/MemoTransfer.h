//===- analysis/MemoTransfer.h - Cross-run memo export/import ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable form of the direct analyzer's memo table, the transfer unit
/// behind `cpsflow serve` incremental re-analysis (DESIGN.md §14).
///
/// A memo entry of one run is keyed by (term node, store id) — both
/// meaningless outside that run. The portable form re-keys everything by
/// content: terms by their gen::SubtreeDigests structural digest, store
/// slots by the hash of the variable's spelling (A-normalization derives
/// fresh names deterministically from the traversal, so an edit that
/// preserves program shape reproduces the same spellings), and abstract
/// closures by the value digest of their lambda. An importing run rebinds
/// the digests to its own nodes and replays an entry only when the
/// fingerprint recorded here matches its current goal exactly:
///
///  * the goal term's subtree digest equals XferEntry::TermDigest;
///  * every slot the subderivation touched (read through phi or targeted
///    by a store join — Delta is always a subset) holds, in the goal's
///    entry store, exactly the value recorded in Required;
///  * no active ancestor goal with the same entry store is one of the
///    SameStoreTerms (such a goal would be cut by the Section 4.4 rule in
///    a live evaluation, so replaying would change the answer);
///  * the closure universes of the two runs agree (UniverseLamDigests) —
///    cut answers embed CL_T, so a universe change invalidates them; and
///  * analyzer, domain, and governor budgets match (the serve MemoStore
///    keys tables by them; degraded runs are never exported at all).
///
/// Under those conditions the replayed answer — value, store delta, and
/// deadness — is byte-identical to what a live evaluation of the goal
/// would produce (the DESIGN.md §14 exactness argument: agreeing reads
/// force the same control flow and the same join increments; agreeing
/// touched slots force the same store-equality pattern, hence the same
/// memo/cut structure). Entries that fail any check simply fall through
/// to live analysis, like the §12 summary-fingerprint validation.
///
/// The table lives in memory only (the serve MemoStore holds it hot
/// across requests); it is never serialized, so domain elements are kept
/// as their native D::Elem values.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_MEMOTRANSFER_H
#define CPSFLOW_ANALYSIS_MEMOTRANSFER_H

#include "domain/AbsValue.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace cpsflow {

namespace gen {
class SubtreeDigests;
}

namespace analysis {

/// Spelling hash used to name store slots portably. A private convention
/// of the transfer format (export and import just have to agree); kept
/// distinct from gen::textDigest so the two keyspaces cannot be confused.
inline uint64_t xferSpellingHash(std::string_view S) {
  uint64_t H = 0x7c9a2f4b11d3e681ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return mix64(H);
}

/// Portable abstract value: the numeric element verbatim (in-memory
/// transfer, same domain guaranteed by the table key), closures by lambda
/// value digest.
template <typename D> struct XferVal {
  struct Clo {
    uint8_t Tag = 0; ///< domain::CloRef::K
    uint64_t LamDigest = 0;

    friend bool operator==(const Clo &A, const Clo &B) {
      return A.Tag == B.Tag && A.LamDigest == B.LamDigest;
    }
    friend bool operator<(const Clo &A, const Clo &B) {
      return A.Tag != B.Tag ? A.Tag < B.Tag : A.LamDigest < B.LamDigest;
    }
  };

  typename D::Elem Num = D::bot();
  std::vector<Clo> Clos; ///< sorted by (Tag, LamDigest)

  uint64_t hashValue() const {
    uint64_t H = D::hash(Num);
    for (const Clo &C : Clos)
      hashCombine(H, mix64((uint64_t(C.Tag) << 56) ^ C.LamDigest));
    return H;
  }
};

/// One memoized subderivation in portable form. See the file comment for
/// the replay-validity conditions it encodes.
template <typename D> struct XferEntry {
  uint64_t TermDigest = 0;
  bool Dead = false;    ///< answer was the join over zero paths
  bool UsedCut = false; ///< a Section 4.4 cut fired inside (answer embeds CL_T)

  /// (spelling hash, value at the entry store) for every slot the
  /// subderivation read or join-targeted, sorted by hash. The replay
  /// precondition: the importing goal's store holds exactly these values.
  std::vector<std::pair<uint64_t, XferVal<D>>> Required;

  /// Term digests of every inner goal evaluated at the entry store
  /// itself, sorted. Used for the active-ancestor conflict check.
  std::vector<uint64_t> SameStoreTerms;

  /// The answer (meaningless when Dead).
  XferVal<D> AnswerValue;

  /// Slots where the answer store differs from the entry store, with the
  /// answer-store value, sorted by hash. Replay = joinAt over these.
  std::vector<std::pair<uint64_t, XferVal<D>>> Delta;

  /// Content fingerprint for deduplication across merges into the serve
  /// MemoStore. Covers every replay-relevant field.
  uint64_t fingerprint() const {
    uint64_t H = TermDigest;
    hashCombine(H, uint64_t(Dead) | (uint64_t(UsedCut) << 1));
    for (const auto &[S, V] : Required) {
      hashCombine(H, S);
      hashCombine(H, V.hashValue());
    }
    for (uint64_t T : SameStoreTerms)
      hashCombine(H, T);
    hashCombine(H, AnswerValue.hashValue());
    for (const auto &[S, V] : Delta) {
      hashCombine(H, S);
      hashCombine(H, V.hashValue());
    }
    return mix64(H);
  }
};

/// A transferable memo table: the closure-universe fingerprint plus the
/// exported entries. Immutable once published to the serve MemoStore.
template <typename D> struct MemoTable {
  /// Sorted value digests of every lambda in CL_T. Import requires exact
  /// agreement with the importing run's universe.
  std::vector<uint64_t> UniverseLamDigests;
  std::vector<XferEntry<D>> Entries;
};

/// The nullable AnalyzerOptions hook (type-erased: AnalyzerOptions cannot
/// name the domain). Only the direct analyzer reads it; Import/Export
/// must point at MemoTable<D> for the run's own domain D — the serve
/// MemoStore guarantees this by keying tables on the domain name.
struct MemoXfer {
  /// Subtree digests of the run's normalized program (required; a null
  /// or collided table disables transfer for the run).
  const gen::SubtreeDigests *Digests = nullptr;
  /// Table to replay from, or null for an export-only (cold) run.
  const void *Import = nullptr;
  /// Table to fill with this run's exportable entries, or null.
  void *Export = nullptr;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_MEMOTRANSFER_H
