//===- tests/SummaryEquivalenceTests.cpp - Summary exactness ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Continuation summarization is an exact optimization: the syntactic-CPS
/// analyzer must produce bitwise-identical answers (value AND final
/// store) with summaries on or off, and both must match the pinned
/// reference analyzer — on every committed corpus program, in all five
/// numeric domains. The summaries-off leg additionally pins the full
/// work-counter profile (goals, cache hits, cuts, ...), because the flat
/// label-arena IR engine claims observational identity with the original
/// tree walker, not just answer equality.
///
/// A perf smoke test keeps the point of the whole exercise honest: with
/// summaries on, arithmetic.scm — the corpus cliff program — must stay
/// well under the pre-summarization goal count (14,149 at the time this
/// was written).
///
//===----------------------------------------------------------------------===//

#include "analysis/Compare.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "reference/RefSyntacticCpsAnalyzer.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cpsflow;

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Out;
  for (const fs::directory_entry &E : fs::directory_iterator(
           fs::path(CPSFLOW_SOURCE_DIR) / "examples/corpus"))
    if (E.is_regular_file() && E.path().extension() == ".scm")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Both engines on one program/domain: the reference walker, the new
/// analyzer with summaries off (answers and work counters must agree),
/// and with summaries on (answers must agree; the counters then satisfy
/// the accounting identity hits + misses + cacheHits + cuts = goals).
template <typename D> void checkDomain(Context &Ctx, const cps::CpsProgram &P,
                                       const syntax::Term *T) {
  std::vector<analysis::CpsBinding<D>> CInit;
  for (Symbol X : syntax::freeVars(T)) {
    domain::AbsVal<D> V = domain::AbsVal<D>::number(D::top());
    CInit.push_back({X, analysis::deltaE<D>(V, P)});
  }

  analysis::AnalyzerOptions Ref;
  Ref.MaxGoals = 5'000'000;
  auto RefRes = refimpl::RefSyntacticCpsAnalyzer<D>(Ctx, P, CInit, Ref).run();

  analysis::AnalyzerOptions Off = Ref;
  Off.UseSummaries = false;
  auto OffRes = analysis::SyntacticCpsAnalyzer<D>(Ctx, P, CInit, Off).run();
  EXPECT_TRUE(OffRes.Answer == RefRes.Answer)
      << "summaries-off answer/store differs from the reference";
  EXPECT_EQ(OffRes.Stats.Goals, RefRes.Stats.Goals);
  EXPECT_EQ(OffRes.Stats.CacheHits, RefRes.Stats.CacheHits);
  EXPECT_EQ(OffRes.Stats.Cuts, RefRes.Stats.Cuts);
  EXPECT_EQ(OffRes.Stats.MaxDepth, RefRes.Stats.MaxDepth);
  EXPECT_EQ(OffRes.Stats.DeadPaths, RefRes.Stats.DeadPaths);
  EXPECT_EQ(OffRes.Stats.PrunedBranches, RefRes.Stats.PrunedBranches);
  EXPECT_EQ(OffRes.Stats.BudgetExhausted, RefRes.Stats.BudgetExhausted);
  EXPECT_EQ(OffRes.Stats.LoopBounded, RefRes.Stats.LoopBounded);

  analysis::AnalyzerOptions On = Ref;
  On.UseSummaries = true;
  auto OnRes = analysis::SyntacticCpsAnalyzer<D>(Ctx, P, CInit, On).run();
  EXPECT_TRUE(OnRes.Answer == RefRes.Answer)
      << "summarized answer/store differs from the reference";
  // Every counted goal lands in exactly one bucket, except the single
  // goal that trips the governor: it is counted, then answered with a
  // cut before classification (all later goals return pre-count).
  EXPECT_EQ(OnRes.Stats.SummaryHits + OnRes.Stats.SummaryMisses +
                OnRes.Stats.CacheHits + OnRes.Stats.Cuts +
                (OnRes.Stats.BudgetExhausted ? 1 : 0),
            OnRes.Stats.Goals)
      << "summary accounting identity violated";
  EXPECT_LE(OnRes.Stats.Goals, OffRes.Stats.Goals)
      << "summarization must never do MORE work";
}

void checkProgram(const fs::path &Path) {
  SCOPED_TRACE(Path.filename().string());
  Context Ctx;
  Result<const syntax::Term *> Raw =
      syntax::parseSugaredProgram(Ctx, slurp(Path));
  ASSERT_TRUE(Raw.hasValue())
      << (Raw.hasValue() ? "" : Raw.error().str());
  const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());

  checkDomain<domain::ConstantDomain>(Ctx, *P, T);
  checkDomain<domain::UnitDomain>(Ctx, *P, T);
  checkDomain<domain::SignDomain>(Ctx, *P, T);
  checkDomain<domain::ParityDomain>(Ctx, *P, T);
  checkDomain<domain::IntervalDomain>(Ctx, *P, T);
}

TEST(SummaryEquivalence, CorpusAllDomainsOnAndOff) {
  std::vector<fs::path> Files = corpusFiles();
  ASSERT_FALSE(Files.empty());
  for (const fs::path &P : Files)
    checkProgram(P);
}

/// The cliff program. Before summarization + the arena IR the syntactic
/// leg walked 14,149 goals; with summaries on it lands near the
/// exactness floor of ~8,700 (DESIGN.md §12), and this smoke test trips
/// well before a regression could erode the win back to the old cliff.
TEST(SummaryEquivalence, ArithmeticGoalsStayUnderSmokeCeiling) {
  Context Ctx;
  std::string Src =
      slurp(fs::path(CPSFLOW_SOURCE_DIR) / "examples/corpus/arithmetic.scm");
  Result<const syntax::Term *> Raw = syntax::parseSugaredProgram(Ctx, Src);
  ASSERT_TRUE(Raw.hasValue());
  const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());

  using D = domain::ConstantDomain;
  std::vector<analysis::CpsBinding<D>> CInit;
  for (Symbol X : syntax::freeVars(T))
    CInit.push_back(
        {X, analysis::deltaE<D>(domain::AbsVal<D>::number(D::top()), *P)});

  analysis::AnalyzerOptions On;
  On.MaxGoals = 5'000'000;
  On.UseSummaries = true;
  auto R = analysis::SyntacticCpsAnalyzer<D>(Ctx, *P, CInit, On).run();
  EXPECT_FALSE(R.Stats.BudgetExhausted);
  // Measured floor is ~8,700 goals: fixpoint confirmation re-walks
  // read genuinely different accumulator values, and an answer-exact
  // engine may not skip them (DESIGN.md §12). The ceiling guards a
  // wholesale return of the 14,149-goal cliff.
  EXPECT_LE(R.Stats.Goals, 9500u)
      << "the arithmetic.scm syntactic cliff is back";
  EXPECT_GT(R.Stats.SummaryHits, 0u);
}

} // namespace
