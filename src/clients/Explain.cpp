//===- clients/Explain.cpp - Derivation-graph export ----------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// DOT and JSON renderings of a recorded provenance arena (`cpsflow
// explain --graph-out`). Nodes are derivation edges; graph arcs point from
// each node to its parents: the value chain (V1/V2) and, for store
// writes/merges, the event that created each parent store. Formats are
// documented in docs/EXPLAIN.md.
//
//===----------------------------------------------------------------------===//

#include "clients/Explain.h"

#include "support/Json.h"

#include <sstream>

namespace cpsflow {
namespace clients {

namespace {

std::string dotEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

std::string slotName(const domain::VarIndex &Vars, const Context &Ctx,
                     uint32_t Slot) {
  return std::string(Ctx.spelling(Vars.symbolAt(Slot)));
}

std::string locLabel(const domain::ProvEdge &E) {
  if (E.Loc.isValid())
    return E.Loc.str();
  return "node " + std::to_string(E.NodeId);
}

const char *kindColor(domain::EdgeKind K) {
  switch (K) {
  case domain::EdgeKind::Init:
    return "gray70";
  case domain::EdgeKind::Flow:
    return "black";
  case domain::EdgeKind::Join:
    return "orange3";
  case domain::EdgeKind::Cut:
    return "red3";
  case domain::EdgeKind::CallMerge:
    return "purple3";
  case domain::EdgeKind::Widen:
    return "blue3";
  }
  return "black";
}

// Emits one graph arc per parent of \p Id, via \p Arc(child, parent).
template <typename Fn>
void forEachParent(const domain::Provenance &P, domain::ProvId Id,
                   const Fn &Arc) {
  const domain::ProvEdge &E = P.edge(Id);
  if (E.V1 != domain::NoProv)
    Arc(Id, E.V1);
  if (E.V2 != domain::NoProv)
    Arc(Id, E.V2);
  if (E.Base != domain::NoStore)
    if (domain::ProvId O = P.originOf(E.Base); O != domain::NoProv)
      Arc(Id, O);
  if (E.Base2 != domain::NoStore)
    if (domain::ProvId O = P.originOf(E.Base2); O != domain::NoProv)
      Arc(Id, O);
}

} // namespace

std::string provenanceDot(const domain::Provenance &P,
                          const domain::VarIndex &Vars, const Context &Ctx) {
  std::ostringstream Out;
  Out << "digraph provenance {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontsize=10];\n";
  for (domain::ProvId Id = 0; Id < P.size(); ++Id) {
    const domain::ProvEdge &E = P.edge(Id);
    // Escape the variable parts before joining: the "\n" separators are
    // DOT line breaks and must survive unescaped.
    std::string Label = str(E.Kind);
    if (E.Slot != domain::NoSlot)
      Label += " " + dotEscape(slotName(Vars, Ctx, E.Slot));
    Label += "\\n" + dotEscape(locLabel(E));
    if (E.Degrade != support::DegradeReason::None)
      Label += std::string("\\ndegraded: ") + support::str(E.Degrade);
    Out << "  n" << Id << " [label=\"" << Label << "\", color="
        << kindColor(E.Kind) << "];\n";
  }
  for (domain::ProvId Id = 0; Id < P.size(); ++Id)
    forEachParent(P, Id, [&](domain::ProvId Child, domain::ProvId Parent) {
      Out << "  n" << Child << " -> n" << Parent << ";\n";
    });
  Out << "}\n";
  return Out.str();
}

std::string provenanceJson(const domain::Provenance &P,
                           const domain::VarIndex &Vars, const Context &Ctx) {
  JsonWriter W;
  W.beginObject();
  W.key("schemaVersion").value(ProvenanceGraphSchemaVersion);
  W.key("edgeCount").value(static_cast<uint64_t>(P.size()));
  if (P.finalStore() != domain::NoStore)
    W.key("finalStore").value(static_cast<uint64_t>(P.finalStore()));
  W.key("edges").beginArray();
  for (domain::ProvId Id = 0; Id < P.size(); ++Id) {
    const domain::ProvEdge &E = P.edge(Id);
    W.beginObject();
    W.key("id").value(static_cast<uint64_t>(Id));
    W.key("kind").value(str(E.Kind));
    if (E.Slot != domain::NoSlot)
      W.key("var").value(slotName(Vars, Ctx, E.Slot));
    if (E.Result != domain::NoStore)
      W.key("result").value(static_cast<uint64_t>(E.Result));
    if (E.Base != domain::NoStore)
      W.key("base").value(static_cast<uint64_t>(E.Base));
    if (E.Base2 != domain::NoStore)
      W.key("base2").value(static_cast<uint64_t>(E.Base2));
    if (E.V1 != domain::NoProv)
      W.key("v1").value(static_cast<uint64_t>(E.V1));
    if (E.V2 != domain::NoProv)
      W.key("v2").value(static_cast<uint64_t>(E.V2));
    W.key("node").value(static_cast<uint64_t>(E.NodeId));
    W.key("loc").value(E.Loc.isValid() ? E.Loc.str() : std::string());
    if (E.Degrade != support::DegradeReason::None)
      W.key("degraded").value(support::str(E.Degrade));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

} // namespace clients
} // namespace cpsflow
