//===- bench/theorem51.cpp - E1: Theorem 5.1 reproduction -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E1 — regenerates the Theorem 5.1 result: on
/// `(let (a1 (f 1)) (let (a2 (f 2)) a2))` with f bound to the identity
/// closure, the direct analysis determines a1 = 1 while the syntactic-CPS
/// analysis, confusing the two returns of f, loses all information about
/// a1. Paper reference values: direct sigma1 = {a1 -> (1,{}), a2 ->
/// (T,{}), x -> (T,{})}, u1 = (T,{}); CPS u2 = (T, CL_T, K_T), sigma2(a1)
/// = (T, {}, {}).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "cps/Transform.h"
#include "syntax/Printer.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

int main() {
  Context Ctx;
  Witness W = theorem51(Ctx);
  Trio T = runTrio(Ctx, W);

  printHeader("E1: Theorem 5.1 — direct vs syntactic-CPS (false returns)");
  std::printf("program: %s\n", syntax::print(Ctx, W.Anf).c_str());
  std::printf("cps:     %s\n", cps::printCps(Ctx, W.Cps.Root).c_str());
  std::printf("initial store: f -> (_|_, {(cle x, x)})\n\n");

  std::printf("  var    | direct       | semantic     | syntactic\n");
  std::printf("  -------+--------------+--------------+----------\n");
  for (Symbol X : W.InterestingVars)
    printVarRow(Ctx, T, X);

  std::printf("\nanswer values:\n");
  std::printf("  direct:    %s\n", T.Direct.Answer.Value.str(Ctx).c_str());
  std::printf("  syntactic: %s\n",
              T.Syntactic.Answer.Value.str(Ctx).c_str());

  Comparison C = compareWithSyntactic<CD>(Ctx, T.Direct, T.Syntactic, W.Cps,
                                          W.InterestingVars);
  std::printf("\npaper expectation: direct strictly more precise; "
              "measured: %s\n",
              str(C.Overall));
  std::printf("expected a1: direct (1, {}) vs cps (T, {}, {}); measured: "
              "%s vs %s\n",
              T.Direct.valueOf(Ctx.intern("a1")).str(Ctx).c_str(),
              T.Syntactic.valueOf(Ctx.intern("a1")).str(Ctx).c_str());

  int FalseReturns = 0;
  for (const auto &[Ret, Konts] : T.Syntactic.Cfg.Returns)
    if (Konts.size() > 1)
      ++FalseReturns;
  std::printf("false returns detected in the CPS control flow graph: %d "
              "(expected: 1)\n",
              FalseReturns);
  return 0;
}
