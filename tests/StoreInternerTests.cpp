//===- tests/StoreInternerTests.cpp - Hash-consed stores --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for domain::StoreInterner: canonicalization (equal stores
/// get equal ids), the copy-on-write joinAt fast path, agreement between
/// the incremental hash patch and the full-store hash, and the join fast
/// paths.
///
//===----------------------------------------------------------------------===//

#include "domain/AbsValue.h"
#include "domain/NumDomain.h"
#include "domain/StoreInterner.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::domain;
using CD = ConstantDomain;
using Val = AbsVal<CD>;
using Interner = StoreInterner<Val>;
using StoreT = AbsStore<Val>;

namespace {

Val num(int64_t N) { return Val::number(CD::constant(N)); }

TEST(StoreInterner, BottomIsIdZero) {
  Interner In;
  In.reset(4);
  EXPECT_EQ(In.bottom(), 0u);
  EXPECT_EQ(In.size(), 1u);
  EXPECT_EQ(In.store(In.bottom()), StoreT(4));
}

TEST(StoreInterner, EqualStoresGetEqualIds) {
  Interner In;
  In.reset(3);
  StoreT A(3), B(3);
  A.set(1, num(7));
  B.set(1, num(7));
  StoreId IdA = In.intern(A);
  StoreId IdB = In.intern(B);
  EXPECT_EQ(IdA, IdB);
  EXPECT_EQ(In.size(), 2u); // bottom + one distinct store

  StoreT C(3);
  C.set(1, num(8));
  EXPECT_NE(In.intern(C), IdA);
  EXPECT_EQ(In.size(), 3u);
}

TEST(StoreInterner, JoinAtIsCopyOnWrite) {
  Interner In;
  In.reset(3);
  StoreId Base = In.joinAt(In.bottom(), 0, num(5));
  EXPECT_NE(Base, In.bottom());

  // A join that does not move the slot must return the parent id with no
  // new entry interned.
  size_t Before = In.size();
  EXPECT_EQ(In.joinAt(Base, 0, num(5)), Base);
  EXPECT_EQ(In.joinAt(Base, 0, Val::bot()), Base);
  EXPECT_EQ(In.size(), Before);

  // A moving join produces a new id whose dense store is the expected
  // slot-wise join (5 join 6 = numeric top in the constant domain).
  StoreId Moved = In.joinAt(Base, 0, num(6));
  EXPECT_NE(Moved, Base);
  EXPECT_EQ(In.get(Moved, 0), Val::number(CD::top()));
  // ... and the parent is untouched.
  EXPECT_EQ(In.get(Base, 0), num(5));
}

TEST(StoreInterner, IncrementalHashMatchesFullHash) {
  // Reaching the same store by joinAt chains (incremental hash) and by
  // interning the dense store (full hash) must collapse to one id — this
  // is what the Dedup set's hash lookup relies on.
  Interner In;
  In.reset(8);
  StoreId Cur = In.bottom();
  StoreT Dense(8);
  for (uint32_t I = 0; I < 8; ++I) {
    Cur = In.joinAt(Cur, I, num(static_cast<int64_t>(I)));
    Dense.set(I, num(static_cast<int64_t>(I)));
  }
  EXPECT_EQ(In.intern(Dense), Cur);
  EXPECT_EQ(In.hashOf(Cur), In.hashOf(In.intern(Dense)));
}

TEST(StoreInterner, JoinFastPaths) {
  Interner In;
  In.reset(2);
  StoreId A = In.joinAt(In.bottom(), 0, num(1));
  StoreId B = In.joinAt(In.bottom(), 1, num(2));

  EXPECT_EQ(In.join(A, A), A);
  EXPECT_EQ(In.join(A, In.bottom()), A);
  EXPECT_EQ(In.join(In.bottom(), B), B);

  StoreId AB = In.join(A, B);
  EXPECT_EQ(In.get(AB, 0), num(1));
  EXPECT_EQ(In.get(AB, 1), num(2));
  // Joining is idempotent and canonical: recomputing gives the same id.
  EXPECT_EQ(In.join(A, B), AB);
  EXPECT_EQ(In.join(B, A), AB);
}

TEST(StoreInterner, ResetClearsTheUniverse) {
  Interner In;
  In.reset(2);
  In.joinAt(In.bottom(), 0, num(1));
  EXPECT_EQ(In.size(), 2u);
  In.reset(5);
  EXPECT_EQ(In.size(), 1u);
  EXPECT_EQ(In.bottom(), 0u);
  EXPECT_EQ(In.store(In.bottom()).size(), 5u);
}

} // namespace
