
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anf/Anf.cpp" "src/anf/CMakeFiles/cpsflow_anf.dir/Anf.cpp.o" "gcc" "src/anf/CMakeFiles/cpsflow_anf.dir/Anf.cpp.o.d"
  "/root/repo/src/anf/Reductions.cpp" "src/anf/CMakeFiles/cpsflow_anf.dir/Reductions.cpp.o" "gcc" "src/anf/CMakeFiles/cpsflow_anf.dir/Reductions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/cpsflow_syntax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
