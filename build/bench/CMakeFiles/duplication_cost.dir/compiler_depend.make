# Empty compiler generated dependencies file for duplication_cost.
# This may be replaced when dependencies are built.
