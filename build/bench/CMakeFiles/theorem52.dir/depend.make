# Empty dependencies file for theorem52.
# This may be replaced when dependencies are built.
