# Empty dependencies file for cpsflow_anf.
# This may be replaced when dependencies are built.
