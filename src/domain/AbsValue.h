//===- domain/AbsValue.h - Abstract values ----------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract value lattices of Section 4.2.
///
/// For the direct and semantic-CPS analyses, an abstract value is a pair
/// from the product of the numeric lattice and the powerset of abstract
/// closures:
///
/// \code
///   Val_e = N^ x P(Clo_e)
/// \endcode
///
/// For the syntactic-CPS analysis, a triple that additionally carries the
/// powerset of abstract continuations:
///
/// \code
///   Val_s = N^ x P(Clo_e) x P(Con_e)
/// \endcode
///
/// Ordering and join are component-wise.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_ABSVALUE_H
#define CPSFLOW_DOMAIN_ABSVALUE_H

#include "domain/NumDomain.h"
#include "domain/Refs.h"
#include "domain/SortedSet.h"

#include <string>

namespace cpsflow {
namespace domain {

using CloSet = SortedSet<CloRef>;
using CpsCloSet = SortedSet<CpsCloRef>;
using KontSet = SortedSet<KontRef>;

/// An abstract value of the direct / semantic-CPS analyses.
template <typename D> struct AbsVal {
  typename D::Elem Num = D::bot();
  CloSet Clos;

  static AbsVal bot() { return AbsVal(); }

  static AbsVal number(typename D::Elem E) {
    AbsVal V;
    V.Num = E;
    return V;
  }

  static AbsVal closures(CloSet S) {
    AbsVal V;
    V.Clos = std::move(S);
    return V;
  }

  bool isBot() const { return D::leq(Num, D::bot()) && Clos.empty(); }

  static AbsVal join(const AbsVal &A, const AbsVal &B) {
    AbsVal V;
    V.Num = D::join(A.Num, B.Num);
    V.Clos = CloSet::join(A.Clos, B.Clos);
    return V;
  }

  static bool leq(const AbsVal &A, const AbsVal &B) {
    return D::leq(A.Num, B.Num) && CloSet::leq(A.Clos, B.Clos);
  }

  friend bool operator==(const AbsVal &A, const AbsVal &B) {
    return A.Num == B.Num && A.Clos == B.Clos;
  }
  friend bool operator!=(const AbsVal &A, const AbsVal &B) {
    return !(A == B);
  }

  uint64_t hashValue() const {
    uint64_t H = D::hash(Num);
    hashCombine(H, Clos.hashValue());
    return H;
  }

  std::string str(const Context &Ctx) const {
    std::string Out = "(" + D::str(Num) + ", {";
    bool First = true;
    for (const CloRef &C : Clos) {
      if (!First)
        Out += ", ";
      Out += C.str(Ctx);
      First = false;
    }
    return Out + "})";
  }
};

/// An abstract value of the syntactic-CPS analysis.
template <typename D> struct CpsAbsVal {
  typename D::Elem Num = D::bot();
  CpsCloSet Clos;
  KontSet Konts;

  static CpsAbsVal bot() { return CpsAbsVal(); }

  static CpsAbsVal number(typename D::Elem E) {
    CpsAbsVal V;
    V.Num = E;
    return V;
  }

  static CpsAbsVal closures(CpsCloSet S) {
    CpsAbsVal V;
    V.Clos = std::move(S);
    return V;
  }

  static CpsAbsVal konts(KontSet S) {
    CpsAbsVal V;
    V.Konts = std::move(S);
    return V;
  }

  bool isBot() const {
    return D::leq(Num, D::bot()) && Clos.empty() && Konts.empty();
  }

  static CpsAbsVal join(const CpsAbsVal &A, const CpsAbsVal &B) {
    CpsAbsVal V;
    V.Num = D::join(A.Num, B.Num);
    V.Clos = CpsCloSet::join(A.Clos, B.Clos);
    V.Konts = KontSet::join(A.Konts, B.Konts);
    return V;
  }

  static bool leq(const CpsAbsVal &A, const CpsAbsVal &B) {
    return D::leq(A.Num, B.Num) && CpsCloSet::leq(A.Clos, B.Clos) &&
           KontSet::leq(A.Konts, B.Konts);
  }

  friend bool operator==(const CpsAbsVal &A, const CpsAbsVal &B) {
    return A.Num == B.Num && A.Clos == B.Clos && A.Konts == B.Konts;
  }
  friend bool operator!=(const CpsAbsVal &A, const CpsAbsVal &B) {
    return !(A == B);
  }

  uint64_t hashValue() const {
    uint64_t H = D::hash(Num);
    hashCombine(H, Clos.hashValue());
    hashCombine(H, Konts.hashValue());
    return H;
  }

  std::string str(const Context &Ctx) const {
    std::string Out = "(" + D::str(Num) + ", {";
    bool First = true;
    for (const CpsCloRef &C : Clos) {
      if (!First)
        Out += ", ";
      Out += C.str(Ctx);
      First = false;
    }
    Out += "}, {";
    First = true;
    for (const KontRef &K : Konts) {
      if (!First)
        Out += ", ";
      Out += K.str(Ctx);
      First = false;
    }
    return Out + "})";
  }
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_ABSVALUE_H
