//===- tests/InterpTests.cpp - Concrete interpreter tests -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"

#include "TestUtil.h"
#include "anf/Anf.h"
#include "cps/Transform.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::interp;
using cpsflow::test::intBindings;
using cpsflow::test::mustParse;

namespace {

int64_t evalNum(Context &Ctx, const std::string &Text,
                std::vector<InitialBinding> Init = {}) {
  DirectInterp I;
  RunResult R = I.run(mustParse(Ctx, Text), Init);
  EXPECT_TRUE(R.ok()) << Text << ": " << R.Message;
  EXPECT_TRUE(R.Value.isNum()) << Text;
  return R.Value.Num;
}

RunStatus evalStatus(Context &Ctx, const std::string &Text,
                     RunLimits Limits = RunLimits()) {
  DirectInterp I(Limits);
  return I.run(mustParse(Ctx, Text)).Status;
}

//===----------------------------------------------------------------------===//
// Direct interpreter (Figure 1)
//===----------------------------------------------------------------------===//

TEST(DirectInterp, Numerals) {
  Context Ctx;
  EXPECT_EQ(evalNum(Ctx, "42"), 42);
  EXPECT_EQ(evalNum(Ctx, "-3"), -3);
}

TEST(DirectInterp, Primitives) {
  Context Ctx;
  EXPECT_EQ(evalNum(Ctx, "(add1 1)"), 2);
  EXPECT_EQ(evalNum(Ctx, "(sub1 0)"), -1);
  EXPECT_EQ(evalNum(Ctx, "(add1 (sub1 7))"), 7);
}

TEST(DirectInterp, LetBindsCallByValue) {
  Context Ctx;
  EXPECT_EQ(evalNum(Ctx, "(let (x (add1 1)) (add1 x))"), 3);
  EXPECT_EQ(evalNum(Ctx, "(let (x 1) (let (x (add1 x)) x))"), 2);
}

TEST(DirectInterp, If0BranchesOnZero) {
  Context Ctx;
  EXPECT_EQ(evalNum(Ctx, "(if0 0 10 20)"), 10);
  EXPECT_EQ(evalNum(Ctx, "(if0 5 10 20)"), 20);
  // A closure is "not 0": else branch.
  EXPECT_EQ(evalNum(Ctx, "(if0 (lambda (x) x) 10 20)"), 20);
}

TEST(DirectInterp, UserProcedures) {
  Context Ctx;
  EXPECT_EQ(evalNum(Ctx, "((lambda (x) (add1 x)) 4)"), 5);
  EXPECT_EQ(evalNum(Ctx, "(((lambda (x) (lambda (y) x)) 1) 2)"), 1);
}

TEST(DirectInterp, LexicalScoping) {
  Context Ctx;
  // The closure captures x = 1, not the later x = 9.
  EXPECT_EQ(evalNum(Ctx, "(let (x 1) (let (f (lambda (y) x)) "
                         "(let (x2 9) (f x2))))"),
            1);
}

TEST(DirectInterp, InitialBindings) {
  Context Ctx;
  const syntax::Term *T = mustParse(Ctx, "(add1 z)");
  DirectInterp I;
  RunResult R = I.run(
      T, {InitialBinding{Ctx.intern("z"), RtValue::number(41)}});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 42);
}

TEST(DirectInterp, StuckCases) {
  Context Ctx;
  EXPECT_EQ(evalStatus(Ctx, "(1 2)"), RunStatus::Stuck);
  EXPECT_EQ(evalStatus(Ctx, "(add1 (lambda (x) x))"), RunStatus::Stuck);
  EXPECT_EQ(evalStatus(Ctx, "unbound"), RunStatus::Stuck);
}

TEST(DirectInterp, OmegaRunsOutOfFuel) {
  Context Ctx;
  RunLimits Limits;
  Limits.MaxSteps = 10000;
  EXPECT_EQ(evalStatus(Ctx, "((lambda (x) (x x)) (lambda (x2) (x2 x2)))",
                       Limits),
            RunStatus::OutOfFuel);
}

TEST(DirectInterp, LoopDiverges) {
  Context Ctx;
  EXPECT_EQ(evalStatus(Ctx, "(let (x (loop)) x)"), RunStatus::Diverged);
}

TEST(DirectInterp, StoreRecordsPerVariableHistory) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (f (lambda (p) p)) (let (a (f 1)) (let (b (f 2)) b)))");
  DirectInterp I;
  RunResult R = I.run(T);
  ASSERT_TRUE(R.ok());
  // p was allocated twice: once per invocation (Section 2: "the bound
  // variable ... is related to different locations, one per invocation").
  std::vector<RtValue> Ps = I.store().valuesAt(Ctx.intern("p"));
  ASSERT_EQ(Ps.size(), 2u);
  EXPECT_EQ(Ps[0].Num, 1);
  EXPECT_EQ(Ps[1].Num, 2);
}

TEST(DirectInterp, ClosureValuesSurviveAsAnswers) {
  Context Ctx;
  DirectInterp I;
  RunResult R = I.run(mustParse(Ctx, "(lambda (x) x)"));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Value.isClosure());
}

//===----------------------------------------------------------------------===//
// Semantic-CPS machine (Figure 2)
//===----------------------------------------------------------------------===//

RunResult runSemantic(Context &Ctx, const std::string &Text,
                      std::vector<InitialBinding> Init = {}) {
  const syntax::Term *T = mustParse(Ctx, Text);
  EXPECT_TRUE(anf::isAnfQuick(T)) << "test program must be ANF";
  SemanticCpsInterp I;
  return I.run(T, Init);
}

TEST(SemanticCpsInterp, EvaluatesAnfPrograms) {
  Context Ctx;
  RunResult R = runSemantic(
      Ctx, "(let (f (lambda (x) (let (r (add1 x)) r))) (let (a (f 4)) a))");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 5);
}

TEST(SemanticCpsInterp, ConditionalPushesAFrame) {
  Context Ctx;
  RunResult R = runSemantic(
      Ctx, "(let (a (if0 0 (let (t (add1 1)) t) 9)) (let (b (add1 a)) b))");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 3);
}

TEST(SemanticCpsInterp, TracksKontDepth) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (f (lambda (x) (let (r (add1 x)) r))) "
           "(let (a (f 1)) (let (b (f a)) b)))");
  SemanticCpsInterp I;
  RunResult R = I.run(T);
  ASSERT_TRUE(R.ok());
  EXPECT_GE(I.maxKontDepth(), 1u);
}

TEST(SemanticCpsInterp, StuckAndDivergedMirrorsDirect) {
  Context Ctx;
  EXPECT_EQ(runSemantic(Ctx, "(let (a (1 2)) a)").Status, RunStatus::Stuck);
  EXPECT_EQ(runSemantic(Ctx, "(let (x (loop)) x)").Status,
            RunStatus::Diverged);
}

//===----------------------------------------------------------------------===//
// Syntactic-CPS machine (Figure 3)
//===----------------------------------------------------------------------===//

CpsRunResult runSyntactic(Context &Ctx, const std::string &Text) {
  const syntax::Term *T = mustParse(Ctx, Text);
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  EXPECT_TRUE(P.hasValue());
  SyntacticCpsInterp I;
  return I.run(*P);
}

TEST(SyntacticCpsInterp, EvaluatesTransformedPrograms) {
  Context Ctx;
  CpsRunResult R = runSyntactic(
      Ctx, "(let (f (lambda (x) (let (r (add1 x)) r))) (let (a (f 4)) a))");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.Value.Num, 5);
}

TEST(SyntacticCpsInterp, ConditionalsAndPrims) {
  Context Ctx;
  CpsRunResult R = runSyntactic(
      Ctx,
      "(let (a (if0 0 (let (t (add1 1)) t) 9)) (let (b (add1 a)) b))");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 3);
}

TEST(SyntacticCpsInterp, StoresContinuationsInTheHeap) {
  Context Ctx;
  const syntax::Term *T =
      mustParse(Ctx, "(let (a (if0 0 1 2)) (let (b (add1 a)) b))");
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());
  SyntacticCpsInterp I;
  CpsRunResult R = I.run(*P);
  ASSERT_TRUE(R.ok());
  // The if0 allocated its join continuation under the fresh KVar.
  bool FoundKont = false;
  for (const auto &Cell : I.store().cells())
    if (Cell.Value.Tag == CpsRtValue::Kind::Cont ||
        Cell.Value.Tag == CpsRtValue::Kind::Stop)
      FoundKont = true;
  EXPECT_TRUE(FoundKont);
}

TEST(SyntacticCpsInterp, StuckAndDiverged) {
  Context Ctx;
  EXPECT_EQ(runSyntactic(Ctx, "(let (a (1 2)) a)").Status,
            RunStatus::Stuck);
  EXPECT_EQ(runSyntactic(Ctx, "(let (x (loop)) x)").Status,
            RunStatus::Diverged);
}

TEST(RuntimeStr, RendersValues) {
  Context Ctx;
  EXPECT_EQ(str(Ctx, RtValue::number(7)), "7");
  EXPECT_EQ(str(Ctx, RtValue::inc()), "inc");
  EXPECT_EQ(str(Ctx, CpsRtValue::stop()), "stop");
  EXPECT_EQ(str(Ctx, CpsRtValue::deck()), "deck");
}

} // namespace

namespace {

TEST(Tracing, AllThreeMachinesRecordTransitions) {
  Context Ctx;
  const syntax::Term *T =
      mustParse(Ctx, "(let (a (add1 1)) (let (b (if0 a 1 2)) b))");

  DirectInterp D;
  D.enableTrace(Ctx);
  ASSERT_TRUE(D.run(T).ok());
  EXPECT_GE(D.trace().size(), 3u);
  EXPECT_NE(D.trace()[0].find("eval"), std::string::npos);
  bool SawApply = false;
  for (const std::string &Line : D.trace())
    SawApply |= Line.find("apply inc") != std::string::npos;
  EXPECT_TRUE(SawApply);

  SemanticCpsInterp S;
  S.enableTrace(Ctx);
  ASSERT_TRUE(S.run(T).ok());
  bool SawReturn = false;
  for (const std::string &Line : S.trace())
    SawReturn |= Line.find("return") != std::string::npos;
  EXPECT_TRUE(SawReturn);

  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());
  SyntacticCpsInterp C;
  C.enableTrace(Ctx);
  ASSERT_TRUE(C.run(*P).ok());
  EXPECT_GE(C.trace().size(), 3u);
}

TEST(Tracing, CapIsRespected) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (g (lambda (s) (lambda (n) (if0 n 0 ((s s) (sub1 n))))))"
           " ((g g) 50))");
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, T);
  DirectInterp D;
  D.enableTrace(Ctx, /*MaxLines=*/10);
  ASSERT_TRUE(D.run(Anf).ok());
  EXPECT_EQ(D.trace().size(), 10u);
}

} // namespace
