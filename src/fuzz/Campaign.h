//===- fuzz/Campaign.h - Parallel differential fuzzing campaign -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver behind `cpsflow fuzz`: a parallel campaign that draws
/// programs from three sources — gen::ProgramGenerator streams, mutations
/// of the seed corpus, and crossover of prior findings — and checks the
/// enabled oracles on each, shrinking and recording every violation.
///
/// Parallelism and determinism model: tasks are numbered 0..Iterations-1
/// and dispatched in fixed-size waves through a ThreadPool, each task
/// writing its result into a pre-sized slot (the Batch.cpp pattern). A
/// task's behavior depends only on (FuzzSeed, task number, the seed
/// corpus, findings recorded by *earlier waves*) — never on scheduling —
/// so a fixed --fuzz-seed and --iterations produces a byte-identical
/// findings set at every --threads value. Under a --seconds budget the
/// wave loop stops at the deadline, so the iteration *count* (not any
/// individual finding) is what varies across machines.
///
/// Every worker body is exception-contained: a check that throws becomes
/// a finding with oracle tag "internal" rather than a dead campaign.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_FUZZ_CAMPAIGN_H
#define CPSFLOW_FUZZ_CAMPAIGN_H

#include "fuzz/Oracles.h"
#include "fuzz/Shrinker.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace fuzz {

/// Version of the fuzz findings/report document (campaignJson and
/// findings.json written by writeFindings).
inline constexpr int FindingsSchemaVersion = 1;

struct CampaignOptions {
  /// Master seed; every task derives its private Rng from (seed, task).
  uint64_t FuzzSeed = 1;
  /// Worker threads (>= 1). Findings are identical at every value.
  unsigned Threads = 1;
  /// Exact task count; 0 = run waves until Seconds elapses.
  uint64_t Iterations = 0;
  /// Wall-clock budget, used only when Iterations == 0.
  double Seconds = 10;
  /// Tasks per scheduling wave; 0 = 32. Part of the deterministic
  /// schedule (crossover pools snapshot at wave boundaries), so the
  /// default is a constant, never a function of Threads.
  uint64_t Wave = 0;
  /// Stop early once this many findings accumulated.
  uint64_t MaxFindings = 32;
  /// Delta-debug each finding (recommended; off for raw throughput).
  bool Shrink = true;
  ShrinkOptions Shrink0;
  /// Oracle set, domain, budgets, and per-run governor.
  OracleOptions Oracle;
  /// When false the JSON report omits wall-time and thread count, so two
  /// runs' reports compare byte-for-byte at fixed Iterations.
  bool IncludeTiming = true;
  /// Shared tracer for campaign phases (wave spans, finding instants);
  /// null = zero overhead.
  support::Tracer *Trace = nullptr;
};

/// One recorded oracle violation, minimized and self-contained.
struct Finding {
  uint64_t Task = 0;          ///< task number that found it
  OracleId Oracle = OracleId::InterpAgreement;
  bool Internal = false;      ///< contained escape, not an oracle verdict
  std::string Message;        ///< first violation message
  std::string Source;         ///< input provenance: "gen", "mutate:<seed>",
                              ///< "crossover"
  std::string Program;        ///< the failing program as generated
  std::string Reproducer;     ///< shrunken program (== Program when
                              ///< shrinking is off or failed)
  uint64_t Digest = 0;        ///< structural digest of Reproducer
  size_t LetsBefore = 0;      ///< lets in Program
  size_t LetsAfter = 0;       ///< lets in Reproducer
};

/// Per-oracle campaign accounting.
struct OracleTally {
  uint64_t Checked = 0;    ///< programs on which the oracle's comparisons ran
  uint64_t Violations = 0;
};

struct CampaignResult {
  uint64_t Iterations = 0; ///< tasks actually executed
  double WallMs = 0;
  /// The interrupt token (OracleOptions::Interrupt) fired mid-campaign;
  /// the wave loop stopped early and campaignJson marks the document
  /// "interrupted": true. Findings recorded before the interrupt are
  /// complete and replayable.
  bool Interrupted = false;
  std::vector<Finding> Findings;
  OracleTally Tally[NumOracles];
  /// Summed work counters of the baseline abstract runs, per leg.
  analysis::AnalyzerStats LegTotals[NumLegs];
  /// Seed corpus file names, campaign input provenance.
  std::vector<std::string> SeedNames;
};

/// Runs a campaign over \p Seeds ((name, source) pairs; may be empty —
/// generation and crossover still run).
CampaignResult runCampaign(const CampaignOptions &Opts,
                           const std::vector<std::pair<std::string, std::string>> &Seeds);

/// Renders the campaign report. The document carries a top-level
/// "programs" array (one pseudo-program per oracle plus a "campaign"
/// aggregate with per-leg goals/cacheHits/cuts), so tools/bench_diff can
/// diff two fuzz reports just like two batch reports.
std::string campaignJson(const CampaignResult &R, const CampaignOptions &Opts);

/// Renders a short human-readable campaign summary (per-oracle tallies
/// and one line per finding) for the CLI's stderr.
std::string campaignSummary(const CampaignResult &R,
                            const CampaignOptions &Opts);

/// A reproducer file: the shrunken program under a comment header that
/// records oracle, domain, seed, and provenance, replayable with
/// `cpsflow fuzz --replay FILE`.
std::string reproducerFile(const Finding &F, const CampaignOptions &Opts);

/// Deterministic reproducer file name: "<oracle>-<digest16>.scm".
std::string reproducerName(const Finding &F);

/// Writes each finding's reproducer plus a findings.json index under
/// \p Dir (created if missing). \returns the number of files written.
Result<size_t> writeFindings(const std::string &Dir, const CampaignResult &R,
                             const CampaignOptions &Opts);

/// Re-checks a reproducer (or any program) file's source against the
/// enabled oracles: the replay half of the detect → shrink → replay
/// loop.
Result<OracleOutcome> replaySource(const std::string &Source,
                                   const OracleOptions &Opts);

} // namespace fuzz
} // namespace cpsflow

#endif // CPSFLOW_FUZZ_CAMPAIGN_H
