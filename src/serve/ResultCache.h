//===- serve/ResultCache.h - Crash-safe on-disk result cache ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed cache of analysis results shared by
/// every `cpsflow serve` worker (and across daemon restarts).
///
/// Keying. An entry is addressed by the *analysis problem*, not the
/// request: source digest (gen::textDigest), analyzer leg, domain, and
/// every budget that changes the computed answer (MaxGoals, LoopUnroll,
/// DupBudget, UseSummaries). Wall-clock and footprint ceilings
/// (deadlineMs, MaxStoreBytes, MaxDepth) are deliberately NOT part of the
/// key: only results that finished without degrading are stored, and a
/// non-tripped governed run computes byte-for-byte what an ungoverned run
/// computes, so the same entry is valid under any ceiling.
///
/// The entry *filename* is a 64-bit hash of that key, which is too narrow
/// to be an identity: two different sources colliding on textDigest would
/// silently alias the same file and one would be served the other's
/// answer. So the frame also records the source length and a second,
/// independently-seeded 64-bit source digest (gen::textDigest2), and
/// lookup() verifies both against the requesting key. A mismatch is a
/// *collision miss* — the entry is a perfectly valid frame for some other
/// program, so it is left in place (not quarantined) and the recompute's
/// store() overwrites it; the aliased pair then thrashes instead of
/// lying, which is the correct trade for a cache.
///
/// Crash safety. An entry is a checksummed frame
///
/// \code
///   cpsflow-cache 2 <payload-bytes> <fnv64-hex> <source-len> <digest2-hex>\n<payload>
/// \endcode
///
/// written to a unique temp file and published with an atomic rename —
/// readers never observe a partially-written path under normal operation.
/// The failure model is a daemon killed mid-write (or a bit-flipping
/// disk): lookup() re-validates magic, version, length, and checksum on
/// every read, and an entry failing any of them is moved into
/// `quarantine/` (for post-mortem) and reported as a miss, so corruption
/// is recomputed through — never served, never fatal.
///
/// Fault injection: store() consults the CacheWrite tear site and, when
/// armed, publishes a deliberately torn frame (full header, truncated
/// payload), exercising exactly the recovery path above.
///
/// Leaked temp files. A writer that crashes between creating its unique
/// `entries/.tmp.<pid>.<seq>` file and the publishing rename leaks that
/// file forever (nothing ever renames or reopens it). Opening the cache
/// sweeps these: a `.tmp.*` whose pid no longer exists, or whose file is
/// older than a generous grace window (covering pid reuse), is removed.
/// A live concurrent writer's fresh temp file matches neither test and
/// survives.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_RESULTCACHE_H
#define CPSFLOW_SERVE_RESULTCACHE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace cpsflow {
namespace serve {

/// Everything that determines a cached answer.
struct CacheKey {
  uint64_t SourceDigest = 0; ///< gen::textDigest of the program source
  /// Independent second digest (gen::textDigest2) plus the raw source
  /// length: stored in the entry header and re-verified on lookup, so a
  /// SourceDigest collision between two different programs is detected
  /// as a miss instead of served as the wrong answer. Not part of the
  /// filename hash — that is what makes the verification independent.
  uint64_t SourceDigest2 = 0;
  uint64_t SourceLen = 0;
  std::string Analyzer; ///< direct|semantic|syntactic|dup
  std::string Domain;   ///< constant|unit|sign|parity|interval
  uint64_t MaxGoals = 0;
  uint32_t LoopUnroll = 0;
  uint64_t DupBudget = 0;
  bool UseSummaries = false;
};

/// Stable 64-bit address of \p K (the entry filename).
uint64_t cacheKeyHash(const CacheKey &K);

class ResultCache {
public:
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t StoreFailures = 0; ///< I/O failures and injected tears
    uint64_t Corrupt = 0;       ///< entries detected bad and quarantined
    uint64_t Collisions = 0;    ///< filename-hash aliases caught by the
                                ///< source length/digest2 identity check
    uint64_t SweptTmp = 0;      ///< leaked .tmp.* files removed at open
  };

  /// Opens (creating if needed) the cache rooted at \p Dir. On any setup
  /// failure the cache degrades to a no-op: ok() is false, every lookup
  /// misses, every store fails — the daemon keeps serving, uncached.
  explicit ResultCache(std::string Dir);

  bool ok() const { return Usable; }
  const std::string &dir() const { return Root; }

  /// The payload stored for \p K, or nullopt. A corrupt entry is
  /// quarantined and reported as a miss.
  std::optional<std::string> lookup(const CacheKey &K);

  /// Atomically publishes \p Payload for \p K. False on failure (the
  /// cache stays consistent either way).
  bool store(const CacheKey &K, const std::string &Payload);

  CacheStats stats() const;

  /// The on-disk path an entry for \p K lives at (exposed for tests that
  /// corrupt entries deliberately).
  std::string entryPath(const CacheKey &K) const;

private:
  std::string quarantinePath(const std::string &Name);
  void sweepStaleTmp();

  std::string Root;
  bool Usable = false;
  mutable std::mutex M; ///< guards Stats and the temp/quarantine counters
  CacheStats Stats;
  uint64_t TmpSeq = 0;
  uint64_t QuarantineSeq = 0;
};

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_RESULTCACHE_H
