//===- bench/governor_overhead.cpp - E15: governor cost ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E15 — the per-goal cost of the resource governor. Each analyzer runs
/// the E10 random workloads twice: ungoverned (default GovernorLimits:
/// every check short-circuits) and fully armed (deadline + memory ceiling
/// + depth cap + cancellation token, all limits generous enough never to
/// trip). The delta between the governed/... and plain BM_* lines is the
/// governor's whole cost; the acceptance budget is <2% of analyzer
/// throughput (EXPERIMENTS.md records the measured numbers).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Generator.h"
#include "support/Governor.h"
#include "syntax/Analysis.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

const syntax::Term *makeProgram(Context &Ctx, int64_t Size) {
  gen::GenOptions Opts;
  Opts.Seed = 1010; // same corpus as bench/throughput.cpp (E10)
  Opts.ChainLength = static_cast<uint32_t>(Size);
  Opts.MaxDepth = 2;
  Opts.WellTyped = true;
  gen::ProgramGenerator Gen(Ctx, Opts);
  return Gen.generate();
}

/// Fully-armed limits that can never trip on a bench-sized run: the
/// analyzer pays every per-goal compare and every periodic probe, but
/// always takes the not-tripped path.
AnalyzerOptions armedOptions() {
  AnalyzerOptions AOpts;
  AOpts.Governor.deadlineIn(3'600'000);                // one hour
  AOpts.Governor.MaxStoreBytes = 1ull << 40;           // 1 TiB
  AOpts.Governor.MaxDepth = 1u << 30;
  AOpts.Governor.Cancel = std::make_shared<support::CancelToken>();
  return AOpts;
}

template <template <typename> class Analyzer>
void analysisLoop(benchmark::State &State, const AnalyzerOptions &AOpts) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  std::vector<DirectBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R = Analyzer<CD>(Ctx, T, Init, AOpts).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    Goals = R.Stats.Goals;
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

void BM_DirectUngoverned(benchmark::State &State) {
  analysisLoop<DirectAnalyzer>(State, AnalyzerOptions());
}
void BM_DirectGoverned(benchmark::State &State) {
  analysisLoop<DirectAnalyzer>(State, armedOptions());
}
void BM_SemanticUngoverned(benchmark::State &State) {
  analysisLoop<SemanticCpsAnalyzer>(State, AnalyzerOptions());
}
void BM_SemanticGoverned(benchmark::State &State) {
  analysisLoop<SemanticCpsAnalyzer>(State, armedOptions());
}

void BM_SyntacticUngovernedVsGoverned(benchmark::State &State,
                                      bool Governed) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  std::vector<CpsBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::CpsAbsVal<CD>::number(CD::top())});
  AnalyzerOptions AOpts = Governed ? armedOptions() : AnalyzerOptions();
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R = SyntacticCpsAnalyzer<CD>(Ctx, *P, Init, AOpts).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    Goals = R.Stats.Goals;
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

void BM_SyntacticUngoverned(benchmark::State &State) {
  BM_SyntacticUngovernedVsGoverned(State, false);
}
void BM_SyntacticGoverned(benchmark::State &State) {
  BM_SyntacticUngovernedVsGoverned(State, true);
}

} // namespace

BENCHMARK(BM_DirectUngoverned)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_DirectGoverned)->RangeMultiplier(2)->Range(8, 64);
// The CPS analyzers pay the duplication cost even on random programs;
// cap their sweep so the run stays in CI-friendly time (as in E10).
BENCHMARK(BM_SemanticUngoverned)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SemanticGoverned)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SyntacticUngoverned)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SyntacticGoverned)->RangeMultiplier(2)->Range(8, 32);

BENCHMARK_MAIN();
