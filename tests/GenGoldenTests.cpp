//===- tests/GenGoldenTests.cpp - Generator stability goldens ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the generator's output streams: a fixed GenOptions seed must keep
/// producing the same programs forever. The property suites only need
/// determinism *within* a run, but the fuzz campaign records seeds in
/// findings and reproducer headers — if the generator's draw sequence
/// drifts, every recorded seed silently points at a different program.
/// The goldens digest whole program streams (gen/Digest.h is spelling-
/// based and Context-independent), so any drift fails loudly here first.
///
/// If a test in this file fails, either revert the generator change or —
/// when the change is intentional — re-record the constants with the
/// digests printed in the failure message, and say in the commit that
/// recorded fuzz seeds from older reports no longer replay.
///
//===----------------------------------------------------------------------===//

#include "gen/Digest.h"
#include "gen/Enumerate.h"
#include "gen/Generator.h"
#include "support/Hashing.h"
#include "syntax/Builder.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;

namespace {

/// Digest of the first \p N programs of a generator stream.
uint64_t streamDigest(const gen::GenOptions &G, int N, bool Full = false) {
  Context Ctx;
  gen::ProgramGenerator Gen(Ctx, G);
  uint64_t Acc = 0;
  for (int I = 0; I < N; ++I)
    hashCombine(Acc, gen::termDigest(Ctx, Full ? Gen.generateFull()
                                               : Gen.generate()));
  return Acc;
}

TEST(GenGolden, DigestIsContextIndependent) {
  // The same source digested in two unrelated Contexts must agree: the
  // digest may depend on spellings only, never on symbol ids.
  auto Build = [](Context &Ctx) {
    syntax::Builder B(Ctx);
    return B.let("f",
                 B.val(B.lam("x", B.if0(B.varTerm("x"), B.numTerm(0),
                                        B.appVV(B.var("f"), B.num(3))))),
                 B.varTerm("f"));
  };
  Context C1, C2;
  C2.intern("padding-so-symbol-ids-differ");
  EXPECT_EQ(gen::termDigest(C1, Build(C1)), gen::termDigest(C2, Build(C2)));
}

TEST(GenGolden, AnfStreamGoldens) {
  gen::GenOptions G1; // all defaults, seed 1
  EXPECT_EQ(streamDigest(G1, 8), UINT64_C(0xcae25b18f6c9b650))
      << std::hex << streamDigest(G1, 8);

  gen::GenOptions G2;
  G2.Seed = 7;
  G2.NumFreeVars = 3;
  G2.ChainLength = 10;
  G2.MaxDepth = 2;
  G2.WellTyped = true;
  EXPECT_EQ(streamDigest(G2, 8), UINT64_C(0x1d0b3044f56cac59))
      << std::hex << streamDigest(G2, 8);

  gen::GenOptions G3;
  G3.Seed = 42;
  G3.AllowLoop = true;
  G3.NumeralRange = 9;
  EXPECT_EQ(streamDigest(G3, 8), UINT64_C(0x253c20fd3150f319))
      << std::hex << streamDigest(G3, 8);
}

TEST(GenGolden, FullLanguageStreamGolden) {
  gen::GenOptions G;
  G.Seed = 11;
  G.MaxDepth = 3;
  EXPECT_EQ(streamDigest(G, 8, /*Full=*/true),
            UINT64_C(0x0f7948bb2a4888fc))
      << std::hex << streamDigest(G, 8, /*Full=*/true);
}

TEST(GenGolden, EnumerationUniverseGolden) {
  // The enumerator is part of the same stability contract: its universe
  // size and contents pin the bounded-exhaustive suites' coverage.
  Context Ctx;
  gen::EnumOptions E;
  E.Lets = 2;
  uint64_t Acc = 0;
  size_t N = gen::enumeratePrograms(Ctx, E, [&](const syntax::Term *T) {
    hashCombine(Acc, gen::termDigest(Ctx, T));
  });
  EXPECT_EQ(N, 1326u) << N;
  EXPECT_EQ(Acc, UINT64_C(0x9960fb023a0da4c2)) << std::hex << Acc;
}

} // namespace
