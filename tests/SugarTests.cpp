//===- tests/SugarTests.cpp - Surface-language desugaring -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Sugar.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "anf/Anf.h"
#include "interp/Direct.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::syntax;
using CD = domain::ConstantDomain;

namespace {

int64_t evalSugared(Context &Ctx, const std::string &Source,
                    uint64_t Fuel = 1u << 20) {
  Result<const Term *> T = parseSugaredProgram(Ctx, Source);
  EXPECT_TRUE(T.hasValue()) << (T.hasValue() ? "" : T.error().str());
  const Term *Anf = anf::normalizeProgram(Ctx, *T);
  interp::RunLimits Limits;
  Limits.MaxSteps = Fuel;
  interp::DirectInterp I(Limits);
  interp::RunResult R = I.run(Anf);
  EXPECT_TRUE(R.ok()) << Source << ": " << R.Message;
  EXPECT_TRUE(R.Value.isNum());
  return R.Value.isNum() ? R.Value.Num : INT64_MIN;
}

TEST(Sugar, CurriedLambdasAndApplications) {
  Context Ctx;
  EXPECT_EQ(evalSugared(Ctx, "((lambda (x y) (add1 y)) 1 2)"), 3);
  EXPECT_EQ(evalSugared(Ctx, "((lambda (a b c) a) 7 8 9)"), 7);
}

TEST(Sugar, LetStar) {
  Context Ctx;
  EXPECT_EQ(
      evalSugared(Ctx, "(let* ((x 1) (y (add1 x)) (z (add1 y))) z)"), 3);
  // Later bindings see earlier ones, with shadowing.
  EXPECT_EQ(evalSugared(Ctx, "(let* ((x 1) (x (add1 x))) x)"), 2);
}

TEST(Sugar, PlusMinusLiterals) {
  Context Ctx;
  EXPECT_EQ(evalSugared(Ctx, "(+ 5 3)"), 8);
  EXPECT_EQ(evalSugared(Ctx, "(- 5 3)"), 2);
  EXPECT_EQ(evalSugared(Ctx, "(+ 5 -2)"), 3);
  EXPECT_EQ(evalSugared(Ctx, "(- (+ 1 1) 1)"), 1);
}

TEST(Sugar, RecComputesRecursively) {
  Context Ctx;
  // Triangle numbers by hand: sum 0..n via an accumulator-free double
  // recursion is awkward without general +, so just count down.
  EXPECT_EQ(evalSugared(Ctx, "((rec (f n) (if0 n 42 (f (sub1 n)))) 10)"),
            42);
}

TEST(Sugar, DefineAndProgram) {
  Context Ctx;
  const char *Source =
      "(define (down n) (if0 n 0 (down (sub1 n))))"
      "(define base 5)"
      "(down (+ base 2))";
  EXPECT_EQ(evalSugared(Ctx, Source), 0);
}

TEST(Sugar, GeneralAdditionViaRec) {
  Context Ctx;
  // plus on naturals, written in the surface language.
  const char *Source =
      "(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))"
      "(plus 3 4)";
  EXPECT_EQ(evalSugared(Ctx, Source), 7);
}

TEST(Sugar, MultiplicationViaNestedRecursion) {
  Context Ctx;
  const char *Source =
      "(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))"
      "(define (times a b) (if0 a 0 (plus b (times (sub1 a) b))))"
      "(times 3 4)";
  EXPECT_EQ(evalSugared(Ctx, Source), 12);
}

TEST(Sugar, FibonacciEndToEnd) {
  Context Ctx;
  const char *Source =
      "(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))"
      "(define (fib n)"
      "  (if0 n 0 (if0 (sub1 n) 1"
      "    (plus (fib (sub1 n)) (fib (sub1 (sub1 n)))))))"
      "(fib 10)";
  EXPECT_EQ(evalSugared(Ctx, Source), 55);
}

TEST(Sugar, DesugaredProgramsAreAnalyzable) {
  Context Ctx;
  Result<const Term *> T = parseSugaredProgram(
      Ctx, "(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))"
           "(plus 2 2)");
  ASSERT_TRUE(T.hasValue());
  const Term *Anf = anf::normalizeProgram(Ctx, *T);
  ASSERT_TRUE(anf::isAnf(Anf).hasValue());
  ASSERT_TRUE(checkUniqueBinders(Ctx, Anf).hasValue());
  auto R = analysis::DirectAnalyzer<CD>(Ctx, Anf).run();
  // Recursion forces cuts; the analysis still terminates and covers the
  // concrete answer 4.
  EXPECT_FALSE(R.Stats.BudgetExhausted);
  EXPECT_TRUE(CD::leq(CD::constant(4), R.Answer.Value.Num));
}

TEST(Sugar, Errors) {
  Context Ctx;
  EXPECT_FALSE(parseSugaredTerm(Ctx, "(define (f x) x)").hasValue());
  EXPECT_FALSE(parseSugaredTerm(Ctx, "(+ 1 x)").hasValue()); // non-literal
  EXPECT_FALSE(parseSugaredTerm(Ctx, "(lambda () 1)").hasValue());
  EXPECT_FALSE(parseSugaredTerm(Ctx, "(rec f 1)").hasValue());
  EXPECT_FALSE(
      parseSugaredProgram(Ctx, "(define x 1)").hasValue()); // no final expr
  EXPECT_FALSE(parseSugaredProgram(Ctx, "1 (define x 2) x").hasValue());
}

// The desugarer walks the same recursive descent as the core parser and
// carries the same MaxTermDepth wall; hostile nesting through the
// surface-language entry point (the one the CLI and the serve daemon
// actually use) must be a parse error, not a stack overflow.
TEST(Sugar, DeeplyNestedProgramsAreParseErrors) {
  auto nested = [](size_t Levels) {
    std::string P;
    for (size_t I = 0; I < Levels; ++I)
      P += "(f ";
    P += "x";
    P.append(Levels, ')');
    return P;
  };
  {
    Context Ctx;
    Result<const Term *> R = parseSugaredProgram(Ctx, nested(100000));
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().str().find("depth"), std::string::npos)
        << R.error().str();
  }
  {
    Context Ctx;
    Result<const Term *> R = parseSugaredProgram(Ctx, nested(3000));
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().str().find("supported depth"), std::string::npos)
        << R.error().str();
  }
}

} // namespace
