//===- support/Hashing.h - Hash combining utilities -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash combinators used by the analyzers' memoization tables.
///
/// Abstract stores and abstract continuations are hashed structurally; the
/// mixing below is a 64-bit variant of boost::hash_combine using the
/// splitmix64 finalizer, which is cheap and has no pathological collisions
/// for the small integer ids (symbols, node pointers) we feed it.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_HASHING_H
#define CPSFLOW_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cpsflow {

/// splitmix64 finalizer; bijective mixing of a 64-bit word.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Folds \p Value into the running hash \p Seed.
inline void hashCombine(uint64_t &Seed, uint64_t Value) {
  Seed ^= mix64(Value) + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2);
}

/// Hashes a pointer by address (stable within a run; arena nodes never move).
inline uint64_t hashPointer(const void *P) {
  return mix64(reinterpret_cast<uintptr_t>(P));
}

/// Position-salted slot contribution for *commutative* array hashing:
/// the full hash is the plain sum of the slots' contributions, so a
/// single-slot update is patched in O(1) as H' = H - old + new instead of
/// rescanning (domain/StoreInterner.h relies on this).
inline uint64_t hashSlot(uint32_t Index, uint64_t ValueHash) {
  return mix64(ValueHash + 0x9e3779b97f4a7c15ull * (Index + 1));
}

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_HASHING_H
