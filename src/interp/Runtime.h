//===- interp/Runtime.h - Concrete run-time model ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time model shared by the three concrete interpreters of
/// Figures 1-3: environments mapping variables to locations, stores mapping
/// locations to values, and the two run-time value universes.
///
/// Locations are allocated by `new(x, s)`: each cell remembers the variable
/// it was created for (`new` is invertible, Section 2), which is what the
/// abstract interpreters exploit when they merge all locations of a
/// variable into one (Section 4.1). Store::valuesAt exposes the per-
/// variable allocation history for exactly that reason — tests compare a
/// concrete run against an abstract one by folding this history with join.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_INTERP_RUNTIME_H
#define CPSFLOW_INTERP_RUNTIME_H

#include "cps/CpsAst.h"
#include "support/Symbol.h"
#include "syntax/Ast.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace cpsflow {
namespace interp {

/// A store location. Allocation order is the cell index.
using Loc = uint32_t;

/// A persistent environment node: extending an environment allocates a new
/// head; closures capture the head pointer. Nodes are owned by the
/// interpreter's EnvArena and outlive every value that references them.
struct EnvNode {
  Symbol Var;
  Loc Location;
  const EnvNode *Parent;
};

/// Owns environment nodes for one interpreter run.
class EnvArena {
public:
  /// Extends \p Parent with \p Var at \p Location.
  const EnvNode *extend(const EnvNode *Parent, Symbol Var, Loc Location) {
    Nodes.push_back(EnvNode{Var, Location, Parent});
    return &Nodes.back();
  }

  /// Looks up \p Var; \returns nullptr if unbound.
  static const EnvNode *lookup(const EnvNode *Env, Symbol Var) {
    for (; Env; Env = Env->Parent)
      if (Env->Var == Var)
        return Env;
    return nullptr;
  }

private:
  std::deque<EnvNode> Nodes;
};

//===----------------------------------------------------------------------===//
// Run-time values of the direct and semantic-CPS interpreters (Figures 1-2)
//===----------------------------------------------------------------------===//

/// Val = Num + Clo where Clo = (Var x A x Env) + inc + dec.
struct RtValue {
  enum class Kind : uint8_t { Num, Inc, Dec, Closure };

  Kind Tag = Kind::Num;
  int64_t Num = 0;
  const syntax::LamValue *Lam = nullptr;
  const EnvNode *Env = nullptr;

  static RtValue number(int64_t N) {
    RtValue V;
    V.Tag = Kind::Num;
    V.Num = N;
    return V;
  }
  static RtValue inc() {
    RtValue V;
    V.Tag = Kind::Inc;
    return V;
  }
  static RtValue dec() {
    RtValue V;
    V.Tag = Kind::Dec;
    return V;
  }
  static RtValue closure(const syntax::LamValue *Lam,
                         const EnvNode *Env = nullptr) {
    RtValue V;
    V.Tag = Kind::Closure;
    V.Lam = Lam;
    V.Env = Env;
    return V;
  }

  bool isNum() const { return Tag == Kind::Num; }
  bool isClosure() const { return Tag == Kind::Closure; }
};

//===----------------------------------------------------------------------===//
// Run-time values of the syntactic-CPS interpreter (Figure 3)
//===----------------------------------------------------------------------===//

/// Val = Num + Clo + Con where Clo = (Var x KVar x cps(A) x Env) + inck +
/// deck and Con = (Var x cps(A) x Env) + stop.
struct CpsRtValue {
  enum class Kind : uint8_t { Num, Inck, Deck, Closure, Cont, Stop };

  Kind Tag = Kind::Num;
  int64_t Num = 0;
  const cps::CpsLam *Lam = nullptr;
  const cps::ContLam *Cont = nullptr;
  const EnvNode *Env = nullptr;

  static CpsRtValue number(int64_t N) {
    CpsRtValue V;
    V.Tag = Kind::Num;
    V.Num = N;
    return V;
  }
  static CpsRtValue inck() {
    CpsRtValue V;
    V.Tag = Kind::Inck;
    return V;
  }
  static CpsRtValue deck() {
    CpsRtValue V;
    V.Tag = Kind::Deck;
    return V;
  }
  static CpsRtValue closure(const cps::CpsLam *Lam,
                            const EnvNode *Env = nullptr) {
    CpsRtValue V;
    V.Tag = Kind::Closure;
    V.Lam = Lam;
    V.Env = Env;
    return V;
  }
  static CpsRtValue cont(const cps::ContLam *Cont,
                         const EnvNode *Env = nullptr) {
    CpsRtValue V;
    V.Tag = Kind::Cont;
    V.Cont = Cont;
    V.Env = Env;
    return V;
  }
  static CpsRtValue stop() {
    CpsRtValue V;
    V.Tag = Kind::Stop;
    return V;
  }

  bool isNum() const { return Tag == Kind::Num; }
  bool isContinuation() const {
    return Tag == Kind::Cont || Tag == Kind::Stop;
  }
};

//===----------------------------------------------------------------------===//
// Stores
//===----------------------------------------------------------------------===//

/// A store for value type \p V: cells in allocation order, each tagged with
/// the variable it was allocated for.
template <typename V> class StoreOf {
public:
  struct Cell {
    Symbol Var;
    V Value;
  };

  /// `new(x, s)` followed by `s[new(x) := u]`.
  Loc alloc(Symbol Var, V Value) {
    Cells.push_back(Cell{Var, Value});
    return static_cast<Loc>(Cells.size() - 1);
  }

  const V &at(Loc L) const {
    assert(L < Cells.size() && "dangling location");
    return Cells[L].Value;
  }

  /// `new^-1(l)`: the variable a location was created for.
  Symbol varOf(Loc L) const {
    assert(L < Cells.size() && "dangling location");
    return Cells[L].Var;
  }

  size_t size() const { return Cells.size(); }

  /// All values ever stored for \p Var, in allocation order — the
  /// collecting-semantics view of the store (Section 4.1).
  std::vector<V> valuesAt(Symbol Var) const {
    std::vector<V> Out;
    for (const Cell &C : Cells)
      if (C.Var == Var)
        Out.push_back(C.Value);
    return Out;
  }

  const std::vector<Cell> &cells() const { return Cells; }

private:
  std::vector<Cell> Cells;
};

using Store = StoreOf<RtValue>;
using CpsStore = StoreOf<CpsRtValue>;

//===----------------------------------------------------------------------===//
// Results
//===----------------------------------------------------------------------===//

/// How a concrete run ended.
enum class RunStatus : uint8_t {
  Ok,        ///< produced an answer
  Stuck,     ///< the partial function M/C/Mc is undefined here
  Diverged,  ///< hit the `loop` construct, which never returns
  OutOfFuel, ///< exceeded the step budget
};

/// Outcome of a direct / semantic-CPS run.
struct RunResult {
  RunStatus Status = RunStatus::Stuck;
  RtValue Value;       ///< valid when Status == Ok
  std::string Message; ///< diagnosis for Stuck
  uint64_t Steps = 0;  ///< evaluation rule applications

  bool ok() const { return Status == RunStatus::Ok; }
};

/// Outcome of a syntactic-CPS run.
struct CpsRunResult {
  RunStatus Status = RunStatus::Stuck;
  CpsRtValue Value;
  std::string Message;
  uint64_t Steps = 0;

  bool ok() const { return Status == RunStatus::Ok; }
};

/// Step/recursion budgets for concrete runs.
struct RunLimits {
  uint64_t MaxSteps = 1u << 20;
  uint32_t MaxDepth = 1u << 13; ///< direct interpreter recursion only
};

/// Renders a run-time value, e.g. "7", "inc", "(cl x ...)".
std::string str(const Context &Ctx, const RtValue &V);
std::string str(const Context &Ctx, const CpsRtValue &V);

/// Truncates a rendered term for trace lines.
std::string snippet(std::string Text, size_t Max = 56);

} // namespace interp
} // namespace cpsflow

#endif // CPSFLOW_INTERP_RUNTIME_H
