//===- examples/quickstart.cpp - Tour of the cpsflow API --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full pipeline on one small program: parse -> A-normalize ->
/// CPS-transform -> run the three concrete interpreters (Figures 1-3) ->
/// run the three abstract analyzers (Figures 4-6) -> print what each
/// learned.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "clients/Reports.h"
#include "cps/Transform.h"
#include "interp/Delta.h"
#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <cstdio>

using namespace cpsflow;
using CD = domain::ConstantDomain;

int main() {
  Context Ctx;

  // A higher-order source program: apply a doubling-ish function twice,
  // then branch on the (statically known) result.
  const char *Source =
      "(let (bump (lambda (x) (add1 (add1 x))))"
      " (let (a (bump 1))"
      "  (let (b (bump a))"
      "   (if0 (sub1 (sub1 (sub1 (sub1 (sub1 b))))) 100 200))))";

  std::printf("== source ==\n%s\n\n", Source);

  Result<const syntax::Term *> Parsed = syntax::parseTerm(Ctx, Source);
  if (!Parsed) {
    std::printf("parse error: %s\n", Parsed.error().str().c_str());
    return 1;
  }

  // A-normalize (Section 2): name every intermediate result.
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, *Parsed);
  std::printf("== A-normal form ==\n%s\n\n",
              syntax::printIndented(Ctx, Anf).c_str());

  // CPS-transform (Definition 3.2).
  Result<cps::CpsProgram> Cps = cps::cpsTransform(Ctx, Anf);
  if (!Cps) {
    std::printf("cps error: %s\n", Cps.error().str().c_str());
    return 1;
  }
  std::printf("== cps(A) form ==\n%s\n\n",
              cps::printCps(Ctx, Cps->Root).c_str());

  // Concrete runs: Figures 1, 2, and 3 agree (Lemmas 3.1 and 3.3).
  interp::DirectInterp Direct;
  interp::RunResult R1 = Direct.run(Anf);
  interp::SemanticCpsInterp Semantic;
  interp::RunResult R2 = Semantic.run(Anf);
  interp::SyntacticCpsInterp Syntactic;
  interp::CpsRunResult R3 = Syntactic.run(*Cps);
  std::printf("== concrete runs ==\n");
  std::printf("  direct        (Fig 1): %s in %llu steps\n",
              interp::str(Ctx, R1.Value).c_str(),
              (unsigned long long)R1.Steps);
  std::printf("  semantic-CPS  (Fig 2): %s in %llu steps\n",
              interp::str(Ctx, R2.Value).c_str(),
              (unsigned long long)R2.Steps);
  std::printf("  syntactic-CPS (Fig 3): %s in %llu steps\n",
              interp::str(Ctx, R3.Value).c_str(),
              (unsigned long long)R3.Steps);
  std::printf("  delta-related: %s\n\n",
              interp::deltaRelated(R1.Value, R3.Value, *Cps) ? "yes" : "NO");

  // Abstract runs under constant propagation.
  auto AD = analysis::DirectAnalyzer<CD>(Ctx, Anf).run();
  auto AS = analysis::SemanticCpsAnalyzer<CD>(Ctx, Anf).run();
  auto AC = analysis::SyntacticCpsAnalyzer<CD>(Ctx, *Cps).run();

  std::printf("== abstract answers (constant propagation) ==\n");
  std::printf("  direct        (Fig 4): %s   [%s]\n",
              AD.Answer.Value.str(Ctx).c_str(),
              clients::describeStats(AD.Stats).c_str());
  std::printf("  semantic-CPS  (Fig 5): %s   [%s]\n",
              AS.Answer.Value.str(Ctx).c_str(),
              clients::describeStats(AS.Stats).c_str());
  std::printf("  syntactic-CPS (Fig 6): %s   [%s]\n\n",
              AC.Answer.Value.str(Ctx).c_str(),
              clients::describeStats(AC.Stats).c_str());

  std::printf("== direct analysis store ==\n%s\n",
              clients::describeVars(Ctx, AD, syntax::collectVariables(Anf))
                  .c_str());

  std::printf("== control flow graph (direct analysis) ==\n%s\n",
              clients::describeCfg(Ctx, AD.Cfg).c_str());
  return 0;
}
