//===- serve/FlightRecorder.h - Last-N request ring -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size in-memory ring of the last N request records plus the
/// set of requests currently in flight, for post-mortems: when the
/// daemon is told to die mid-load (or dies on its own under fault
/// injection), the dump names exactly which requests were executing and
/// what the daemon had just finished doing.
///
/// The dump is published crash-safely with the ResultCache discipline —
/// rendered into a unique temp file in the destination directory, then
/// fs::rename'd over the target, behind a one-line checksum frame:
///
///   cpsflow-flight <schema> <payload-bytes> <fnv64-hex>\n{...payload...}
///
/// so a reader can tell a torn dump from a complete one. Dump triggers:
/// drain start (SIGTERM/SIGINT/shutdown op — this is the moment the
/// in-flight set is interesting), the `dump` protocol op, and — best
/// effort — a fatal signal (the CLI installs a handler that calls
/// fatalDump(), which takes no locks it cannot skip and writes with raw
/// write(2)/rename(2)).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_FLIGHTRECORDER_H
#define CPSFLOW_SERVE_FLIGHTRECORDER_H

#include "serve/RequestLog.h"

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace cpsflow {
namespace serve {

/// Version of the flight-recorder dump document ("schemaVersion" field;
/// the frame header carries it too). `cpsflow version` reports it.
inline constexpr int FlightRecorderSchemaVersion = 1;

class FlightRecorder {
public:
  /// \p Capacity is the ring size (records kept after completion).
  explicit FlightRecorder(size_t Capacity);

  /// Registers an admitted request as in flight. Records are rendered
  /// eagerly so a fatal-signal dump never has to allocate.
  void admit(const RequestRecord &R);

  /// Seals \p R: leaves the in-flight set, enters the ring (evicting the
  /// oldest past capacity).
  void complete(const RequestRecord &R);

  size_t capacity() const { return Cap; }
  size_t inFlightCount() const;
  size_t recentCount() const;
  uint64_t admitted() const;

  /// The dump document (unframed): {"schemaVersion":...,"capacity":...,
  /// "inFlight":[...],"recent":[...]} with records oldest-first.
  std::string renderJson() const;

  /// Atomically publishes the framed dump at \p Path (temp file beside
  /// it + rename). Returns false on any filesystem failure.
  bool dumpTo(const std::string &Path) const;

  /// Best-effort dump for fatal-signal handlers: skips the lock if it
  /// cannot be taken (the crashing thread may hold it), writes the
  /// pre-rendered record lines with raw write(2) into Path.crash-tmp and
  /// rename(2)s it over \p Path. Only async-signal-safe calls once the
  /// lock attempt is done; a record mutated mid-crash can tear, which the
  /// frame checksum reveals to the reader.
  void fatalDump(const char *Path) const;

  /// Validates a framed dump read back from disk: frame intact, checksum
  /// matches. On success \p PayloadOut (if non-null) receives the inner
  /// JSON document. Shared with tests and tooling.
  static bool checkFrame(const std::string &Raw,
                         std::string *PayloadOut = nullptr);

private:
  std::string renderJsonLocked() const;

  size_t Cap;
  mutable std::mutex Mu;
  std::map<uint64_t, std::string> InFlight; ///< ReqId -> rendered record
  std::deque<std::string> Recent;           ///< rendered records, oldest first
  uint64_t Admitted = 0;
};

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_FLIGHTRECORDER_H
