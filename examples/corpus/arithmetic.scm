; Recursive arithmetic from docs/LANGUAGE.md: + and * via add1/sub1.
(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))
(define (times a b) (if0 a 0 (plus b (times (sub1 a) b))))
(plus (times 3 4) 1)
