//===- analysis/SemanticCpsAnalyzer.h - Figure 5 analyzer -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic-CPS abstract collecting interpreter C_e of Figure 5,
/// derived from the Figure 2 machine. Abstract continuations are lists of
/// bare frames `(let (x []) M)` (environments dropped, Section 4.1).
///
/// Characteristic behaviour:
///
///  * At an application, `appk_e` applies each abstract closure and each
///    application *continues through the entire rest of the program* (the
///    continuation kappa); the answers are joined only at the very end.
///  * At an unknown conditional, each branch likewise carries the whole
///    continuation. This per-path duplication is what makes the analysis
///    at least as precise as the direct one, strictly more precise in
///    non-distributive analyses (Theorem 5.4) — and exponentially more
///    expensive (Section 6.2).
///  * The current continuation is always a single, known list — returns
///    are never confused, so it is also at least as precise as the
///    syntactic-CPS analysis (Theorem 5.5).
///  * The `loop` rule — the join of running the continuation on every
///    natural number — is *not computable* (Section 6.2); this
///    implementation unrolls it LoopUnroll times and reports whether the
///    join was still moving at the bound (Stats.LoopBounded), optionally
///    adding a sound summary iterate (AnalyzerOptions::LoopSoundSummary).
///
/// Termination (modulo `loop`) uses the Section 4.4 cut: when a goal's
/// (term, store) pair is already on the active path, the least precise
/// value (T, CL_T) is returned *to the current continuation*.
///
/// Stores are hash-consed (domain/StoreInterner.h): continuations were
/// already hash-consed lists, and with interned stores the full memo key
/// (term, kappa, store) is three words compared by identity.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_SEMANTICCPSANALYZER_H
#define CPSFLOW_ANALYSIS_SEMANTICCPSANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/Universe.h"
#include "anf/Anf.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/StoreInterner.h"
#include "syntax/Ast.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {

/// Result of a Figure 5 run. The value/store types match the direct
/// analyzer's, which is what makes the Theorem 5.4 comparison direct.
template <typename D> struct SemanticResult {
  using Val = domain::AbsVal<D>;

  AnswerOf<Val> Answer;
  AnalyzerStats Stats;
  DirectCfg Cfg;
  std::shared_ptr<domain::VarIndex> Vars;

  Val valueOf(Symbol X) const {
    if (auto I = Vars->tryOf(X))
      return Answer.Store.get(*I);
    return Val::bot();
  }
};

/// The Figure 5 analyzer. Single-use.
template <typename D> class SemanticCpsAnalyzer {
public:
  using Val = domain::AbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  /// \pre \p Program is in A-normal form with unique binders.
  SemanticCpsAnalyzer(const Context &Ctx, const syntax::Term *Program,
                      std::vector<DirectBinding<D>> Initial = {},
                      AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)), Opts(Opts) {
    assert(anf::isAnfQuick(Program) && "Figure 5 requires A-normal form");

    std::vector<const syntax::LamValue *> ExtraLams;
    std::vector<Symbol> ExtraVars;
    for (const DirectBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CloRef &C : B.Value.Clos)
        if (C.Tag == domain::CloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        directVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = directClosureUniverse(Program, ExtraLams);
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(Vars->size());
  }

  /// Runs the analysis with the empty continuation `nil`.
  SemanticResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const DirectBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, Vars->of(B.Var), B.Value);
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(B.Var), Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalC(Program, /*K=*/nullptr, Sigma0, 0);
    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Prov)
      Opts.Prov->noteFinal(Out.A.Store);

    SemanticResult<D> R;
    R.Answer = Answer{std::move(Out.A.Value), Interner.store(Out.A.Store)};
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  const domain::CloSet &closureUniverse() const { return CloTop; }

  /// The run's hash-consing table (observability: distinct stores seen).
  const domain::StoreInterner<Val> &interner() const { return Interner; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  using IAns = InternedAnswerOf<Val>;

  /// An abstract continuation: a hash-consed list of `(let (x []) M)`
  /// frames. nullptr is nil. Hash-consing makes kappa equality a pointer
  /// comparison in the memo keys.
  struct KontNode {
    const syntax::LetTerm *Frame;
    const KontNode *Parent;
    uint64_t H;
  };

  const KontNode *cons(const syntax::LetTerm *Frame, const KontNode *Parent) {
    auto KeyPair = std::make_pair(static_cast<const void *>(Frame),
                                  static_cast<const void *>(Parent));
    auto It = KontCache.find(KeyPair);
    if (It != KontCache.end())
      return It->second;
    uint64_t H = hashPointer(Frame);
    hashCombine(H, Parent ? Parent->H : 0x717);
    KontNodes.push_back(KontNode{Frame, Parent, H});
    const KontNode *Node = &KontNodes.back();
    KontCache.emplace(KeyPair, Node);
    return Node;
  }

  struct EvalOut {
    IAns A;
    uint32_t MinDep;
  };

  /// Memo key: (term, kappa, store). Active key: (term, store) with
  /// kappa == nullptr as a sentinel (terms never collide across the two
  /// tables since they are separate maps).
  struct Key {
    const void *Node;
    const KontNode *Kont;
    domain::StoreId Store;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.Kont == B.Kont && A.Store == B.Store;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashPointer(K.Node);
      hashCombine(H, K.Kont ? K.Kont->H : 0x171);
      hashCombine(H, K.Store);
      return H;
    }
  };

  IAns bottomAnswer() { return IAns{Val::bot(), Interner.bottom()}; }

  Val cutValue() const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    return V;
  }

  Val phi(const syntax::Value *V, domain::StoreId Sigma) const {
    using namespace syntax;
    switch (V->kind()) {
    case ValueKind::VK_Num:
      return Val::number(D::constant(cast<NumValue>(V)->value()));
    case ValueKind::VK_Var:
      return Interner.get(Sigma, Vars->of(cast<VarValue>(V)->name()));
    case ValueKind::VK_Prim:
      return Val::closures(domain::CloSet::single(
          cast<PrimValue>(V)->op() == PrimOp::Add1 ? domain::CloRef::inc()
                                                   : domain::CloRef::dec()));
    case ValueKind::VK_Lam:
      return Val::closures(
          domain::CloSet::single(domain::CloRef::lam(cast<LamValue>(V))));
    }
    assert(false && "unknown value kind");
    return Val::bot();
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(const syntax::Value *V,
                             domain::StoreId Sigma) const {
    if (const auto *Var = syntax::dyn_cast<syntax::VarValue>(V))
      return Opts.Prov->factOf(Vars->of(Var->name()), Sigma);
    return domain::NoProv;
  }

  /// appr_e: deliver \p U to \p K. nil yields the final answer. \p UProv
  /// is the derivation of U (meaningful only with Opts.Prov attached).
  EvalOut appre(const KontNode *K, const Val &U, domain::StoreId Sigma,
                uint32_t Depth, domain::ProvId UProv = domain::NoProv) {
    if (!K)
      return EvalOut{IAns{U, Sigma}, Unconstrained};
    domain::StoreId S = Interner.joinAt(Sigma, Vars->of(K->Frame->var()), U);
    if (Opts.Prov)
      Opts.Prov->assign(domain::EdgeKind::Flow, Vars->of(K->Frame->var()), S,
                        Sigma, K->Frame->id(), K->Frame->loc(), UProv);
    return evalC(K->Frame->body(), K->Parent, S, Depth + 1);
  }

  /// appk_e: apply each closure of \p Fun to \p Arg, each path carrying
  /// the whole continuation \p K; join the final answers.
  EvalOut appke(const syntax::AppTerm *Site, const Val &Fun, const Val &Arg,
                const KontNode *K, domain::StoreId Sigma, uint32_t Depth) {
    domain::CloSet &Rec = Cfg.Callees[Site];
    for (const domain::CloRef &C : Fun.Clos)
      Rec.insert(C);

    if (Fun.Clos.empty()) {
      ++Stats.DeadPaths; // join over no paths
      return EvalOut{bottomAnswer(), Unconstrained};
    }

    if (Fun.Clos.size() > 1)
      Stats.Joins += Fun.Clos.size() - 1; // final answers get k-way merged

    IAns Acc = bottomAnswer();
    uint32_t MinDep = Unconstrained;
    domain::ProvId ArgProv =
        Opts.Prov
            ? provOfValue(syntax::cast<syntax::ValueTerm>(Site->arg())->value(),
                          Sigma)
            : domain::NoProv;
    for (const domain::CloRef &C : Fun.Clos) {
      EvalOut Ri;
      switch (C.Tag) {
      case domain::CloRef::K::Inc:
        Ri = appre(K, Val::number(D::add1(Arg.Num)), Sigma, Depth + 1,
                   ArgProv);
        break;
      case domain::CloRef::K::Dec:
        Ri = appre(K, Val::number(D::sub1(Arg.Num)), Sigma, Depth + 1,
                   ArgProv);
        break;
      case domain::CloRef::K::Lam: {
        domain::StoreId S =
            Interner.joinAt(Sigma, Vars->of(C.Lam->param()), Arg);
        if (Opts.Prov)
          Opts.Prov->assign(domain::EdgeKind::Flow, Vars->of(C.Lam->param()),
                            S, Sigma, Site->id(), Site->loc(), ArgProv);
        Ri = evalC(C.Lam->body(), K, S, Depth + 1);
        break;
      }
      }
      Acc = Opts.Prov ? joinAnswers(Interner, Acc, Ri.A, Opts.Prov,
                                    domain::EdgeKind::Join, Site->id(),
                                    Site->loc())
                      : joinAnswers(Interner, Acc, Ri.A);
      MinDep = std::min(MinDep, Ri.MinDep);
    }
    return EvalOut{std::move(Acc), MinDep};
  }

  EvalOut evalC(const syntax::Term *T, const KontNode *K,
                domain::StoreId Sigma, uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{IAns{cutValue(), Sigma}, 0};
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return EvalOut{IAns{cutValue(), Sigma}, 0};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key MKey{T, K, Sigma};
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(MKey) != 0; });
    if (auto It = Memo.find(MKey); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      return EvalOut{It->second, Unconstrained};
    }

    Key AKey{T, nullptr, Sigma};
    if (auto It = Active.find(AKey); It != Active.end()) {
      // Section 4.4 cut: return (T, CL_T) *to the current continuation*.
      ++Stats.Cuts;
      uint32_t AncestorDepth = It->second;
      domain::ProvId CutProv =
          Opts.Prov ? Opts.Prov->value(domain::EdgeKind::Cut, T->id(),
                                       T->loc())
                    : domain::NoProv;
      EvalOut R = appre(K, cutValue(), Sigma, Depth + 1, CutProv);
      R.MinDep = std::min(R.MinDep, AncestorDepth);
      return R;
    }

    Active.emplace(AKey, Depth);
    EvalOut Out = evalUncached(T, K, Sigma, Depth);
    Active.erase(AKey);
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(MKey, Out.A);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  EvalOut evalUncached(const syntax::Term *T, const KontNode *K,
                       domain::StoreId Sigma, uint32_t Depth) {
    using namespace syntax;

    // (V, kappa, sigma): deliver phi_e(V, sigma) to the continuation.
    if (const auto *VT = dyn_cast<ValueTerm>(T))
      return appre(K, phi(VT->value(), Sigma), Sigma, Depth,
                   Opts.Prov ? provOfValue(VT->value(), Sigma)
                             : domain::NoProv);

    const auto *Let = cast<LetTerm>(T);
    const Term *Bound = Let->bound();

    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      Val U = phi(cast<ValueTerm>(Bound)->value(), Sigma);
      domain::StoreId S = Interner.joinAt(Sigma, Vars->of(Let->var()), U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, Vars->of(Let->var()), S,
                          Sigma, Let->id(), Let->loc(),
                          provOfValue(cast<ValueTerm>(Bound)->value(), Sigma));
      return evalC(Let->body(), K, S, Depth + 1);
    }

    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      Val Fun = phi(cast<ValueTerm>(App->fun())->value(), Sigma);
      Val Arg = phi(cast<ValueTerm>(App->arg())->value(), Sigma);
      const KontNode *K2 = cons(Let, K);
      return appke(App, Fun, Arg, K2, Sigma, Depth);
    }

    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      Val U0 = phi(cast<ValueTerm>(If->cond())->value(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      const KontNode *K2 = cons(Let, K);
      if (ThenOnly || ElseOnly)
        return evalC(ThenOnly ? If->thenBranch() : If->elseBranch(), K2,
                     Sigma, Depth + 1);

      // Both feasible: each branch analyzes the entire continuation; the
      // *answers* are joined (contrast with Figure 4's store merge).
      ++Stats.Joins;
      EvalOut B1 = evalC(If->thenBranch(), K2, Sigma, Depth + 1);
      EvalOut B2 = evalC(If->elseBranch(), K2, Sigma, Depth + 1);
      IAns Joined = Opts.Prov
                        ? joinAnswers(Interner, B1.A, B2.A, Opts.Prov,
                                      domain::EdgeKind::Join, If->id(),
                                      If->loc())
                        : joinAnswers(Interner, B1.A, B2.A);
      return EvalOut{std::move(Joined), std::min(B1.MinDep, B2.MinDep)};
    }

    case TermKind::TK_Loop: {
      // Section 6.2: join of delivering each natural to the continuation.
      // Exact computation is undecidable; unroll LoopUnroll times, then
      // optionally add the sound naturals() summary iterate.
      const KontNode *K2 = cons(Let, K);
      // No finite unrolling is exact (Section 6.2): flag the truncation
      // unconditionally — a join that *looks* converged at the bound is
      // still untrustworthy (a probe beyond the bound may change it).
      Stats.LoopBounded = true;
      IAns Acc = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      auto JoinIter = [&](const IAns &A) {
        return Opts.Prov ? joinAnswers(Interner, Acc, A, Opts.Prov,
                                       domain::EdgeKind::Widen, Let->id(),
                                       Let->loc())
                         : joinAnswers(Interner, Acc, A);
      };
      for (uint32_t I = 0; I < Opts.LoopUnroll; ++I) {
        EvalOut Bi =
            appre(K2, Val::number(D::constant(I)), Sigma, Depth + 1);
        Acc = JoinIter(Bi.A);
        MinDep = std::min(MinDep, Bi.MinDep);
        if (Stats.BudgetExhausted)
          break;
      }
      if (Opts.LoopSoundSummary) {
        domain::ProvId WidenProv =
            Opts.Prov ? Opts.Prov->value(domain::EdgeKind::Widen, Let->id(),
                                         Let->loc())
                      : domain::NoProv;
        EvalOut Bs = appre(K2, Val::number(D::naturals()), Sigma, Depth + 1,
                           WidenProv);
        Acc = JoinIter(Bs.A);
        MinDep = std::min(MinDep, Bs.MinDep);
      }
      return EvalOut{std::move(Acc), MinDep};
    }

    case TermKind::TK_Let:
      assert(false && "not ANF: let-bound let");
      return EvalOut{bottomAnswer(), Unconstrained};
    }
    assert(false && "unknown term kind");
    return EvalOut{bottomAnswer(), Unconstrained};
  }

  struct PairHash {
    size_t operator()(const std::pair<const void *, const void *> &P) const {
      uint64_t H = hashPointer(P.first);
      hashCombine(H, hashPointer(P.second));
      return H;
    }
  };

  const Context &Ctx;
  const syntax::Term *Program;
  std::vector<DirectBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CloSet CloTop;
  domain::StoreInterner<Val> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  DirectCfg Cfg;

  std::deque<KontNode> KontNodes;
  std::unordered_map<std::pair<const void *, const void *>, const KontNode *,
                     PairHash>
      KontCache;

  std::unordered_map<Key, IAns, KeyHash> Memo;
  std::unordered_map<Key, uint32_t, KeyHash> Active;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_SEMANTICCPSANALYZER_H
