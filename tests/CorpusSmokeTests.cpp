//===- tests/CorpusSmokeTests.cpp - Committed corpora stay alive -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every committed example program — the fuzz/batch seed corpus under
/// examples/corpus and the CLI samples under examples/programs — must
/// parse, A-normalize to a well-formed term, and drive all five
/// analyzers to a non-degraded fixpoint. A seed that stops parsing or
/// starts blowing its budget silently weakens the mutation corpus and
/// the CLI smoke tests; this makes the regression loud.
///
//===----------------------------------------------------------------------===//

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace cpsflow;

namespace {

namespace fs = std::filesystem;

/// All files under CPSFLOW_SOURCE_DIR/<Rel> with extension \p Ext,
/// sorted for stable test output.
std::vector<fs::path> corpusFiles(const std::string &Rel,
                                  const std::string &Ext) {
  std::vector<fs::path> Out;
  for (const fs::directory_entry &E :
       fs::directory_iterator(fs::path(CPSFLOW_SOURCE_DIR) / Rel))
    if (E.is_regular_file() && E.path().extension() == Ext)
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void checkProgram(const fs::path &Path) {
  SCOPED_TRACE(Path.filename().string());
  Context Ctx;
  Result<const syntax::Term *> Raw =
      syntax::parseSugaredProgram(Ctx, slurp(Path));
  ASSERT_TRUE(Raw.hasValue())
      << (Raw.hasValue() ? "" : Raw.error().str());

  const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
  Result<bool> Anf = anf::isAnf(T);
  EXPECT_TRUE(Anf.hasValue()) << (Anf.hasValue() ? "" : Anf.error().str());
  Result<bool> Unique = syntax::checkUniqueBinders(Ctx, T);
  EXPECT_TRUE(Unique.hasValue())
      << (Unique.hasValue() ? "" : Unique.error().str());

  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());

  // Free inputs bound to the numeric top, the batch driver's convention.
  using D = domain::ConstantDomain;
  std::vector<analysis::DirectBinding<D>> Init;
  for (Symbol X : syntax::freeVars(T))
    Init.push_back({X, domain::AbsVal<D>::number(D::top())});
  std::vector<analysis::CpsBinding<D>> CInit;
  for (const analysis::DirectBinding<D> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<D>(B.Value, *P)});

  analysis::AnalyzerOptions AOpts;
  AOpts.MaxGoals = 5'000'000;

  auto ExpectClean = [&](const char *Leg, const auto &R) {
    EXPECT_FALSE(R.Stats.BudgetExhausted)
        << Leg << " degraded on a committed seed";
  };
  ExpectClean("direct",
              analysis::DirectAnalyzer<D>(Ctx, T, Init, AOpts).run());
  ExpectClean("semantic",
              analysis::SemanticCpsAnalyzer<D>(Ctx, T, Init, AOpts).run());
  ExpectClean(
      "syntactic",
      analysis::SyntacticCpsAnalyzer<D>(Ctx, *P, CInit, AOpts).run());
  ExpectClean(
      "dup",
      analysis::DupAnalyzer<D>(Ctx, T, Init, /*Budget=*/2, AOpts).run());
  ExpectClean("pushdown",
              analysis::PushdownAnalyzer<D>(Ctx, T, Init, AOpts).run());
}

TEST(CorpusSmoke, FuzzSeedCorpusIsHealthy) {
  std::vector<fs::path> Files = corpusFiles("examples/corpus", ".scm");
  ASSERT_FALSE(Files.empty());
  for (const fs::path &P : Files)
    checkProgram(P);
}

TEST(CorpusSmoke, CliSamplesAreHealthy) {
  std::vector<fs::path> Files = corpusFiles("examples/programs", ".a");
  ASSERT_FALSE(Files.empty());
  for (const fs::path &P : Files)
    checkProgram(P);
}

} // namespace
