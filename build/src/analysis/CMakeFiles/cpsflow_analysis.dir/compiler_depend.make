# Empty compiler generated dependencies file for cpsflow_analysis.
# This may be replaced when dependencies are built.
