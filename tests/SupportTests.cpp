//===- tests/SupportTests.cpp - Support library tests -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Hashing.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace cpsflow;

namespace {

TEST(Symbol, InterningIsIdempotent) {
  SymbolTable Table;
  Symbol A = Table.intern("foo");
  Symbol B = Table.intern("foo");
  Symbol C = Table.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.spelling(A), "foo");
  EXPECT_EQ(Table.spelling(C), "bar");
}

TEST(Symbol, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  SymbolTable Table;
  EXPECT_TRUE(Table.intern("x").isValid());
}

TEST(Symbol, FreshNamesNeverCollide) {
  SymbolTable Table;
  Table.intern("x%0");
  std::set<Symbol> Seen;
  Seen.insert(Table.intern("x"));
  for (int I = 0; I < 100; ++I) {
    Symbol F = Table.fresh("x");
    EXPECT_TRUE(Seen.insert(F).second) << Table.spelling(F);
  }
}

TEST(Symbol, FreshPreservesStem) {
  SymbolTable Table;
  Symbol F = Table.fresh("acc");
  EXPECT_EQ(Table.spelling(F).substr(0, 4), "acc%");
}

TEST(Arena, AllocatesDistinctAlignedObjects) {
  Arena A;
  struct Node {
    uint64_t X;
    uint32_t Y;
  };
  Node *N1 = A.create<Node>(Node{1, 2});
  Node *N2 = A.create<Node>(Node{3, 4});
  EXPECT_NE(N1, N2);
  EXPECT_EQ(N1->X, 1u);
  EXPECT_EQ(N2->Y, 4u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(N1) % alignof(Node), 0u);
  EXPECT_EQ(A.numAllocations(), 2u);
}

TEST(Arena, SurvivesManySlabs) {
  Arena A;
  struct Big {
    char Data[1000];
  };
  char *First = &A.create<Big>()->Data[0];
  for (int I = 0; I < 1000; ++I)
    A.create<Big>();
  // The first object must still be readable (slabs never move).
  First[0] = 42;
  EXPECT_EQ(First[0], 42);
}

TEST(Arena, LargeAllocation) {
  Arena A;
  void *P = A.allocate(1 << 20, 64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  Rng A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Hashing, MixIsInjectiveOnSmallInputs) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 10000; ++I)
    EXPECT_TRUE(Seen.insert(mix64(I)).second);
}

TEST(Hashing, CombineOrderSensitive) {
  uint64_t A = 0, B = 0;
  hashCombine(A, 1);
  hashCombine(A, 2);
  hashCombine(B, 2);
  hashCombine(B, 1);
  EXPECT_NE(A, B);
}

TEST(Result, ValueAndError) {
  Result<int> Ok(5);
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_EQ(*Ok, 5);

  Result<int> Bad(Error("boom", SourceLoc{3, 7}));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_EQ(Bad.error().Message, "boom");
  EXPECT_EQ(Bad.error().str(), "3:7: boom");
}

TEST(Result, TakeMoves) {
  Result<std::string> R(std::string("hello"));
  std::string S = R.take();
  EXPECT_EQ(S, "hello");
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
  EXPECT_EQ((SourceLoc{2, 5}).str(), "2:5");
}

} // namespace
