# Empty dependencies file for loop_divergence.
# This may be replaced when dependencies are built.
