# Empty dependencies file for inline_vs_cps.
# This may be replaced when dependencies are built.
