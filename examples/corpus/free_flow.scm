; Data flow from two free inputs through let* chains; everything below
; the inputs must degrade to top while the constants stay exact.
(let* ((a (add1 x))
       (b (sub1 y))
       (c 5)
       (d (add1 c)))
  (if0 a b d))
