file(REMOVE_RECURSE
  "CMakeFiles/inline_vs_cps.dir/inline_vs_cps.cpp.o"
  "CMakeFiles/inline_vs_cps.dir/inline_vs_cps.cpp.o.d"
  "inline_vs_cps"
  "inline_vs_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inline_vs_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
