//===- analysis/DirectAnalyzer.h - Figure 4 analyzer ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The direct abstract collecting interpreter M_e of Figure 4, derived
/// from the Figure 1 interpreter by the Section 4 abstraction: one store
/// location per variable, environments dropped, numbers approximated by a
/// numeric domain D, closures by the powerset of (binder, body) pairs.
///
/// Characteristic behaviour (the subject of the paper's comparisons):
///
///  * At an application, *all* abstract closures of the operator are
///    applied and their answers *joined* before the let-body (the
///    continuation) is analyzed once — Theorem 5.2b's precision loss.
///  * At a conditional with an unknown test, both branches are analyzed
///    and their answers joined before the continuation — Theorem 5.2a's
///    precision loss.
///  * There is only ever one implicit continuation, so distinct procedure
///    returns are never confused — Theorem 5.1's precision *win* over the
///    syntactic-CPS analyzer.
///  * The `loop` rule is exact and computable: the join of all naturals
///    is just the numeric domain's summary (Section 6.2).
///
/// Termination follows Section 4.4: a goal whose (term, store) pair is
/// already on the active derivation path is cut off with the least precise
/// value (T, CL_T) paired with the current store. Completed subderivations
/// are memoized; results that depended on a cut through an enclosing goal
/// are provisional and are not cached (they are not context-independent).
///
/// Stores are hash-consed in a per-run StoreInterner: evaluation, the
/// memo table, and the active path all name stores by StoreId, so a goal
/// key is (node pointer, id) — O(1) to build, hash, and compare — and
/// sigma updates are copy-on-write joins that reuse the parent store when
/// nothing moved. Dense stores appear only at the run() boundary.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_DIRECTANALYZER_H
#define CPSFLOW_ANALYSIS_DIRECTANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/MemoTransfer.h"
#include "analysis/Universe.h"
#include "anf/Anf.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/StoreInterner.h"
#include "gen/Digest.h"
#include "syntax/Analysis.h"
#include "syntax/Ast.h"
#include "syntax/Printer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {

/// One entry of the initial abstract store (e.g. Theorem 5.1 binds f to
/// the identity closure, z to T).
template <typename D> struct DirectBinding {
  Symbol Var;
  domain::AbsVal<D> Value;
};

/// Result of a Figure 4 run.
template <typename D> struct DirectResult {
  using Val = domain::AbsVal<D>;

  AnswerOf<Val> Answer;
  AnalyzerStats Stats;
  DirectCfg Cfg;
  std::shared_ptr<domain::VarIndex> Vars;

  /// The final abstract store entry of \p X (bottom if outside the
  /// universe).
  Val valueOf(Symbol X) const {
    if (auto I = Vars->tryOf(X))
      return Answer.Store.get(*I);
    return Val::bot();
  }
};

/// The Figure 4 analyzer, parameterized by the numeric domain \p D
/// (domain/NumDomain.h). Single-use: construct and call run() once.
template <typename D> class DirectAnalyzer {
public:
  using Val = domain::AbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  /// \pre \p Program is in A-normal form with unique binders; the lambdas
  /// referenced by \p Initial use binders disjoint from \p Program's.
  DirectAnalyzer(const Context &Ctx, const syntax::Term *Program,
                 std::vector<DirectBinding<D>> Initial = {},
                 AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)), Opts(Opts) {
    assert(anf::isAnfQuick(Program) && "Figure 4 requires A-normal form");

    std::vector<const syntax::LamValue *> ExtraLams;
    std::vector<Symbol> ExtraVars;
    for (const DirectBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CloRef &C : B.Value.Clos)
        if (C.Tag == domain::CloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        directVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = directClosureUniverse(Program, ExtraLams);
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(Vars->size());
    setupXfer();
  }

  /// Runs the analysis from the initial store.
  DirectResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const DirectBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, Vars->of(B.Var), B.Value);
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(B.Var), Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalTerm(Program, Sigma0, 0);
    if (XferOn && Opts.Xfer->Export && !Stats.BudgetExhausted)
      exportTable();
    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Prov)
      Opts.Prov->noteFinal(Out.A ? Out.A->Store : Interner.bottom());

    DirectResult<D> R;
    R.Answer = Out.A ? Answer{std::move(Out.A->Value),
                              Interner.store(Out.A->Store)}
                     : Answer{Val::bot(), StoreT(Vars->size())};
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  /// The universe of abstract closures CL_T (program and initial-store
  /// lambdas plus inc and dec), used for the Section 4.4 cut-off value.
  const domain::CloSet &closureUniverse() const { return CloTop; }

  /// The run's hash-consing table (observability: distinct stores seen).
  const domain::StoreInterner<Val> &interner() const { return Interner; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  using IAns = InternedAnswerOf<Val>;

  /// An answer plus the shallowest active ancestor the subderivation was
  /// cut against (Unconstrained if none — then the answer is
  /// context-independent and cacheable). A disengaged answer means the
  /// goal is *dead*: the join over zero execution paths (an application
  /// with no abstract closures, or a conditional whose feasible branches
  /// all died). Dead bindings kill the rest of the let chain, mirroring
  /// the CPS analyzers, where a dead path simply never reaches its
  /// continuation.
  struct EvalOut {
    std::optional<IAns> A;
    uint32_t MinDep;
    /// Derivation of the answer *value* (NoProv when provenance is off or
    /// the value is a leaf: literal, lambda, primitive).
    domain::ProvId Prov = domain::NoProv;
  };

  struct Key {
    const void *Node;
    domain::StoreId Store;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.Store == B.Store;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashPointer(K.Node);
      hashCombine(H, K.Store);
      return H;
    }
  };

  /// The Section 4.4 cut-off: the least precise value with the current
  /// store.
  IAns cutAnswer(domain::StoreId Sigma) const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    return IAns{std::move(V), Sigma};
  }

  // phi_e of Figure 4.
  Val phi(const syntax::Value *V, domain::StoreId Sigma) const {
    using namespace syntax;
    switch (V->kind()) {
    case ValueKind::VK_Num:
      return Val::number(D::constant(cast<NumValue>(V)->value()));
    case ValueKind::VK_Var:
      return Interner.get(Sigma, Vars->of(cast<VarValue>(V)->name()));
    case ValueKind::VK_Prim:
      return Val::closures(domain::CloSet::single(
          cast<PrimValue>(V)->op() == PrimOp::Add1 ? domain::CloRef::inc()
                                                   : domain::CloRef::dec()));
    case ValueKind::VK_Lam:
      return Val::closures(
          domain::CloSet::single(domain::CloRef::lam(cast<LamValue>(V))));
    }
    assert(false && "unknown value kind");
    return Val::bot();
  }

  /// A Cut value node for provenance (goal repetition or budget trip at
  /// \p T). Only called with Opts.Prov non-null.
  domain::ProvId cutProv(const syntax::Term *T,
                         support::DegradeReason R) const {
    return Opts.Prov->value(domain::EdgeKind::Cut, T->id(), T->loc(),
                            domain::NoProv, domain::NoProv, R);
  }

  EvalOut evalTerm(const syntax::Term *T, domain::StoreId Sigma,
                   uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{cutAnswer(Sigma), 0,
                     Opts.Prov ? cutProv(T, Stats.Degraded) : domain::NoProv};
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return EvalOut{cutAnswer(Sigma), 0,
                     Opts.Prov ? cutProv(T, R) : domain::NoProv};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key K{T, Sigma};
    if (XferOn)
      noteGoal(T, Sigma);
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(K) != 0; });
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      if (XferOn)
        mergeMemoHit(K, Sigma);
      return EvalOut{It->second, Unconstrained,
                     Opts.Prov ? Opts.Prov->memoized(T, Sigma)
                               : domain::NoProv};
    }
    if (auto It = Active.find(K); It != Active.end()) {
      ++Stats.Cuts;
      if (XferOn && !Frames.empty())
        Frames.back().UsedCut = true;
      return EvalOut{cutAnswer(Sigma), It->second,
                     Opts.Prov ? cutProv(T, support::DegradeReason::None)
                               : domain::NoProv};
    }
    if (XferOn && !Imports.empty())
      if (std::optional<EvalOut> R = tryReplay(T, K, Sigma))
        return std::move(*R);

    size_t TraceLine = 0;
    if (Opts.DerivationSink &&
        Opts.DerivationSink->size() < Opts.DerivationMaxLines) {
      TraceLine = Opts.DerivationSink->size();
      Opts.DerivationSink->push_back(
          std::string(std::min<uint32_t>(Depth, 40), ' ') + "(" +
          syntax::print(Ctx, T) + ", sigma) |- ...");
    }

    Active.emplace(K, Depth);
    if (XferOn)
      Frames.push_back(Frame{T, Sigma, Digests->ofTerm(T), {}, {}, false});
    EvalOut Out = evalUncached(T, Sigma, Depth);
    if (XferOn)
      popFrame(K, Out, Depth);
    Active.erase(K);

    if (Opts.DerivationSink && TraceLine < Opts.DerivationSink->size()) {
      std::string &Line = (*Opts.DerivationSink)[TraceLine];
      Line.resize(Line.size() - 3); // drop "..."
      Line += Out.A ? Out.A->Value.str(Ctx) : std::string("dead");
    }
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo) {
        Memo.emplace(K, Out.A);
        if (Opts.Prov)
          Opts.Prov->memoize(T, Sigma, Out.Prov);
      }
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(const syntax::Value *V,
                             domain::StoreId Sigma) const {
    if (const auto *Var = syntax::dyn_cast<syntax::VarValue>(V))
      return Opts.Prov->factOf(Vars->of(Var->name()), Sigma);
    return domain::NoProv;
  }

  EvalOut evalUncached(const syntax::Term *T, domain::StoreId Sigma,
                       uint32_t Depth) {
    using namespace syntax;

    // (V, sigma) M_e ((phi_e(V, sigma), sigma)).
    if (const auto *VT = dyn_cast<ValueTerm>(T))
      return EvalOut{IAns{phiR(VT->value(), Sigma), Sigma}, Unconstrained,
                     Opts.Prov ? provOfValue(VT->value(), Sigma)
                               : domain::NoProv};

    const auto *Let = cast<LetTerm>(T);
    const Term *Bound = Let->bound();
    uint32_t X = Vars->of(Let->var());

    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      // (let (x V) M): continue with sigma[x := sigma(x) join u].
      Val U = phiR(cast<ValueTerm>(Bound)->value(), Sigma);
      domain::StoreId S = joinAtW(Sigma, X, U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Sigma, Let->id(),
                          Let->loc(),
                          provOfValue(cast<ValueTerm>(Bound)->value(), Sigma));
      return evalTerm(Let->body(), S, Depth + 1);
    }

    case TermKind::TK_App: {
      // (let (x (V1 V2)) M): app_e joins over all closures, then the body
      // is analyzed once in the joined store.
      const auto *App = cast<AppTerm>(Bound);
      Val Fun = phiR(cast<ValueTerm>(App->fun())->value(), Sigma);
      Val Arg = phiR(cast<ValueTerm>(App->arg())->value(), Sigma);

      domain::CloSet &Rec = Cfg.Callees[App];
      for (const domain::CloRef &C : Fun.Clos)
        Rec.insert(C);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths; // join over no paths
        return EvalOut{std::nullopt, Unconstrained};
      }

      std::optional<IAns> Acc;
      uint32_t MinDep = Unconstrained;
      domain::ProvId AccProv = domain::NoProv;
      domain::ProvId ArgProv =
          Opts.Prov ? provOfValue(cast<ValueTerm>(App->arg())->value(), Sigma)
                    : domain::NoProv;
      uint64_t Merged = 0;
      for (const domain::CloRef &C : Fun.Clos) {
        std::optional<IAns> Ai;
        domain::ProvId AiProv = domain::NoProv;
        switch (C.Tag) {
        case domain::CloRef::K::Inc:
          Ai = IAns{Val::number(D::add1(Arg.Num)), Sigma};
          AiProv = ArgProv;
          break;
        case domain::CloRef::K::Dec:
          Ai = IAns{Val::number(D::sub1(Arg.Num)), Sigma};
          AiProv = ArgProv;
          break;
        case domain::CloRef::K::Lam: {
          domain::StoreId S =
              joinAtW(Sigma, Vars->of(C.Lam->param()), Arg);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow,
                              Vars->of(C.Lam->param()), S, Sigma, App->id(),
                              App->loc(), ArgProv);
          EvalOut R = evalTerm(C.Lam->body(), S, Depth + 1);
          Ai = std::move(R.A);
          AiProv = R.Prov;
          MinDep = std::min(MinDep, R.MinDep);
          break;
        }
        }
        if (Ai) {
          ++Merged;
          if (!Acc) {
            Acc = std::move(*Ai);
            AccProv = AiProv;
          } else if (Opts.Prov) {
            Acc = joinAnswers(Interner, *Acc, *Ai, Opts.Prov,
                              domain::EdgeKind::Join, App->id(), App->loc());
            AccProv = Opts.Prov->value(domain::EdgeKind::Join, App->id(),
                                       App->loc(), AccProv, AiProv);
          } else {
            Acc = joinAnswers(Interner, *Acc, *Ai);
          }
        }
      }
      if (Merged > 1)
        Stats.Joins += Merged - 1; // Theorem 5.2b multi-callee merge
      if (!Acc)
        return EvalOut{std::nullopt, MinDep}; // every callee path died

      domain::StoreId S = joinAtW(Acc->Store, X, Acc->Value);
      if (Opts.Prov)
        Opts.Prov->assign(Merged > 1 ? domain::EdgeKind::Join
                                     : domain::EdgeKind::Flow,
                          X, S, Acc->Store, App->id(), App->loc(), AccProv);
      EvalOut Body = evalTerm(Let->body(), S, Depth + 1);
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_If0: {
      // (let (x (if0 V0 M1 M2)) M): single-branch rules, or the *merging*
      // two-branch rule — the values and stores of both branches are
      // joined before M is analyzed once.
      const auto *If = cast<If0Term>(Bound);
      Val U0 = phiR(cast<ValueTerm>(If->cond())->value(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      if (ThenOnly || ElseOnly) {
        const Term *Branch = ThenOnly ? If->thenBranch() : If->elseBranch();
        EvalOut Bi = evalTerm(Branch, Sigma, Depth + 1);
        if (!Bi.A)
          return EvalOut{std::nullopt, Bi.MinDep};
        domain::StoreId S = joinAtW(Bi.A->Store, X, Bi.A->Value);
        if (Opts.Prov)
          Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Bi.A->Store,
                            If->id(), If->loc(), Bi.Prov);
        EvalOut Body = evalTerm(Let->body(), S, Depth + 1);
        Body.MinDep = std::min(Body.MinDep, Bi.MinDep);
        return Body;
      }

      EvalOut B1 = evalTerm(If->thenBranch(), Sigma, Depth + 1);
      EvalOut B2 = evalTerm(If->elseBranch(), Sigma, Depth + 1);
      uint32_t MinDep = std::min(B1.MinDep, B2.MinDep);
      std::optional<IAns> Joined;
      bool BothArms = B1.A && B2.A;
      if (BothArms) {
        ++Stats.Joins; // Theorem 5.2a two-branch merge
        Joined = Opts.Prov
                     ? joinAnswers(Interner, *B1.A, *B2.A, Opts.Prov,
                                   domain::EdgeKind::Join, If->id(),
                                   If->loc())
                     : joinAnswers(Interner, *B1.A, *B2.A);
      } else if (B1.A)
        Joined = std::move(B1.A);
      else if (B2.A)
        Joined = std::move(B2.A);
      if (!Joined)
        return EvalOut{std::nullopt, MinDep}; // both branches died
      domain::StoreId S = joinAtW(Joined->Store, X, Joined->Value);
      if (Opts.Prov) {
        // For the merging rule both branch derivations are parents; for a
        // single surviving branch only its derivation is.
        domain::ProvId VP1 = B1.A || BothArms ? B1.Prov : B2.Prov;
        domain::ProvId VP2 = BothArms ? B2.Prov : domain::NoProv;
        Opts.Prov->assign(BothArms ? domain::EdgeKind::Join
                                   : domain::EdgeKind::Flow,
                          X, S, Joined->Store, If->id(), If->loc(), VP1, VP2);
      }
      EvalOut Body = evalTerm(Let->body(), S, Depth + 1);
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_Loop: {
      // (loop, sigma) M_e (join_i (i, {}), sigma): computable exactly —
      // the join of all naturals is the domain's summary element.
      domain::StoreId S =
          joinAtW(Sigma, X, Val::number(D::naturals()));
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Widen, X, S, Sigma, Let->id(),
                          Let->loc());
      return evalTerm(Let->body(), S, Depth + 1);
    }

    case TermKind::TK_Let:
      assert(false && "not ANF: let-bound let");
      return EvalOut{std::nullopt, Unconstrained};
    }
    assert(false && "unknown term kind");
    return EvalOut{std::nullopt, Unconstrained};
  }

  // ===-- Cross-run memo transfer (AnalyzerOptions::Xfer) --============//
  //
  // When engaged (XferOn), every live goal carries a Frame that records
  // which store slots its subderivation touched (phi reads and joinAt
  // targets), which inner goals ran at the frame's own entry store, and
  // whether a Section 4.4 cut fired inside. Completed frames fold into
  // their parent and, when the goal memoizes, into MemoTrack — the data
  // exportTable() later turns into portable XferEntry fingerprints.
  // Imported entries replay at the matching term when every touched slot
  // holds the recorded value and no same-store active ancestor is among
  // the entry's inner goals (MemoTransfer.h states the exactness
  // argument). Tracking never changes answers or work counters — it only
  // observes — so a cold Xfer run is byte-identical to a plain run.

  /// Engages transfer if the options ask for it and the program is fully
  /// content-addressable (no digest or spelling-hash collisions; every
  /// CL_T lambda inside the digested tree).
  void setupXfer() {
    const MemoXfer *X = Opts.Xfer;
    if (!X || Opts.Prov || Opts.DerivationSink)
      return;
    Digests = X->Digests;
    if (!Digests || Digests->collided())
      return;
    SpellOfSlot.resize(Vars->size());
    for (uint32_t I = 0; I < Vars->size(); ++I) {
      uint64_t H = xferSpellingHash(Ctx.spelling(Vars->symbolAt(I)));
      SpellOfSlot[I] = H;
      if (!SlotOfSpell.emplace(H, I).second)
        return; // two universe variables share a spelling hash
    }
    for (const domain::CloRef &C : CloTop)
      if (C.Tag == domain::CloRef::K::Lam) {
        uint64_t Dg = Digests->ofValue(C.Lam);
        if (!Dg)
          return; // initial-binding lambda outside the digested tree
        UniverseDigests.push_back(Dg);
      }
    std::sort(UniverseDigests.begin(), UniverseDigests.end());
    XferOn = true;
    buildImports(static_cast<const MemoTable<D> *>(X->Import));
  }

  /// Rebinds an imported table's digests to this run's nodes and slots.
  /// Entries that reference anything this program lacks are dropped; a
  /// universe mismatch drops the whole table (cut answers embed CL_T).
  void buildImports(const MemoTable<D> *Tab) {
    if (!Tab || Tab->UniverseLamDigests != UniverseDigests)
      return;
    std::unordered_multimap<uint64_t, const syntax::Term *> NodesOf;
    Digests->eachTerm(
        [&](const syntax::Term *T, uint64_t Dg) { NodesOf.emplace(Dg, T); });
    for (const XferEntry<D> &E : Tab->Entries) {
      auto [B, End] = NodesOf.equal_range(E.TermDigest);
      if (B == End)
        continue;
      ImportedEntry IE;
      IE.Dead = E.Dead;
      IE.UsedCut = E.UsedCut;
      IE.SameStore = &E.SameStoreTerms;
      bool Ok = true;
      for (const auto &[Spell, XV] : E.Required) {
        auto SIt = SlotOfSpell.find(Spell);
        std::optional<Val> V =
            SIt == SlotOfSpell.end() ? std::nullopt : fromXfer(XV);
        if (!V) {
          Ok = false;
          break;
        }
        IE.Required.emplace_back(SIt->second, std::move(*V));
        IE.Touched.push_back(SIt->second);
      }
      if (Ok && !E.Dead) {
        if (std::optional<Val> V = fromXfer(E.AnswerValue))
          IE.Answer = std::move(*V);
        else
          Ok = false;
        for (const auto &[Spell, XV] : E.Delta) {
          if (!Ok)
            break;
          auto SIt = SlotOfSpell.find(Spell);
          std::optional<Val> V =
              SIt == SlotOfSpell.end() ? std::nullopt : fromXfer(XV);
          if (!V)
            Ok = false;
          else
            IE.Delta.emplace_back(SIt->second, std::move(*V));
        }
      }
      if (!Ok)
        continue;
      for (auto N = B; N != End; ++N)
        Imports[N->second].push_back(IE);
    }
  }

  std::optional<Val> fromXfer(const XferVal<D> &X) const {
    Val V;
    V.Num = X.Num;
    for (const typename XferVal<D>::Clo &C : X.Clos)
      switch (static_cast<domain::CloRef::K>(C.Tag)) {
      case domain::CloRef::K::Inc:
        V.Clos.insert(domain::CloRef::inc());
        break;
      case domain::CloRef::K::Dec:
        V.Clos.insert(domain::CloRef::dec());
        break;
      case domain::CloRef::K::Lam: {
        const syntax::LamValue *L = Digests->lamOf(C.LamDigest);
        if (!L)
          return std::nullopt;
        V.Clos.insert(domain::CloRef::lam(L));
        break;
      }
      }
    return V;
  }

  std::optional<XferVal<D>> toXfer(const Val &V) const {
    XferVal<D> X;
    X.Num = V.Num;
    for (const domain::CloRef &C : V.Clos) {
      uint64_t Dg = 0;
      if (C.Tag == domain::CloRef::K::Lam) {
        Dg = Digests->ofValue(C.Lam);
        if (!Dg)
          return std::nullopt;
      }
      X.Clos.push_back({static_cast<uint8_t>(C.Tag), Dg});
    }
    std::sort(X.Clos.begin(), X.Clos.end());
    return X;
  }

  /// Registers a starting goal with every active frame sharing its entry
  /// store. Stores only grow down the derivation path, so those frames
  /// are a suffix of the stack. Digest 0 (un-digested node) is recorded
  /// too — it poisons the affected frames' entries against export.
  void noteGoal(const syntax::Term *T, domain::StoreId Sigma) {
    auto It = Frames.rbegin();
    if (It == Frames.rend() || It->Entry != Sigma)
      return;
    uint64_t Dg = Digests->ofTerm(T);
    for (; It != Frames.rend() && It->Entry == Sigma; ++It)
      It->SameStore.insert(Dg);
  }

  /// Folds a completed (or replayed/memo-hit) subderivation's tracking
  /// into the enclosing frames, as if it had been walked live.
  void mergeInfo(const std::vector<uint32_t> &Touched,
                 const std::vector<uint64_t> &SameStore, bool UsedCut,
                 domain::StoreId Sigma) {
    if (Frames.empty())
      return;
    Frame &P = Frames.back();
    P.Touched.insert(Touched.begin(), Touched.end());
    P.UsedCut |= UsedCut;
    for (auto It = Frames.rbegin(); It != Frames.rend() && It->Entry == Sigma;
         ++It)
      It->SameStore.insert(SameStore.begin(), SameStore.end());
  }

  void mergeMemoHit(const Key &K, domain::StoreId Sigma) {
    auto It = MemoTrack.find(K);
    if (It == MemoTrack.end()) {
      if (!Frames.empty()) // untracked memo entry: poison the parent
        Frames.back().SameStore.insert(0);
      return;
    }
    mergeInfo(It->second.Touched, It->second.SameStore, It->second.UsedCut,
              Sigma);
  }

  /// Attempts to answer the goal from an imported entry. A hit skips the
  /// whole subderivation: the answer store is the entry store joined with
  /// the recorded delta — exactly what the live walk would have built.
  std::optional<EvalOut> tryReplay(const syntax::Term *T, const Key &K,
                                   domain::StoreId Sigma) {
    auto It = Imports.find(T);
    if (It == Imports.end())
      return std::nullopt;
    for (const ImportedEntry &E : It->second) {
      bool Stale = false;
      for (const auto &[Slot, V] : E.Required)
        if (!(Interner.get(Sigma, Slot) == V)) {
          Stale = true;
          break;
        }
      if (Stale)
        continue;
      // A live walk would re-reach one of the entry's same-store inner
      // goals while it is active above us — the Section 4.4 cut would
      // fire and the recorded answer would be wrong here. Fall through.
      bool Conflict = false;
      for (auto F = Frames.rbegin(); F != Frames.rend() && F->Entry == Sigma;
           ++F)
        if (F->Dg != 0 &&
            std::binary_search(E.SameStore->begin(), E.SameStore->end(),
                               F->Dg)) {
          Conflict = true;
          break;
        }
      if (Conflict)
        continue;
      ++Stats.ReplayHits;
      std::optional<IAns> A;
      if (!E.Dead) {
        domain::StoreId S = Sigma;
        for (const auto &[Slot, V] : E.Delta)
          S = Interner.joinAt(S, Slot, V);
        A = IAns{E.Answer, S};
      }
      if (Opts.UseMemo) {
        Memo.emplace(K, A);
        MemoTrack.emplace(
            K, TrackInfo{E.Touched, *E.SameStore, E.UsedCut});
      }
      mergeInfo(E.Touched, *E.SameStore, E.UsedCut, Sigma);
      return EvalOut{std::move(A), Unconstrained, domain::NoProv};
    }
    ++Stats.ReplayMisses;
    return std::nullopt;
  }

  /// Pops the completed goal's frame: records its tracking for export if
  /// the goal is about to memoize, then folds it into the parent.
  void popFrame(const Key &K, const EvalOut &Out, uint32_t Depth) {
    Frame F = std::move(Frames.back());
    Frames.pop_back();
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted && Opts.UseMemo) {
      TrackInfo TI;
      TI.Touched.assign(F.Touched.begin(), F.Touched.end());
      std::sort(TI.Touched.begin(), TI.Touched.end());
      TI.SameStore.assign(F.SameStore.begin(), F.SameStore.end());
      std::sort(TI.SameStore.begin(), TI.SameStore.end());
      TI.UsedCut = F.UsedCut;
      MemoTrack.emplace(K, std::move(TI));
    }
    if (!Frames.empty()) {
      Frame &P = Frames.back();
      P.Touched.insert(F.Touched.begin(), F.Touched.end());
      P.UsedCut |= F.UsedCut;
      if (P.Entry == F.Entry)
        P.SameStore.insert(F.SameStore.begin(), F.SameStore.end());
    }
  }

  /// Converts every tracked memo entry to portable form. Ordered by
  /// (term digest, fingerprint) so identical runs export identical
  /// tables whatever the memo map's iteration order.
  void exportTable() {
    auto *Out = static_cast<MemoTable<D> *>(Opts.Xfer->Export);
    Out->UniverseLamDigests = UniverseDigests;
    for (const auto &[K, A] : Memo) {
      auto TIt = MemoTrack.find(K);
      if (TIt == MemoTrack.end())
        continue;
      const TrackInfo &TI = TIt->second;
      if (!TI.SameStore.empty() && TI.SameStore.front() == 0)
        continue; // an inner goal's term was outside the digested tree
      XferEntry<D> E;
      E.TermDigest =
          Digests->ofTerm(static_cast<const syntax::Term *>(K.Node));
      if (E.TermDigest == 0)
        continue;
      E.UsedCut = TI.UsedCut;
      E.SameStoreTerms = TI.SameStore;
      bool Ok = true;
      for (uint32_t Slot : TI.Touched) {
        std::optional<XferVal<D>> XV = toXfer(Interner.get(K.Store, Slot));
        if (!XV) {
          Ok = false;
          break;
        }
        E.Required.emplace_back(SpellOfSlot[Slot], std::move(*XV));
      }
      if (Ok && !A) {
        E.Dead = true;
      } else if (Ok) {
        std::optional<XferVal<D>> XV = toXfer(A->Value);
        if (!XV)
          continue;
        E.AnswerValue = std::move(*XV);
        const StoreT &AS = Interner.store(A->Store);
        const StoreT &ES = Interner.store(K.Store);
        for (uint32_t I = 0; I < AS.size() && Ok; ++I) {
          if (AS.get(I) == ES.get(I))
            continue;
          std::optional<XferVal<D>> DV = toXfer(AS.get(I));
          if (!DV)
            Ok = false;
          else
            E.Delta.emplace_back(SpellOfSlot[I], std::move(*DV));
        }
      }
      if (!Ok)
        continue;
      std::sort(E.Required.begin(), E.Required.end(),
                [](const auto &X, const auto &Y) { return X.first < Y.first; });
      std::sort(E.Delta.begin(), E.Delta.end(),
                [](const auto &X, const auto &Y) { return X.first < Y.first; });
      Out->Entries.push_back(std::move(E));
    }
    std::sort(Out->Entries.begin(), Out->Entries.end(),
              [](const XferEntry<D> &X, const XferEntry<D> &Y) {
                if (X.TermDigest != Y.TermDigest)
                  return X.TermDigest < Y.TermDigest;
                return X.fingerprint() < Y.fingerprint();
              });
  }

  /// phi with read tracking (evalUncached call sites only).
  Val phiR(const syntax::Value *V, domain::StoreId Sigma) {
    if (XferOn)
      if (const auto *Var = syntax::dyn_cast<syntax::VarValue>(V))
        Frames.back().Touched.insert(Vars->of(Var->name()));
    return phi(V, Sigma);
  }

  /// joinAt with write-target tracking (evalUncached call sites only).
  domain::StoreId joinAtW(domain::StoreId Base, uint32_t Slot, const Val &U) {
    if (XferOn)
      Frames.back().Touched.insert(Slot);
    return Interner.joinAt(Base, Slot, U);
  }

  const Context &Ctx;
  const syntax::Term *Program;
  std::vector<DirectBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CloSet CloTop;
  domain::StoreInterner<Val> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  DirectCfg Cfg;

  std::unordered_map<Key, std::optional<IAns>, KeyHash> Memo;
  std::unordered_map<Key, uint32_t, KeyHash> Active;

  // -- Cross-run memo transfer state (engaged only when XferOn).

  /// One live goal's tracking record.
  struct Frame {
    const syntax::Term *T;
    domain::StoreId Entry;
    uint64_t Dg; ///< subtree digest of T (0 when outside the tree)
    std::unordered_set<uint32_t> Touched;
    std::unordered_set<uint64_t> SameStore;
    bool UsedCut;
  };
  /// A memoized goal's completed tracking record (sorted vectors).
  struct TrackInfo {
    std::vector<uint32_t> Touched;
    std::vector<uint64_t> SameStore;
    bool UsedCut = false;
  };
  /// An imported entry rebound to this run's nodes and slots.
  struct ImportedEntry {
    std::vector<std::pair<uint32_t, Val>> Required;
    std::vector<std::pair<uint32_t, Val>> Delta;
    Val Answer;
    bool Dead = false;
    bool UsedCut = false;
    std::vector<uint32_t> Touched;
    /// Borrowed from the import table (MemoXfer::Import outlives the run).
    const std::vector<uint64_t> *SameStore = nullptr;
  };

  bool XferOn = false;
  const gen::SubtreeDigests *Digests = nullptr;
  std::vector<uint64_t> SpellOfSlot;
  std::unordered_map<uint64_t, uint32_t> SlotOfSpell;
  std::vector<uint64_t> UniverseDigests;
  std::vector<Frame> Frames;
  std::unordered_map<Key, TrackInfo, KeyHash> MemoTrack;
  std::unordered_map<const syntax::Term *, std::vector<ImportedEntry>> Imports;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_DIRECTANALYZER_H
