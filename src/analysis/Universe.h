//===- analysis/Universe.h - Analysis universes -----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction of the finite universes an analysis run works over: the
/// variables its abstract store may mention (Section 4.1: one location per
/// variable) and the abstract closures / continuations CL_T and K_T used
/// for the Section 4.4 loop cut-off values. Both must cover not just the
/// program text but also the lambdas referenced from the initial abstract
/// store (the theorem witnesses seed stores with closures, e.g. Theorem
/// 5.1's identity closure for f).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_UNIVERSE_H
#define CPSFLOW_ANALYSIS_UNIVERSE_H

#include "cps/Transform.h"
#include "domain/AbsValue.h"
#include "syntax/Ast.h"

#include <vector>

namespace cpsflow {
namespace analysis {

/// All variables a direct/semantic analysis of \p Program with initial
/// store entries for \p ExtraVars and closures over \p ExtraLams may bind.
std::vector<Symbol>
directVariableUniverse(const syntax::Term *Program,
                       const std::vector<const syntax::LamValue *> &ExtraLams,
                       const std::vector<Symbol> &ExtraVars);

/// CL_T for the direct/semantic analyses: inc, dec, every lambda in
/// \p Program, and every lambda in (or nested in) \p ExtraLams.
domain::CloSet directClosureUniverse(
    const syntax::Term *Program,
    const std::vector<const syntax::LamValue *> &ExtraLams);

/// All variables (Vars and KVars) a syntactic-CPS analysis of \p Program
/// with extra store entries may bind.
std::vector<Symbol>
cpsVariableUniverse(const cps::CpsProgram &Program,
                    const std::vector<const cps::CpsLam *> &ExtraLams,
                    const std::vector<Symbol> &ExtraVars);

/// CL_T for the syntactic-CPS analysis: inck, deck, and every CPS lambda.
domain::CpsCloSet
cpsClosureUniverse(const cps::CpsProgram &Program,
                   const std::vector<const cps::CpsLam *> &ExtraLams);

/// K_T for the syntactic-CPS analysis: stop and every continuation lambda.
domain::KontSet
cpsKontUniverse(const cps::CpsProgram &Program,
                const std::vector<const cps::CpsLam *> &ExtraLams);

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_UNIVERSE_H
