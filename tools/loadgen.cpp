//===- tools/loadgen.cpp - Concurrent load driver for cpsflow serve -------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a corpus directory of *.scm programs against a running
/// `cpsflow serve` daemon at N concurrent clients and reports what the
/// service did with the load:
///
///   loadgen SOCKET DIR [--clients N] [--iterations K] [--analyzer A]
///           [--domain D] [--verify] [--out FILE]
///
/// Each client opens one connection and issues K requests sequentially
/// (request i of client c targets program (c*31+i) mod |corpus|, so
/// clients interleave the corpus instead of marching in lockstep).
/// Every response is parsed and classified: ok, ok-degraded, cached,
/// shed, or error-by-kind. The report is bench_diff-compatible — a
/// "programs" array carrying the per-leg work counters from each
/// program's first clean response — plus a "loadgen" section with
/// latency percentiles, shed/error/degraded counts, and the cache hit
/// rate. With --verify every clean response's answer is checked against
/// a fresh in-process analysis of the same program; a mismatch is an
/// unsound response and a failing exit.
///
/// Exit codes: 0 success; 1 transport failure, a response that is not
/// valid protocol JSON, or an unsound answer under --verify; 2 usage.
///
//===----------------------------------------------------------------------===//

#include "serve/Analyze.h"
#include "serve/Protocol.h"
#include "support/JsonParse.h"
#include "support/ParseNum.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <cctype>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cpsflow;

namespace {

struct Options {
  std::string Socket;
  std::string Dir;
  unsigned Clients = 4;
  uint64_t Iterations = 0; ///< requests per client; 0 = one corpus pass
  std::string Analyzer = "direct";
  std::string Domain = "constant";
  bool Verify = false;
  std::string OutFile;
  /// Edit-replay mode: one client mutates one leaf of the first corpus
  /// program per iteration and measures warm (incremental) vs cold
  /// re-analysis on the same daemon.
  bool EditReplay = false;
  /// Fail if warm goals exceed this fraction of cold goals across the
  /// edit-replay run (<= 0 disables the gate).
  double MaxGoalRatio = 0;
  /// Scrape mode: fetch the metrics op in both formats, validate the
  /// Prometheus exposition, and check the counter-consistency invariant.
  bool Scrape = false;
  /// Scrape: require admitted == responded + shed + failed exactly
  /// (valid only once every issued request has been answered); default
  /// checks the always-true mid-run direction, admitted >= sum.
  bool StrictInvariant = false;
};

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::fprintf(stderr, "loadgen: %s\n", Message);
  std::fprintf(stderr,
               "usage: loadgen SOCKET DIR [--clients N] [--iterations K]\n"
               "               [--analyzer direct|semantic|syntactic|dup|"
               "pushdown]\n"
               "               [--domain constant|unit|sign|parity|interval]\n"
               "               [--verify] [--out FILE]\n"
               "               [--edit-replay] [--max-goal-ratio F]\n"
               "       loadgen SOCKET --scrape [--strict-invariant] "
               "[--out FILE]\n"
               "--edit-replay mutates one numeric leaf of the first corpus\n"
               "program per iteration and measures warm (incremental) vs\n"
               "cold re-analysis; --max-goal-ratio F fails the run when\n"
               "warm goals exceed F * cold goals\n"
               "--scrape fetches the metrics op (Prometheus + JSON),\n"
               "validates the exposition, and fails unless admitted >=\n"
               "responded + shed + failed (== with --strict-invariant)\n");
  std::exit(2);
}

uint64_t flagUint(const char *Flag, const char *Text) {
  Result<uint64_t> R = support::parseUint(Text, /*Max=*/uint64_t{1} << 32);
  if (!R)
    usage((std::string(Flag) + ": " + R.error().str()).c_str());
  return *R;
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  std::vector<std::string> Positional;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--clients" && I + 1 < Argc) {
      O.Clients = static_cast<unsigned>(flagUint("--clients", Argv[++I]));
      if (O.Clients == 0)
        usage("--clients: need at least 1");
    } else if (A == "--iterations" && I + 1 < Argc) {
      O.Iterations = flagUint("--iterations", Argv[++I]);
    } else if (A == "--analyzer" && I + 1 < Argc) {
      O.Analyzer = Argv[++I];
    } else if (A == "--domain" && I + 1 < Argc) {
      O.Domain = Argv[++I];
    } else if (A == "--verify") {
      O.Verify = true;
    } else if (A == "--edit-replay") {
      O.EditReplay = true;
    } else if (A == "--scrape") {
      O.Scrape = true;
    } else if (A == "--strict-invariant") {
      O.StrictInvariant = true;
    } else if (A == "--max-goal-ratio" && I + 1 < Argc) {
      char *End = nullptr;
      O.MaxGoalRatio = std::strtod(Argv[++I], &End);
      if (!End || *End || O.MaxGoalRatio <= 0)
        usage("--max-goal-ratio: need a positive number");
    } else if (A == "--out" && I + 1 < Argc) {
      O.OutFile = Argv[++I];
    } else if (A == "--help" || A == "-h") {
      usage();
    } else if (!A.empty() && A[0] == '-') {
      usage(("unknown flag '" + A + "'").c_str());
    } else {
      Positional.push_back(A);
    }
  }
  if (O.Scrape) {
    if (Positional.size() != 1)
      usage("--scrape takes just the SOCKET positional");
    O.Socket = Positional[0];
    return O;
  }
  if (Positional.size() != 2)
    usage("expected SOCKET and DIR positionals");
  O.Socket = Positional[0];
  O.Dir = Positional[1];
  return O;
}

struct Program {
  std::string Name;
  std::string Source;
};

std::vector<Program> loadCorpus(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<Program> Out;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (!E.is_regular_file() || E.path().extension() != ".scm")
      continue;
    std::ifstream In(E.path());
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out.push_back({E.path().filename().string(), Buf.str()});
  }
  if (Ec)
    usage(("cannot read corpus directory '" + Dir + "'").c_str());
  std::sort(Out.begin(), Out.end(),
            [](const Program &A, const Program &B) { return A.Name < B.Name; });
  return Out;
}

/// One blocking request/response client over the daemon's line protocol.
class Client {
public:
  /// Retries for up to ~2s: the daemon creates the socket file on bind
  /// but only accepts after listen, so a driver that starts the daemon
  /// and immediately connects can land in that window (ECONNREFUSED),
  /// or race the file itself (ENOENT). Only a persistent failure is a
  /// transport failure.
  bool connectTo(const std::string &Path) {
    for (int Attempt = 0; Attempt < 40; ++Attempt) {
      if (Attempt)
        ::usleep(50 * 1000);
      if (Fd >= 0)
        ::close(Fd);
      Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        return false;
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      if (Path.size() >= sizeof(Addr.sun_path))
        return false;
      std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0)
        return true;
      if (errno != ECONNREFUSED && errno != ENOENT)
        return false;
    }
    return false;
  }

  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Sends \p Line (newline appended) and blocks for one response line.
  /// Empty return = transport failure.
  std::string roundTrip(const std::string &Line) {
    std::string Out = Line;
    Out.push_back('\n');
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Sent, Out.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return {};
      Sent += static_cast<size_t>(N);
    }
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Response = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Response;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return {};
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// JSON-escapes \p S for embedding in a request line.
std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
  return Out;
}

/// What one client observed; merged under a mutex at the end.
struct Tally {
  uint64_t Requests = 0;
  uint64_t Ok = 0;
  uint64_t Cached = 0;
  uint64_t Degraded = 0;
  uint64_t Shed = 0;
  std::map<std::string, uint64_t> Errors; ///< by taxonomy kind
  std::vector<double> LatencyUs;
  uint64_t Transport = 0; ///< dead connections / invalid response JSON
  uint64_t Unsound = 0;   ///< --verify mismatches
  /// First clean (ok, uncached-or-cached, non-degraded) stats payload
  /// per program name, for the bench_diff "programs" array.
  std::map<std::string, std::string> CleanStats;
  /// First clean answer per program, for cold-vs-cached identity checks.
  std::map<std::string, std::string> Answers;
};

/// The work-counter keys bench_diff sums per leg.
const char *const BenchCounters[] = {"goals",      "cacheHits",  "cuts",
                                     "joins",      "callMerges", "summaryHits",
                                     "summaryMisses"};

void runClient(const Options &O, const std::vector<Program> &Corpus,
               unsigned Id, uint64_t Requests, Tally &T) {
  Client C;
  if (!C.connectTo(O.Socket)) {
    ++T.Transport;
    return;
  }
  for (uint64_t I = 0; I < Requests; ++I) {
    const Program &P = Corpus[(Id * 31 + I) % Corpus.size()];
    // Pinned cold: the report's per-program counters feed bench_diff, so
    // they must not depend on how warm the daemon's memo store happens to
    // be. --edit-replay is the mode that measures incremental reuse.
    std::string Req = "{\"op\":\"analyze\",\"id\":" + std::to_string(I) +
                      ",\"program\":" + quoted(P.Source) +
                      ",\"analyzer\":" + quoted(O.Analyzer) +
                      ",\"domain\":" + quoted(O.Domain) +
                      ",\"incremental\":false}";
    auto Start = std::chrono::steady_clock::now();
    std::string Line = C.roundTrip(Req);
    double Us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    ++T.Requests;
    if (Line.empty()) {
      ++T.Transport;
      return; // the connection is dead; this client is done
    }
    Result<JsonValue> Doc = parseJson(Line);
    if (!Doc || !Doc->isObject()) {
      ++T.Transport;
      continue;
    }
    T.LatencyUs.push_back(Us);
    const JsonValue *Ok = Doc->find("ok");
    if (Ok && Ok->asBool()) {
      ++T.Ok;
      if (const JsonValue *Cached = Doc->find("cached"))
        if (Cached->asBool())
          ++T.Cached;
      const JsonValue *R = Doc->find("result");
      const JsonValue *Stats = R ? R->find("stats") : nullptr;
      const JsonValue *Exhausted =
          Stats ? Stats->find("budgetExhausted") : nullptr;
      const JsonValue *Reason = Stats ? Stats->find("degradeReason") : nullptr;
      bool Degraded = (Exhausted && Exhausted->asBool()) ||
                      (Reason && Reason->asString() != "none");
      if (Degraded) {
        ++T.Degraded;
      } else if (R && Stats) {
        const std::string &Name = P.Name;
        std::string Answer =
            R->find("answer") ? R->find("answer")->asString() : "";
        auto It = T.Answers.find(Name);
        if (It == T.Answers.end()) {
          T.Answers.emplace(Name, Answer);
          // Re-render just the counters bench_diff reads, keyed by leg.
          std::string S = "{";
          bool FirstKey = true;
          for (const char *K : BenchCounters) {
            if (!FirstKey)
              S += ",";
            FirstKey = false;
            char Num[32];
            std::snprintf(Num, sizeof(Num), "%.0f", Stats->numberOr(K, 0));
            S += "\"" + std::string(K) + "\":" + Num;
          }
          S += "}";
          T.CleanStats.emplace(Name, S);
        } else if (It->second != Answer) {
          // A later response (cached or not) disagreeing with the first
          // clean answer is exactly the cached-answer-identity violation
          // the acceptance test looks for.
          ++T.Unsound;
          std::fprintf(stderr,
                       "loadgen: UNSOUND: %s answered '%s' then '%s'\n",
                       Name.c_str(), It->second.c_str(), Answer.c_str());
        }
      }
    } else {
      const JsonValue *Err = Doc->find("error");
      std::string Kind =
          Err && Err->find("kind") ? Err->find("kind")->asString() : "?";
      if (Kind == "shed")
        ++T.Shed;
      else
        ++T.Errors[Kind];
    }
  }
}

// ===-- Edit-replay mode (--edit-replay) --=============================//

/// Returns \p Src with the first standalone numeral of its *last*
/// top-level form bumped by \p Bump. The last top-level form is the
/// program's main expression; the define-d lambdas above it stay
/// untouched, so the closure universe — which gates memo-table import on
/// the daemon side — is stable across the whole edit script, and the
/// strictly increasing values guarantee every iteration is a genuinely
/// new program (no result-cache or memo-identity shortcuts).
std::string mutateLeaf(const std::string &Src, uint64_t Bump) {
  size_t FormStart = std::string::npos;
  int Depth = 0;
  bool Comment = false;
  for (size_t I = 0; I < Src.size(); ++I) {
    char C = Src[I];
    if (Comment) {
      Comment = C != '\n';
      continue;
    }
    if (C == ';')
      Comment = true;
    else if (C == '(') {
      if (Depth == 0)
        FormStart = I;
      ++Depth;
    } else if (C == ')')
      --Depth;
  }
  if (FormStart == std::string::npos)
    return Src;
  for (size_t I = FormStart + 1; I < Src.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(Src[I])))
      continue;
    char Prev = Src[I - 1];
    // Digits glued to an identifier (if0, add1) are not numerals.
    if (std::isalnum(static_cast<unsigned char>(Prev)) || Prev == '_')
      continue;
    size_t End = I;
    uint64_t V = 0;
    while (End < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[End])))
      V = V * 10 + static_cast<uint64_t>(Src[End++] - '0');
    return Src.substr(0, I) + std::to_string(V + Bump) + Src.substr(End);
  }
  return Src;
}

/// The response fields the edit-replay comparisons need. ValidJson
/// without Ok is a structured error response (e.g. an injected worker
/// fault in the CI soak): the pair is skipped, not a failure — only a
/// dead connection or non-JSON is.
struct LegView {
  bool ValidJson = false;
  bool Ok = false;
  std::string Answer;
  std::string DegradeReason;
  double Goals = 0;
  double ReplayHits = 0;
};

LegView viewResponse(const std::string &Line) {
  LegView V;
  Result<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject())
    return V;
  V.ValidJson = true;
  const JsonValue *Ok = Doc->find("ok");
  const JsonValue *R = Doc->find("result");
  const JsonValue *Stats = R ? R->find("stats") : nullptr;
  if (!Ok || !Ok->asBool() || !Stats)
    return V;
  V.Ok = true;
  V.Answer = R->find("answer") ? R->find("answer")->asString() : "";
  V.DegradeReason = Stats->find("degradeReason")
                        ? Stats->find("degradeReason")->asString()
                        : "";
  V.Goals = Stats->numberOr("goals", 0);
  V.ReplayHits = Stats->numberOr("replayHits", 0);
  return V;
}

/// Ceiling nearest-rank percentile — the ceil(P*N)-th smallest sample —
/// matching the batch reporter's convention. The report schema's latency
/// percentiles are nearest-rank, never interpolated: the old
/// floor(P*(N-1)) indexing biased p95 one sample low on small N.
double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  size_t Rank =
      static_cast<size_t>(std::ceil(P * static_cast<double>(V.size())));
  if (Rank == 0)
    Rank = 1;
  size_t I = std::min(Rank, V.size()) - 1;
  std::nth_element(V.begin(), V.begin() + static_cast<long>(I), V.end());
  return V[I];
}

/// --edit-replay: one client, one program (the first of the sorted
/// corpus), K iterations. Each iteration i edits one leaf (the numeral
/// becomes orig+i), then asks the daemon twice for the same edited
/// source: once warm (incremental, default) and once cold
/// ("incremental":false). The warm answer and degrade reason must be
/// byte-identical to the cold ones — the whole point of the memo store is
/// that it changes goal counts, never answers. Iteration 0 seeds the
/// memo store and is excluded from the warm/cold goal totals; the
/// reported goalRatio is what --max-goal-ratio gates.
int runEditReplay(const Options &O, const std::vector<Program> &Corpus) {
  const Program &P = Corpus.front();
  uint64_t Iters = O.Iterations ? O.Iterations : 8;
  if (Iters < 2) {
    std::fprintf(stderr,
                 "loadgen: --edit-replay needs --iterations >= 2 (iteration "
                 "0 only seeds the memo store)\n");
    return 2;
  }
  {
    std::string Probe = mutateLeaf(P.Source, 1);
    if (Probe == P.Source) {
      std::fprintf(stderr,
                   "loadgen: --edit-replay: no editable numeric leaf in "
                   "%s\n",
                   P.Name.c_str());
      return 2;
    }
  }
  Client C;
  if (!C.connectTo(O.Socket)) {
    std::fprintf(stderr, "loadgen: cannot connect to '%s'\n",
                 O.Socket.c_str());
    return 1;
  }

  auto Start = std::chrono::steady_clock::now();
  uint64_t Transport = 0, Unsound = 0, DegradedPairs = 0, ErrorPairs = 0;
  double WarmGoals = 0, ColdGoals = 0, ReplayHits = 0;
  uint64_t Measured = 0;
  std::vector<double> WarmLat, ColdLat;

  serve::AnalyzeConfig RefCfg;
  RefCfg.DeadlineMs = 0;

  for (uint64_t I = 0; I < Iters; ++I) {
    const std::string Src = mutateLeaf(P.Source, I);
    // noCache on both legs: the byte-canonical result cache would
    // otherwise answer the cold request without running the analyzer.
    std::string Base = ",\"program\":" + quoted(Src) +
                       ",\"analyzer\":" + quoted(O.Analyzer) +
                       ",\"domain\":" + quoted(O.Domain) +
                       ",\"noCache\":true";
    auto Shoot = [&](const std::string &Req,
                     std::vector<double> &Lat) -> LegView {
      auto T0 = std::chrono::steady_clock::now();
      std::string Line = C.roundTrip(Req);
      double Us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      if (Line.empty())
        return LegView{};
      if (I > 0)
        Lat.push_back(Us);
      return viewResponse(Line);
    };
    LegView Warm = Shoot("{\"op\":\"analyze\",\"id\":" +
                             std::to_string(2 * I) + Base + "}",
                         WarmLat);
    LegView Cold = Shoot("{\"op\":\"analyze\",\"id\":" +
                             std::to_string(2 * I + 1) + Base +
                             ",\"incremental\":false}",
                         ColdLat);
    if (!Warm.ValidJson || !Cold.ValidJson) {
      ++Transport;
      std::fprintf(stderr,
                   "loadgen: edit-replay iteration %llu: dead connection "
                   "or non-JSON response\n",
                   (unsigned long long)I);
      break; // the connection state is unknown; stop
    }
    if (!Warm.Ok || !Cold.Ok) {
      // A structured error on either leg (the CI soak injects worker
      // faults): nothing to compare, nothing to measure, not a failure.
      ++ErrorPairs;
      continue;
    }
    if (Warm.Answer != Cold.Answer ||
        Warm.DegradeReason != Cold.DegradeReason) {
      ++Unsound;
      std::fprintf(stderr,
                   "loadgen: UNSOUND: edit %llu warm '%s'/%s vs cold "
                   "'%s'/%s\n",
                   (unsigned long long)I, Warm.Answer.c_str(),
                   Warm.DegradeReason.c_str(), Cold.Answer.c_str(),
                   Cold.DegradeReason.c_str());
    }
    if (O.Verify) {
      serve::ServeRequest Req;
      Req.Program = Src;
      Req.Analyzer = O.Analyzer;
      Req.Domain = O.Domain;
      serve::AnalyzeOutcome Ref = serve::runServeAnalyze(Req, RefCfg, 0);
      if (Ref.Ok && !Ref.Degraded && Ref.Answer != Warm.Answer) {
        ++Unsound;
        std::fprintf(stderr,
                     "loadgen: UNSOUND: edit %llu warm '%s', reference "
                     "'%s'\n",
                     (unsigned long long)I, Warm.Answer.c_str(),
                     Ref.Answer.c_str());
      }
    }
    if (Cold.DegradeReason != "none") {
      ++DegradedPairs; // both legs degraded identically; not a reuse sample
      continue;
    }
    if (I > 0) {
      ++Measured;
      WarmGoals += Warm.Goals;
      ColdGoals += Cold.Goals;
      ReplayHits += Warm.ReplayHits;
    }
  }
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  double Ratio = ColdGoals > 0 ? WarmGoals / ColdGoals : 1.0;
  double WarmP50 = percentile(WarmLat, 0.50);
  double WarmP95 = percentile(WarmLat, 0.95);
  double ColdP50 = percentile(ColdLat, 0.50);
  double ColdP95 = percentile(ColdLat, 0.95);

  std::ostringstream Out;
  char NumBuf[64];
  Out << "{\"schemaVersion\":1,\"kind\":\"loadgen\"";
  std::snprintf(NumBuf, sizeof(NumBuf), "%.3f", WallMs);
  Out << ",\"wallMs\":" << NumBuf;
  Out << ",\"programs\":[]";
  Out << ",\"editReplay\":{";
  Out << "\"program\":" << quoted(P.Name);
  Out << ",\"iterations\":" << Iters;
  Out << ",\"measured\":" << Measured;
  Out << ",\"degradedPairs\":" << DegradedPairs;
  Out << ",\"errorPairs\":" << ErrorPairs;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.0f", WarmGoals);
  Out << ",\"warmGoals\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.0f", ColdGoals);
  Out << ",\"coldGoals\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.4f", Ratio);
  Out << ",\"goalRatio\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.0f", ReplayHits);
  Out << ",\"replayHits\":" << NumBuf;
  Out << ",\"unsound\":" << Unsound;
  Out << ",\"transportFailures\":" << Transport;
  Out << ",\"warmLatencyUs\":{";
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", WarmP50);
  Out << "\"p50\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", WarmP95);
  Out << ",\"p95\":" << NumBuf << "}";
  Out << ",\"coldLatencyUs\":{";
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", ColdP50);
  Out << "\"p50\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", ColdP95);
  Out << ",\"p95\":" << NumBuf << "}";
  Out << "}}";

  std::string Json = Out.str();
  if (!O.OutFile.empty()) {
    std::ofstream F(O.OutFile);
    if (!F) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n", O.OutFile.c_str());
      return 1;
    }
    F << Json << '\n';
  } else {
    std::printf("%s\n", Json.c_str());
  }
  std::fprintf(stderr,
               "loadgen: edit-replay %s: %llu/%llu edits measured, warm "
               "%.0f vs cold %.0f goals (ratio %.3f), %.0f replay hits, "
               "%llu unsound, %llu transport failures\n",
               P.Name.c_str(), (unsigned long long)Measured,
               (unsigned long long)(Iters - 1), WarmGoals, ColdGoals, Ratio,
               ReplayHits, (unsigned long long)Unsound,
               (unsigned long long)Transport);
  if (Transport || Unsound)
    return 1;
  if (O.MaxGoalRatio > 0 && Measured && Ratio > O.MaxGoalRatio) {
    std::fprintf(stderr,
                 "loadgen: FAIL: warm/cold goal ratio %.3f exceeds "
                 "--max-goal-ratio %.3f\n",
                 Ratio, O.MaxGoalRatio);
    return 1;
  }
  return 0;
}

// ===-- Scrape mode (--scrape) --========================================//

/// Validates one Prometheus exposition line: `# ...` comments pass; data
/// lines must be `name[{labels}] value` with a well-formed metric name
/// and a numeric value.
bool validExpositionLine(const std::string &Line) {
  if (Line.empty() || Line[0] == '#')
    return true;
  size_t I = 0;
  auto NameChar = [](char C, bool First) {
    bool Alpha = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 C == '_' || C == ':';
    return Alpha || (!First && C >= '0' && C <= '9');
  };
  if (I >= Line.size() || !NameChar(Line[I], true))
    return false;
  while (I < Line.size() && NameChar(Line[I], false))
    ++I;
  if (I < Line.size() && Line[I] == '{') {
    size_t Close = Line.find('}', I);
    if (Close == std::string::npos)
      return false;
    I = Close + 1;
  }
  if (I >= Line.size() || Line[I] != ' ')
    return false;
  const char *Num = Line.c_str() + I + 1;
  if (std::strcmp(Num, "+Inf") == 0 || std::strcmp(Num, "NaN") == 0)
    return true;
  char *End = nullptr;
  std::strtod(Num, &End);
  return End && *End == '\0' && End != Num;
}

/// --scrape: one connection, two metrics requests (Prometheus text and
/// the JSON registry), exposition syntax validation, and the
/// counter-consistency check: every well-formed analyze request is
/// admitted exactly once and meets exactly one of the three terminal
/// fates, so admitted >= responded + shed + failed always, with equality
/// once every issued request has been answered.
int runScrape(const Options &O) {
  Client C;
  if (!C.connectTo(O.Socket)) {
    std::fprintf(stderr, "loadgen: cannot connect to '%s'\n",
                 O.Socket.c_str());
    return 1;
  }

  std::string PromLine =
      C.roundTrip("{\"op\":\"metrics\",\"format\":\"prometheus\"}");
  Result<JsonValue> Prom = parseJson(PromLine);
  if (PromLine.empty() || !Prom || !Prom->isObject()) {
    std::fprintf(stderr, "loadgen: scrape: bad metrics response\n");
    return 1;
  }
  const JsonValue *Ok = Prom->find("ok");
  const JsonValue *Body = Prom->find("body");
  if (!Ok || !Ok->asBool() || !Body || !Body->isString()) {
    std::fprintf(stderr,
                 "loadgen: scrape: metrics op refused or carried no body\n");
    return 1;
  }

  const std::string &Text = Body->asString();
  uint64_t DataLines = 0, BadLines = 0;
  {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line)) {
      if (!validExpositionLine(Line)) {
        ++BadLines;
        std::fprintf(stderr, "loadgen: scrape: malformed line: %s\n",
                     Line.c_str());
      } else if (!Line.empty() && Line[0] != '#') {
        ++DataLines;
      }
    }
  }

  std::string JsonLine = C.roundTrip("{\"op\":\"metrics\"}");
  Result<JsonValue> Doc = parseJson(JsonLine);
  const JsonValue *M =
      Doc && Doc->isObject() ? Doc->find("metrics") : nullptr;
  if (!M || !M->isObject()) {
    std::fprintf(stderr, "loadgen: scrape: bad JSON metrics response\n");
    return 1;
  }
  double Admitted = M->numberOr("serve.analyze.admitted", -1);
  double Responded = M->numberOr("serve.analyze.responded", -1);
  double Shed = M->numberOr("serve.shed", -1);
  double Failed = M->numberOr("serve.analyze.failed", -1);
  bool Missing = Admitted < 0 || Responded < 0 || Shed < 0 || Failed < 0;
  double Settled = Responded + Shed + Failed;
  bool Violated = Missing || Admitted < Settled ||
                  (O.StrictInvariant && Admitted != Settled);

  if (!O.OutFile.empty()) {
    std::ofstream F(O.OutFile);
    if (!F) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n",
                   O.OutFile.c_str());
      return 1;
    }
    F << Text;
  } else {
    std::fputs(Text.c_str(), stdout);
  }
  std::fprintf(stderr,
               "loadgen: scrape: %llu series lines (%llu malformed), "
               "admitted %.0f %s responded %.0f + shed %.0f + failed "
               "%.0f%s\n",
               (unsigned long long)DataLines, (unsigned long long)BadLines,
               Admitted, Violated ? "VIOLATES" : "vs", Responded, Shed,
               Failed, Missing ? " (missing counters)" : "");
  return (BadLines || Violated || DataLines == 0) ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseArgs(Argc, Argv);
  if (O.Scrape)
    return runScrape(O);
  std::vector<Program> Corpus = loadCorpus(O.Dir);
  if (Corpus.empty())
    usage(("no *.scm programs under '" + O.Dir + "'").c_str());
  if (O.EditReplay)
    return runEditReplay(O, Corpus);
  uint64_t Requests = O.Iterations ? O.Iterations : Corpus.size();

  auto Start = std::chrono::steady_clock::now();
  std::vector<Tally> Tallies(O.Clients);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < O.Clients; ++I)
    Threads.emplace_back([&, I] {
      runClient(O, Corpus, I, Requests, Tallies[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  // Merge.
  Tally All;
  std::vector<double> Lat;
  for (Tally &T : Tallies) {
    All.Requests += T.Requests;
    All.Ok += T.Ok;
    All.Cached += T.Cached;
    All.Degraded += T.Degraded;
    All.Shed += T.Shed;
    All.Transport += T.Transport;
    All.Unsound += T.Unsound;
    for (const auto &[K, N] : T.Errors)
      All.Errors[K] += N;
    Lat.insert(Lat.end(), T.LatencyUs.begin(), T.LatencyUs.end());
    for (const auto &[Name, S] : T.CleanStats)
      All.CleanStats.emplace(Name, S);
    // Cross-client answer identity: every client must have seen the same
    // answer for the same program (shared cache or not).
    for (const auto &[Name, A] : T.Answers) {
      auto It = All.Answers.find(Name);
      if (It == All.Answers.end())
        All.Answers.emplace(Name, A);
      else if (It->second != A) {
        ++All.Unsound;
        std::fprintf(stderr,
                     "loadgen: UNSOUND: %s differs across clients\n",
                     Name.c_str());
      }
    }
  }

  // --verify: fresh in-process analysis (server-default budgets, no
  // deadline so the reference never degrades) per distinct program.
  if (O.Verify) {
    serve::AnalyzeConfig Cfg;
    Cfg.DeadlineMs = 0;
    for (const Program &P : Corpus) {
      auto It = All.Answers.find(P.Name);
      if (It == All.Answers.end())
        continue;
      serve::ServeRequest Req;
      Req.Program = P.Source;
      Req.Analyzer = O.Analyzer;
      Req.Domain = O.Domain;
      serve::AnalyzeOutcome Ref = serve::runServeAnalyze(Req, Cfg, 0);
      if (Ref.Ok && !Ref.Degraded && Ref.Answer != It->second) {
        ++All.Unsound;
        std::fprintf(stderr,
                     "loadgen: UNSOUND: %s served '%s', reference '%s'\n",
                     P.Name.c_str(), It->second.c_str(), Ref.Answer.c_str());
      }
    }
  }

  double P50 = percentile(Lat, 0.50);
  double P95 = percentile(Lat, 0.95);
  double Max = Lat.empty() ? 0 : *std::max_element(Lat.begin(), Lat.end());

  std::ostringstream Out;
  Out << "{\"schemaVersion\":1,\"kind\":\"loadgen\"";
  char NumBuf[64];
  std::snprintf(NumBuf, sizeof(NumBuf), "%.3f", WallMs);
  Out << ",\"wallMs\":" << NumBuf;
  Out << ",\"programs\":[";
  bool First = true;
  for (const auto &[Name, Stats] : All.CleanStats) {
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":" << quoted(Name) << ",\"ok\":true,\""
        << O.Analyzer << "\":" << Stats << "}";
  }
  Out << "],\"loadgen\":{";
  Out << "\"clients\":" << O.Clients;
  Out << ",\"requests\":" << All.Requests;
  Out << ",\"ok\":" << All.Ok;
  Out << ",\"cached\":" << All.Cached;
  Out << ",\"degraded\":" << All.Degraded;
  Out << ",\"shed\":" << All.Shed;
  uint64_t ErrorTotal = 0;
  Out << ",\"errors\":{";
  First = true;
  for (const auto &[K, N] : All.Errors) {
    if (!First)
      Out << ",";
    First = false;
    Out << quoted(K) << ":" << N;
    ErrorTotal += N;
  }
  Out << "}";
  Out << ",\"transportFailures\":" << All.Transport;
  Out << ",\"unsound\":" << All.Unsound;
  double HitRate = All.Ok ? static_cast<double>(All.Cached) /
                                static_cast<double>(All.Ok)
                          : 0;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.4f", HitRate);
  Out << ",\"cacheHitRate\":" << NumBuf;
  Out << ",\"latencyUs\":{";
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", P50);
  Out << "\"p50\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", P95);
  Out << ",\"p95\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", Max);
  Out << ",\"max\":" << NumBuf;
  Out << "}}}";

  std::string Json = Out.str();
  if (!O.OutFile.empty()) {
    std::ofstream F(O.OutFile);
    if (!F) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n", O.OutFile.c_str());
      return 1;
    }
    F << Json << '\n';
  } else {
    std::printf("%s\n", Json.c_str());
  }
  std::fprintf(stderr,
               "loadgen: %llu requests, %llu ok (%llu cached, %llu "
               "degraded), %llu shed, %llu errors, %llu transport "
               "failures, %llu unsound, p50 %.0fus p95 %.0fus\n",
               (unsigned long long)All.Requests, (unsigned long long)All.Ok,
               (unsigned long long)All.Cached,
               (unsigned long long)All.Degraded,
               (unsigned long long)All.Shed, (unsigned long long)ErrorTotal,
               (unsigned long long)All.Transport,
               (unsigned long long)All.Unsound, P50, P95);
  return (All.Transport || All.Unsound) ? 1 : 0;
}
