//===- serve/Server.h - Fault-tolerant analysis daemon ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cpsflow serve` daemon: line-delimited JSON over an AF_UNIX
/// stream socket, a fixed worker pool, bounded admission, and graceful
/// drain. Thread shape:
///
///   accept thread     accept()s connections, spawns one reader each
///   reader threads    frame lines, answer health/stats inline, admit
///                     analyze jobs to the bounded queue (or shed)
///   worker pool       pop jobs, run one contained analysis each,
///                     consult/fill the shared ResultCache, respond
///   grace thread      (during drain) fires the Interrupt token after
///                     the grace period so stuck analyses degrade
///                     through the governor instead of blocking exit
///
/// Invariants the tests hold the daemon to:
///
///  * Every admitted request gets exactly one response — success,
///    degraded success, or a structured error — on the connection it
///    arrived on, even when the handler throws, allocation fails, or a
///    fault is injected. A worker thread never dies.
///  * Past the queue high-water mark, new analyze requests are shed with
///    kind "shed" immediately; health/stats stay responsive because they
///    never queue.
///  * requestDrain() stops admission, lets in-flight work finish (or
///    degrade after DrainGraceMs), answers everything already queued,
///    and only then lets waitDrained() return.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_SERVER_H
#define CPSFLOW_SERVE_SERVER_H

#include "serve/Analyze.h"
#include "serve/FlightRecorder.h"
#include "serve/MemoStore.h"
#include "serve/Protocol.h"
#include "serve/RequestLog.h"
#include "serve/ResultCache.h"
#include "support/Metrics.h"
#include "support/Result.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cpsflow {
namespace serve {

struct ServeOptions {
  std::string SocketPath;
  unsigned Workers = 2;
  /// Admission high-water mark: analyze requests arriving while this
  /// many are already queued are shed.
  size_t QueueCap = 64;
  /// Result-cache directory; empty disables the cache.
  std::string CacheDir;
  /// How long drain lets in-flight analyses run before firing the
  /// interrupt token that degrades them.
  double DrainGraceMs = 2000;
  /// Keep memo tables hot across requests so re-analysis after an edit
  /// replays unchanged subtrees (docs/SERVE.md). Off: every request runs
  /// cold, as if the daemon had just started.
  bool Incremental = true;
  /// Default budgets for requests that do not override them.
  AnalyzeConfig Defaults;

  // -- observability (docs/OBSERVABILITY.md)

  /// Structured request log path; empty disables logging. One JSON line
  /// per finished analyze request (including sheds).
  std::string LogPath;
  /// Rotate the request log (FILE -> FILE.1) past this size; 0 never
  /// rotates.
  uint64_t LogRotateBytes = 64ull << 20;
  /// Flight-recorder ring capacity (last-N finished requests plus every
  /// request in flight); 0 disables the recorder.
  size_t FlightRecords = 256;
  /// Where drain and the `dump` op publish the flight-recorder frame.
  /// Empty + recorder on: derived as SocketPath + ".flight.json".
  std::string FlightDumpPath;
  /// Requests whose analysis wall time exceeds this get a Chrome trace
  /// spilled to TraceDir; 0 disables slow-request capture.
  double TraceSlowMs = 0;
  /// Spill directory for slow-request traces. Empty + capture on:
  /// derived as SocketPath + ".traces".
  std::string TraceDir;
  /// Cap on spilled trace files per daemon lifetime (bounds the disk the
  /// capture path can consume); excess slow requests count as dropped.
  uint64_t TraceSlowMax = 32;
};

class Server {
public:
  explicit Server(ServeOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts every thread. Error on bind/listen
  /// failure (socket path too long, directory missing, ...).
  Result<bool> start();

  /// Begins graceful shutdown: stop accepting, stop reading, shed
  /// nothing already queued, arm the grace timer. Idempotent,
  /// non-blocking, callable from any thread (including a worker
  /// answering a shutdown op) — but not from a signal handler; signal
  /// handlers set a flag the owning main loop polls.
  void requestDrain();

  /// Blocks until the daemon has fully drained, then joins every thread
  /// and removes the socket file. Calls requestDrain() first if nobody
  /// has. Must not be called from a server-owned thread.
  void waitDrained();

  bool draining() const { return Draining.load(); }
  const ServeOptions &options() const { return Opts; }
  ResultCache *cache() { return Cache.get(); }
  FlightRecorder *flight() { return Flight.get(); }

  /// Sum of queued and executing analyze jobs (health reporting).
  size_t inFlight() const;

private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> Conn;
    ServeRequest Req;
    std::chrono::steady_clock::time_point Enqueued;
    RequestRecord Rec;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> C);
  void workerLoop(unsigned WorkerId);
  void handleLine(const std::shared_ptr<Connection> &C,
                  const std::string &Line);
  void processJob(Job J, unsigned WorkerId);
  std::string handleAnalyze(const ServeRequest &Req, RequestRecord &Rec,
                            unsigned WorkerId);
  std::string healthJson(const ServeRequest &Req);
  std::string statsJson(const ServeRequest &Req);
  std::string metricsResponse(const ServeRequest &Req);
  std::string dumpResponse(const ServeRequest &Req);
  /// Terminal bookkeeping for one analyze request: terminal counter,
  /// latency histograms, log record, flight-recorder completion — all
  /// before the response line goes out, so an observer that has received
  /// every response sees admitted == responded + shed + failed.
  void finishRecord(RequestRecord &Rec);
  /// Mirrors derived state (cache/memo/queue/log/flight) into the
  /// registry. Caller holds MetricsMu; queue stats are passed in because
  /// they live under QMu and the two locks never nest.
  void refreshDerivedLocked(size_t Queued, size_t Running);
  void writeLine(Connection &C, const std::string &Line);
  void countError(ServeErrorKind Kind);

  ServeOptions Opts;
  std::unique_ptr<ResultCache> Cache;
  MemoStore Memo;
  std::unique_ptr<RequestLog> Log;
  std::unique_ptr<FlightRecorder> Flight;
  /// One tracer per worker (slow-request capture); deque because Tracer
  /// owns a mutex and cannot move. Sized once in start().
  std::deque<support::Tracer> WorkerTracers;
  std::atomic<uint64_t> TraceFilesWritten{0};
  std::shared_ptr<support::CancelToken> Interrupt;

  int ListenFd = -1;
  bool Started = false;
  bool Drained = false;
  std::atomic<bool> Draining{false};
  std::atomic<uint64_t> NextOrdinal{0};

  std::thread AcceptThread;
  std::vector<std::thread> WorkerThreads;

  mutable std::mutex ConnMu; ///< guards Readers and Conns
  std::vector<std::thread> Readers;
  std::vector<std::weak_ptr<Connection>> Conns;

  mutable std::mutex QMu; ///< guards Queue, Executing, QStopping
  std::condition_variable QCv;
  std::deque<Job> Queue;
  size_t Executing = 0;
  bool QStopping = false;

  std::mutex GraceMu; ///< guards GraceDone + the grace thread handle
  std::condition_variable GraceCv;
  bool GraceDone = false;
  std::thread GraceThread;

  mutable std::mutex MetricsMu;
  support::MetricsRegistry Metrics;
};

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_SERVER_H
