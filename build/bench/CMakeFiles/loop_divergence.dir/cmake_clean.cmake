file(REMOVE_RECURSE
  "CMakeFiles/loop_divergence.dir/loop_divergence.cpp.o"
  "CMakeFiles/loop_divergence.dir/loop_divergence.cpp.o.d"
  "loop_divergence"
  "loop_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
