# Empty compiler generated dependencies file for theorem55.
# This may be replaced when dependencies are built.
