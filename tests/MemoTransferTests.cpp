//===- tests/MemoTransferTests.cpp - Cross-run memo transfer ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis-level checks of AnalyzerOptions::Xfer (MemoTransfer.h): a run
/// that imports a previous run's exported memo table must produce answers
/// byte-identical to a cold run — on the identical program and after a
/// leaf edit — while tracking alone must not perturb anything, and stale
/// entries (changed free-variable bindings) must be rejected, not
/// replayed.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/MemoTransfer.h"
#include "gen/Digest.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace cpsflow;
using namespace cpsflow::analysis;
using cpsflow::test::mustParse;
using CD = domain::ConstantDomain;

namespace {

/// One analyzer run with the transfer hook engaged: its own Context (to
/// prove the table is content-addressed, never pointer-addressed), its
/// digest table, its export table, and the result.
template <typename D> struct XferRun {
  std::unique_ptr<Context> Ctx = std::make_unique<Context>();
  gen::SubtreeDigests Digests;
  MemoTable<D> Export;
  MemoXfer Xfer;
  DirectResult<D> R;
};

/// Runs \p Text with every free variable bound to the number \p Free,
/// importing \p Import (null = cold). \p Engage=false runs entirely
/// without the hook, as the perturbation baseline.
template <typename D>
XferRun<D> runWith(const std::string &Text, const MemoTable<D> *Import,
               typename D::Elem Free = D::top(), bool Engage = true) {
  XferRun<D> Out;
  Context &Ctx = *Out.Ctx;
  const syntax::Term *T = mustParse(Ctx, Text);
  gen::computeSubtreeDigests(Ctx, T, Out.Digests);
  std::vector<DirectBinding<D>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::AbsVal<D>::number(Free)});
  AnalyzerOptions Opts;
  Out.Xfer = MemoXfer{&Out.Digests, Import, &Out.Export};
  if (Engage)
    Opts.Xfer = &Out.Xfer;
  Out.R = DirectAnalyzer<D>(Ctx, T, std::move(Init), Opts).run();
  return Out;
}

/// Renders answer value plus the whole final store, keyed by spelling —
/// the byte-identity yardstick (two fresh Contexts parsing the same text
/// assign the same node ids, so closure renderings agree too).
template <typename D>
std::string render(const Context &Ctx, const DirectResult<D> &R) {
  std::string Out = R.Answer.Value.str(Ctx);
  for (uint32_t I = 0; I < R.Vars->size(); ++I) {
    Out += "\n";
    Out += std::string(Ctx.spelling(R.Vars->symbolAt(I)));
    Out += " = ";
    Out += R.Answer.Store.get(I).str(Ctx);
  }
  return Out;
}

// Three calls of one lambda; the trailing literal is the edit target.
std::string callsProgram(const std::string &Leaf) {
  return "(let (f (lambda (x) (let (a (add1 x)) a))) "
         "(let (u (f z)) (let (v (f u)) (let (w (f " +
         Leaf + ")) w))))";
}

// Self-application: exercises the Section 4.4 cut and UsedCut tracking.
const char *RecProgram = "(let (f (lambda (g) (let (r (g g)) r))) "
                         "(let (a (f f)) a))";

TEST(MemoTransfer, ColdRunExportsEntries) {
  XferRun<CD> Cold = runWith<CD>(callsProgram("3"), nullptr);
  EXPECT_FALSE(Cold.Export.Entries.empty());
  EXPECT_FALSE(Cold.Export.UniverseLamDigests.empty());
  EXPECT_EQ(Cold.R.Stats.ReplayHits, 0u);
  EXPECT_EQ(Cold.R.Stats.ReplayMisses, 0u);
}

TEST(MemoTransfer, TrackingDoesNotPerturbAnswersOrStats) {
  for (const std::string &Text :
       {callsProgram("3"), std::string(RecProgram)}) {
    XferRun<CD> Plain = runWith<CD>(Text, nullptr, CD::top(), false);
    XferRun<CD> Tracked = runWith<CD>(Text, nullptr);
    EXPECT_EQ(render(*Plain.Ctx, Plain.R), render(*Tracked.Ctx, Tracked.R));
    EXPECT_EQ(Plain.R.Stats.Goals, Tracked.R.Stats.Goals);
    EXPECT_EQ(Plain.R.Stats.CacheHits, Tracked.R.Stats.CacheHits);
    EXPECT_EQ(Plain.R.Stats.Cuts, Tracked.R.Stats.Cuts);
    EXPECT_EQ(Plain.R.Stats.Joins, Tracked.R.Stats.Joins);
    EXPECT_EQ(Plain.R.Stats.DeadPaths, Tracked.R.Stats.DeadPaths);
    EXPECT_EQ(Plain.R.Stats.MaxDepth, Tracked.R.Stats.MaxDepth);
  }
}

TEST(MemoTransfer, SameProgramReplayIsByteIdenticalAndCheaper) {
  std::string Text = callsProgram("3");
  XferRun<CD> Cold = runWith<CD>(Text, nullptr);
  XferRun<CD> Warm = runWith<CD>(Text, &Cold.Export);
  EXPECT_EQ(render(*Cold.Ctx, Cold.R), render(*Warm.Ctx, Warm.R));
  EXPECT_GT(Warm.R.Stats.ReplayHits, 0u);
  EXPECT_LT(Warm.R.Stats.Goals, Cold.R.Stats.Goals);
}

TEST(MemoTransfer, RecursiveProgramReplayIsByteIdentical) {
  XferRun<CD> Cold = runWith<CD>(std::string(RecProgram), nullptr);
  EXPECT_GT(Cold.R.Stats.Cuts, 0u);
  XferRun<CD> Warm = runWith<CD>(std::string(RecProgram), &Cold.Export);
  EXPECT_EQ(render(*Cold.Ctx, Cold.R), render(*Warm.Ctx, Warm.R));
  EXPECT_GT(Warm.R.Stats.ReplayHits, 0u);
  EXPECT_LT(Warm.R.Stats.Goals, Cold.R.Stats.Goals);
}

TEST(MemoTransfer, EditedLeafReplaysSharedSubtreesExactly) {
  XferRun<CD> Cold = runWith<CD>(callsProgram("3"), nullptr);
  // One-leaf edit: the spine digests change, the lambda body's do not.
  XferRun<CD> Warm = runWith<CD>(callsProgram("4"), &Cold.Export);
  XferRun<CD> Ref = runWith<CD>(callsProgram("4"), nullptr, CD::top(), false);
  EXPECT_EQ(render(*Ref.Ctx, Ref.R), render(*Warm.Ctx, Warm.R));
  EXPECT_GT(Warm.R.Stats.ReplayHits, 0u);
  EXPECT_LE(Warm.R.Stats.Goals, Ref.R.Stats.Goals);
}

TEST(MemoTransfer, ChangedFreeBindingRejectsStaleEntries) {
  std::string Text = "(let (f (lambda (x) (let (a (add1 x)) a))) "
                     "(let (u (f z)) u))";
  XferRun<CD> Cold = runWith<CD>(Text, nullptr, CD::constant(5));
  XferRun<CD> Warm = runWith<CD>(Text, &Cold.Export, CD::constant(7));
  XferRun<CD> Ref = runWith<CD>(Text, nullptr, CD::constant(7), false);
  // Every entry's Required embeds the z=5 world: all candidates miss.
  EXPECT_EQ(Warm.R.Stats.ReplayHits, 0u);
  EXPECT_GT(Warm.R.Stats.ReplayMisses, 0u);
  EXPECT_EQ(render(*Ref.Ctx, Ref.R), render(*Warm.Ctx, Warm.R));
}

template <typename D> void roundTripDomain() {
  std::string Text = callsProgram("3");
  XferRun<D> Cold = runWith<D>(Text, nullptr);
  XferRun<D> Warm = runWith<D>(Text, &Cold.Export);
  EXPECT_EQ(render(*Cold.Ctx, Cold.R), render(*Warm.Ctx, Warm.R));
  EXPECT_GT(Warm.R.Stats.ReplayHits, 0u);

  XferRun<D> Edit = runWith<D>(callsProgram("4"), &Cold.Export);
  XferRun<D> Ref = runWith<D>(callsProgram("4"), nullptr, D::top(), false);
  EXPECT_EQ(render(*Ref.Ctx, Ref.R), render(*Edit.Ctx, Edit.R));
}

TEST(MemoTransfer, RoundTripsEveryDomain) {
  roundTripDomain<domain::ConstantDomain>();
  roundTripDomain<domain::UnitDomain>();
  roundTripDomain<domain::SignDomain>();
  roundTripDomain<domain::ParityDomain>();
  roundTripDomain<domain::IntervalDomain>();
}

} // namespace
