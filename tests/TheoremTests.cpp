//===- tests/TheoremTests.cpp - The Section 5 theorems ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable versions of Theorems 5.1, 5.2, 5.4, and 5.5 on the paper's
/// own witness programs. These are the headline results of the
/// reproduction: the direct and syntactic-CPS analyses are incomparable;
/// the semantic-CPS analysis dominates both.
///
//===----------------------------------------------------------------------===//

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "domain/NumDomain.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using domain::ConstantDomain;
using domain::UnitDomain;

namespace {

using CD = ConstantDomain;

/// Runs all four comparison analyzers on a witness under domain D.
template <typename D> struct AllResults {
  DirectResult<D> Direct;
  SemanticResult<D> Semantic;
  SyntacticResult<D> Syntactic;
  PushdownResult<D> Pushdown;
};

template <typename D>
AllResults<D> runAll(const Context &Ctx, const Witness &W,
                     AnalyzerOptions Opts = AnalyzerOptions()) {
  AllResults<D> R;
  R.Direct = DirectAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W), Opts).run();
  R.Semantic =
      SemanticCpsAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W), Opts).run();
  R.Syntactic =
      SyntacticCpsAnalyzer<D>(Ctx, W.Cps, cpsBindings<D>(W), Opts).run();
  R.Pushdown =
      PushdownAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W), Opts).run();
  return R;
}

TEST(Theorem51, DirectFindsA1ConstantOne) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");

  // Direct analysis: a1 is the constant 1 (paper, proof of Theorem 5.1).
  auto DA1 = R.Direct.valueOf(A1);
  EXPECT_EQ(CD::str(DA1.Num), "1");
  // a2 merges both calls' results: top.
  EXPECT_EQ(CD::str(R.Direct.valueOf(A2).Num), "T");

  // Syntactic-CPS analysis: the false return loses a1 entirely.
  auto SA1 = R.Syntactic.valueOf(A1);
  EXPECT_EQ(CD::str(SA1.Num), "T");
}

TEST(Theorem51, DirectStrictlyMorePreciseThanSyntacticCps) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Comparison C = compareWithSyntactic<CD>(Ctx, R.Direct, R.Syntactic, W.Cps,
                                          W.InterestingVars);
  EXPECT_EQ(C.Overall, PrecisionOrder::LeftMorePrecise);
}

TEST(Theorem51, SyntacticCpsConfusesReturns) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = runAll<CD>(Ctx, W);

  // The identity's (k1 x) return point must have collected both
  // continuations — the false return of Section 6.1.
  bool FoundFalseReturn = false;
  for (const auto &[Ret, Konts] : R.Syntactic.Cfg.Returns)
    if (Konts.size() > 1)
      FoundFalseReturn = true;
  EXPECT_TRUE(FoundFalseReturn);
}

TEST(Theorem52a, CpsAnalysesFindA2Constant3) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Symbol A2 = Ctx.intern("a2");

  // Direct: branch merging loses a2.
  EXPECT_EQ(CD::str(R.Direct.valueOf(A2).Num), "T");
  // Syntactic CPS: per-branch duplication finds a2 = 3.
  EXPECT_EQ(CD::str(R.Syntactic.valueOf(A2).Num), "3");
  // Semantic CPS duplicates too.
  EXPECT_EQ(CD::str(R.Semantic.valueOf(A2).Num), "3");
}

TEST(Theorem52a, SyntacticCpsStrictlyMorePreciseThanDirect) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Comparison C = compareWithSyntactic<CD>(Ctx, R.Direct, R.Syntactic, W.Cps,
                                          W.InterestingVars);
  EXPECT_EQ(C.Overall, PrecisionOrder::RightMorePrecise);
}

TEST(Theorem52b, CpsAnalysesFindA2Constant5) {
  Context Ctx;
  Witness W = theorem52b(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");

  // Direct: a1 = 0 join 1 = T, and a2 degrades to T.
  EXPECT_EQ(CD::str(R.Direct.valueOf(A1).Num), "T");
  EXPECT_EQ(CD::str(R.Direct.valueOf(A2).Num), "T");
  // CPS analyses: each call path keeps its constant; a2 = 5 on both.
  EXPECT_EQ(CD::str(R.Syntactic.valueOf(A2).Num), "5");
  EXPECT_EQ(CD::str(R.Semantic.valueOf(A2).Num), "5");
}

TEST(Theorem52b, SyntacticCpsStrictlyMorePreciseThanDirect) {
  Context Ctx;
  Witness W = theorem52b(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Comparison C = compareWithSyntactic<CD>(Ctx, R.Direct, R.Syntactic, W.Cps,
                                          W.InterestingVars);
  EXPECT_EQ(C.Overall, PrecisionOrder::RightMorePrecise);
}

TEST(Theorem54, SemanticAtLeastAsPreciseAsDirectOnWitnesses) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<CD>(Ctx, W);
    Comparison C = compareDirectWorld<CD>(Ctx, R.Semantic, R.Direct,
                                          W.InterestingVars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << W.Name << ": " << str(C.Overall);
  }
}

TEST(Theorem54, DistributiveAnalysisMakesThemEqual) {
  // Under the UnitDomain the analysis is distributive, so by Theorem 5.4
  // the semantic-CPS and direct results coincide.
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<UnitDomain>(Ctx, W);
    Comparison C = compareDirectWorld<UnitDomain>(Ctx, R.Semantic, R.Direct,
                                                  W.InterestingVars);
    EXPECT_EQ(C.Overall, PrecisionOrder::Equal) << W.Name;
  }
}

TEST(Theorem55, SemanticAtLeastAsPreciseAsSyntacticOnWitnesses) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<CD>(Ctx, W);
    Comparison C = compareWithSyntactic<CD>(Ctx, R.Semantic, R.Syntactic,
                                            W.Cps, W.InterestingVars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << W.Name << ": " << str(C.Overall);
  }
}

TEST(Theorems, AnalysesTerminateAndComplete) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<CD>(Ctx, W);
    EXPECT_TRUE(R.Direct.Stats.complete()) << W.Name;
    EXPECT_TRUE(R.Semantic.Stats.complete()) << W.Name;
    EXPECT_TRUE(R.Syntactic.Stats.complete()) << W.Name;
    EXPECT_TRUE(R.Pushdown.Stats.complete()) << W.Name;
  }
}

// --- The modern resolution: pushdown call-return matching ---------------
//
// CFA2-style summarization dismantles both halves of the Section 5
// incomparability: it matches returns to calls (so Theorem 5.1's loss
// never happens) while keeping per-path precision through calls and
// branches (so Theorem 5.2's losses never happen either).

TEST(Pushdown, MatchesDirectOnTheorem51Witness) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");

  // Return-point matching keeps a1 = 1 — the exact direct answer, with
  // zero call merges (the counter Theorem 5.1 blames for syntactic's
  // loss stays untouched).
  EXPECT_EQ(CD::str(R.Pushdown.valueOf(A1).Num), "1");
  EXPECT_EQ(CD::str(R.Pushdown.valueOf(A2).Num), "T");
  EXPECT_EQ(R.Pushdown.Stats.CallMerges, 0u);

  Comparison C = compareDirectWorld<CD>(Ctx, R.Pushdown, R.Direct,
                                        W.InterestingVars);
  EXPECT_EQ(C.Overall, PrecisionOrder::Equal);
}

TEST(Pushdown, StrictlyMorePreciseThanSyntacticOnTheorem51) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = runAll<CD>(Ctx, W);

  Comparison C = compareWithSyntactic<CD>(Ctx, R.Pushdown, R.Syntactic,
                                          W.Cps, W.InterestingVars);
  EXPECT_EQ(C.Overall, PrecisionOrder::LeftMorePrecise);
}

TEST(Pushdown, KeepsTheorem52PerPathConstants) {
  // The direct analysis loses a2 on both 5.2 witnesses; the pushdown
  // analysis keeps the constant exactly like the CPS analyses do.
  Context Ctx;
  {
    Witness W = theorem52a(Ctx);
    auto R = runAll<CD>(Ctx, W);
    EXPECT_EQ(CD::str(R.Pushdown.valueOf(Ctx.intern("a2")).Num), "3");
  }
  {
    Witness W = theorem52b(Ctx);
    auto R = runAll<CD>(Ctx, W);
    EXPECT_EQ(CD::str(R.Pushdown.valueOf(Ctx.intern("a2")).Num), "5");
  }
}

TEST(Pushdown, AtLeastAsPreciseAsSyntacticOnAllWitnesses) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<CD>(Ctx, W);
    Comparison C = compareWithSyntactic<CD>(Ctx, R.Pushdown, R.Syntactic,
                                            W.Cps, W.InterestingVars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << W.Name << ": " << str(C.Overall);
  }
}

TEST(Pushdown, AtLeastAsPreciseAsDirectOnAllWitnesses) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto R = runAll<CD>(Ctx, W);
    Comparison C = compareDirectWorld<CD>(Ctx, R.Pushdown, R.Direct,
                                          W.InterestingVars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << W.Name << ": " << str(C.Overall);
  }
}

} // namespace
