//===- tests/CpsTests.cpp - CPS transformation tests ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cps/Transform.h"

#include "TestUtil.h"
#include "anf/Anf.h"
#include "syntax/Builder.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"

#include <gtest/gtest.h>

#include <set>

using namespace cpsflow;
using namespace cpsflow::cps;
using cpsflow::test::mustParse;

namespace {

CpsProgram mustTransform(Context &Ctx, const syntax::Term *Anf) {
  Result<CpsProgram> R = cpsTransform(Ctx, Anf);
  EXPECT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.error().Message);
  return R.take();
}

TEST(CpsTransform, RejectsNonAnf) {
  Context Ctx;
  const syntax::Term *T = mustParse(Ctx, "(f (g 1))");
  EXPECT_FALSE(cpsTransform(Ctx, T).hasValue());
}

TEST(CpsTransform, ReturnsValueThroughTopK) {
  // F_k[V] = (k V[V]).
  Context Ctx;
  CpsProgram P = mustTransform(Ctx, mustParse(Ctx, "42"));
  const auto *Ret = dyn_cast<CpsRet>(P.Root);
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->kvar(), P.TopK);
  EXPECT_EQ(cast<CpsNum>(Ret->arg())->value(), 42);
}

TEST(CpsTransform, LetValueBecomesCpsLet) {
  Context Ctx;
  CpsProgram P = mustTransform(Ctx, mustParse(Ctx, "(let (x 1) x)"));
  const auto *Let = dyn_cast<CpsLetVal>(P.Root);
  ASSERT_NE(Let, nullptr);
  EXPECT_EQ(Ctx.spelling(Let->var()), "x");
  EXPECT_TRUE(isa<CpsRet>(Let->body()));
}

TEST(CpsTransform, ApplicationGetsExplicitContinuation) {
  // The Theorem 5.1 shape: F_k[(let (a1 (f 1)) (let (a2 (f 2)) a2))]
  //   = (f 1 (lambda (a1) (f 2 (lambda (a2) (k a2))))).
  Context Ctx;
  CpsProgram P = mustTransform(
      Ctx, mustParse(Ctx, "(let (a1 (f 1)) (let (a2 (f 2)) a2))"));
  const auto *C1 = dyn_cast<CpsCall>(P.Root);
  ASSERT_NE(C1, nullptr);
  EXPECT_EQ(Ctx.spelling(cast<CpsVar>(C1->fun())->name()), "f");
  EXPECT_EQ(cast<CpsNum>(C1->arg())->value(), 1);
  EXPECT_EQ(Ctx.spelling(C1->cont()->param()), "a1");

  const auto *C2 = dyn_cast<CpsCall>(C1->cont()->body());
  ASSERT_NE(C2, nullptr);
  EXPECT_EQ(cast<CpsNum>(C2->arg())->value(), 2);
  EXPECT_EQ(Ctx.spelling(C2->cont()->param()), "a2");

  const auto *Ret = dyn_cast<CpsRet>(C2->cont()->body());
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->kvar(), P.TopK);
}

TEST(CpsTransform, ConditionalNamesItsJoinContinuation) {
  // F_k[(let (x (if0 z 0 1)) M)] =
  //   (let (k' (lambda (x) F_k[M])) (if0 z (k' 0) (k' 1))).
  Context Ctx;
  CpsProgram P =
      mustTransform(Ctx, mustParse(Ctx, "(let (x (if0 z 0 1)) x)"));
  const auto *If = dyn_cast<CpsIf>(P.Root);
  ASSERT_NE(If, nullptr);
  EXPECT_EQ(Ctx.spelling(If->join()->param()), "x");
  const auto *T = dyn_cast<CpsRet>(If->thenBranch());
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->kvar(), If->kvar());
  EXPECT_EQ(cast<CpsNum>(T->arg())->value(), 0);
  const auto *E = dyn_cast<CpsRet>(If->elseBranch());
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(cast<CpsNum>(E->arg())->value(), 1);
}

TEST(CpsTransform, LambdaGetsContinuationParameter) {
  Context Ctx;
  CpsProgram P = mustTransform(
      Ctx, mustParse(Ctx, "(lambda (x) (let (r (add1 x)) r))"));
  const auto *Ret = cast<CpsRet>(P.Root);
  const auto *Lam = dyn_cast<CpsLam>(Ret->arg());
  ASSERT_NE(Lam, nullptr);
  EXPECT_EQ(Ctx.spelling(Lam->param()), "x");
  EXPECT_NE(Lam->kparam(), P.TopK);
  // Body: (add1k x (lambda (r) (k' r))).
  const auto *Call = dyn_cast<CpsCall>(Lam->body());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(cast<CpsPrim>(Call->fun())->op(), CpsPrimOp::Add1k);
}

TEST(CpsTransform, LoopBecomesLoopk) {
  Context Ctx;
  CpsProgram P = mustTransform(Ctx, mustParse(Ctx, "(let (x (loop)) x)"));
  const auto *Loop = dyn_cast<CpsLoop>(P.Root);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Ctx.spelling(Loop->cont()->param()), "x");
}

TEST(CpsTransform, KVarsAreDisjointFromSourceVariables) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (f (lambda (x) (let (q (if0 x 1 2)) q))) (let (a (f 0)) a))");
  CpsProgram P = mustTransform(Ctx, T);
  std::set<Symbol> Source = syntax::boundVars(T);
  for (Symbol S : syntax::freeVars(T))
    Source.insert(S);
  for (Symbol K : P.KVars) {
    EXPECT_FALSE(Source.count(K)) << Ctx.spelling(K);
    EXPECT_NE(Ctx.spelling(K).find('%'), std::string::npos);
  }
}

TEST(CpsTransform, RecordsLambdaCorrespondence) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx,
      "(let (f (lambda (x) x)) (let (g (lambda (y) y)) (let (a (f g)) a)))");
  CpsProgram P = mustTransform(Ctx, T);
  EXPECT_EQ(P.Lams.size(), 2u);
  EXPECT_EQ(P.LamToCps.size(), 2u);
  EXPECT_EQ(P.CpsToLam.size(), 2u);
  for (const syntax::LamValue *Lam : syntax::collectLambdas(T)) {
    auto It = P.LamToCps.find(Lam);
    ASSERT_NE(It, P.LamToCps.end());
    EXPECT_EQ(It->second->param(), Lam->param());
    EXPECT_EQ(P.CpsToLam.at(It->second), Lam);
  }
}

TEST(CpsTransform, RecordsContinuationOrigins) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (a (f 1)) (let (b (if0 a 1 2)) b))");
  CpsProgram P = mustTransform(Ctx, T);
  ASSERT_EQ(P.ContLams.size(), 2u);
  for (const ContLam *C : P.ContLams) {
    auto It = P.ContToLet.find(C);
    ASSERT_NE(It, P.ContToLet.end());
    EXPECT_EQ(It->second->var(), C->param());
  }
}

TEST(CpsTransform, ExtraLambdaRegistration) {
  Context Ctx;
  syntax::Builder B(Ctx);
  CpsProgram P = mustTransform(Ctx, mustParse(Ctx, "(let (a (f 1)) a)"));
  const syntax::LamValue *Id =
      B.lam(Ctx.intern("x"), B.varTerm(Ctx.intern("x")));
  const CpsLam *Image = cpsTransformExtra(Ctx, P, Id);
  ASSERT_NE(Image, nullptr);
  EXPECT_EQ(Image->param(), Id->param());
  EXPECT_EQ(P.LamToCps.at(Id), Image);
  // Idempotent.
  EXPECT_EQ(cpsTransformExtra(Ctx, P, Id), Image);
}

TEST(CpsTransform, PrinterShowsDefinitionSyntax) {
  Context Ctx;
  CpsProgram P =
      mustTransform(Ctx, mustParse(Ctx, "(let (a (add1 1)) a)"));
  std::string S = printCps(Ctx, P.Root);
  EXPECT_NE(S.find("add1k"), std::string::npos);
  EXPECT_NE(S.find("(lambda (a)"), std::string::npos);
}

TEST(CpsTransform, NodeCountAndVariableCollection) {
  Context Ctx;
  CpsProgram P = mustTransform(
      Ctx, mustParse(Ctx, "(let (a (f 1)) (let (b (if0 a 1 2)) b))"));
  EXPECT_GT(countCpsNodes(P.Root), 8u);
  std::vector<Symbol> Vars = collectCpsVariables(P.Root, P.TopK);
  std::set<Symbol> Set(Vars.begin(), Vars.end());
  EXPECT_TRUE(Set.count(Ctx.intern("a")));
  EXPECT_TRUE(Set.count(Ctx.intern("b")));
  EXPECT_TRUE(Set.count(Ctx.intern("f")));
  EXPECT_TRUE(Set.count(P.TopK));
}

class CpsGrammarSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpsGrammarSweep, TransformSucceedsOnGeneratedAnf) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 30; ++I) {
    const syntax::Term *T = Gen.generate();
    Result<CpsProgram> R = cpsTransform(Ctx, T);
    ASSERT_TRUE(R.hasValue());
    EXPECT_GT(countCpsNodes(R->Root), 0u);
    // Each source lambda must have an image.
    EXPECT_EQ(R->Lams.size(), syntax::collectLambdas(T).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpsGrammarSweep,
                         ::testing::Values(3, 9, 27, 81));

} // namespace

namespace {

TEST(CpsTransform, IndentedPrinterMatchesFlatModuloWhitespace) {
  Context Ctx;
  const syntax::Term *T = mustParse(
      Ctx, "(let (f (lambda (x) (let (q (if0 x 1 2)) q))) (let (a (f 0)) a))");
  CpsProgram P = mustTransform(Ctx, T);
  std::string Flat = printCps(Ctx, P.Root);
  std::string Pretty = printCpsIndented(Ctx, P.Root);
  EXPECT_NE(Pretty.find('\n'), std::string::npos);

  auto Squash = [](const std::string &S) {
    std::string Out;
    bool InWs = false;
    for (char C : S) {
      if (C == ' ' || C == '\n') {
        InWs = true;
        continue;
      }
      if (InWs && !Out.empty())
        Out += ' ';
      InWs = false;
      Out += C;
    }
    return Out;
  };
  EXPECT_EQ(Squash(Flat), Squash(Pretty));
}

} // namespace
