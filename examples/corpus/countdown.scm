; First-order loop to zero: the classic termination-cut workload.
(define (count n) (if0 n 0 (count (sub1 n))))
(count 10)
