
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/Enumerate.cpp" "src/gen/CMakeFiles/cpsflow_gen.dir/Enumerate.cpp.o" "gcc" "src/gen/CMakeFiles/cpsflow_gen.dir/Enumerate.cpp.o.d"
  "/root/repo/src/gen/Generator.cpp" "src/gen/CMakeFiles/cpsflow_gen.dir/Generator.cpp.o" "gcc" "src/gen/CMakeFiles/cpsflow_gen.dir/Generator.cpp.o.d"
  "/root/repo/src/gen/Workloads.cpp" "src/gen/CMakeFiles/cpsflow_gen.dir/Workloads.cpp.o" "gcc" "src/gen/CMakeFiles/cpsflow_gen.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/cpsflow_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/anf/CMakeFiles/cpsflow_anf.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cpsflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/cpsflow_cps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
