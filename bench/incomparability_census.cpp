//===- bench/incomparability_census.cpp - E8: census ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — the Section 5.1 corollary in the large: over random programs, the
/// direct and syntactic-CPS constant-propagation analyses compare in every
/// possible way. The theorem witnesses are the two strict directions; the
/// census measures how often each verdict arises "in the wild" and on the
/// structured families that trigger each mechanism.
///
/// The pushdown columns are the modern resolution measured the same way:
/// pushdown-vs-direct and pushdown-vs-syntactic over the identical
/// corpora. The incomparability disappears — the pushdown analysis is
/// never the less precise side of either comparison.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/PushdownAnalyzer.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "syntax/Analysis.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

struct Tally {
  int Equal = 0, LeftWins = 0, RightWins = 0, Incomparable = 0, Skipped = 0;

  void add(PrecisionOrder O) {
    switch (O) {
    case PrecisionOrder::Equal:
      ++Equal;
      break;
    case PrecisionOrder::LeftMorePrecise:
      ++LeftWins;
      break;
    case PrecisionOrder::RightMorePrecise:
      ++RightWins;
      break;
    case PrecisionOrder::Incomparable:
      ++Incomparable;
      break;
    }
  }

  void print(const char *Label) const {
    std::printf("  %-24s | %5d | %6d | %6d | %6d | %5d\n", Label, Equal,
                LeftWins, RightWins, Incomparable, Skipped);
  }
};

/// One corpus row of the census: all three pairwise verdicts per witness.
struct Row {
  Tally DvC; ///< direct (left) vs syntactic CPS (right)
  Tally PvD; ///< pushdown (left) vs direct (right)
  Tally PvC; ///< pushdown (left) vs syntactic CPS (right)

  void classify(const Context &Ctx, const Witness &W) {
    auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto AC =
        SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
    auto AP =
        PushdownAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    if (!AD.Stats.complete() || !AC.Stats.complete() ||
        !AP.Stats.complete()) {
      ++DvC.Skipped;
      ++PvD.Skipped;
      ++PvC.Skipped;
      return;
    }
    DvC.add(compareWithSyntactic<CD>(Ctx, AD, AC, W.Cps,
                                     W.InterestingVars)
                .Overall);
    PvD.add(
        compareDirectWorld<CD>(Ctx, AP, AD, W.InterestingVars).Overall);
    PvC.add(compareWithSyntactic<CD>(Ctx, AP, AC, W.Cps,
                                     W.InterestingVars)
                .Overall);
  }
};

void printTable(const char *Title, const char *Left, const char *Right,
                const std::vector<std::pair<const char *, Tally>> &Rows) {
  std::printf("\n%s (left = %s, right = %s)\n", Title, Left, Right);
  std::printf("  corpus                   | equal | left   | right  | "
              "incomp | skip\n");
  std::printf("  -------------------------+-------+--------+--------+-----"
              "---+-----\n");
  for (const auto &[Label, T] : Rows)
    T.print(Label);
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E8: precision census — direct, syntactic CPS, pushdown");

  std::vector<std::pair<const char *, Row>> Corpora;

  // Random programs.
  {
    Row R;
    gen::GenOptions Opts;
    Opts.Seed = 88;
    Opts.ChainLength = 10;
    Opts.MaxDepth = 3;
    gen::ProgramGenerator Gen(Ctx, Opts);
    for (int I = 0; I < 400; ++I) {
      const syntax::Term *Prog = Gen.generate();
      Witness W = packageProgram(Ctx, "random", Prog);
      for (Symbol S : syntax::freeVars(Prog)) {
        AbsBindingSpec B;
        B.Var = S;
        B.NumTop = true;
        W.Bindings.push_back(B);
      }
      R.classify(Ctx, W);
    }
    Corpora.emplace_back("random (seed 88, n=400)", std::move(R));
  }

  // Structured families: each triggers one mechanism.
  {
    Row R;
    for (uint32_t N = 1; N <= 6; ++N)
      R.classify(Ctx, gen::callMergeChain(Ctx, N));
    Corpora.emplace_back("call-merge chains", std::move(R));
  }
  {
    Row R;
    for (uint32_t N = 1; N <= 6; ++N)
      R.classify(Ctx, gen::conditionalChain(Ctx, N));
    Corpora.emplace_back("conditional chains", std::move(R));
  }
  {
    Row R;
    R.classify(Ctx, theorem51(Ctx));
    Corpora.emplace_back("theorem 5.1 witness", std::move(R));
  }
  {
    Row R;
    R.classify(Ctx, theorem52a(Ctx));
    R.classify(Ctx, theorem52b(Ctx));
    Corpora.emplace_back("theorem 5.2 witnesses", std::move(R));
  }

  auto Select = [&](Tally Row::*M) {
    std::vector<std::pair<const char *, Tally>> Out;
    for (const auto &[Label, R] : Corpora)
      Out.emplace_back(Label, R.*M);
    return Out;
  };
  printTable("1994 incomparability", "direct", "syntactic cps",
             Select(&Row::DvC));
  printTable("pushdown vs direct", "pushdown", "direct",
             Select(&Row::PvD));
  printTable("pushdown vs syntactic cps", "pushdown", "syntactic cps",
             Select(&Row::PvC));

  std::printf("\npaper expectation: both strict directions are realized in "
              "the first table (columns 'left' and 'right' both non-zero "
              "across corpora) — the 1994 analyses are incomparable. "
              "resolution expectation: the 'right' and 'incomp' columns of "
              "both pushdown tables are all zero — call-return matching "
              "dominates both sides.\n");
  return 0;
}
