//===- cps/Transform.cpp - The syntactic CPS transformation -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cps/Transform.h"

#include "anf/Anf.h"
#include "cps/CpsIr.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace cpsflow;
using namespace cpsflow::cps;
using syntax::AppTerm;
using syntax::If0Term;
using syntax::LamValue;
using syntax::LetTerm;
using syntax::LoopTerm;
using syntax::NumValue;
using syntax::PrimOp;
using syntax::PrimValue;
using syntax::Term;
using syntax::TermKind;
using syntax::ValueTerm;
using syntax::VarValue;

namespace {

class Transformer {
public:
  Transformer(Context &Ctx, CpsProgram &Out) : Ctx(Ctx), Out(Out) {}

  const CpsTerm *transformTerm(const Term *M, Symbol K) {
    // F_k[V] = (k V[V])
    if (const auto *VT = syntax::dyn_cast<ValueTerm>(M))
      return Ctx.create<CpsRet>(K, transformValue(VT->value()), M->loc());

    const auto *Let = syntax::cast<LetTerm>(M);
    const Term *Bound = Let->bound();
    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      // F_k[(let (x V) M)] = (let (x V[V]) F_k[M])
      const CpsValue *W =
          transformValue(syntax::cast<ValueTerm>(Bound)->value());
      const CpsTerm *Body = transformTerm(Let->body(), K);
      return Ctx.create<CpsLetVal>(Let->var(), W, Body, M->loc());
    }
    case TermKind::TK_App: {
      // F_k[(let (x (V1 V2)) M)] = (V[V1] V[V2] (lambda (x) F_k[M]))
      const auto *App = syntax::cast<AppTerm>(Bound);
      const CpsValue *Fun =
          transformValue(syntax::cast<ValueTerm>(App->fun())->value());
      const CpsValue *Arg =
          transformValue(syntax::cast<ValueTerm>(App->arg())->value());
      const ContLam *Cont = makeCont(Let, K);
      return Ctx.create<CpsCall>(Fun, Arg, Cont, M->loc());
    }
    case TermKind::TK_If0: {
      // F_k[(let (x (if0 V0 M1 M2)) M)]
      //   = (let (k' (lambda (x) F_k[M])) (if0 V[V0] F_k'[M1] F_k'[M2]))
      const auto *If = syntax::cast<If0Term>(Bound);
      const CpsValue *Cond =
          transformValue(syntax::cast<ValueTerm>(If->cond())->value());
      Symbol Join = freshK();
      const ContLam *JoinLam = makeCont(Let, K);
      const CpsTerm *Then = transformTerm(If->thenBranch(), Join);
      const CpsTerm *Else = transformTerm(If->elseBranch(), Join);
      return Ctx.create<CpsIf>(Join, JoinLam, Cond, Then, Else, M->loc());
    }
    case TermKind::TK_Loop: {
      // F_k[(let (x (loop)) M)] = (loopk (lambda (x) F_k[M]))
      const ContLam *Cont = makeCont(Let, K);
      return Ctx.create<CpsLoop>(Cont, M->loc());
    }
    case TermKind::TK_Let:
      assert(false && "not ANF: let-bound let");
      return nullptr;
    }
    assert(false && "unknown term kind");
    return nullptr;
  }

  const CpsValue *transformValue(const syntax::Value *V) {
    switch (V->kind()) {
    case syntax::ValueKind::VK_Num:
      return Ctx.create<CpsNum>(syntax::cast<NumValue>(V)->value(), V->loc());
    case syntax::ValueKind::VK_Var:
      return Ctx.create<CpsVar>(syntax::cast<VarValue>(V)->name(), V->loc());
    case syntax::ValueKind::VK_Prim:
      return Ctx.create<CpsPrim>(
          syntax::cast<PrimValue>(V)->op() == PrimOp::Add1
              ? CpsPrimOp::Add1k
              : CpsPrimOp::Sub1k,
          V->loc());
    case syntax::ValueKind::VK_Lam: {
      // V[(lambda (x) M)] = (lambda (x k') F_k'[M])
      const auto *Lam = syntax::cast<LamValue>(V);
      Symbol K = freshK();
      const CpsTerm *Body = transformTerm(Lam->body(), K);
      const CpsLam *Image =
          Ctx.create<CpsLam>(Lam->param(), K, Body, V->loc());
      Out.LamToCps.emplace(Lam, Image);
      Out.CpsToLam.emplace(Image, Lam);
      Out.Lams.push_back(Image);
      return Image;
    }
    }
    assert(false && "unknown value kind");
    return nullptr;
  }

  Symbol freshK() {
    Symbol K = Ctx.fresh("k");
    Out.KVars.push_back(K);
    return K;
  }

private:
  /// Builds the continuation lambda (lambda (x) F_k[Body]) for the source
  /// binding \p Let and records the correspondence.
  const ContLam *makeCont(const LetTerm *Let, Symbol K) {
    const CpsTerm *Body = transformTerm(Let->body(), K);
    const ContLam *Cont =
        Ctx.create<ContLam>(Let->var(), Body, Let->loc());
    Out.ContToLet.emplace(Cont, Let);
    Out.ContLams.push_back(Cont);
    return Cont;
  }

  Context &Ctx;
  CpsProgram &Out;
};

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

void printValue(const Context &Ctx, const CpsValue *W, std::ostringstream &O,
                bool Indented, int Depth);

void newlineOrSpace(std::ostringstream &O, bool Indented, int Depth) {
  if (!Indented) {
    O << ' ';
    return;
  }
  O << '\n';
  for (int I = 0; I < Depth; ++I)
    O << "  ";
}

void printTerm(const Context &Ctx, const CpsTerm *P, std::ostringstream &O,
               bool Indented = false, int Depth = 0) {
  switch (P->kind()) {
  case CpsTermKind::PK_Ret: {
    const auto *Ret = cast<CpsRet>(P);
    O << '(' << Ctx.spelling(Ret->kvar()) << ' ';
    printValue(Ctx, Ret->arg(), O, Indented, Depth);
    O << ')';
    return;
  }
  case CpsTermKind::PK_LetVal: {
    const auto *Let = cast<CpsLetVal>(P);
    O << "(let (" << Ctx.spelling(Let->var()) << ' ';
    printValue(Ctx, Let->bound(), O, Indented, Depth + 1);
    O << ')';
    newlineOrSpace(O, Indented, Depth + 1);
    printTerm(Ctx, Let->body(), O, Indented, Depth + 1);
    O << ')';
    return;
  }
  case CpsTermKind::PK_Call: {
    const auto *Call = cast<CpsCall>(P);
    O << '(';
    printValue(Ctx, Call->fun(), O, Indented, Depth);
    O << ' ';
    printValue(Ctx, Call->arg(), O, Indented, Depth);
    O << " (lambda (" << Ctx.spelling(Call->cont()->param()) << ')';
    newlineOrSpace(O, Indented, Depth + 1);
    printTerm(Ctx, Call->cont()->body(), O, Indented, Depth + 1);
    O << "))";
    return;
  }
  case CpsTermKind::PK_If: {
    const auto *If = cast<CpsIf>(P);
    O << "(let (" << Ctx.spelling(If->kvar()) << " (lambda ("
      << Ctx.spelling(If->join()->param()) << ')';
    newlineOrSpace(O, Indented, Depth + 2);
    printTerm(Ctx, If->join()->body(), O, Indented, Depth + 2);
    O << "))";
    newlineOrSpace(O, Indented, Depth + 1);
    O << "(if0 ";
    printValue(Ctx, If->cond(), O, Indented, Depth + 1);
    newlineOrSpace(O, Indented, Depth + 2);
    printTerm(Ctx, If->thenBranch(), O, Indented, Depth + 2);
    newlineOrSpace(O, Indented, Depth + 2);
    printTerm(Ctx, If->elseBranch(), O, Indented, Depth + 2);
    O << "))";
    return;
  }
  case CpsTermKind::PK_Loop: {
    const auto *Loop = cast<CpsLoop>(P);
    O << "(loopk (lambda (" << Ctx.spelling(Loop->cont()->param()) << ')';
    newlineOrSpace(O, Indented, Depth + 1);
    printTerm(Ctx, Loop->cont()->body(), O, Indented, Depth + 1);
    O << "))";
    return;
  }
  }
}

void printValue(const Context &Ctx, const CpsValue *W, std::ostringstream &O,
                bool Indented, int Depth) {
  switch (W->kind()) {
  case CpsValueKind::WK_Num:
    O << cast<CpsNum>(W)->value();
    return;
  case CpsValueKind::WK_Var:
    O << Ctx.spelling(cast<CpsVar>(W)->name());
    return;
  case CpsValueKind::WK_Prim:
    O << (cast<CpsPrim>(W)->op() == CpsPrimOp::Add1k ? "add1k" : "sub1k");
    return;
  case CpsValueKind::WK_Lam: {
    const auto *Lam = cast<CpsLam>(W);
    O << "(lambda (" << Ctx.spelling(Lam->param()) << ' '
      << Ctx.spelling(Lam->kparam()) << ')';
    newlineOrSpace(O, Indented, Depth + 1);
    printTerm(Ctx, Lam->body(), O, Indented, Depth + 1);
    O << ')';
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Node walks
//===----------------------------------------------------------------------===//

template <typename TermFn, typename ValueFn, typename ContFn>
void walkCps(const CpsTerm *P, TermFn OnTerm, ValueFn OnValue, ContFn OnCont) {
  OnTerm(P);
  switch (P->kind()) {
  case CpsTermKind::PK_Ret:
    OnValue(cast<CpsRet>(P)->arg());
    if (const auto *Lam = dyn_cast<CpsLam>(cast<CpsRet>(P)->arg()))
      walkCps(Lam->body(), OnTerm, OnValue, OnCont);
    return;
  case CpsTermKind::PK_LetVal: {
    const auto *Let = cast<CpsLetVal>(P);
    OnValue(Let->bound());
    if (const auto *Lam = dyn_cast<CpsLam>(Let->bound()))
      walkCps(Lam->body(), OnTerm, OnValue, OnCont);
    walkCps(Let->body(), OnTerm, OnValue, OnCont);
    return;
  }
  case CpsTermKind::PK_Call: {
    const auto *Call = cast<CpsCall>(P);
    OnValue(Call->fun());
    if (const auto *Lam = dyn_cast<CpsLam>(Call->fun()))
      walkCps(Lam->body(), OnTerm, OnValue, OnCont);
    OnValue(Call->arg());
    if (const auto *Lam = dyn_cast<CpsLam>(Call->arg()))
      walkCps(Lam->body(), OnTerm, OnValue, OnCont);
    OnCont(Call->cont());
    walkCps(Call->cont()->body(), OnTerm, OnValue, OnCont);
    return;
  }
  case CpsTermKind::PK_If: {
    const auto *If = cast<CpsIf>(P);
    OnCont(If->join());
    walkCps(If->join()->body(), OnTerm, OnValue, OnCont);
    OnValue(If->cond());
    if (const auto *Lam = dyn_cast<CpsLam>(If->cond()))
      walkCps(Lam->body(), OnTerm, OnValue, OnCont);
    walkCps(If->thenBranch(), OnTerm, OnValue, OnCont);
    walkCps(If->elseBranch(), OnTerm, OnValue, OnCont);
    return;
  }
  case CpsTermKind::PK_Loop: {
    const auto *Loop = cast<CpsLoop>(P);
    OnCont(Loop->cont());
    walkCps(Loop->cont()->body(), OnTerm, OnValue, OnCont);
    return;
  }
  }
}

} // namespace

Result<CpsProgram> cpsflow::cps::cpsTransform(Context &Ctx,
                                              const syntax::Term *Anf) {
  if (Result<bool> R = anf::isAnf(Anf); !R)
    return Error("cps transform requires A-normal form: " +
                 R.error().Message);
  CpsProgram Out;
  Transformer T(Ctx, Out);
  Out.TopK = T.freshK();
  Out.Root = T.transformTerm(Anf, Out.TopK);
  return Out;
}

const CpsLam *cpsflow::cps::cpsTransformExtra(Context &Ctx,
                                              CpsProgram &Program,
                                              const syntax::LamValue *Lam) {
  if (auto It = Program.LamToCps.find(Lam); It != Program.LamToCps.end())
    return It->second;
  Transformer T(Ctx, Program);
  return cast<CpsLam>(T.transformValue(Lam));
}

std::string cpsflow::cps::printCps(const Context &Ctx, const CpsTerm *P) {
  std::ostringstream O;
  printTerm(Ctx, P, O);
  return O.str();
}

std::string cpsflow::cps::printCps(const Context &Ctx, const CpsValue *W) {
  std::ostringstream O;
  printValue(Ctx, W, O, /*Indented=*/false, 0);
  return O.str();
}

std::string cpsflow::cps::printCpsIndented(const Context &Ctx,
                                           const CpsTerm *P) {
  std::ostringstream O;
  printTerm(Ctx, P, O, /*Indented=*/true, 0);
  return O.str();
}

size_t cpsflow::cps::countCpsNodes(const CpsTerm *P) {
  size_t N = 0;
  walkCps(
      P, [&](const CpsTerm *) { ++N; }, [&](const CpsValue *) { ++N; },
      [&](const ContLam *) { ++N; });
  return N;
}

std::vector<const CpsLam *> cpsflow::cps::collectCpsLams(const CpsTerm *P) {
  std::vector<const CpsLam *> Out;
  walkCps(
      P, [](const CpsTerm *) {},
      [&](const CpsValue *W) {
        if (const auto *Lam = dyn_cast<CpsLam>(W))
          Out.push_back(Lam);
      },
      [](const ContLam *) {});
  std::sort(Out.begin(), Out.end(),
            [](const CpsLam *A, const CpsLam *B) { return A->id() < B->id(); });
  return Out;
}

std::vector<const ContLam *> cpsflow::cps::collectContLams(const CpsTerm *P) {
  std::vector<const ContLam *> Out;
  walkCps(
      P, [](const CpsTerm *) {}, [](const CpsValue *) {},
      [&](const ContLam *C) { Out.push_back(C); });
  std::sort(Out.begin(), Out.end(), [](const ContLam *A, const ContLam *B) {
    return A->id() < B->id();
  });
  return Out;
}

std::vector<Symbol> cpsflow::cps::collectCpsVariables(const CpsTerm *P,
                                                      Symbol TopK) {
  std::set<Symbol> All;
  All.insert(TopK);
  walkCps(
      P,
      [&](const CpsTerm *T) {
        switch (T->kind()) {
        case CpsTermKind::PK_Ret:
          All.insert(cast<CpsRet>(T)->kvar());
          break;
        case CpsTermKind::PK_LetVal:
          All.insert(cast<CpsLetVal>(T)->var());
          break;
        case CpsTermKind::PK_If:
          All.insert(cast<CpsIf>(T)->kvar());
          break;
        case CpsTermKind::PK_Call:
        case CpsTermKind::PK_Loop:
          break;
        }
      },
      [&](const CpsValue *W) {
        if (const auto *Var = dyn_cast<CpsVar>(W))
          All.insert(Var->name());
        if (const auto *Lam = dyn_cast<CpsLam>(W)) {
          All.insert(Lam->param());
          All.insert(Lam->kparam());
        }
      },
      [&](const ContLam *C) { All.insert(C->param()); });
  return std::vector<Symbol>(All.begin(), All.end());
}

//===----------------------------------------------------------------------===//
// Flat label-arena lowering (CpsIr.h)
//===----------------------------------------------------------------------===//

namespace {

/// Recursive lowering of one body tree. Terms reached through a
/// continuation index (call/if/loop continuations) are *not* descended
/// into — each continuation body is its own flat body, lowered once from
/// buildCpsIr's driver loop — so every term gets exactly one label.
struct IrBuilder {
  CpsIr Ir;
  const std::function<int64_t(Symbol)> &SlotOf;
  std::unordered_map<const CpsLam *, uint32_t> LamIdx;
  std::unordered_map<const ContLam *, uint32_t> ContIdx;
  std::unordered_map<const CpsValue *, uint32_t> ValIdx;
  bool Failed = false;

  explicit IrBuilder(const std::function<int64_t(Symbol)> &SlotOf)
      : SlotOf(SlotOf) {}

  uint32_t slot(Symbol S) {
    int64_t I = SlotOf(S);
    if (I < 0) {
      Failed = true;
      return 0;
    }
    return static_cast<uint32_t>(I);
  }

  uint32_t lowerVal(const CpsValue *W) {
    if (auto It = ValIdx.find(W); It != ValIdx.end())
      return It->second;
    CpsIr::ValNode N;
    N.Src = W;
    switch (W->kind()) {
    case CpsValueKind::WK_Num:
      N.Kind = CpsIr::ValKind::Num;
      N.Num = cast<CpsNum>(W)->value();
      break;
    case CpsValueKind::WK_Var:
      N.Kind = CpsIr::ValKind::Var;
      N.A = slot(cast<CpsVar>(W)->name());
      break;
    case CpsValueKind::WK_Prim:
      N.Kind = cast<CpsPrim>(W)->op() == CpsPrimOp::Add1k
                   ? CpsIr::ValKind::Inck
                   : CpsIr::ValKind::Deck;
      break;
    case CpsValueKind::WK_Lam: {
      auto It = LamIdx.find(cast<CpsLam>(W));
      if (It == LamIdx.end())
        Failed = true;
      else {
        N.Kind = CpsIr::ValKind::Lam;
        N.A = It->second;
      }
      break;
    }
    }
    uint32_t Label = static_cast<uint32_t>(Ir.Vals.size());
    Ir.Vals.push_back(N);
    ValIdx.emplace(W, Label);
    return Label;
  }

  /// Kont-universe numbering: 0 is `stop`, so in-program continuations
  /// start at 1.
  uint32_t contIndex(const ContLam *C) {
    auto It = ContIdx.find(C);
    if (It == ContIdx.end()) {
      Failed = true;
      return 0;
    }
    return It->second + 1;
  }

  uint32_t lowerTerm(const CpsTerm *P) {
    uint32_t Label = static_cast<uint32_t>(Ir.Terms.size());
    Ir.Terms.emplace_back();
    CpsIr::TermNode N;
    N.Kind = P->kind();
    N.SrcId = P->id();
    N.Loc = P->loc();
    N.Src = P;
    switch (P->kind()) {
    case CpsTermKind::PK_Ret: {
      const auto *Ret = cast<CpsRet>(P);
      N.A = slot(Ret->kvar());
      N.B = lowerVal(Ret->arg());
      break;
    }
    case CpsTermKind::PK_LetVal: {
      const auto *Let = cast<CpsLetVal>(P);
      N.A = slot(Let->var());
      N.B = lowerVal(Let->bound());
      N.C = lowerTerm(Let->body());
      break;
    }
    case CpsTermKind::PK_Call: {
      const auto *Call = cast<CpsCall>(P);
      N.A = lowerVal(Call->fun());
      N.B = lowerVal(Call->arg());
      N.C = contIndex(Call->cont());
      break;
    }
    case CpsTermKind::PK_If: {
      const auto *If = cast<CpsIf>(P);
      N.A = slot(If->kvar());
      N.B = lowerVal(If->cond());
      N.C = lowerTerm(If->thenBranch());
      N.E = lowerTerm(If->elseBranch());
      N.J = contIndex(If->join());
      break;
    }
    case CpsTermKind::PK_Loop:
      N.A = contIndex(cast<CpsLoop>(P)->cont());
      break;
    }
    Ir.Terms[Label] = N;
    return Label;
  }
};

} // namespace

std::optional<CpsIr>
cpsflow::cps::buildCpsIr(const CpsProgram &Program,
                         const std::vector<const CpsLam *> &ExtraLams,
                         const std::function<int64_t(Symbol)> &SlotOf) {
  // Enumerate user and continuation lambdas exactly as Universe.cpp does
  // (program + extras + lambdas nested in extra bodies, id-sorted and
  // deduplicated), so array positions coincide with the closure/kont
  // universe indices the analyzer derives from the same refs.
  std::vector<const CpsLam *> Lams = collectCpsLams(Program.Root);
  std::vector<const ContLam *> Conts = collectContLams(Program.Root);
  for (const CpsLam *L : ExtraLams) {
    Lams.push_back(L);
    for (const CpsLam *N : collectCpsLams(L->body()))
      Lams.push_back(N);
    for (const ContLam *C : collectContLams(L->body()))
      Conts.push_back(C);
  }
  auto ById = [](const auto *A, const auto *B) { return A->id() < B->id(); };
  std::sort(Lams.begin(), Lams.end(), ById);
  Lams.erase(std::unique(Lams.begin(), Lams.end()), Lams.end());
  std::sort(Conts.begin(), Conts.end(), ById);
  Conts.erase(std::unique(Conts.begin(), Conts.end()), Conts.end());

  IrBuilder B(SlotOf);
  B.Ir.Lams.resize(Lams.size());
  B.Ir.Conts.resize(Conts.size());
  for (uint32_t I = 0; I < Lams.size(); ++I) {
    B.LamIdx.emplace(Lams[I], I);
    CpsIr::LamNode &N = B.Ir.Lams[I];
    N.ParamSlot = B.slot(Lams[I]->param());
    N.KParamSlot = B.slot(Lams[I]->kparam());
    N.Src = Lams[I];
  }
  for (uint32_t I = 0; I < Conts.size(); ++I) {
    B.ContIdx.emplace(Conts[I], I);
    CpsIr::ContNode &N = B.Ir.Conts[I];
    N.ParamSlot = B.slot(Conts[I]->param());
    N.SrcId = Conts[I]->id();
    N.Loc = Conts[I]->loc();
    N.Src = Conts[I];
  }
  for (uint32_t I = 0; I < Conts.size(); ++I)
    B.Ir.Conts[I].Body = B.lowerTerm(Conts[I]->body());
  for (uint32_t I = 0; I < Lams.size(); ++I)
    B.Ir.Lams[I].Body = B.lowerTerm(Lams[I]->body());
  B.Ir.Root = B.lowerTerm(Program.Root);
  if (B.Failed)
    return std::nullopt;
  return std::move(B.Ir);
}
