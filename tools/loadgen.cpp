//===- tools/loadgen.cpp - Concurrent load driver for cpsflow serve -------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a corpus directory of *.scm programs against a running
/// `cpsflow serve` daemon at N concurrent clients and reports what the
/// service did with the load:
///
///   loadgen SOCKET DIR [--clients N] [--iterations K] [--analyzer A]
///           [--domain D] [--verify] [--out FILE]
///
/// Each client opens one connection and issues K requests sequentially
/// (request i of client c targets program (c*31+i) mod |corpus|, so
/// clients interleave the corpus instead of marching in lockstep).
/// Every response is parsed and classified: ok, ok-degraded, cached,
/// shed, or error-by-kind. The report is bench_diff-compatible — a
/// "programs" array carrying the per-leg work counters from each
/// program's first clean response — plus a "loadgen" section with
/// latency percentiles, shed/error/degraded counts, and the cache hit
/// rate. With --verify every clean response's answer is checked against
/// a fresh in-process analysis of the same program; a mismatch is an
/// unsound response and a failing exit.
///
/// Exit codes: 0 success; 1 transport failure, a response that is not
/// valid protocol JSON, or an unsound answer under --verify; 2 usage.
///
//===----------------------------------------------------------------------===//

#include "serve/Analyze.h"
#include "serve/Protocol.h"
#include "support/JsonParse.h"
#include "support/ParseNum.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cpsflow;

namespace {

struct Options {
  std::string Socket;
  std::string Dir;
  unsigned Clients = 4;
  uint64_t Iterations = 0; ///< requests per client; 0 = one corpus pass
  std::string Analyzer = "direct";
  std::string Domain = "constant";
  bool Verify = false;
  std::string OutFile;
};

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::fprintf(stderr, "loadgen: %s\n", Message);
  std::fprintf(stderr,
               "usage: loadgen SOCKET DIR [--clients N] [--iterations K]\n"
               "               [--analyzer direct|semantic|syntactic|dup]\n"
               "               [--domain constant|unit|sign|parity|interval]\n"
               "               [--verify] [--out FILE]\n");
  std::exit(2);
}

uint64_t flagUint(const char *Flag, const char *Text) {
  Result<uint64_t> R = support::parseUint(Text, /*Max=*/uint64_t{1} << 32);
  if (!R)
    usage((std::string(Flag) + ": " + R.error().str()).c_str());
  return *R;
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  std::vector<std::string> Positional;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--clients" && I + 1 < Argc) {
      O.Clients = static_cast<unsigned>(flagUint("--clients", Argv[++I]));
      if (O.Clients == 0)
        usage("--clients: need at least 1");
    } else if (A == "--iterations" && I + 1 < Argc) {
      O.Iterations = flagUint("--iterations", Argv[++I]);
    } else if (A == "--analyzer" && I + 1 < Argc) {
      O.Analyzer = Argv[++I];
    } else if (A == "--domain" && I + 1 < Argc) {
      O.Domain = Argv[++I];
    } else if (A == "--verify") {
      O.Verify = true;
    } else if (A == "--out" && I + 1 < Argc) {
      O.OutFile = Argv[++I];
    } else if (A == "--help" || A == "-h") {
      usage();
    } else if (!A.empty() && A[0] == '-') {
      usage(("unknown flag '" + A + "'").c_str());
    } else {
      Positional.push_back(A);
    }
  }
  if (Positional.size() != 2)
    usage("expected SOCKET and DIR positionals");
  O.Socket = Positional[0];
  O.Dir = Positional[1];
  return O;
}

struct Program {
  std::string Name;
  std::string Source;
};

std::vector<Program> loadCorpus(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<Program> Out;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (!E.is_regular_file() || E.path().extension() != ".scm")
      continue;
    std::ifstream In(E.path());
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out.push_back({E.path().filename().string(), Buf.str()});
  }
  if (Ec)
    usage(("cannot read corpus directory '" + Dir + "'").c_str());
  std::sort(Out.begin(), Out.end(),
            [](const Program &A, const Program &B) { return A.Name < B.Name; });
  return Out;
}

/// One blocking request/response client over the daemon's line protocol.
class Client {
public:
  /// Retries for up to ~2s: the daemon creates the socket file on bind
  /// but only accepts after listen, so a driver that starts the daemon
  /// and immediately connects can land in that window (ECONNREFUSED),
  /// or race the file itself (ENOENT). Only a persistent failure is a
  /// transport failure.
  bool connectTo(const std::string &Path) {
    for (int Attempt = 0; Attempt < 40; ++Attempt) {
      if (Attempt)
        ::usleep(50 * 1000);
      if (Fd >= 0)
        ::close(Fd);
      Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        return false;
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      if (Path.size() >= sizeof(Addr.sun_path))
        return false;
      std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0)
        return true;
      if (errno != ECONNREFUSED && errno != ENOENT)
        return false;
    }
    return false;
  }

  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Sends \p Line (newline appended) and blocks for one response line.
  /// Empty return = transport failure.
  std::string roundTrip(const std::string &Line) {
    std::string Out = Line;
    Out.push_back('\n');
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Sent, Out.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return {};
      Sent += static_cast<size_t>(N);
    }
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Response = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Response;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return {};
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// JSON-escapes \p S for embedding in a request line.
std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
  return Out;
}

/// What one client observed; merged under a mutex at the end.
struct Tally {
  uint64_t Requests = 0;
  uint64_t Ok = 0;
  uint64_t Cached = 0;
  uint64_t Degraded = 0;
  uint64_t Shed = 0;
  std::map<std::string, uint64_t> Errors; ///< by taxonomy kind
  std::vector<double> LatencyUs;
  uint64_t Transport = 0; ///< dead connections / invalid response JSON
  uint64_t Unsound = 0;   ///< --verify mismatches
  /// First clean (ok, uncached-or-cached, non-degraded) stats payload
  /// per program name, for the bench_diff "programs" array.
  std::map<std::string, std::string> CleanStats;
  /// First clean answer per program, for cold-vs-cached identity checks.
  std::map<std::string, std::string> Answers;
};

/// The work-counter keys bench_diff sums per leg.
const char *const BenchCounters[] = {"goals",      "cacheHits",  "cuts",
                                     "joins",      "callMerges", "summaryHits",
                                     "summaryMisses"};

void runClient(const Options &O, const std::vector<Program> &Corpus,
               unsigned Id, uint64_t Requests, Tally &T) {
  Client C;
  if (!C.connectTo(O.Socket)) {
    ++T.Transport;
    return;
  }
  for (uint64_t I = 0; I < Requests; ++I) {
    const Program &P = Corpus[(Id * 31 + I) % Corpus.size()];
    std::string Req = "{\"op\":\"analyze\",\"id\":" + std::to_string(I) +
                      ",\"program\":" + quoted(P.Source) +
                      ",\"analyzer\":" + quoted(O.Analyzer) +
                      ",\"domain\":" + quoted(O.Domain) + "}";
    auto Start = std::chrono::steady_clock::now();
    std::string Line = C.roundTrip(Req);
    double Us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    ++T.Requests;
    if (Line.empty()) {
      ++T.Transport;
      return; // the connection is dead; this client is done
    }
    Result<JsonValue> Doc = parseJson(Line);
    if (!Doc || !Doc->isObject()) {
      ++T.Transport;
      continue;
    }
    T.LatencyUs.push_back(Us);
    const JsonValue *Ok = Doc->find("ok");
    if (Ok && Ok->asBool()) {
      ++T.Ok;
      if (const JsonValue *Cached = Doc->find("cached"))
        if (Cached->asBool())
          ++T.Cached;
      const JsonValue *R = Doc->find("result");
      const JsonValue *Stats = R ? R->find("stats") : nullptr;
      const JsonValue *Exhausted =
          Stats ? Stats->find("budgetExhausted") : nullptr;
      const JsonValue *Reason = Stats ? Stats->find("degradeReason") : nullptr;
      bool Degraded = (Exhausted && Exhausted->asBool()) ||
                      (Reason && Reason->asString() != "none");
      if (Degraded) {
        ++T.Degraded;
      } else if (R && Stats) {
        const std::string &Name = P.Name;
        std::string Answer =
            R->find("answer") ? R->find("answer")->asString() : "";
        auto It = T.Answers.find(Name);
        if (It == T.Answers.end()) {
          T.Answers.emplace(Name, Answer);
          // Re-render just the counters bench_diff reads, keyed by leg.
          std::string S = "{";
          bool FirstKey = true;
          for (const char *K : BenchCounters) {
            if (!FirstKey)
              S += ",";
            FirstKey = false;
            char Num[32];
            std::snprintf(Num, sizeof(Num), "%.0f", Stats->numberOr(K, 0));
            S += "\"" + std::string(K) + "\":" + Num;
          }
          S += "}";
          T.CleanStats.emplace(Name, S);
        } else if (It->second != Answer) {
          // A later response (cached or not) disagreeing with the first
          // clean answer is exactly the cached-answer-identity violation
          // the acceptance test looks for.
          ++T.Unsound;
          std::fprintf(stderr,
                       "loadgen: UNSOUND: %s answered '%s' then '%s'\n",
                       Name.c_str(), It->second.c_str(), Answer.c_str());
        }
      }
    } else {
      const JsonValue *Err = Doc->find("error");
      std::string Kind =
          Err && Err->find("kind") ? Err->find("kind")->asString() : "?";
      if (Kind == "shed")
        ++T.Shed;
      else
        ++T.Errors[Kind];
    }
  }
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  size_t I = static_cast<size_t>(P * static_cast<double>(V.size() - 1));
  std::nth_element(V.begin(), V.begin() + static_cast<long>(I), V.end());
  return V[I];
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseArgs(Argc, Argv);
  std::vector<Program> Corpus = loadCorpus(O.Dir);
  if (Corpus.empty())
    usage(("no *.scm programs under '" + O.Dir + "'").c_str());
  uint64_t Requests = O.Iterations ? O.Iterations : Corpus.size();

  auto Start = std::chrono::steady_clock::now();
  std::vector<Tally> Tallies(O.Clients);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < O.Clients; ++I)
    Threads.emplace_back([&, I] {
      runClient(O, Corpus, I, Requests, Tallies[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  // Merge.
  Tally All;
  std::vector<double> Lat;
  for (Tally &T : Tallies) {
    All.Requests += T.Requests;
    All.Ok += T.Ok;
    All.Cached += T.Cached;
    All.Degraded += T.Degraded;
    All.Shed += T.Shed;
    All.Transport += T.Transport;
    All.Unsound += T.Unsound;
    for (const auto &[K, N] : T.Errors)
      All.Errors[K] += N;
    Lat.insert(Lat.end(), T.LatencyUs.begin(), T.LatencyUs.end());
    for (const auto &[Name, S] : T.CleanStats)
      All.CleanStats.emplace(Name, S);
    // Cross-client answer identity: every client must have seen the same
    // answer for the same program (shared cache or not).
    for (const auto &[Name, A] : T.Answers) {
      auto It = All.Answers.find(Name);
      if (It == All.Answers.end())
        All.Answers.emplace(Name, A);
      else if (It->second != A) {
        ++All.Unsound;
        std::fprintf(stderr,
                     "loadgen: UNSOUND: %s differs across clients\n",
                     Name.c_str());
      }
    }
  }

  // --verify: fresh in-process analysis (server-default budgets, no
  // deadline so the reference never degrades) per distinct program.
  if (O.Verify) {
    serve::AnalyzeConfig Cfg;
    Cfg.DeadlineMs = 0;
    for (const Program &P : Corpus) {
      auto It = All.Answers.find(P.Name);
      if (It == All.Answers.end())
        continue;
      serve::ServeRequest Req;
      Req.Program = P.Source;
      Req.Analyzer = O.Analyzer;
      Req.Domain = O.Domain;
      serve::AnalyzeOutcome Ref = serve::runServeAnalyze(Req, Cfg, 0);
      if (Ref.Ok && !Ref.Degraded && Ref.Answer != It->second) {
        ++All.Unsound;
        std::fprintf(stderr,
                     "loadgen: UNSOUND: %s served '%s', reference '%s'\n",
                     P.Name.c_str(), It->second.c_str(), Ref.Answer.c_str());
      }
    }
  }

  double P50 = percentile(Lat, 0.50);
  double P95 = percentile(Lat, 0.95);
  double Max = Lat.empty() ? 0 : *std::max_element(Lat.begin(), Lat.end());

  std::ostringstream Out;
  Out << "{\"schemaVersion\":1,\"kind\":\"loadgen\"";
  char NumBuf[64];
  std::snprintf(NumBuf, sizeof(NumBuf), "%.3f", WallMs);
  Out << ",\"wallMs\":" << NumBuf;
  Out << ",\"programs\":[";
  bool First = true;
  for (const auto &[Name, Stats] : All.CleanStats) {
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":" << quoted(Name) << ",\"ok\":true,\""
        << O.Analyzer << "\":" << Stats << "}";
  }
  Out << "],\"loadgen\":{";
  Out << "\"clients\":" << O.Clients;
  Out << ",\"requests\":" << All.Requests;
  Out << ",\"ok\":" << All.Ok;
  Out << ",\"cached\":" << All.Cached;
  Out << ",\"degraded\":" << All.Degraded;
  Out << ",\"shed\":" << All.Shed;
  uint64_t ErrorTotal = 0;
  Out << ",\"errors\":{";
  First = true;
  for (const auto &[K, N] : All.Errors) {
    if (!First)
      Out << ",";
    First = false;
    Out << quoted(K) << ":" << N;
    ErrorTotal += N;
  }
  Out << "}";
  Out << ",\"transportFailures\":" << All.Transport;
  Out << ",\"unsound\":" << All.Unsound;
  double HitRate = All.Ok ? static_cast<double>(All.Cached) /
                                static_cast<double>(All.Ok)
                          : 0;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.4f", HitRate);
  Out << ",\"cacheHitRate\":" << NumBuf;
  Out << ",\"latencyUs\":{";
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", P50);
  Out << "\"p50\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", P95);
  Out << ",\"p95\":" << NumBuf;
  std::snprintf(NumBuf, sizeof(NumBuf), "%.1f", Max);
  Out << ",\"max\":" << NumBuf;
  Out << "}}}";

  std::string Json = Out.str();
  if (!O.OutFile.empty()) {
    std::ofstream F(O.OutFile);
    if (!F) {
      std::fprintf(stderr, "loadgen: cannot write '%s'\n", O.OutFile.c_str());
      return 1;
    }
    F << Json << '\n';
  } else {
    std::printf("%s\n", Json.c_str());
  }
  std::fprintf(stderr,
               "loadgen: %llu requests, %llu ok (%llu cached, %llu "
               "degraded), %llu shed, %llu errors, %llu transport "
               "failures, %llu unsound, p50 %.0fus p95 %.0fus\n",
               (unsigned long long)All.Requests, (unsigned long long)All.Ok,
               (unsigned long long)All.Cached,
               (unsigned long long)All.Degraded,
               (unsigned long long)All.Shed, (unsigned long long)ErrorTotal,
               (unsigned long long)All.Transport,
               (unsigned long long)All.Unsound, P50, P95);
  return (All.Transport || All.Unsound) ? 1 : 0;
}
