//===- serve/ResultCache.cpp - Crash-safe on-disk result cache ------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ResultCache.h"

#include "gen/Digest.h"
#include "support/FaultInjector.h"
#include "support/Hashing.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <signal.h>
#include <unistd.h>

using namespace cpsflow;
using namespace cpsflow::serve;

namespace fs = std::filesystem;

namespace {

constexpr const char *Magic = "cpsflow-cache";
// v2 added the source length and second source digest to the header (the
// filename-hash collision guard). A v1 entry after an upgrade is simply
// removed and re-filled — a format change is not corruption.
constexpr int FormatVersion = 2;

/// How old a leaked `.tmp.*` file must be before the open-time sweep
/// removes it even though its pid appears alive (pid reuse): no real
/// in-flight write spans minutes.
constexpr auto TmpGrace = std::chrono::minutes(15);

/// FNV-1a over the payload. Not cryptographic — the threat model is
/// torn writes and bit rot, not an adversary forging entries (anyone who
/// can write the cache directory can already write valid frames).
uint64_t checksumOf(const std::string &Payload) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Payload) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string frameHeader(size_t PayloadBytes, uint64_t Checksum,
                        const CacheKey &K) {
  std::ostringstream H;
  H << Magic << ' ' << FormatVersion << ' ' << PayloadBytes << ' '
    << hex16(Checksum) << ' ' << K.SourceLen << ' ' << hex16(K.SourceDigest2)
    << '\n';
  return H.str();
}

} // namespace

uint64_t cpsflow::serve::cacheKeyHash(const CacheKey &K) {
  uint64_t Seed = 0x63707366736b6579ull; // "cpsfskey"
  hashCombine(Seed, K.SourceDigest);
  hashCombine(Seed, gen::textDigest(K.Analyzer));
  hashCombine(Seed, gen::textDigest(K.Domain));
  hashCombine(Seed, K.MaxGoals);
  hashCombine(Seed, K.LoopUnroll);
  hashCombine(Seed, K.DupBudget);
  hashCombine(Seed, K.UseSummaries ? 1 : 0);
  return Seed;
}

ResultCache::ResultCache(std::string Dir) : Root(std::move(Dir)) {
  std::error_code Ec;
  fs::create_directories(fs::path(Root) / "entries", Ec);
  if (Ec)
    return;
  fs::create_directories(fs::path(Root) / "quarantine", Ec);
  if (Ec)
    return;
  Usable = true;
  sweepStaleTmp();
}

void ResultCache::sweepStaleTmp() {
  std::error_code Ec;
  const auto Now = fs::file_time_type::clock::now();
  for (const fs::directory_entry &E :
       fs::directory_iterator(fs::path(Root) / "entries", Ec)) {
    const std::string Name = E.path().filename().string();
    if (Name.rfind(".tmp.", 0) != 0)
      continue;
    // Parse the writer pid out of ".tmp.<pid>.<seq>". Unparsable names
    // fall through to the age test alone.
    long Pid = -1;
    size_t PidEnd = Name.find('.', 5);
    if (PidEnd != std::string::npos && PidEnd > 5) {
      Pid = 0;
      for (size_t I = 5; I < PidEnd && Pid >= 0; ++I)
        Pid = (Name[I] >= '0' && Name[I] <= '9') ? Pid * 10 + (Name[I] - '0')
                                                 : -1;
    }
    bool Stale =
        Pid > 0 && ::kill(static_cast<pid_t>(Pid), 0) != 0 && errno == ESRCH;
    if (!Stale) {
      // The pid is alive (possibly reused) or unknown; only age condemns.
      std::error_code TimeEc;
      fs::file_time_type Mtime = fs::last_write_time(E.path(), TimeEc);
      Stale = !TimeEc && Now - Mtime > TmpGrace;
    }
    if (!Stale)
      continue;
    std::error_code RmEc;
    if (fs::remove(E.path(), RmEc) && !RmEc) {
      std::lock_guard<std::mutex> Lock(M);
      ++Stats.SweptTmp;
    }
  }
}

std::string ResultCache::entryPath(const CacheKey &K) const {
  return (fs::path(Root) / "entries" / (hex16(cacheKeyHash(K)) + ".entry"))
      .string();
}

std::string ResultCache::quarantinePath(const std::string &Name) {
  // Caller holds M. A fresh suffix per quarantined file: the same key can
  // be corrupted, quarantined, recomputed, and corrupted again.
  return (fs::path(Root) / "quarantine" /
          (Name + "." + std::to_string(++QuarantineSeq)))
      .string();
}

std::optional<std::string> ResultCache::lookup(const CacheKey &K) {
  if (!Usable)
    return std::nullopt;
  const std::string Path = entryPath(K);

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Misses;
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Raw = Buf.str();

  // Validate the frame. Every corrupt-shaped branch below is the same
  // outcome — the entry is not trustworthy — so compute one verdict, then
  // act once. Identity and format mismatches are separated out: those
  // frames are intact, just not answers to *this* question.
  std::optional<std::string> Payload;
  bool StaleFormat = false;
  bool Collision = false;
  size_t HeaderEnd = Raw.find('\n');
  if (HeaderEnd != std::string::npos) {
    std::istringstream Header(Raw.substr(0, HeaderEnd));
    std::string Word;
    int Version = 0;
    uint64_t DeclaredBytes = 0;
    std::string DeclaredSum;
    uint64_t DeclaredSrcLen = 0;
    std::string DeclaredDigest2;
    if (Header >> Word >> Version && Word == Magic &&
        Version != FormatVersion) {
      StaleFormat = true; // pre-upgrade entry; remove and recompute
    } else if (Header >> DeclaredBytes >> DeclaredSum >> DeclaredSrcLen >>
                   DeclaredDigest2 &&
               Word == Magic && Version == FormatVersion &&
               Header.rdbuf()->in_avail() == 0) {
      std::string Body = Raw.substr(HeaderEnd + 1);
      // Truncated AND over-long frames are both corrupt: a frame with
      // trailing bytes was not written by one atomic publish.
      if (Body.size() == DeclaredBytes &&
          hex16(checksumOf(Body)) == DeclaredSum) {
        if (DeclaredSrcLen == K.SourceLen &&
            DeclaredDigest2 == hex16(K.SourceDigest2))
          Payload = std::move(Body);
        else
          Collision = true; // valid frame, different program: alias caught
      }
    }
  }

  if (Payload) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Hits;
    return Payload;
  }

  if (StaleFormat || Collision) {
    // Not corruption: the frame is internally consistent. A stale-format
    // entry is dead weight — remove it. A collision entry is some other
    // key's live answer sharing our filename — leave it; our store() will
    // overwrite, and the alias pair thrashes instead of lying.
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Stats.Misses;
      if (Collision)
        ++Stats.Collisions;
    }
    if (StaleFormat) {
      std::error_code Ec;
      fs::remove(Path, Ec);
    }
    return std::nullopt;
  }

  // Corrupt: quarantine for post-mortem and fall through to a miss, so
  // the caller recomputes and re-publishes a good entry.
  In.close();
  std::string QPath;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Corrupt;
    ++Stats.Misses;
    QPath = quarantinePath(fs::path(Path).filename().string());
  }
  std::error_code Ec;
  fs::rename(Path, QPath, Ec);
  if (Ec)
    fs::remove(Path, Ec); // second-best: at least stop re-reading it
  return std::nullopt;
}

bool ResultCache::store(const CacheKey &K, const std::string &Payload) {
  if (!Usable)
    return false;
  const std::string Name = hex16(cacheKeyHash(K));
  const std::string Path = entryPath(K);

  std::string Tmp;
  {
    std::lock_guard<std::mutex> Lock(M);
    Tmp = (fs::path(Root) / "entries" /
           (".tmp." + std::to_string(::getpid()) + "." +
            std::to_string(++TmpSeq)))
              .string();
  }

  std::string Frame = frameHeader(Payload.size(), checksumOf(Payload), K);
  bool Torn = CPSFLOW_FAULT_TEARS(fault::Site::CacheWrite, Name);
  if (Torn)
    // Simulated crash mid-write: the header promises the full payload but
    // only half of it lands before the "crash". The publish below still
    // happens — this models dying between write and fsync, the exact
    // frame shape lookup() must detect and quarantine.
    Frame += Payload.substr(0, Payload.size() / 2);
  else
    Frame += Payload;

  std::error_code Ec;
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    Out.write(Frame.data(), static_cast<std::streamsize>(Frame.size()));
    Out.flush();
    if (!Out) {
      std::lock_guard<std::mutex> Lock(M);
      ++Stats.StoreFailures;
      fs::remove(Tmp, Ec);
      return false;
    }
  }
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.StoreFailures;
    fs::remove(Tmp, Ec);
    return false;
  }

  std::lock_guard<std::mutex> Lock(M);
  if (Torn) {
    ++Stats.StoreFailures;
    return false;
  }
  ++Stats.Stores;
  return true;
}

ResultCache::CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}
