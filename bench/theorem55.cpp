//===- bench/theorem55.cpp - E5: Theorem 5.5 reproduction -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E5 — Theorem 5.5: the semantic-CPS analysis is at least as precise as
/// the syntactic-CPS analysis (it never confuses returns). Checked on the
/// paper's witnesses and a random corpus; on the Theorem 5.1 witness the
/// gap is strict.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

int main() {
  Context Ctx;
  printHeader("E5: Theorem 5.5 — semantic-CPS vs syntactic-CPS");
  std::printf("(verdicts are for the semantic analysis on the left)\n\n");

  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    Trio T = runTrio(Ctx, W);
    Comparison C = compareWithSyntactic<CD>(Ctx, T.Semantic, T.Syntactic,
                                            W.Cps, W.InterestingVars);
    std::printf("  %-14s: %s\n", W.Name.c_str(), str(C.Overall));
  }

  gen::GenOptions Opts;
  Opts.Seed = 55;
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  gen::ProgramGenerator Gen(Ctx, Opts);
  int Equal = 0, SemWins = 0, Skipped = 0, N = 0;
  for (int I = 0; I < 150; ++I) {
    const syntax::Term *T = Gen.generate();
    Witness W = packageProgram(Ctx, "random", T);
    for (Symbol S : syntax::freeVars(T)) {
      AbsBindingSpec B;
      B.Var = S;
      B.NumTop = true;
      W.Bindings.push_back(B);
    }
    Trio R = runTrio(Ctx, W);
    if (R.Semantic.Stats.Cuts || R.Syntactic.Stats.Cuts) {
      ++Skipped; // cut placement differs; see DESIGN.md section 7
      continue;
    }
    ++N;
    Comparison C = compareWithSyntactic<CD>(Ctx, R.Semantic, R.Syntactic,
                                            W.Cps, W.InterestingVars);
    if (C.Overall == PrecisionOrder::Equal)
      ++Equal;
    else if (C.Overall == PrecisionOrder::LeftMorePrecise)
      ++SemWins;
    else
      std::printf("  UNEXPECTED verdict on a random program: %s\n",
                  str(C.Overall));
  }
  std::printf("\nrandom corpus (seed 55): %d cut-free programs, %d equal, "
              "%d semantic strictly better, %d skipped for cuts\n",
              N, Equal, SemWins, Skipped);
  std::printf("paper expectation: never 'right more precise' or "
              "'incomparable' — delta_e(A1) <= A2.\n");
  return 0;
}
