#!/usr/bin/env bash
# Round-trip smoke for `cpsflow serve` (docs/SERVE.md), run by ctest as
# cli_serve_roundtrip: boot the daemon on a fresh socket with a fresh
# cache, replay the corpus through loadgen twice (cold then warm, the
# first pass under --verify so every daemon answer is checked against an
# in-process reference analysis), then SIGTERM the daemon and require a
# graceful drain exit (143 = 128+SIGTERM from the cooperative handler,
# not a default-disposition kill).
#
# usage: serve_smoke.sh CPSFLOW LOADGEN CORPUS_DIR WORK_DIR
set -u

CPSFLOW=$1
LOADGEN=$2
CORPUS=$3
WORK=$4

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/serve.sock"

"$CPSFLOW" serve --socket "$SOCK" --serve-workers 2 \
  --cache-dir "$WORK/cache" &
PID=$!
trap 'kill -KILL "$PID" 2>/dev/null' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if ! [ -S "$SOCK" ]; then
  echo "serve_smoke: socket never appeared at $SOCK" >&2
  exit 1
fi

if ! "$LOADGEN" "$SOCK" "$CORPUS" --clients 4 --verify \
    --out "$WORK/loadgen_cold.json"; then
  echo "serve_smoke: cold loadgen pass failed" >&2
  exit 1
fi

# Warm pass: the same requests again, now against a populated cache.
if ! "$LOADGEN" "$SOCK" "$CORPUS" --clients 2 \
    --out "$WORK/loadgen_warm.json"; then
  echo "serve_smoke: warm loadgen pass failed" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID"
RC=$?
trap - EXIT
if [ "$RC" -ne 143 ]; then
  echo "serve_smoke: expected graceful drain exit 143, got $RC" >&2
  exit 1
fi
exit 0
