//===- analysis/SyntacticIrEngine.h - Arena-IR Figure 6 engine --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast engine behind SyntacticCpsAnalyzer: the same Figure 6
/// abstract collecting interpreter, evaluated over the flat label-arena
/// IR (cps/CpsIr.h) with word-packed lattice values (domain/PackedSet.h)
/// and, optionally, continuation summarization.
///
/// The engine is a structural 1:1 port of the pointer-tree evaluator.
/// Because packing is an order-preserving lattice isomorphism (universe
/// bit index == SortedSet rank) and the packed interner performs exactly
/// the same sequence of join/intern events, the engine's answers, CFG,
/// provenance edges, and work counters are byte-identical to the tree
/// engine's — tests/InternEquivalenceTests.cpp and fuzz oracle O4 pin
/// this.
///
/// With AnalyzerOptions::UseSummaries on, each completed walk of a goal
/// additionally records a *summary*: its entry store, result, the store
/// slots it read, the term labels it queried (split into queries at the
/// entry store vs strictly above it), and the labels it cut off against
/// ancestors *outside* the walk. A later goal for the same term reuses a
/// summary — without re-walking — when the replay would provably retrace
/// the recorded derivation:
///
///  * every slot the walk read holds the same value in the new entry
///    store (so every phi and every write repeats verbatim, and every
///    intermediate store is the recorded one joined with the unread
///    difference);
///  * every recorded outside-cut label is again active at the new entry
///    store, and was only ever queried at the entry store (by the
///    monotone-descent property, exact-store collisions are the only
///    collisions possible, so the recorded cuts re-fire and no others
///    appear for those labels);
///  * no other label that is active at the new entry store was queried
///    anywhere in the walk (a query recorded at a store between the old
///    and new entries could otherwise collide with an active goal the
///    recorded walk never saw).
///
/// DESIGN.md section 12 gives the full exactness argument. Summaries
/// change goal counts and wall time only — never answers — and are
/// bypassed when a provenance recorder is attached (reuse skips the
/// walk, so the derivation graph would be incomplete).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_SYNTACTICIRENGINE_H
#define CPSFLOW_ANALYSIS_SYNTACTICIRENGINE_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "cps/CpsIr.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/PackedSet.h"
#include "domain/StoreInterner.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {

/// One entry of the initial abstract store of a Figure 6 run (typically
/// the delta_e-image of a direct binding; see Compare.h).
template <typename D> struct CpsBinding {
  Symbol Var;
  domain::CpsAbsVal<D> Value;
};

/// Result of a Figure 6 run.
template <typename D> struct SyntacticResult {
  using Val = domain::CpsAbsVal<D>;

  AnswerOf<Val> Answer;
  AnalyzerStats Stats;
  CpsCfg Cfg;
  std::shared_ptr<domain::VarIndex> Vars;

  Val valueOf(Symbol X) const {
    if (auto I = Vars->tryOf(X))
      return Answer.Store.get(*I);
    return Val::bot();
  }
};

namespace detail {

/// An initial binding with the variable resolved to its dense slot and
/// the value packed — produced by the facade's eligibility check.
template <typename D> struct PackedCpsBinding {
  uint32_t Slot = 0;
  domain::PackedCpsVal<D> Value;
};

/// The arena-IR engine. Single-use; constructed by SyntacticCpsAnalyzer
/// only when the program's universes fit the 128-bit packed sets and the
/// IR lowering succeeded.
template <typename D> class SynIrEngine {
public:
  using Val = domain::CpsAbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;
  using PVal = domain::PackedCpsVal<D>;
  using PStore = domain::AbsStore<PVal>;

  SynIrEngine(cps::CpsIr IrIn, std::shared_ptr<domain::VarIndex> VarsIn,
              std::vector<PackedCpsBinding<D>> InitialIn, uint32_t TopKSlot,
              AnalyzerOptions Opts)
      : Ir(std::move(IrIn)), Vars(std::move(VarsIn)),
        Initial(std::move(InitialIn)), TopKSlot(TopKSlot), Opts(Opts) {
    SummariesOn = this->Opts.UseSummaries && !this->Opts.Prov;
    PCloTop = domain::Bits128::firstN(
        static_cast<uint32_t>(2 + Ir.Lams.size()));
    PKontTop = domain::Bits128::firstN(
        static_cast<uint32_t>(1 + Ir.Conts.size()));
    VarWords = (Vars->size() + 63) / 64;
    TermWords = (Ir.Terms.size() + 63) / 64;
    QEOff = VarWords;
    QFOff = VarWords + TermWords;
    QAOff = VarWords + 2 * TermWords;
    FpWords = VarWords + 3 * TermWords;
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(Vars->size());
    Acc.resize(Ir.Terms.size());
    if (SummariesOn) {
      SumByLabel.resize(Ir.Terms.size());
      SumArena.reserve(1024);
      FpArena.reserve(1024);
    }
  }

  SyntacticResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const PackedCpsBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, B.Slot, B.Value);
      if (Opts.Prov)
        Opts.Prov->init(B.Slot, Next, Sigma0);
      Sigma0 = Next;
    }
    {
      domain::StoreId Next = Interner.joinAt(
          Sigma0, TopKSlot, PVal::konts(domain::Bits128::single(0)));
      if (Opts.Prov)
        Opts.Prov->init(TopKSlot, Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalP(Ir.Root, Sigma0, 0);
    if (SummariesOn)
      Stats.SummaryEntries = SumArena.size();
    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Metrics && Opts.UseSummaries) {
      Opts.Metrics->set("summaryHits", Stats.SummaryHits);
      Opts.Metrics->set("summaryMisses", Stats.SummaryMisses);
      Opts.Metrics->set("summaryEntries", Stats.SummaryEntries);
      Opts.Metrics->histogram("summaryReuseDepth")
          .merge(Stats.SummaryReuseDepth);
    }
    if (Opts.Prov)
      Opts.Prov->noteFinal(Out.A.Store);

    SyntacticResult<D> R;
    R.Answer =
        Answer{unpackVal(Out.A.Value), unpackStore(Interner.store(Out.A.Store))};
    R.Stats = Stats;
    R.Cfg = buildCfg();
    R.Vars = Vars;
    return R;
  }

  /// The run's stores re-interned in the public (unpacked) value
  /// representation. Packing is injective, so every packed id maps to
  /// the same id here — provenance StoreIds recorded by this engine
  /// resolve against this table. Materialized lazily on first use.
  const domain::StoreInterner<Val> &publicInterner() const {
    if (!PubInterner) {
      PubInterner = std::make_unique<domain::StoreInterner<Val>>();
      PubInterner->reset(Vars->size());
      for (domain::StoreId Id = 1; Id < Interner.size(); ++Id) {
        domain::StoreId Got = PubInterner->intern(unpackStore(Interner.store(Id)));
        (void)Got;
        assert(Got == Id && "packed/unpacked interner ids diverged");
      }
    }
    return *PubInterner;
  }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();
  static constexpr uint32_t NoFp = std::numeric_limits<uint32_t>::max();
  /// Per-(label, entry-store) cap on stored summaries — one per distinct
  /// calling context, bounded so a context-churning goal cannot bloat
  /// the arena; later walks still memoize normally.
  static constexpr size_t ExactCap = 16;
  /// Bound on generalized (entry != query store) validation attempts
  /// per lookup; exact-entry candidates are hash-indexed and free.
  static constexpr size_t GenScanCap = 8;

  using IAns = InternedAnswerOf<PVal>;

  struct EvalOut {
    IAns A;
    uint32_t MinDep;
  };

  /// Goal key: dense term label and interned store id in one word.
  static uint64_t key(uint32_t Label, domain::StoreId Store) {
    return (static_cast<uint64_t>(Label) << 32) | Store;
  }
  struct KeyHash {
    size_t operator()(uint64_t K) const {
      return static_cast<size_t>(mix64(K));
    }
  };

  //===--------------------------------------------------------------------===//
  // Summarization machinery
  //===--------------------------------------------------------------------===//

  /// What a walk touched, as dense bitsets: store slots read, and term
  /// labels queried — split by whether the query happened at the walk's
  /// entry store or strictly above it (only entry-store queries can
  /// collide with goals active at a reuse site; see file comment).
  ///
  /// At-entry queries are further split by how they resolved. A *pinned*
  /// query was answered by an immutable memo entry (or created one), so
  /// an exact replay is guaranteed to memo-hit the identical value before
  /// it ever consults the active set — such a query can never diverge no
  /// matter which goals are active at reuse time. Only *fluid* queries
  /// (cuts, provisional walks, context-dependent summary hits)
  /// participate in the exact-reuse collision check. QEntry remains the
  /// union of both; generalized reuse shifts the entry store, loses the
  /// memo guarantee, and therefore still checks the union.
  /// All four bitsets live in one contiguous buffer — [Reads | QEntry |
  /// QFluid | QAbove], at the word offsets the engine computes in its
  /// constructor — so a recording costs one allocation, not four.
  struct Fingerprint {
    std::vector<uint64_t> Bits;
    /// Set when the read/query sets are incomplete (a memo hit whose
    /// entry predates recording). An exact replay memo-hits straight
    /// past the missing subtree, so exact reuse stays sound; generalized
    /// reuse would need the missing reads and must be refused.
    bool ExactOnly = false;
  };

  /// In-flight fingerprint of the walk currently on the goal stack.
  struct Recording {
    uint32_t Label = 0;
    domain::StoreId Entry = 0;
    uint32_t BaseDepth = 0;
    /// Defensive flag for states the monotone-descent argument rules
    /// out; poisoned walks merge into their parents but never publish a
    /// summary or memo fingerprint.
    bool Poisoned = false;
    Fingerprint Fp;
    /// Labels this walk cut off against active goals *outside* it
    /// (ancestor depth below BaseDepth). Unsorted; deduplicated at
    /// publication.
    std::vector<uint32_t> CutLabels;
  };

  struct Summary {
    domain::StoreId Entry = 0;
    PVal Value;
    domain::StoreId ResultStore = 0;
    uint32_t Fp = NoFp;
    std::vector<uint32_t> Cuts; ///< sorted, unique
  };

  static void setBit(std::vector<uint64_t> &W, uint32_t I) {
    W[I >> 6] |= 1ull << (I & 63);
  }
  static void clearBit(std::vector<uint64_t> &W, uint32_t I) {
    W[I >> 6] &= ~(1ull << (I & 63));
  }
  /// Set/test a bit in the section of a fingerprint buffer that starts
  /// at word offset \p Off.
  static void setAt(std::vector<uint64_t> &B, uint32_t Off, uint32_t I) {
    B[Off + (I >> 6)] |= 1ull << (I & 63);
  }
  static bool testAt(const std::vector<uint64_t> &B, uint32_t Off,
                     uint32_t I) {
    return (B[Off + (I >> 6)] >> (I & 63)) & 1;
  }

  void noteRead(uint32_t Slot) {
    if (!RecStack.empty())
      setAt(RecStack.back().Fp.Bits, 0, Slot);
  }

  /// Charges a *resolved* query of \p Label at \p Sigma to the enclosing
  /// recording. \p Fluid marks queries whose value is not pinned by an
  /// immutable memo entry — see Fingerprint.
  void noteQuery(uint32_t Label, domain::StoreId Sigma, bool Fluid) {
    if (RecStack.empty())
      return;
    Recording &R = RecStack.back();
    if (Sigma == R.Entry) {
      setAt(R.Fp.Bits, QEOff, Label);
      if (Fluid)
        setAt(R.Fp.Bits, QFOff, Label);
    } else {
      setAt(R.Fp.Bits, QAOff, Label);
    }
  }

  /// Folds a completed (or cached) child derivation's fingerprint into
  /// the recording on top of the stack. The child's entry-store queries
  /// land at \p ChildEntry, so they count as "at entry" for the parent
  /// only when the two entries coincide. \p Shielded means the child's
  /// result is memoized at (child label, ChildEntry): an exact replay of
  /// the parent memo-hits the child and never re-executes its subtree,
  /// so the subtree's fluid queries cannot collide and are absorbed as
  /// pinned. Reads and the QEntry union still merge — generalized reuse
  /// re-executes the subtree and needs them.
  void mergeChildFp(const Fingerprint &F, domain::StoreId ChildEntry,
                    bool Shielded) {
    Recording &R = RecStack.back();
    uint64_t *A = R.Fp.Bits.data();
    const uint64_t *B = F.Bits.data();
    for (uint32_t W = 0; W < VarWords; ++W)
      A[W] |= B[W];
    R.Fp.ExactOnly |= F.ExactOnly;
    if (ChildEntry == R.Entry) {
      for (uint32_t W = 0; W < TermWords; ++W) {
        A[QEOff + W] |= B[QEOff + W];
        A[QAOff + W] |= B[QAOff + W];
      }
      if (!Shielded)
        for (uint32_t W = 0; W < TermWords; ++W)
          A[QFOff + W] |= B[QFOff + W];
    } else {
      for (uint32_t W = 0; W < TermWords; ++W)
        A[QAOff + W] |= B[QEOff + W] | B[QAOff + W];
    }
  }

  void mergeMemoFp(uint64_t K, domain::StoreId Sigma) {
    if (RecStack.empty())
      return;
    auto It = MemoFp.find(K);
    if (It == MemoFp.end()) {
      // No fingerprint for the hit: the subtree's reads are unknown, so
      // the recording can only ever be replayed at its exact entry
      // (where the same memo entry shields the gap).
      RecStack.back().Fp.ExactOnly = true;
      return;
    }
    mergeChildFp(FpArena[It->second], Sigma, /*Shielded=*/true);
  }

  /// Records a cut of label \p M (query store \p Sigma) against an
  /// active ancestor at depth \p AncDepth into every enclosing recording
  /// the ancestor is *outside* of. By monotone descent every such
  /// recording entered at exactly \p Sigma, so the walk terminates at
  /// the first recording that contains the ancestor.
  void noteCut(uint32_t M, domain::StoreId Sigma, uint32_t AncDepth) {
    for (auto It = RecStack.rbegin(); It != RecStack.rend(); ++It) {
      if (It->BaseDepth <= AncDepth)
        break;
      if (It->Entry != Sigma) {
        It->Poisoned = true; // unreachable by monotone descent; stay sound
        break;
      }
      It->CutLabels.push_back(M);
    }
  }

  /// Checks whether \p S replays exactly at entry store \p Sigma given
  /// the bitset \p ActBits of labels active at \p Sigma (null when none
  /// are). On success \p MinDep is the shallowest ancestor the reuse
  /// depends on (Unconstrained when every dependence is resolved).
  bool validate(const Summary &S, domain::StoreId Sigma,
                const std::vector<uint64_t> *ActBits, uint32_t &MinDep) {
    const Fingerprint &F = FpArena[S.Fp];
    bool Exact = S.Entry == Sigma;
    if (!Exact) {
      // A bottom-entry walk is only ever replayed exactly: generalizing
      // from the empty store has no read history to validate against.
      // Likewise an incomplete fingerprint (see Fingerprint::ExactOnly).
      if (F.ExactOnly || S.Entry == Interner.bottom())
        return false;
      const PStore &A = Interner.store(S.Entry);
      const PStore &B = Interner.store(Sigma);
      for (uint32_t W = 0; W < VarWords; ++W)
        for (uint64_t Bits = F.Bits[W]; Bits; Bits &= Bits - 1) {
          uint32_t Slot = (W << 6) +
                          static_cast<uint32_t>(__builtin_ctzll(Bits));
          if (!(A.get(Slot) == B.get(Slot)))
            return false;
        }
      // The recorded cuts fired at the entry store; they re-fire at
      // Sigma only if the entry lifts into it pointwise.
      if (!S.Cuts.empty() && !PStore::leq(A, B))
        return false;
    }
    // Active-collision scan, word-parallel: a label active at Sigma that
    // the walk queried — fluid at entry for exact replays (pinned
    // queries memo-hit before evalP ever consults the active set),
    // anywhere for generalized ones — must be a recorded cut label, or
    // the replay would cut where the recording walked.
    if (ActBits)
      for (uint32_t W = 0; W < TermWords; ++W) {
        uint64_t Hot =
            (*ActBits)[W] & (Exact ? F.Bits[QFOff + W]
                                   : (F.Bits[QEOff + W] | F.Bits[QAOff + W]));
        for (; Hot; Hot &= Hot - 1) {
          uint32_t M = (W << 6) +
                       static_cast<uint32_t>(__builtin_ctzll(Hot));
          if (!std::binary_search(S.Cuts.begin(), S.Cuts.end(), M))
            return false;
        }
      }
    MinDep = Unconstrained;
    for (uint32_t M : S.Cuts) {
      // An above-entry query of a cut label could rise to Sigma under
      // the entry shift and collide where the recording did not.
      if (!Exact && testAt(F.Bits, QAOff, M))
        return false;
      if (auto It = Active.find(key(M, Sigma)); It != Active.end()) {
        MinDep = std::min(MinDep, It->second);
        continue;
      }
      // The cut target has finished since. If its key was memoized with
      // exactly the cut value (top saturation makes this common), the
      // replay's query memo-hits the same answer the recording absorbed;
      // anything else would walk where the recording cut.
      auto It = Memo.find(key(M, Sigma));
      if (It == Memo.end() || It->second.Store != Sigma ||
          !(It->second.Value == cutAnswer(Sigma).Value))
        return false;
    }
    return true;
  }

  /// Performs the reuse of a validated summary \p S at \p Sigma.
  EvalOut applySummary(const Summary &S, uint32_t P, domain::StoreId Sigma,
                       uint32_t Depth, uint32_t MinDep) {
    ++Stats.SummaryHits;
    Stats.SummaryReuseDepth.record(Depth);
    // An unconstrained reuse (no outside cuts, or every recorded cut
    // target since memoized) is context-independent and caches like a
    // completed subderivation — which also pins it for the parent.
    bool Pin = MinDep == Unconstrained && Opts.UseMemo;
    if (!RecStack.empty()) {
      mergeChildFp(FpArena[S.Fp], Sigma, /*Shielded=*/Pin);
      noteQuery(P, Sigma, /*Fluid=*/!Pin);
    }
    // The reuse performs the recorded outside-cuts against the targets
    // still active: charge them to the enclosing recordings exactly as
    // the replay would. Memo-resolved cut targets charge nothing — the
    // replay's query of them memo-hits.
    for (uint32_t M : S.Cuts)
      if (auto It = Active.find(key(M, Sigma)); It != Active.end())
        noteCut(M, Sigma, It->second);
    bool Exact = S.Entry == Sigma;
    // Dead results stay dead (the replayed paths are dead too); live
    // result stores shift by the unread entry difference.
    domain::StoreId OutStore =
        S.ResultStore == Interner.bottom()
            ? Interner.bottom()
            : (Exact ? S.ResultStore : Interner.join(Sigma, S.ResultStore));
    IAns A{S.Value, OutStore};
    if (Pin && Memo.emplace(key(P, Sigma), A).second)
      MemoFp.emplace(key(P, Sigma), S.Fp);
    return EvalOut{std::move(A), MinDep};
  }

  std::optional<EvalOut> trySummary(uint32_t P, domain::StoreId Sigma,
                                    uint32_t Depth) {
    auto AIt = ActiveBitsAtStore.find(Sigma);
    const std::vector<uint64_t> *Act =
        AIt == ActiveBitsAtStore.end() ? nullptr : &AIt->second;
    // Exact-entry candidates first: indexed by (label, store) key, so
    // the dominant confirmation re-walks cost one hash probe. Only the
    // active-context part of validation can reject these.
    if (auto It = SumExact.find(key(P, Sigma)); It != SumExact.end())
      for (uint32_t SI : It->second) {
        uint32_t MinDep = Unconstrained;
        if (validate(SumArena[SI], Sigma, Act, MinDep))
          return applySummary(SumArena[SI], P, Sigma, Depth, MinDep);
      }
    // Generalized candidates (entry != Sigma), newest first: the store
    // chain grows monotonically during the fixpoint cascade, so recent
    // recordings are the ones whose read footprints match the current
    // store. The read-set comparison makes each attempt linear in the
    // fingerprint, so the scan is bounded per lookup.
    size_t Tries = 0;
    const std::vector<uint32_t> &ByL = SumByLabel[P];
    for (auto It = ByL.rbegin(); It != ByL.rend(); ++It) {
      uint32_t SI = *It;
      const Summary &S = SumArena[SI];
      if (S.Entry == Sigma)
        continue;
      if (++Tries > GenScanCap)
        break;
      uint32_t MinDep = Unconstrained;
      if (validate(S, Sigma, Act, MinDep))
        return applySummary(S, P, Sigma, Depth, MinDep);
    }
    return std::nullopt;
  }

  /// Pops the finished walk's recording: folds it into the parent,
  /// applies the memo discipline (with fingerprint), and publishes a
  /// summary for the label when there is room.
  void finishGoal(uint32_t P, uint32_t Depth, uint64_t K, EvalOut &Out) {
    Recording R = std::move(RecStack.back());
    RecStack.pop_back();
    bool Clean = !Stats.BudgetExhausted && !R.Poisoned;
    bool Memoizable = Out.MinDep >= Depth && !Stats.BudgetExhausted;
    bool Pinned = Memoizable && Opts.UseMemo;
    if (!RecStack.empty()) {
      mergeChildFp(R.Fp, R.Entry, /*Shielded=*/Pinned);
      noteQuery(P, R.Entry, /*Fluid=*/!Pinned);
      RecStack.back().Poisoned |= R.Poisoned;
    }
    uint64_t EK = key(P, R.Entry);
    auto EIt = SumExact.find(EK);
    bool Summarizable =
        Clean && (EIt == SumExact.end() || EIt->second.size() < ExactCap);
    uint32_t FpIdx = NoFp;
    if (Summarizable || (Memoizable && Opts.UseMemo && Clean)) {
      FpIdx = static_cast<uint32_t>(FpArena.size());
      FpArena.push_back(std::move(R.Fp));
    }
    if (Memoizable) {
      if (Opts.UseMemo) {
        Memo.emplace(K, Out.A);
        if (FpIdx != NoFp)
          MemoFp.emplace(K, FpIdx);
      }
      Out.MinDep = Unconstrained;
    }
    if (Summarizable) {
      std::sort(R.CutLabels.begin(), R.CutLabels.end());
      R.CutLabels.erase(
          std::unique(R.CutLabels.begin(), R.CutLabels.end()),
          R.CutLabels.end());
      uint32_t SI = static_cast<uint32_t>(SumArena.size());
      SumArena.push_back(Summary{R.Entry, Out.A.Value, Out.A.Store, FpIdx,
                                 std::move(R.CutLabels)});
      SumByLabel[P].push_back(SI);
      SumExact[EK].push_back(SI);
    }
  }

  //===--------------------------------------------------------------------===//
  // The interpreter proper (1:1 port of the tree engine)
  //===--------------------------------------------------------------------===//

  IAns bottomAnswer() { return IAns{PVal::bot(), Interner.bottom()}; }

  /// The Section 4.4 cut value (T, CL_T, K_T) with the current store.
  IAns cutAnswer(domain::StoreId Sigma) const {
    PVal V;
    V.Num = D::top();
    V.Clos = PCloTop;
    V.Konts = PKontTop;
    return IAns{V, Sigma};
  }

  /// Store read on the hot path; charged to the current recording.
  const PVal &getSlot(domain::StoreId Sigma, uint32_t Slot) {
    if (SummariesOn)
      noteRead(Slot);
    return Interner.get(Sigma, Slot);
  }

  // phi_e^s of Figure 6, over arena value nodes.
  PVal phi(uint32_t VI, domain::StoreId Sigma) {
    const cps::CpsIr::ValNode &V = Ir.Vals[VI];
    switch (V.Kind) {
    case cps::CpsIr::ValKind::Num:
      return PVal::number(D::constant(V.Num));
    case cps::CpsIr::ValKind::Var:
      return getSlot(Sigma, V.A);
    case cps::CpsIr::ValKind::Inck:
      return PVal::closures(domain::Bits128::single(0));
    case cps::CpsIr::ValKind::Deck:
      return PVal::closures(domain::Bits128::single(1));
    case cps::CpsIr::ValKind::Lam:
      return PVal::closures(domain::Bits128::single(2 + V.A));
    }
    assert(false && "unknown ir value kind");
    return PVal::bot();
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(uint32_t VI, domain::StoreId Sigma) const {
    const cps::CpsIr::ValNode &V = Ir.Vals[VI];
    if (V.Kind == cps::CpsIr::ValKind::Var)
      return Opts.Prov->factOf(V.A, Sigma);
    return domain::NoProv;
  }

  /// appr_e^s over a single abstract continuation (kont-universe index).
  EvalOut applyKont(uint32_t KI, const PVal &U, domain::StoreId Sigma,
                    uint32_t Depth, domain::ProvId UProv = domain::NoProv,
                    domain::EdgeKind Kind = domain::EdgeKind::Flow,
                    uint32_t SiteId = 0, SourceLoc SiteLoc = SourceLoc{}) {
    if (KI == 0) // stop
      return EvalOut{IAns{U, Sigma}, Unconstrained};
    const cps::CpsIr::ContNode &C = Ir.Conts[KI - 1];
    domain::StoreId S = Interner.joinAt(Sigma, C.ParamSlot, U);
    if (Opts.Prov)
      Opts.Prov->assign(Kind, C.ParamSlot, S, Sigma,
                        SiteId ? SiteId : C.SrcId,
                        SiteLoc.isValid() ? SiteLoc : C.Loc, UProv);
    return evalP(C.Body, S, Depth + 1);
  }

  /// appr_e^s over a continuation *set*: apply every continuation and
  /// merge — the false-return join of Section 6.1.
  EvalOut applyKontSet(domain::Bits128 Ks, const PVal &U,
                       domain::StoreId Sigma, uint32_t Depth,
                       const cps::CpsIr::TermNode &Site,
                       domain::ProvId UProv = domain::NoProv) {
    if (Ks.empty()) {
      ++Stats.DeadPaths; // join over no paths
      return EvalOut{bottomAnswer(), Unconstrained};
    }
    bool Merging = Ks.size() > 1;
    if (Merging)
      Stats.CallMerges += Ks.size() - 1; // Theorem 5.1 false return

    domain::EdgeKind Kind =
        Merging ? domain::EdgeKind::CallMerge : domain::EdgeKind::Flow;
    IAns Acc0 = bottomAnswer();
    uint32_t MinDep = Unconstrained;
    Ks.forEach([&](uint32_t R) {
      EvalOut Ri =
          applyKont(R, U, Sigma, Depth, UProv, Kind, Site.SrcId, Site.Loc);
      Acc0 = Opts.Prov ? joinAnswers(Interner, Acc0, Ri.A, Opts.Prov, Kind,
                                     Site.SrcId, Site.Loc)
                       : joinAnswers(Interner, Acc0, Ri.A);
      MinDep = std::min(MinDep, Ri.MinDep);
    });
    return EvalOut{std::move(Acc0), MinDep};
  }

  EvalOut evalP(uint32_t P, domain::StoreId Sigma, uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{cutAnswer(Sigma), 0};
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return EvalOut{cutAnswer(Sigma), 0};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    uint64_t K = key(P, Sigma);
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(K) != 0; });
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      if (SummariesOn) {
        noteQuery(P, Sigma, /*Fluid=*/false);
        mergeMemoFp(K, Sigma);
      }
      return EvalOut{It->second, Unconstrained};
    }
    if (auto It = Active.find(K); It != Active.end()) {
      ++Stats.Cuts;
      if (SummariesOn) {
        noteQuery(P, Sigma, /*Fluid=*/true);
        noteCut(P, Sigma, It->second);
      }
      return EvalOut{cutAnswer(Sigma), It->second};
    }
    if (SummariesOn) {
      if (std::optional<EvalOut> R = trySummary(P, Sigma, Depth))
        return *R;
      ++Stats.SummaryMisses;
    }

    Active.emplace(K, Depth);
    if (SummariesOn) {
      auto &AB = ActiveBitsAtStore[Sigma];
      if (AB.empty())
        AB.assign(TermWords, 0);
      setBit(AB, P);
      Recording R;
      R.Label = P;
      R.Entry = Sigma;
      R.BaseDepth = Depth;
      R.Fp.Bits.assign(FpWords, 0);
      RecStack.push_back(std::move(R));
    }
    EvalOut Out = evalUncached(P, Sigma, Depth);
    Active.erase(K);
    if (SummariesOn) {
      clearBit(ActiveBitsAtStore.find(Sigma)->second, P);
      finishGoal(P, Depth, K, Out);
    } else if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(K, Out.A);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  EvalOut evalUncached(uint32_t P, domain::StoreId Sigma, uint32_t Depth) {
    const cps::CpsIr::TermNode &T = Ir.Terms[P];
    switch (T.Kind) {
    case cps::CpsTermKind::PK_Ret: {
      // (k W): apply every continuation collected at k and merge.
      PVal KVal = getSlot(Sigma, T.A);
      PVal U = phi(T.B, Sigma);

      TermAcc &A = Acc[P];
      A.Visited = true;
      A.Set = domain::Bits128::join(A.Set, KVal.Konts);

      return applyKontSet(KVal.Konts, U, Sigma, Depth, T,
                          Opts.Prov ? provOfValue(T.B, Sigma)
                                    : domain::NoProv);
    }

    case cps::CpsTermKind::PK_LetVal: {
      PVal U = phi(T.B, Sigma);
      domain::StoreId S = Interner.joinAt(Sigma, T.A, U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, T.A, S, Sigma, T.SrcId,
                          T.Loc, provOfValue(T.B, Sigma));
      return evalP(T.C, S, Depth + 1);
    }

    case cps::CpsTermKind::PK_Call: {
      // (W1 W2 (lambda (x) P')): apply each closure; user closures get
      // the literal continuation *joined into* their k parameter's store
      // entry — the collection that later causes false returns.
      PVal Fun = phi(T.A, Sigma);
      PVal Arg = phi(T.B, Sigma);
      uint32_t Kont = T.C;

      TermAcc &CA = Acc[P];
      CA.Visited = true;
      CA.Set = domain::Bits128::join(CA.Set, Fun.Clos);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths; // join over no paths
        return EvalOut{bottomAnswer(), Unconstrained};
      }

      if (Fun.Clos.size() > 1)
        Stats.Joins += Fun.Clos.size() - 1; // multi-callee answer merge

      domain::ProvId ArgProv =
          Opts.Prov ? provOfValue(T.B, Sigma) : domain::NoProv;
      IAns Acc0 = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      Fun.Clos.forEach([&](uint32_t R) {
        EvalOut Ri;
        if (R == 0) { // inck
          Ri = applyKont(Kont, PVal::number(D::add1(Arg.Num)), Sigma,
                         Depth + 1, ArgProv, domain::EdgeKind::Flow,
                         T.SrcId, T.Loc);
        } else if (R == 1) { // deck
          Ri = applyKont(Kont, PVal::number(D::sub1(Arg.Num)), Sigma,
                         Depth + 1, ArgProv, domain::EdgeKind::Flow,
                         T.SrcId, T.Loc);
        } else {
          const cps::CpsIr::LamNode &L = Ir.Lams[R - 2];
          domain::StoreId S = Interner.joinAt(Sigma, L.ParamSlot, Arg);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow, L.ParamSlot, S, Sigma,
                              T.SrcId, T.Loc, ArgProv);
          domain::StoreId S2 = Interner.joinAt(
              S, L.KParamSlot, PVal::konts(domain::Bits128::single(Kont)));
          // The continuation-set collection at k — the raw material of a
          // later false return (the loss itself is tagged at the Ret).
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow, L.KParamSlot, S2, S,
                              T.SrcId, T.Loc);
          Ri = evalP(L.Body, S2, Depth + 1);
        }
        Acc0 = Opts.Prov ? joinAnswers(Interner, Acc0, Ri.A, Opts.Prov,
                                       domain::EdgeKind::Join, T.SrcId,
                                       T.Loc)
                         : joinAnswers(Interner, Acc0, Ri.A);
        MinDep = std::min(MinDep, Ri.MinDep);
      });
      return EvalOut{std::move(Acc0), MinDep};
    }

    case cps::CpsTermKind::PK_If: {
      // (let (k (lambda (x) P')) (if0 W0 P1 P2)): name the join
      // continuation, then each feasible branch is analyzed as a complete
      // program (per-branch duplication, Theorem 5.2).
      PVal U0 = phi(T.B, Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty() &&
                      U0.Konts.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      TermAcc &BI = Acc[P];
      BI.Visited = true;
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      domain::StoreId S = Interner.joinAt(
          Sigma, T.A, PVal::konts(domain::Bits128::single(T.J)));
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, T.A, S, Sigma, T.SrcId,
                          T.Loc);

      if (ThenOnly || ElseOnly)
        return evalP(ThenOnly ? T.C : T.E, S, Depth + 1);

      ++Stats.Joins;
      EvalOut B1 = evalP(T.C, S, Depth + 1);
      EvalOut B2 = evalP(T.E, S, Depth + 1);
      IAns Joined = Opts.Prov
                        ? joinAnswers(Interner, B1.A, B2.A, Opts.Prov,
                                      domain::EdgeKind::Join, T.SrcId, T.Loc)
                        : joinAnswers(Interner, B1.A, B2.A);
      return EvalOut{std::move(Joined), std::min(B1.MinDep, B2.MinDep)};
    }

    case cps::CpsTermKind::PK_Loop: {
      // loopk: deliver each natural to the continuation and join —
      // uncomputable exactly (Section 6.2); bounded unroll as in Figure 5.
      uint32_t Kont = T.A;
      // No finite unrolling is exact (Section 6.2): flag the truncation
      // unconditionally — a join that *looks* converged at the bound is
      // still untrustworthy (a probe beyond the bound may change it).
      Stats.LoopBounded = true;
      IAns Acc0 = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      auto JoinIter = [&](const IAns &A) {
        return Opts.Prov ? joinAnswers(Interner, Acc0, A, Opts.Prov,
                                       domain::EdgeKind::Widen, T.SrcId,
                                       T.Loc)
                         : joinAnswers(Interner, Acc0, A);
      };
      for (uint32_t I = 0; I < Opts.LoopUnroll; ++I) {
        EvalOut Bi =
            applyKont(Kont, PVal::number(D::constant(I)), Sigma, Depth + 1,
                      domain::NoProv, domain::EdgeKind::Widen, T.SrcId,
                      T.Loc);
        Acc0 = JoinIter(Bi.A);
        MinDep = std::min(MinDep, Bi.MinDep);
        if (Stats.BudgetExhausted)
          break;
      }
      if (Opts.LoopSoundSummary) {
        domain::ProvId WidenProv =
            Opts.Prov
                ? Opts.Prov->value(domain::EdgeKind::Widen, T.SrcId, T.Loc)
                : domain::NoProv;
        EvalOut Bs =
            applyKont(Kont, PVal::number(D::naturals()), Sigma, Depth + 1,
                      WidenProv, domain::EdgeKind::Widen, T.SrcId, T.Loc);
        Acc0 = JoinIter(Bs.A);
        MinDep = std::min(MinDep, Bs.MinDep);
      }
      return EvalOut{std::move(Acc0), MinDep};
    }
    }
    assert(false && "unknown ir term kind");
    return EvalOut{bottomAnswer(), Unconstrained};
  }

  //===--------------------------------------------------------------------===//
  // Boundary conversion (packed <-> public representation)
  //===--------------------------------------------------------------------===//

  domain::CpsCloRef cloRefOf(uint32_t R) const {
    if (R == 0)
      return domain::CpsCloRef::inck();
    if (R == 1)
      return domain::CpsCloRef::deck();
    return domain::CpsCloRef::lam(Ir.Lams[R - 2].Src);
  }
  domain::KontRef kontRefOf(uint32_t R) const {
    if (R == 0)
      return domain::KontRef::stop();
    return domain::KontRef::cont(Ir.Conts[R - 1].Src);
  }

  Val unpackVal(const PVal &P) const {
    Val V;
    V.Num = P.Num;
    std::vector<domain::CpsCloRef> C;
    C.reserve(P.Clos.size());
    P.Clos.forEach([&](uint32_t R) { C.push_back(cloRefOf(R)); });
    V.Clos = domain::CpsCloSet::of(std::move(C));
    std::vector<domain::KontRef> Ks;
    Ks.reserve(P.Konts.size());
    P.Konts.forEach([&](uint32_t R) { Ks.push_back(kontRefOf(R)); });
    V.Konts = domain::KontSet::of(std::move(Ks));
    return V;
  }

  StoreT unpackStore(const PStore &S) const {
    StoreT Out(S.size());
    for (uint32_t I = 0; I < S.size(); ++I)
      Out.set(I, unpackVal(S.get(I)));
    return Out;
  }

  /// Per-term CFG accumulator; converted to the pointer-keyed CpsCfg
  /// maps once, at the end of the run.
  struct TermAcc {
    bool Visited = false;
    bool ThenFeasible = false;
    bool ElseFeasible = false;
    domain::Bits128 Set; ///< konts at a Ret, closures at a Call
  };

  CpsCfg buildCfg() const {
    CpsCfg C;
    for (uint32_t L = 0; L < Ir.Terms.size(); ++L) {
      const TermAcc &A = Acc[L];
      if (!A.Visited)
        continue;
      const cps::CpsIr::TermNode &T = Ir.Terms[L];
      switch (T.Kind) {
      case cps::CpsTermKind::PK_Ret: {
        domain::KontSet &S = C.Returns[cps::cast<cps::CpsRet>(T.Src)];
        A.Set.forEach([&](uint32_t R) { S.insert(kontRefOf(R)); });
        break;
      }
      case cps::CpsTermKind::PK_Call: {
        domain::CpsCloSet &S = C.Callees[cps::cast<cps::CpsCall>(T.Src)];
        A.Set.forEach([&](uint32_t R) { S.insert(cloRefOf(R)); });
        break;
      }
      case cps::CpsTermKind::PK_If: {
        BranchInfo &BI = C.Branches[cps::cast<cps::CpsIf>(T.Src)];
        BI.ThenFeasible = A.ThenFeasible;
        BI.ElseFeasible = A.ElseFeasible;
        break;
      }
      default:
        break;
      }
    }
    return C;
  }

  cps::CpsIr Ir;
  std::shared_ptr<domain::VarIndex> Vars;
  std::vector<PackedCpsBinding<D>> Initial;
  uint32_t TopKSlot;
  AnalyzerOptions Opts;
  bool SummariesOn = false;

  domain::Bits128 PCloTop;
  domain::Bits128 PKontTop;
  uint32_t VarWords = 0;
  uint32_t TermWords = 0;
  /// Word offsets of the QEntry/QFluid/QAbove sections in a fingerprint
  /// buffer (reads start at 0), and the buffer's total size.
  uint32_t QEOff = 0;
  uint32_t QFOff = 0;
  uint32_t QAOff = 0;
  uint32_t FpWords = 0;

  domain::StoreInterner<PVal> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  std::vector<TermAcc> Acc;

  std::unordered_map<uint64_t, IAns, KeyHash> Memo;
  std::unordered_map<uint64_t, uint32_t, KeyHash> Active;

  // Summarization state (populated only when SummariesOn).
  /// Labels active per store, as a dense bitset — the word-parallel side
  /// of validate()'s active-collision scan. Entries are never erased
  /// (stores recur), only their bits toggle with the goal stack.
  std::unordered_map<domain::StoreId, std::vector<uint64_t>>
      ActiveBitsAtStore;
  std::vector<Recording> RecStack;
  std::vector<Fingerprint> FpArena;
  std::unordered_map<uint64_t, uint32_t, KeyHash> MemoFp;
  std::vector<Summary> SumArena;
  /// Per-label arena indices in publication order — the generalized scan.
  std::vector<std::vector<uint32_t>> SumByLabel;
  /// (label, entry store) -> arena indices — the exact-entry fast path.
  std::unordered_map<uint64_t, std::vector<uint32_t>, KeyHash> SumExact;

  mutable std::unique_ptr<domain::StoreInterner<Val>> PubInterner;
};

} // namespace detail
} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_SYNTACTICIRENGINE_H
