# Empty compiler generated dependencies file for cpsflow_tests.
# This may be replaced when dependencies are built.
