//===- analysis/Common.h - Shared analyzer infrastructure -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types shared by the three abstract collecting interpreters (Figures
/// 4-6): abstract answers, analyzer options, and run statistics.
///
/// An abstract answer pairs an abstract value with an abstract store,
/// ordered component-wise (Section 4.2). The statistics expose the
/// quantities the Section 6 discussion is about — how many proof goals a
/// derivation needs (the duplication cost) and how often the Section 4.4
/// loop detection fires.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_COMMON_H
#define CPSFLOW_ANALYSIS_COMMON_H

#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/Provenance.h"
#include "domain/StoreInterner.h"
#include "support/FaultInjector.h"
#include "support/Governor.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cpsflow {
namespace analysis {

struct MemoXfer; // analysis/MemoTransfer.h

/// An abstract answer: a value paired with a store, ordered and joined
/// component-wise. \p V is an AbsVal or CpsAbsVal instantiation.
template <typename V> struct AnswerOf {
  V Value;
  domain::AbsStore<V> Store;

  static AnswerOf join(const AnswerOf &A, const AnswerOf &B) {
    return AnswerOf{V::join(A.Value, B.Value),
                    domain::AbsStore<V>::join(A.Store, B.Store)};
  }

  static bool leq(const AnswerOf &A, const AnswerOf &B) {
    return V::leq(A.Value, B.Value) &&
           domain::AbsStore<V>::leq(A.Store, B.Store);
  }

  friend bool operator==(const AnswerOf &A, const AnswerOf &B) {
    return A.Value == B.Value && A.Store == B.Store;
  }
  friend bool operator!=(const AnswerOf &A, const AnswerOf &B) {
    return !(A == B);
  }
};

/// The analyzers' in-flight representation of an answer: the store half
/// lives in the run's StoreInterner and is carried by id. Converted to a
/// dense AnswerOf only when a result leaves the analyzer (run()).
template <typename V> struct InternedAnswerOf {
  V Value;
  domain::StoreId Store;
};

/// Joins two interned answers component-wise through \p In.
template <typename V>
InternedAnswerOf<V> joinAnswers(domain::StoreInterner<V> &In,
                                const InternedAnswerOf<V> &A,
                                const InternedAnswerOf<V> &B) {
  return InternedAnswerOf<V>{V::join(A.Value, B.Value),
                             In.join(A.Store, B.Store)};
}

/// Provenance-aware variant: additionally records the store merge in
/// \p Prov (which must be non-null) so a later explain walk can traverse
/// the merged store back to both parents. The store result is identical
/// to the plain overload — only the recording differs.
template <typename V>
InternedAnswerOf<V> joinAnswers(domain::StoreInterner<V> &In,
                                const InternedAnswerOf<V> &A,
                                const InternedAnswerOf<V> &B,
                                domain::Provenance *Prov,
                                domain::EdgeKind Kind, uint32_t NodeId,
                                SourceLoc Loc) {
  InternedAnswerOf<V> Out{V::join(A.Value, B.Value),
                          In.join(A.Store, B.Store)};
  Prov->merge(Out.Store, A.Store, B.Store, Kind, NodeId, Loc);
  return Out;
}

/// Knobs for an analyzer run.
struct AnalyzerOptions {
  /// Hard bound on the number of proof goals; exceeding it aborts the
  /// analysis with Stats.BudgetExhausted set (the result degrades to a
  /// sound-but-imprecise cut value at the point of exhaustion).
  uint64_t MaxGoals = 50'000'000;

  /// Unrolling bound for the CPS analyzers' `loop` rule. The paper shows
  /// the exact rule — the join of applying the continuation to every
  /// natural number — is not computable (Section 6.2), so the CPS
  /// analyzers approximate it by joining the first LoopUnroll iterates;
  /// Stats.LoopBounded reports whether the join was still moving at the
  /// bound.
  uint32_t LoopUnroll = 64;

  /// When true (default), each `loop` in the CPS analyzers additionally
  /// runs the continuation on the domain's naturals() summary, making the
  /// bounded join a sound over-approximation of the exact (uncomputable)
  /// rule. Turn off to expose the raw bounded join (bench E7). The direct
  /// analyzer ignores this: its loop rule is exact and computable.
  bool LoopSoundSummary = true;

  /// When non-null, the direct analyzer appends a rendering of its
  /// derivation tree here (one line per goal, indented by depth, with the
  /// goal's answer) — the abstract analogue of the Figure 4 derivations.
  /// Capped at DerivationMaxLines. Intended for small programs.
  std::vector<std::string> *DerivationSink = nullptr;
  /// Cap for DerivationSink.
  size_t DerivationMaxLines = 2000;

  /// When false, disable the memo table of completed subderivations (the
  /// Section 4.4 cut and its active-path set stay on — they are what
  /// guarantees termination). Results are unchanged; only cost differs.
  /// Exists for the memoization ablation (bench E11): memoization
  /// collapses duplicated analyses whose paths *reconverge* on the same
  /// store, but cannot help when the duplicated stores genuinely differ —
  /// the paper's exponential examples stay exponential.
  bool UseMemo = true;

  /// When true, the syntactic-CPS analyzer additionally reuses
  /// *generalizing* summaries: each completed walk of a goal records its
  /// entry store, the store slots it read, the goals it touched, and the
  /// ancestor cut-offs it depended on; a later goal for the same term
  /// whose store agrees on the read slots (and whose active-path
  /// environment matches the recorded cut fingerprint) replays the
  /// summary as a table lookup instead of re-walking the continuation
  /// body — the Theorem 5.1 call-merge re-analysis becomes O(1) per
  /// continuation. Answers are bitwise unchanged (DESIGN.md §12 gives
  /// the exactness argument); only goal counts and wall time differ, so
  /// the default is off and the seed-pinned statistics stay intact. The
  /// CLI and batch drivers turn it on (opt out with --no-summaries).
  /// Only the syntactic analyzer reads this flag.
  bool UseSummaries = false;

  /// Resource-governor limits beyond MaxGoals: wall-clock deadline,
  /// interner memory ceiling, goal-stack depth cap, and a cooperative
  /// cancellation token. Any trip degrades the run exactly like the
  /// MaxGoals path but records which wall was hit in Stats.Degraded.
  /// Default limits govern nothing.
  support::GovernorLimits Governor;

  /// When non-null, the run records per-goal and end-of-run metrics here
  /// (DESIGN.md §9): goal/cut/cache counters, memo occupancy, interner
  /// live/peak bytes, and goal-depth / store-width histograms. Null (the
  /// default) costs one predicted-false pointer test per goal.
  support::MetricsRegistry *Metrics = nullptr;

  /// When non-null, the run emits sampled per-goal instant events (depth,
  /// store id, memo-hit) to this tracer, one every TraceSampleEvery
  /// goals. Phase spans around the run are the caller's job (the CLI and
  /// batch driver wrap parse/ANF/CPS/analyze in TraceSpans). Null (the
  /// default) costs one predicted-false pointer test per goal.
  support::Tracer *Trace = nullptr;
  /// Per-goal sampling period for Trace (>= 1). Small periods make big
  /// traces; 256 keeps a million-goal run around 4k events.
  uint32_t TraceSampleEvery = 256;
  /// Track id the analyzers stamp on sampled events (the batch driver
  /// sets it to the worker id so each worker gets its own trace track).
  uint32_t TraceTid = 0;

  /// When non-null, the direct analyzer exports its completed memo table
  /// in the content-addressed portable form of analysis/MemoTransfer.h
  /// and/or replays entries imported from an earlier run whose
  /// fingerprints validate against the current goal (DESIGN.md §14 —
  /// the machinery behind `cpsflow serve` incremental re-analysis).
  /// Replay changes goal counts, never answers. Null (the default) costs
  /// one pointer test at construction; the run is then byte-identical in
  /// both answers and statistics. Ignored when Prov or DerivationSink is
  /// set (those record per-goal artifacts a replay would skip) and by
  /// every analyzer other than the direct one.
  MemoXfer *Xfer = nullptr;

  /// When non-null, the run records a derivation edge for every abstract
  /// fact it establishes — the provenance graph behind `cpsflow explain`
  /// and the compare-mode loss attribution (docs/EXPLAIN.md). Null (the
  /// default) costs one predicted-false pointer test per recording site;
  /// stores and all work counters are byte-identical either way
  /// (tests/ProvenanceTests.cpp).
  domain::Provenance *Prov = nullptr;
};

/// Counters describing one analyzer run.
struct AnalyzerStats {
  /// Proof goals attempted (evaluation judgments instantiated). This is
  /// the cost measure of the Section 6.2 duplication discussion.
  uint64_t Goals = 0;
  /// Goals answered from the memo table of completed, non-provisional
  /// subderivations.
  uint64_t CacheHits = 0;
  /// Section 4.4 loop cut-offs: goals whose (term, store) key was already
  /// on the active derivation path, answered with the least precise value.
  uint64_t Cuts = 0;
  /// Deepest active derivation path.
  uint64_t MaxDepth = 0;
  /// Join-over-zero-paths events: applications whose operator had no
  /// abstract closures (and, for the syntactic analyzer, returns through
  /// an empty continuation set). When this is non-zero the program has
  /// dead/stuck paths, and the Theorem 5.4 *equality* for distributive
  /// analyses need not hold exactly: the direct analysis keeps a dead
  /// path's store effects up to the point of death (MFP-style), while the
  /// per-path CPS analyses drop the whole path (MOP over completing
  /// paths). See DESIGN.md section 7.
  uint64_t DeadPaths = 0;
  /// Precision-loss joins performed: if0 evaluations that merged two
  /// feasible branches (the Theorem 5.2a loss site) and multi-callee
  /// application / final-answer merges (each k-way merge counts k-1).
  /// Counted unconditionally — identical with provenance on or off.
  uint64_t Joins = 0;
  /// Syntactic-CPS continuation-set unions applied at a return point with
  /// more than one collected continuation — the Theorem 5.1 "false
  /// return" loss site (each k-way set counts k-1). Always zero for the
  /// direct, semantic-CPS, and duplication analyzers.
  uint64_t CallMerges = 0;
  /// if0 evaluations that pruned a branch (single-feasible-branch rule).
  /// Value-dependent branch pruning is itself a non-distributive
  /// ingredient: a merged store may reach a branch no single path
  /// reaches, so the Theorem 5.4 *equality* for distributive domains is
  /// only guaranteed when this stays zero (see DESIGN.md section 7).
  uint64_t PrunedBranches = 0;
  /// True when any resource limit tripped — MaxGoals or one of the
  /// AnalyzerOptions::Governor limits (the analysis result is a sound
  /// over-approximation but not the paper-defined answer). Which wall was
  /// hit is in Degraded.
  bool BudgetExhausted = false;
  /// The structured reason for BudgetExhausted. The governed analyzers
  /// set it on every trip; the tests/reference seed oracles predate it
  /// and leave it None.
  support::DegradeReason Degraded = support::DegradeReason::None;
  /// True when a CPS analyzer evaluated a `loop` rule: the exact rule —
  /// the join over all naturals — is not computable (Section 6.2), so the
  /// reported result is a bounded approximation (a sound one if
  /// LoopSoundSummary was on, a lower one otherwise). The direct
  /// analyzer's loop rule is exact and never sets this.
  bool LoopBounded = false;

  // -- Observability counters (DESIGN.md §9). Filled by the governed
  // analyzers at the end of run(); the tests/reference seed oracles
  // predate them and leave them zero.

  /// Completed subderivations held in the memo table when the run ended.
  uint64_t MemoEntries = 0;
  /// Distinct abstract stores interned over the run — the quantity that
  /// explodes under Section 6.2 duplication.
  uint64_t InternedStores = 0;
  /// StoreInterner footprint estimate (approxBytes) when the run ended.
  uint64_t InternerBytes = 0;
  /// Peak StoreInterner footprint estimate over the run.
  uint64_t InternerPeakBytes = 0;

  // -- Continuation-summary counters. Only the syntactic analyzer with
  // AnalyzerOptions::UseSummaries on fills these; everywhere else they
  // stay zero.

  /// Goals answered by replaying a recorded continuation summary.
  uint64_t SummaryHits = 0;
  /// Goals that probed the summary table, found no reusable entry, and
  /// fell through to a full walk.
  uint64_t SummaryMisses = 0;
  /// Summaries held in the table when the run ended.
  uint64_t SummaryEntries = 0;

  // -- Cross-run memo-transfer counters (AnalyzerOptions::Xfer; only the
  // direct analyzer with an import table fills these).

  /// Goals answered by replaying a validated imported memo entry — the
  /// whole subderivation is skipped, which is where incremental
  /// re-analysis wins its goal count.
  uint64_t ReplayHits = 0;
  /// Goals whose term had imported candidate entries but none passed the
  /// fingerprint validation (stale bindings, or an active-ancestor
  /// conflict), falling through to live analysis.
  uint64_t ReplayMisses = 0;
  /// Derivation depth at each summary reuse — how deep in the proof tree
  /// the cached continuation walks are being replayed.
  support::Histogram SummaryReuseDepth;

  /// True iff the run computed the paper-defined answer exactly.
  bool complete() const { return !BudgetExhausted && !LoopBounded; }
};

/// Per-goal observability hook shared by the five analyzers; called once
/// per proof goal, after the governor check. With both sinks disabled
/// (the default) the cost is two predicted-false pointer tests — the same
/// budget class as the governor's cheap path. \p IsMemoHit is a lazy
/// predicate so the extra memo probe is paid only on sampled goals.
template <typename IsMemoHitFn>
inline void observeGoal(const AnalyzerOptions &Opts,
                        const AnalyzerStats &Stats, uint32_t Depth,
                        domain::StoreId Store, IsMemoHitFn &&IsMemoHit) {
  if (Opts.Metrics)
    Opts.Metrics->histogram("goalDepth").record(Depth);
  if (Opts.Trace && Stats.Goals % Opts.TraceSampleEvery == 0)
    Opts.Trace->instant("goal", "analyze", Opts.TraceTid,
                        {{"goal", Stats.Goals},
                         {"depth", Depth},
                         {"store", Store},
                         {"memoHit", IsMemoHit() ? 1u : 0u}});
}

/// End-of-run bookkeeping shared by the five analyzers: copies the
/// interner/memo occupancy into \p Stats and, when a metrics registry is
/// attached, publishes the run's counters under their canonical names.
template <typename V>
inline void finalizeRunStats(AnalyzerStats &Stats,
                             const domain::StoreInterner<V> &Interner,
                             uint64_t MemoEntries,
                             const AnalyzerOptions &Opts) {
  Stats.MemoEntries = MemoEntries;
  Stats.InternedStores = Interner.size();
  Stats.InternerBytes = Interner.approxBytes();
  Stats.InternerPeakBytes = Interner.peakBytes();
  if (support::MetricsRegistry *M = Opts.Metrics) {
    M->set("goals", Stats.Goals);
    M->set("cacheHits", Stats.CacheHits);
    M->set("cuts", Stats.Cuts);
    M->set("joins", Stats.Joins);
    M->set("callMerges", Stats.CallMerges);
    M->set("maxDepth", Stats.MaxDepth);
    M->set("deadPaths", Stats.DeadPaths);
    M->set("prunedBranches", Stats.PrunedBranches);
    M->set("memoEntries", Stats.MemoEntries);
    M->set("stores", Stats.InternedStores);
    M->set("storeBytes", Stats.InternerBytes);
    M->setMax("storeBytesPeak", Stats.InternerPeakBytes);
  }
}

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_COMMON_H
