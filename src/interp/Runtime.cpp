//===- interp/Runtime.cpp - Concrete run-time model -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Runtime.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::interp;

std::string cpsflow::interp::str(const Context &Ctx, const RtValue &V) {
  switch (V.Tag) {
  case RtValue::Kind::Num:
    return std::to_string(V.Num);
  case RtValue::Kind::Inc:
    return "inc";
  case RtValue::Kind::Dec:
    return "dec";
  case RtValue::Kind::Closure: {
    std::ostringstream O;
    O << "(cl " << Ctx.spelling(V.Lam->param()) << " #" << V.Lam->id()
      << ")";
    return O.str();
  }
  }
  return "<invalid>";
}

std::string cpsflow::interp::str(const Context &Ctx, const CpsRtValue &V) {
  switch (V.Tag) {
  case CpsRtValue::Kind::Num:
    return std::to_string(V.Num);
  case CpsRtValue::Kind::Inck:
    return "inck";
  case CpsRtValue::Kind::Deck:
    return "deck";
  case CpsRtValue::Kind::Closure: {
    std::ostringstream O;
    O << "(cl " << Ctx.spelling(V.Lam->param()) << " "
      << Ctx.spelling(V.Lam->kparam()) << " #" << V.Lam->id() << ")";
    return O.str();
  }
  case CpsRtValue::Kind::Cont: {
    std::ostringstream O;
    O << "(co " << Ctx.spelling(V.Cont->param()) << " #" << V.Cont->id()
      << ")";
    return O.str();
  }
  case CpsRtValue::Kind::Stop:
    return "stop";
  }
  return "<invalid>";
}

std::string cpsflow::interp::snippet(std::string Text, size_t Max) {
  if (Text.size() <= Max)
    return Text;
  Text.resize(Max - 3);
  return Text + "...";
}
