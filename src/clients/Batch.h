//===- clients/Batch.h - Parallel corpus driver -----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch corpus driver behind `cpsflow batch <dir>`: analyze a corpus
/// of programs with all four analyzers (direct, semantic-CPS,
/// syntactic-CPS, bounded-dup), optionally in parallel, and render an
/// aggregate JSON report suitable for BENCH_*.json trajectory tracking.
///
/// Parallelism model: analyses are per-program independent. Each worker
/// job owns its program's Context, interners, and analyzers end to end;
/// the only shared state is the pre-sized result vector, written at
/// disjoint indices. Results are therefore bitwise-identical at every
/// thread count; only the timing fields (and the reported thread count)
/// vary, and batchJson can omit them (BatchOptions::IncludeTiming) so
/// outputs can be compared across runs.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_BATCH_H
#define CPSFLOW_CLIENTS_BATCH_H

#include "analysis/Common.h"

#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace clients {

/// Knobs for one batch run.
struct BatchOptions {
  /// Worker threads (>= 1). Results are identical at every value.
  unsigned Threads = 1;
  /// Numeric domain name: constant|unit|sign|parity|interval.
  std::string Domain = "constant";
  /// Duplication budget for the dup analyzer leg.
  uint32_t DupBudget = 2;
  /// Per-analyzer goal budget; corpus programs that blow past it report
  /// budgetExhausted rather than stalling the batch.
  uint64_t MaxGoals = 5'000'000;
  /// When false, batchJson omits wall-time and thread-count fields so two
  /// runs' outputs can be compared byte-for-byte.
  bool IncludeTiming = true;
};

/// One analyzer leg of one program.
struct BatchAnalyzerRecord {
  std::string Answer; ///< Rendered final abstract value.
  analysis::AnalyzerStats Stats;
  double WallMs = 0;
};

/// All four analyzer legs of one program.
struct BatchProgramResult {
  std::string Name; ///< File base name (or caller-supplied label).
  bool Ok = false;
  std::string Error; ///< Parse/transform failure, when !Ok.
  uint64_t Nodes = 0; ///< ANF term size.
  BatchAnalyzerRecord Direct, Semantic, Syntactic, Dup;
};

/// A whole corpus run, program results in input order.
struct BatchResult {
  std::vector<BatchProgramResult> Programs;
  double WallMs = 0; ///< Whole-batch wall time.
};

/// Program files (*.scm) under \p Dir, sorted by name for deterministic
/// corpus order. Non-recursive.
std::vector<std::string> collectCorpus(const std::string &Dir);

/// Analyzes (name, source-text) pairs; see the file comment for the
/// parallelism contract.
BatchResult runBatch(
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    const BatchOptions &Opts);

/// Reads \p Files and analyzes them.
BatchResult runBatchFiles(const std::vector<std::string> &Files,
                          const BatchOptions &Opts);

/// Renders the aggregate JSON document (schema: see docs/CLI.md).
std::string batchJson(const BatchResult &R, const BatchOptions &Opts);

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_BATCH_H
