//===- support/Trace.h - Chrome trace_event tracer --------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight event tracer emitting Chrome `trace_event` JSON — the
/// format `chrome://tracing` and Perfetto load directly. Two event kinds
/// are enough for our pipeline:
///
///  * Complete spans ("ph":"X"): a named phase with a start and a
///    duration — parse, ANF, the CPS transform, each analyzer leg.
///    TraceSpan is the RAII helper; spans on the same track (tid) nest
///    by containment, exactly as the analyzers call each other.
///  * Instants ("ph":"i"): sampled per-goal events carrying small
///    integer args (depth, store id, memo-hit), for seeing *where in the
///    run* the derivation was deep or the memo cold.
///
/// Zero overhead when disabled: the analyzers and the CLI hold a
/// `Tracer *` that defaults to null, so the disabled path is one
/// predicted-false pointer test per goal (the same budget as the
/// governor's cheap checks; bench/governor_overhead methodology applies).
///
/// Thread model: append is mutex-guarded so the batch driver's workers
/// can share one tracer (each worker passes its own tid, giving one
/// Perfetto track per thread). Timestamps are microseconds from the
/// tracer's construction, read from the same steady clock the governor
/// uses.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_TRACE_H
#define CPSFLOW_SUPPORT_TRACE_H

#include "support/Json.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace support {

/// Collects trace events; renders Chrome trace_event JSON. See the file
/// comment.
class Tracer {
public:
  /// One small-integer event argument, e.g. {"depth", 12}.
  using Arg = std::pair<const char *, uint64_t>;

  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  /// Microseconds since the tracer was constructed.
  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Records a complete span [\p StartUs, \p StartUs + \p DurUs] on
  /// track \p Tid.
  void span(std::string Name, const char *Cat, uint64_t StartUs,
            uint64_t DurUs, uint32_t Tid = 0,
            std::vector<Arg> Args = {}) {
    std::lock_guard<std::mutex> Lock(M);
    Events.push_back(Event{std::move(Name), Cat, 'X', StartUs, DurUs, Tid,
                           std::move(Args)});
  }

  /// Records an instant event at now() on track \p Tid.
  void instant(std::string Name, const char *Cat, uint32_t Tid = 0,
               std::vector<Arg> Args = {}) {
    uint64_t Ts = nowUs();
    std::lock_guard<std::mutex> Lock(M);
    Events.push_back(
        Event{std::move(Name), Cat, 'i', Ts, 0, Tid, std::move(Args)});
  }

  size_t eventCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Events.size();
  }

  /// Drops every recorded event and restarts the clock. The serve
  /// workers keep one tracer each and clear it between requests, so a
  /// slow-request capture costs one tracer per worker, not one per
  /// request, and each captured trace's timestamps start at the request.
  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Events.clear();
    Epoch = std::chrono::steady_clock::now();
  }

  /// The Chrome trace document:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}. Loadable as-is in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string json() const {
    std::lock_guard<std::mutex> Lock(M);
    JsonWriter W;
    W.beginObject();
    W.key("displayTimeUnit").value("ms");
    W.key("traceEvents").beginArray();
    for (const Event &E : Events) {
      W.beginObject();
      W.key("name").value(E.Name);
      W.key("cat").value(E.Cat);
      W.key("ph").value(std::string_view(&E.Ph, 1));
      W.key("ts").value(E.TsUs);
      if (E.Ph == 'X')
        W.key("dur").value(E.DurUs);
      if (E.Ph == 'i')
        W.key("s").value("t"); // thread-scoped instant
      W.key("pid").value(uint64_t{1});
      W.key("tid").value(static_cast<uint64_t>(E.Tid));
      if (!E.Args.empty()) {
        W.key("args").beginObject();
        for (const Arg &A : E.Args)
          W.key(A.first).value(A.second);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.str();
  }

private:
  struct Event {
    std::string Name;
    const char *Cat;
    char Ph;
    uint64_t TsUs;
    uint64_t DurUs;
    uint32_t Tid;
    std::vector<Arg> Args;
  };

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<Event> Events;
};

/// RAII phase span: records [construction, destruction) as a complete
/// event. A null tracer makes every member a no-op, so call sites do not
/// branch.
class TraceSpan {
public:
  TraceSpan(Tracer *T, std::string Name, const char *Cat = "phase",
            uint32_t Tid = 0)
      : T(T), Name(std::move(Name)), Cat(Cat), Tid(Tid),
        StartUs(T ? T->nowUs() : 0) {}

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() { close(); }

  /// Ends the span early (idempotent).
  void close() {
    if (!T)
      return;
    T->span(std::move(Name), Cat, StartUs, T->nowUs() - StartUs, Tid);
    T = nullptr;
  }

private:
  Tracer *T;
  std::string Name;
  const char *Cat;
  uint32_t Tid;
  uint64_t StartUs;
};

} // namespace support
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_TRACE_H
