//===- tests/ExhaustiveTests.cpp - Bounded-exhaustive checks ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every small program (bounded-exhaustive universe) satisfies the
/// interpreter-agreement lemmas and analyzer soundness — no small
/// counterexample exists, complementing the random sweeps.
///
//===----------------------------------------------------------------------===//

#include "gen/Enumerate.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "interp/Delta.h"
#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::interp;
using cpsflow::test::intBindings;
using cpsflow::test::intCpsBindings;
using CD = domain::ConstantDomain;

namespace {

TEST(Exhaustive, UniverseSizeIsStable) {
  // Pin the universe size so accidental generator changes are noticed.
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;
  size_t N = gen::enumeratePrograms(Ctx, Opts, [](const syntax::Term *) {});
  EXPECT_EQ(N, 1326u);
}

TEST(Exhaustive, LemmasHoldOnEveryTwoLetProgram) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;
  RunLimits Limits;
  Limits.MaxSteps = 20000;

  size_t Checked = 0;
  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    ++Checked;

    DirectInterp Direct(Limits);
    RunResult RD = Direct.run(T, intBindings(T, {1}));
    SemanticCpsInterp Semantic(Limits);
    RunResult RS = Semantic.run(T, intBindings(T, {1}));

    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    ASSERT_TRUE(P.hasValue());
    SyntacticCpsInterp Syntactic(Limits);
    CpsRunResult RC = Syntactic.run(*P, intCpsBindings(T, {1}));

    if (RD.Status == RunStatus::OutOfFuel ||
        RS.Status == RunStatus::OutOfFuel ||
        RC.Status == RunStatus::OutOfFuel)
      return;

    // Lemma 3.1.
    ASSERT_EQ(static_cast<int>(RD.Status), static_cast<int>(RS.Status))
        << syntax::print(Ctx, T);
    // Lemma 3.3.
    ASSERT_EQ(static_cast<int>(RD.Status), static_cast<int>(RC.Status))
        << syntax::print(Ctx, T);
    if (RD.ok()) {
      ASSERT_TRUE(deltaRelated(RD.Value, RC.Value, *P))
          << syntax::print(Ctx, T);
      std::string Why;
      ASSERT_TRUE(storesDeltaRelated(Ctx, Direct.store(), Syntactic.store(),
                                     *P, &Why))
          << syntax::print(Ctx, T) << "\n " << Why;
    }
  });
  EXPECT_EQ(Checked, 1326u);
}

TEST(Exhaustive, AnalyzerSoundOnEveryTwoLetProgram) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;
  RunLimits Limits;
  Limits.MaxSteps = 20000;

  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    DirectInterp CI(Limits);
    RunResult CR = CI.run(T, intBindings(T, {1}));
    if (!CR.ok())
      return;

    std::vector<analysis::DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back(
          {S, domain::AbsVal<CD>::number(CD::constant(1))});
    auto AD = analysis::DirectAnalyzer<CD>(Ctx, T, Init).run();

    // Value soundness.
    domain::AbsVal<CD> Alpha;
    if (CR.Value.isNum())
      Alpha = domain::AbsVal<CD>::number(CD::constant(CR.Value.Num));
    else if (CR.Value.isClosure())
      Alpha = domain::AbsVal<CD>::closures(
          domain::CloSet::single(domain::CloRef::lam(CR.Value.Lam)));
    else
      Alpha = domain::AbsVal<CD>::closures(domain::CloSet::single(
          CR.Value.Tag == RtValue::Kind::Inc ? domain::CloRef::inc()
                                             : domain::CloRef::dec()));
    EXPECT_TRUE(domain::AbsVal<CD>::leq(Alpha, AD.Answer.Value))
        << syntax::print(Ctx, T);
  });
}

TEST(Exhaustive, ThreeLetInterpreterAgreement) {
  // A larger universe for the (cheap) Lemma 3.1 check only.
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 3;
  Opts.WithLambdas = false; // keeps the universe around 20k programs
  RunLimits Limits;
  Limits.MaxSteps = 20000;

  size_t N = gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    DirectInterp Direct(Limits);
    RunResult RD = Direct.run(T, intBindings(T, {0}));
    SemanticCpsInterp Semantic(Limits);
    RunResult RS = Semantic.run(T, intBindings(T, {0}));
    ASSERT_EQ(static_cast<int>(RD.Status), static_cast<int>(RS.Status))
        << syntax::print(Ctx, T);
    if (RD.ok() && RD.Value.isNum())
      ASSERT_EQ(RD.Value.Num, RS.Value.Num) << syntax::print(Ctx, T);
  });
  EXPECT_GT(N, 10000u);
}

} // namespace
