//===- syntax/Analysis.cpp - Syntactic analyses over A terms ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Analysis.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>
#include <string>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

/// Generic pre-order walk calling \p OnTerm / \p OnValue on every node.
template <typename TermFn, typename ValueFn>
void walk(const Term *T, TermFn OnTerm, ValueFn OnValue) {
  OnTerm(T);
  switch (T->kind()) {
  case TermKind::TK_Value: {
    const Value *V = cast<ValueTerm>(T)->value();
    OnValue(V);
    if (const auto *Lam = dyn_cast<LamValue>(V))
      walk(Lam->body(), OnTerm, OnValue);
    return;
  }
  case TermKind::TK_App: {
    const auto *App = cast<AppTerm>(T);
    walk(App->fun(), OnTerm, OnValue);
    walk(App->arg(), OnTerm, OnValue);
    return;
  }
  case TermKind::TK_Let: {
    const auto *Let = cast<LetTerm>(T);
    walk(Let->bound(), OnTerm, OnValue);
    walk(Let->body(), OnTerm, OnValue);
    return;
  }
  case TermKind::TK_If0: {
    const auto *If = cast<If0Term>(T);
    walk(If->cond(), OnTerm, OnValue);
    walk(If->thenBranch(), OnTerm, OnValue);
    walk(If->elseBranch(), OnTerm, OnValue);
    return;
  }
  case TermKind::TK_Loop:
    return;
  }
}

void freeVarsValue(const Value *V, std::set<Symbol> &Bound,
                   std::set<Symbol> &Free);

void freeVarsTerm(const Term *T, std::set<Symbol> &Bound,
                  std::set<Symbol> &Free) {
  switch (T->kind()) {
  case TermKind::TK_Value:
    freeVarsValue(cast<ValueTerm>(T)->value(), Bound, Free);
    return;
  case TermKind::TK_App: {
    const auto *App = cast<AppTerm>(T);
    freeVarsTerm(App->fun(), Bound, Free);
    freeVarsTerm(App->arg(), Bound, Free);
    return;
  }
  case TermKind::TK_Let: {
    const auto *Let = cast<LetTerm>(T);
    freeVarsTerm(Let->bound(), Bound, Free);
    bool Inserted = Bound.insert(Let->var()).second;
    freeVarsTerm(Let->body(), Bound, Free);
    if (Inserted)
      Bound.erase(Let->var());
    return;
  }
  case TermKind::TK_If0: {
    const auto *If = cast<If0Term>(T);
    freeVarsTerm(If->cond(), Bound, Free);
    freeVarsTerm(If->thenBranch(), Bound, Free);
    freeVarsTerm(If->elseBranch(), Bound, Free);
    return;
  }
  case TermKind::TK_Loop:
    return;
  }
}

void freeVarsValue(const Value *V, std::set<Symbol> &Bound,
                   std::set<Symbol> &Free) {
  switch (V->kind()) {
  case ValueKind::VK_Num:
  case ValueKind::VK_Prim:
    return;
  case ValueKind::VK_Var: {
    Symbol Name = cast<VarValue>(V)->name();
    if (!Bound.count(Name))
      Free.insert(Name);
    return;
  }
  case ValueKind::VK_Lam: {
    const auto *Lam = cast<LamValue>(V);
    bool Inserted = Bound.insert(Lam->param()).second;
    freeVarsTerm(Lam->body(), Bound, Free);
    if (Inserted)
      Bound.erase(Lam->param());
    return;
  }
  }
}

} // namespace

std::set<Symbol> cpsflow::syntax::freeVars(const Term *T) {
  std::set<Symbol> Bound, Free;
  freeVarsTerm(T, Bound, Free);
  return Free;
}

std::set<Symbol> cpsflow::syntax::boundVars(const Term *T) {
  std::set<Symbol> Out;
  walk(
      T,
      [&](const Term *Node) {
        if (const auto *Let = dyn_cast<LetTerm>(Node))
          Out.insert(Let->var());
      },
      [&](const Value *V) {
        if (const auto *Lam = dyn_cast<LamValue>(V))
          Out.insert(Lam->param());
      });
  return Out;
}

Result<bool> cpsflow::syntax::checkUniqueBinders(const Context &Ctx,
                                                 const Term *T) {
  std::set<Symbol> Free = freeVars(T);
  std::set<Symbol> Seen;
  Symbol Duplicate;
  SourceLoc Where;
  auto Note = [&](Symbol S, SourceLoc Loc) {
    if (Duplicate.isValid())
      return;
    if (Free.count(S) || !Seen.insert(S).second) {
      Duplicate = S;
      Where = Loc;
    }
  };
  walk(
      T,
      [&](const Term *Node) {
        if (const auto *Let = dyn_cast<LetTerm>(Node))
          Note(Let->var(), Let->loc());
      },
      [&](const Value *V) {
        if (const auto *Lam = dyn_cast<LamValue>(V))
          Note(Lam->param(), Lam->loc());
      });
  if (Duplicate.isValid())
    return Error("binder '" + std::string(Ctx.spelling(Duplicate)) +
                     "' is not unique (shadows a binder or a free variable)",
                 Where);
  return true;
}

Result<bool>
cpsflow::syntax::checkClosed(const Context &Ctx, const Term *T,
                             const std::set<Symbol> &AllowedFree) {
  for (Symbol S : freeVars(T))
    if (!AllowedFree.count(S))
      return Error("unbound variable '" + std::string(Ctx.spelling(S)) + "'");
  return true;
}

bool cpsflow::syntax::structurallyEqual(const Value *A, const Value *B) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ValueKind::VK_Num:
    return cast<NumValue>(A)->value() == cast<NumValue>(B)->value();
  case ValueKind::VK_Var:
    return cast<VarValue>(A)->name() == cast<VarValue>(B)->name();
  case ValueKind::VK_Prim:
    return cast<PrimValue>(A)->op() == cast<PrimValue>(B)->op();
  case ValueKind::VK_Lam: {
    const auto *LA = cast<LamValue>(A), *LB = cast<LamValue>(B);
    return LA->param() == LB->param() &&
           structurallyEqual(LA->body(), LB->body());
  }
  }
  return false;
}

bool cpsflow::syntax::structurallyEqual(const Term *A, const Term *B) {
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TermKind::TK_Value:
    return structurallyEqual(cast<ValueTerm>(A)->value(),
                             cast<ValueTerm>(B)->value());
  case TermKind::TK_App: {
    const auto *AA = cast<AppTerm>(A), *AB = cast<AppTerm>(B);
    return structurallyEqual(AA->fun(), AB->fun()) &&
           structurallyEqual(AA->arg(), AB->arg());
  }
  case TermKind::TK_Let: {
    const auto *LA = cast<LetTerm>(A), *LB = cast<LetTerm>(B);
    return LA->var() == LB->var() &&
           structurallyEqual(LA->bound(), LB->bound()) &&
           structurallyEqual(LA->body(), LB->body());
  }
  case TermKind::TK_If0: {
    const auto *IA = cast<If0Term>(A), *IB = cast<If0Term>(B);
    return structurallyEqual(IA->cond(), IB->cond()) &&
           structurallyEqual(IA->thenBranch(), IB->thenBranch()) &&
           structurallyEqual(IA->elseBranch(), IB->elseBranch());
  }
  case TermKind::TK_Loop:
    return true;
  }
  return false;
}

namespace {

/// Maps each side's binders to shared fresh indices; a variable matches
/// when both sides map it to the same index (or both leave it free and
/// the symbols coincide).
struct AlphaCmp {
  std::unordered_map<Symbol, uint32_t> MapA, MapB;
  std::vector<std::pair<Symbol, bool>> SavedA, SavedB; // simple undo log
  uint32_t NextIndex = 0;

  bool term(const Term *A, const Term *B) {
    if (A->kind() != B->kind())
      return false;
    switch (A->kind()) {
    case TermKind::TK_Value:
      return value(cast<ValueTerm>(A)->value(), cast<ValueTerm>(B)->value());
    case TermKind::TK_App: {
      const auto *AA = cast<AppTerm>(A), *AB = cast<AppTerm>(B);
      return term(AA->fun(), AB->fun()) && term(AA->arg(), AB->arg());
    }
    case TermKind::TK_Let: {
      const auto *LA = cast<LetTerm>(A), *LB = cast<LetTerm>(B);
      if (!term(LA->bound(), LB->bound()))
        return false;
      return scoped(LA->var(), LB->var(),
                    [&] { return term(LA->body(), LB->body()); });
    }
    case TermKind::TK_If0: {
      const auto *IA = cast<If0Term>(A), *IB = cast<If0Term>(B);
      return term(IA->cond(), IB->cond()) &&
             term(IA->thenBranch(), IB->thenBranch()) &&
             term(IA->elseBranch(), IB->elseBranch());
    }
    case TermKind::TK_Loop:
      return true;
    }
    return false;
  }

private:
  template <typename Fn> bool scoped(Symbol VA, Symbol VB, Fn Body) {
    uint32_t Index = NextIndex++;
    auto OldA = MapA.find(VA);
    auto OldB = MapB.find(VB);
    bool HadA = OldA != MapA.end(), HadB = OldB != MapB.end();
    uint32_t PrevA = HadA ? OldA->second : 0, PrevB = HadB ? OldB->second : 0;
    MapA[VA] = Index;
    MapB[VB] = Index;
    bool Ok = Body();
    if (HadA)
      MapA[VA] = PrevA;
    else
      MapA.erase(VA);
    if (HadB)
      MapB[VB] = PrevB;
    else
      MapB.erase(VB);
    return Ok;
  }

  bool value(const Value *A, const Value *B) {
    if (A->kind() != B->kind())
      return false;
    switch (A->kind()) {
    case ValueKind::VK_Num:
      return cast<NumValue>(A)->value() == cast<NumValue>(B)->value();
    case ValueKind::VK_Prim:
      return cast<PrimValue>(A)->op() == cast<PrimValue>(B)->op();
    case ValueKind::VK_Var: {
      Symbol NA = cast<VarValue>(A)->name(), NB = cast<VarValue>(B)->name();
      auto IA = MapA.find(NA);
      auto IB = MapB.find(NB);
      if (IA == MapA.end() && IB == MapB.end())
        return NA == NB; // both free
      if (IA == MapA.end() || IB == MapB.end())
        return false; // bound on one side only
      return IA->second == IB->second;
    }
    case ValueKind::VK_Lam: {
      const auto *LA = cast<LamValue>(A), *LB = cast<LamValue>(B);
      return scoped(LA->param(), LB->param(),
                    [&] { return term(LA->body(), LB->body()); });
    }
    }
    return false;
  }
};

} // namespace

bool cpsflow::syntax::alphaEquivalent(const Term *A, const Term *B) {
  return AlphaCmp().term(A, B);
}

size_t cpsflow::syntax::countNodes(const Term *T) {
  size_t N = 0;
  walk(
      T, [&](const Term *) { ++N; }, [&](const Value *) { ++N; });
  return N;
}

std::vector<const LamValue *> cpsflow::syntax::collectLambdas(const Term *T) {
  std::vector<const LamValue *> Out;
  walk(
      T, [](const Term *) {},
      [&](const Value *V) {
        if (const auto *Lam = dyn_cast<LamValue>(V))
          Out.push_back(Lam);
      });
  std::sort(Out.begin(), Out.end(),
            [](const LamValue *A, const LamValue *B) {
              return A->id() < B->id();
            });
  return Out;
}

std::vector<Symbol> cpsflow::syntax::collectVariables(const Term *T) {
  std::set<Symbol> All = boundVars(T);
  for (Symbol S : freeVars(T))
    All.insert(S);
  return std::vector<Symbol>(All.begin(), All.end());
}
