//===- bench/memo_ablation.cpp - E11: memoization ablation ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E11 — ablation of the memo table (a design choice documented in
/// DESIGN.md §6: the paper's derivations recompute identical proof goals;
/// we cache completed, non-provisional subderivations).
///
/// Two matched workloads separate what memoization can and cannot do:
///
///  * convergingChain(n): both branches of every conditional compute the
///    same value, so the duplicated per-path stores *reconverge* and the
///    continuation goals repeat exactly — memoization collapses the CPS
///    analyzers' 2^n paths back to linear.
///  * conditionalChain(n): the branches compute different constants, so
///    every one of the 2^n per-path stores is distinct — memoization
///    cannot help, and the exponential cost is inherent to duplication,
///    exactly as Section 6.2 argues.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Workloads.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

void sweep(Context &Ctx, const char *Title,
           Witness (*Make)(Context &, uint32_t), uint32_t MaxN) {
  std::printf("\n%s\n", Title);
  std::printf("   n | semantic goals (memo) | semantic goals (no memo) | "
              "cache hits\n");
  std::printf("  ---+-----------------------+--------------------------+---"
              "--------\n");
  for (uint32_t N = 2; N <= MaxN; N += 2) {
    Witness W = Make(Ctx, N);
    AnalyzerOptions On;
    AnalyzerOptions Off;
    Off.UseMemo = false;
    auto RMemo = SemanticCpsAnalyzer<CD>(Ctx, W.Anf,
                                         directBindings<CD>(W), On)
                     .run();
    auto RBare = SemanticCpsAnalyzer<CD>(Ctx, W.Anf,
                                         directBindings<CD>(W), Off)
                     .run();
    // Ablation must not change the answer.
    if (!(RMemo.Answer == RBare.Answer))
      std::printf("  !! answers differ at n=%u — memoization bug\n", N);
    std::printf("  %2u | %21llu | %24llu | %llu\n", N,
                (unsigned long long)RMemo.Stats.Goals,
                (unsigned long long)RBare.Stats.Goals,
                (unsigned long long)RMemo.Stats.CacheHits);
  }
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E11: memoization ablation (semantic-CPS analyzer)");
  sweep(Ctx,
        "converging chains (branches agree; paths reconverge — memo "
        "collapses the blow-up):",
        gen::convergingChain, 14);
  sweep(Ctx,
        "conditional chains (branches differ; every path store distinct — "
        "memo cannot help):",
        gen::conditionalChain, 14);
  std::printf("\nexpected shape: with reconverging paths, memoized goals "
              "grow linearly while unmemoized goals double per step; with "
              "genuinely diverging paths both columns double — Section "
              "6.2's exponential cost is inherent.\n");
  return 0;
}
