//===- gen/Generator.cpp - Random ANF program generator ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"

#include "anf/Anf.h"
#include "syntax/Builder.h"

#include <cassert>
#include <string>

using namespace cpsflow;
using namespace cpsflow::gen;
using namespace cpsflow::syntax;

ProgramGenerator::ProgramGenerator(Context &Ctx, GenOptions Opts)
    : Ctx(Ctx), Opts(Opts), Random(Opts.Seed) {
  for (uint32_t I = 0; I < Opts.NumFreeVars; ++I)
    FreeVars.push_back(Ctx.intern("z" + std::to_string(I)));
}

const Term *ProgramGenerator::generate() {
  std::vector<Symbol> Scope = FreeVars;
  FunScope.clear();
  const Term *T = chain(Opts.ChainLength, Opts.MaxDepth, Scope);
  assert(anf::isAnfQuick(T) && "generator produced a non-ANF term");
  return T;
}

const Term *ProgramGenerator::generateFull() {
  std::vector<Symbol> Scope = FreeVars;
  return fullTerm(Opts.MaxDepth + 2, Scope);
}

const Term *ProgramGenerator::fullTerm(uint32_t Depth,
                                       std::vector<Symbol> &Scope) {
  Builder B(Ctx);
  if (Depth == 0)
    return B.val(operand(Scope));

  uint64_t Roll = Random.below(100);
  if (Roll < 25)
    return B.val(operand(Scope));
  if (Roll < 35) {
    Symbol P = Ctx.fresh("p");
    Scope.push_back(P);
    const Term *Body = fullTerm(Depth - 1, Scope);
    Scope.pop_back();
    return B.val(B.lam(P, Body));
  }
  if (Roll < 55) {
    // Nested application; the operator is often a primitive so that runs
    // frequently complete.
    const Term *Fun = Random.chance(1, 2)
                          ? B.val(Random.chance(1, 2)
                                      ? static_cast<const Value *>(B.add1())
                                      : static_cast<const Value *>(B.sub1()))
                          : fullTerm(Depth - 1, Scope);
    const Term *Arg = fullTerm(Depth - 1, Scope);
    return B.app(Fun, Arg);
  }
  if (Roll < 80) {
    Symbol X = Ctx.fresh("x");
    const Term *Bound = fullTerm(Depth - 1, Scope);
    Scope.push_back(X);
    const Term *Body = fullTerm(Depth - 1, Scope);
    Scope.pop_back();
    return B.let(X, Bound, Body);
  }
  const Term *Cond = fullTerm(Depth - 1, Scope);
  const Term *Then = fullTerm(Depth - 1, Scope);
  const Term *Else = fullTerm(Depth - 1, Scope);
  return B.if0(Cond, Then, Else);
}

const Value *ProgramGenerator::operand(const std::vector<Symbol> &Scope) {
  Builder B(Ctx);
  // Two thirds variables (when any are in scope), one third numerals.
  if (!Scope.empty() && Random.chance(2, 3))
    return B.var(Scope[Random.below(Scope.size())]);
  return B.num(Random.range(0, Opts.NumeralRange));
}

const Value *ProgramGenerator::operatorValue(uint32_t Depth,
                                             std::vector<Symbol> &Scope) {
  Builder B(Ctx);
  uint64_t Roll = Random.below(10);
  // Primitives dominate so that constant propagation has work to do.
  if (Roll < 4)
    return Random.chance(1, 2) ? static_cast<const Value *>(B.add1())
                               : static_cast<const Value *>(B.sub1());
  if (Roll < 8) {
    // In well-typed mode only procedure-holding variables may be applied.
    const std::vector<Symbol> &Pool = Opts.WellTyped ? FunScope : Scope;
    if (!Pool.empty())
      return B.var(Pool[Random.below(Pool.size())]);
  }
  if (Depth > 0) {
    // A literal lambda in operator position.
    Symbol P = Ctx.fresh("p");
    Scope.push_back(P);
    const Term *Body =
        chain(1 + static_cast<uint32_t>(Random.below(3)), Depth - 1, Scope);
    Scope.pop_back();
    return B.lam(P, Body);
  }
  return Random.chance(1, 2) ? static_cast<const Value *>(B.add1())
                             : static_cast<const Value *>(B.sub1());
}

const Term *ProgramGenerator::chain(uint32_t Length, uint32_t Depth,
                                    std::vector<Symbol> &Scope) {
  Builder B(Ctx);
  if (Length == 0)
    return B.val(operand(Scope));

  Symbol X = Ctx.fresh("x");
  const Term *Bound = nullptr;
  bool BoundIsLambda = false;
  uint64_t Roll = Random.below(100);
  if (Opts.AllowLoop && Roll < 3) {
    Bound = B.loop();
  } else if (Roll < 30) {
    // Plain value binding; occasionally a lambda.
    if (Depth > 0 && Random.chance(1, 4)) {
      Symbol P = Ctx.fresh("p");
      Scope.push_back(P);
      const Term *LBody =
          chain(1 + static_cast<uint32_t>(Random.below(3)), Depth - 1, Scope);
      Scope.pop_back();
      Bound = B.val(B.lam(P, LBody));
      BoundIsLambda = true;
    } else {
      Bound = B.val(operand(Scope));
    }
  } else if (Roll < 70 || Depth == 0) {
    // Application.
    const Value *Fun = operatorValue(Depth, Scope);
    const Value *Arg = operand(Scope);
    Bound = B.appVV(Fun, Arg);
  } else {
    // Conditional with sub-chains as branches.
    const Value *Cond = operand(Scope);
    uint32_t BranchLen = 1 + static_cast<uint32_t>(Random.below(3));
    const Term *Then = chain(BranchLen, Depth - 1, Scope);
    const Term *Else = chain(BranchLen, Depth - 1, Scope);
    Bound = B.if0(B.val(Cond), Then, Else);
  }

  Scope.push_back(X);
  if (BoundIsLambda)
    FunScope.push_back(X);
  const Term *Body = chain(Length - 1, Depth, Scope);
  if (BoundIsLambda)
    FunScope.pop_back();
  Scope.pop_back();
  return B.let(X, Bound, Body);
}
