//===- tests/GovernorTests.cpp - Resource governor --------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor and the hardened batch driver: every trip
/// (deadline, memory, depth, cancellation, goal budget) degrades to a
/// sound over-approximation with a structured DegradeReason; goal-count
/// trips are deterministic; the batch driver contains injected worker
/// faults as per-program failure records at every thread count.
///
/// Soundness here is the Section 4.4 cut guarantee: the degraded VALUE
/// half is always ⊒ the exact value (the cut returns the lattice top
/// (T, CL_T), which joins upward). The STORE half carries no such
/// guarantee — unexplored paths' effects are simply missing (see
/// DESIGN.md section 7) — so the tests compare value halves only. The
/// exact sides come from the frozen tests/reference/ seed oracles.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "clients/Batch.h"
#include "gen/Workloads.h"
#include "reference/RefDirectAnalyzer.h"
#include "reference/RefDupAnalyzer.h"
#include "reference/RefSemanticCpsAnalyzer.h"
#include "reference/RefSyntacticCpsAnalyzer.h"
#include "support/FaultInjector.h"
#include "support/Governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::clients;
using cpsflow::support::DegradeReason;
using CD = domain::ConstantDomain;

namespace {

/// Runs all four governed analyzers on \p W and hands each result (with
/// the matching reference-oracle result) to \p Check.
template <typename CheckFn>
void forEachAnalyzer(Context &Ctx, const Witness &W,
                     const AnalyzerOptions &AOpts, CheckFn Check) {
  auto Init = directBindings<CD>(W);
  auto CInit = cpsBindings<CD>(W);
  Check("direct", DirectAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run(),
        refimpl::RefDirectAnalyzer<CD>(Ctx, W.Anf, Init).run());
  Check("semantic", SemanticCpsAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run(),
        refimpl::RefSemanticCpsAnalyzer<CD>(Ctx, W.Anf, Init).run());
  Check("syntactic", SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, CInit, AOpts).run(),
        refimpl::RefSyntacticCpsAnalyzer<CD>(Ctx, W.Cps, CInit).run());
  Check("dup", DupAnalyzer<CD>(Ctx, W.Anf, Init, 2, AOpts).run(),
        refimpl::RefDupAnalyzer<CD>(Ctx, W.Anf, Init, 2).run());
}

/// Asserts the tripped run is marked degraded with \p Want and its value
/// half over-approximates the exact (reference) value.
template <typename R>
void expectSoundTrip(const char *Leg, const R &Gov, const R &Ref,
                     DegradeReason Want) {
  EXPECT_TRUE(Gov.Stats.BudgetExhausted) << Leg;
  EXPECT_EQ(Gov.Stats.Degraded, Want) << Leg;
  EXPECT_FALSE(Gov.Stats.complete()) << Leg;
  using V = std::decay_t<decltype(Ref.Answer.Value)>;
  EXPECT_TRUE(V::leq(Ref.Answer.Value, Gov.Answer.Value))
      << Leg << ": degraded value must over-approximate the exact value";
}

TEST(Governor, UngovernedRunsStayExact) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 4);
  forEachAnalyzer(Ctx, W, AnalyzerOptions(),
                  [](const char *Leg, const auto &Gov, const auto &Ref) {
                    EXPECT_EQ(Gov.Stats.Degraded, DegradeReason::None) << Leg;
                    EXPECT_FALSE(Gov.Stats.BudgetExhausted) << Leg;
                    EXPECT_TRUE(Gov.Answer == Ref.Answer) << Leg;
                  });
}

TEST(Governor, GoalBudgetTripRecordsReason) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 5);
  AnalyzerOptions AOpts;
  AOpts.MaxGoals = 10;
  forEachAnalyzer(Ctx, W, AOpts,
                  [](const char *Leg, const auto &Gov, const auto &Ref) {
                    expectSoundTrip(Leg, Gov, Ref, DegradeReason::Goals);
                  });
}

TEST(Governor, ExpiredDeadlineTripsImmediatelyAndStaysSound) {
  Context Ctx;
  AnalyzerOptions AOpts;
  // Already-past deadline: the first goal's probe must trip it even
  // though the run is far shorter than CheckPeriod.
  AOpts.Governor.Deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  for (Witness W : {gen::conditionalChain(Ctx, 4), theorem51(Ctx)})
    forEachAnalyzer(Ctx, W, AOpts,
                    [](const char *Leg, const auto &Gov, const auto &Ref) {
                      expectSoundTrip(Leg, Gov, Ref, DegradeReason::Deadline);
                      EXPECT_EQ(Gov.Stats.Goals, 1u) << Leg;
                    });
}

TEST(Governor, MemoryCeilingTripsAndStaysSound) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 4);
  AnalyzerOptions AOpts;
  // Any interner content (the interned bottom store) exceeds one byte.
  AOpts.Governor.MaxStoreBytes = 1;
  forEachAnalyzer(Ctx, W, AOpts,
                  [](const char *Leg, const auto &Gov, const auto &Ref) {
                    expectSoundTrip(Leg, Gov, Ref, DegradeReason::Memory);
                  });
}

TEST(Governor, DepthCapTripsAndStaysSound) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 4);
  AnalyzerOptions AOpts;
  AOpts.Governor.MaxDepth = 1;
  forEachAnalyzer(Ctx, W, AOpts,
                  [](const char *Leg, const auto &Gov, const auto &Ref) {
                    expectSoundTrip(Leg, Gov, Ref, DegradeReason::Depth);
                  });
}

TEST(Governor, GoalTripIsDeterministic) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 6);
  AnalyzerOptions AOpts;
  AOpts.MaxGoals = 25;
  auto Init = directBindings<CD>(W);
  auto A = DirectAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  auto B = DirectAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  EXPECT_TRUE(A.Answer == B.Answer);
  EXPECT_EQ(A.Stats.Goals, B.Stats.Goals);
  EXPECT_EQ(A.Stats.Cuts, B.Stats.Cuts);
  EXPECT_EQ(A.Stats.MaxDepth, B.Stats.MaxDepth);
  EXPECT_EQ(A.Stats.Degraded, DegradeReason::Goals);
  EXPECT_EQ(B.Stats.Degraded, DegradeReason::Goals);
}

TEST(Governor, PreCancelledTokenTripsImmediately) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 4);
  AnalyzerOptions AOpts;
  AOpts.Governor.Cancel = std::make_shared<support::CancelToken>();
  AOpts.Governor.Cancel->cancel();
  forEachAnalyzer(Ctx, W, AOpts,
                  [](const char *Leg, const auto &Gov, const auto &Ref) {
                    expectSoundTrip(Leg, Gov, Ref, DegradeReason::Cancelled);
                    EXPECT_EQ(Gov.Stats.Goals, 1u) << Leg;
                  });
}

TEST(Governor, CancellationFromAnotherThread) {
  Context Ctx;
  // 2^22 CPS paths: hours of work ungoverned, so the run is still in
  // flight whenever the cancel lands; the analyzer then unwinds quickly
  // because every in-flight goal returns its cut value.
  Witness W = gen::conditionalChain(Ctx, 22);
  AnalyzerOptions AOpts;
  AOpts.Governor.Cancel = std::make_shared<support::CancelToken>();
  AOpts.Governor.CheckPeriod = 64;
  auto Init = directBindings<CD>(W);

  SemanticResult<CD> R;
  std::thread Runner([&] {
    R = SemanticCpsAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  AOpts.Governor.Cancel->cancel();
  Runner.join();

  EXPECT_TRUE(R.Stats.BudgetExhausted);
  EXPECT_EQ(R.Stats.Degraded, DegradeReason::Cancelled);
}

TEST(Governor, DeadlineCutsDivergentLoopWorkload) {
  Context Ctx;
  // The Section 6.2 divergence made operational: an effectively unbounded
  // loop unroll would run for months; a 50 ms deadline must cut it to a
  // sound degraded answer.
  Witness W = gen::loopProbe(Ctx, 2);
  AnalyzerOptions AOpts;
  AOpts.LoopUnroll = 2'000'000'000;
  AOpts.Governor.deadlineIn(50);
  auto R =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), AOpts).run();
  EXPECT_TRUE(R.Stats.BudgetExhausted);
  EXPECT_EQ(R.Stats.Degraded, DegradeReason::Deadline);
}

/// A let* chain of N conditionals, each testing a FRESH free input
/// (bound to top by the batch driver) with branch results derived from
/// the previous link: no branch is ever prunable, per-path values stay
/// distinct, so the CPS analyzers explore all 2^N paths — the paper's
/// Section 6.2 exponential-duplication shape as batch source text
/// (gen::conditionalChain in surface syntax).
std::string chainSource(int N) {
  std::string S = "(let* (";
  std::string Prev;
  for (int I = 0; I < N; ++I) {
    std::string X = "x" + std::to_string(I);
    std::string Z = "z" + std::to_string(I);
    if (Prev.empty())
      S += "(" + X + " (if0 " + Z + " 1 2))";
    else
      S += "(" + X + " (if0 " + Z + " (add1 " + Prev + ") (sub1 " + Prev +
           ")))";
    Prev = X;
  }
  return S + ") " + Prev + ")";
}

bool legDeadlineTripped(const BatchAnalyzerRecord &Rec) {
  return Rec.Stats.Degraded == DegradeReason::Deadline ||
         Rec.Stats.Degraded == DegradeReason::Cancelled;
}

TEST(GovernorBatch, DeadlineDegradesExponentialProgram) {
  BatchOptions Opts;
  Opts.DeadlineMs = 2;
  BatchResult R = runBatch({{"chain", chainSource(16)}}, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  const BatchProgramResult &P = R.Programs[0];
  // Default mode degrades instead of failing: the program is Ok with
  // sound answers, and the tripped legs say why.
  EXPECT_TRUE(P.Ok) << P.Error;
  EXPECT_TRUE(legDeadlineTripped(P.Semantic) || legDeadlineTripped(P.Syntactic))
      << "expected the exponential CPS legs to trip the 2 ms deadline";
  std::string Json = batchJson(R, Opts);
  EXPECT_TRUE(Json.find("\"degradeReason\":\"deadline\"") != std::string::npos ||
              Json.find("\"degradeReason\":\"cancelled\"") != std::string::npos)
      << Json;
}

TEST(GovernorBatch, FailOnBudgetClassifiesMemory) {
  BatchOptions Opts;
  Opts.MaxStoreBytes = 1;
  Opts.FailOnBudget = true;
  BatchResult R = runBatch({{"p", "(add1 1)"}}, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  EXPECT_FALSE(R.Programs[0].Ok);
  EXPECT_EQ(R.Programs[0].Kind, BatchFailKind::Memory);
  std::string Json = batchJson(R, Opts);
  EXPECT_NE(Json.find("\"failKind\":\"memory\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"memory\":1"), std::string::npos) << Json;
}

TEST(GovernorBatch, FailOnBudgetClassifiesDepthAsInternal) {
  BatchOptions Opts;
  Opts.MaxDepth = 1;
  Opts.FailOnBudget = true;
  BatchResult R = runBatch({{"p", chainSource(4)}}, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  EXPECT_FALSE(R.Programs[0].Ok);
  EXPECT_EQ(R.Programs[0].Kind, BatchFailKind::Internal);
}

TEST(GovernorBatch, DegradeModeKeepsBudgetTrippedProgramsOk) {
  // The pre-governor contract: a goal-budget blowout is an Ok result
  // with budgetExhausted stats, not a failure.
  BatchOptions Opts;
  Opts.MaxGoals = 10;
  BatchResult R = runBatch({{"p", chainSource(6)}}, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  EXPECT_TRUE(R.Programs[0].Ok);
  EXPECT_TRUE(R.Programs[0].Direct.Stats.BudgetExhausted);
  EXPECT_EQ(R.Programs[0].Direct.Stats.Degraded, DegradeReason::Goals);
}

TEST(GovernorBatch, RetryRerunsDeadlineTrippedPrograms) {
  BatchOptions Opts;
  Opts.DeadlineMs = 0.0001; // effectively already expired
  Opts.Retry = true;
  BatchResult R =
      runBatch({{"chain", chainSource(16)}, {"fast", "(add1 1)"}}, Opts);
  ASSERT_EQ(R.Programs.size(), 2u);
  // The exponential program tripped and was rerun at reduced cost.
  EXPECT_TRUE(R.Programs[0].Retried);
  // The trivial program finished inside even this deadline window's first
  // goal probe... or tripped-and-retried; either way it must not hang.
  EXPECT_TRUE(R.Programs[1].Ok) << R.Programs[1].Error;
}

TEST(GovernorBatch, GoalTripJsonIsDeterministic) {
  BatchOptions Opts;
  Opts.MaxGoals = 100;
  Opts.IncludeTiming = false;
  std::vector<std::pair<std::string, std::string>> Sources = {
      {"a", chainSource(8)}, {"b", chainSource(3)}};
  std::string First = batchJson(runBatch(Sources, Opts), Opts);
  std::string Second = batchJson(runBatch(Sources, Opts), Opts);
  EXPECT_EQ(First, Second);
}

#ifdef CPSFLOW_FAULT_INJECTION

TEST(GovernorFault, InjectedThrowIsContainedAtEveryThreadCount) {
  fault::ScopedFault F(
      {fault::Site::BatchWorker, fault::Action::Throw, "boom"});
  std::vector<std::pair<std::string, std::string>> Sources = {
      {"alpha", "(add1 1)"},
      {"boom", "(add1 2)"},
      {"gamma", "(if0 0 1 2)"},
      {"delta", "(sub1 9)"},
  };
  BatchOptions Opts;
  Opts.IncludeTiming = false;

  Opts.Threads = 1;
  BatchResult R1 = runBatch(Sources, Opts);
  ASSERT_EQ(R1.Programs.size(), 4u);
  EXPECT_TRUE(R1.Programs[0].Ok);
  EXPECT_FALSE(R1.Programs[1].Ok);
  EXPECT_EQ(R1.Programs[1].Kind, BatchFailKind::Internal);
  EXPECT_NE(R1.Programs[1].Error.find("injected fault"), std::string::npos);
  EXPECT_TRUE(R1.Programs[2].Ok);
  EXPECT_TRUE(R1.Programs[3].Ok);

  std::string Baseline = batchJson(R1, Opts);
  for (unsigned Threads : {2u, 4u, 8u}) {
    Opts.Threads = Threads;
    EXPECT_EQ(batchJson(runBatch(Sources, Opts), Opts), Baseline)
        << "threads=" << Threads;
  }
}

TEST(GovernorFault, InjectedBadAllocClassifiesAsMemory) {
  fault::ScopedFault F(
      {fault::Site::BatchWorker, fault::Action::BadAlloc, "oom"});
  BatchOptions Opts;
  BatchResult R = runBatch({{"oom", "(add1 1)"}, {"ok", "(add1 2)"}}, Opts);
  ASSERT_EQ(R.Programs.size(), 2u);
  EXPECT_FALSE(R.Programs[0].Ok);
  EXPECT_EQ(R.Programs[0].Kind, BatchFailKind::Memory);
  EXPECT_TRUE(R.Programs[1].Ok);
  std::string Json = batchJson(R, Opts);
  EXPECT_NE(Json.find("\"failKind\":\"memory\""), std::string::npos) << Json;
}

TEST(GovernorFault, ThrowInsideAnalyzerGoalIsContained) {
  // Fires at the third proof goal of whichever leg gets there first —
  // deep inside an analyzer, not at the worker boundary.
  fault::Plan P;
  P.Where = fault::Site::AnalyzerGoal;
  P.What = fault::Action::Throw;
  P.AtCount = 3;
  fault::ScopedFault F(P);
  BatchOptions Opts;
  BatchResult R = runBatch({{"p", chainSource(4)}}, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  EXPECT_FALSE(R.Programs[0].Ok);
  EXPECT_EQ(R.Programs[0].Kind, BatchFailKind::Internal);
  EXPECT_NE(R.Programs[0].Error.find("injected fault"), std::string::npos);
}

TEST(GovernorFault, StalledWorkerTripsDeadline) {
  // The worker stalls 100 ms at its entry with a 10 ms soft deadline: by
  // the time analysis starts the deadline is long past (and the watchdog
  // has fired the token during the stall), so the very first goal probe
  // trips and strict mode classifies the program as a deadline failure.
  fault::Plan P;
  P.Where = fault::Site::BatchWorker;
  P.What = fault::Action::Stall;
  P.Name = "slow";
  P.StallMs = 100;
  fault::ScopedFault F(P);
  BatchOptions Opts;
  Opts.DeadlineMs = 10;
  Opts.FailOnBudget = true;
  BatchResult R = runBatch({{"fast", "(add1 1)"}, {"slow", "(add1 2)"}}, Opts);
  ASSERT_EQ(R.Programs.size(), 2u);
  EXPECT_TRUE(R.Programs[0].Ok) << R.Programs[0].Error;
  EXPECT_FALSE(R.Programs[1].Ok);
  EXPECT_EQ(R.Programs[1].Kind, BatchFailKind::Deadline);
}

#else

TEST(GovernorFault, CompiledOut) {
  GTEST_SKIP() << "fault injection compiled out (CPSFLOW_FAULT_INJECTION "
                  "off); containment tests run in the instrumented CI job";
}

#endif // CPSFLOW_FAULT_INJECTION

} // namespace
