//===- tests/AnfTests.cpp - A-normalization tests ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "anf/Anf.h"

#include "TestUtil.h"
#include "gen/Generator.h"
#include "interp/Direct.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"
#include "syntax/Rename.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::syntax;
using cpsflow::test::intBindings;
using cpsflow::test::mustParse;

namespace {

TEST(Anf, RecognizerAcceptsTheRestrictedSubset) {
  Context Ctx;
  for (const char *Text : {
           "42",
           "(let (x 1) x)",
           "(let (x (add1 1)) x)",
           "(let (x (if0 z 1 2)) x)",
           "(let (x (loop)) x)",
           "(let (f (lambda (y) (let (r (add1 y)) r))) (let (a (f 1)) a))",
       }) {
    const Term *T = mustParse(Ctx, Text);
    EXPECT_TRUE(anf::isAnf(T).hasValue()) << Text;
  }
}

TEST(Anf, RecognizerRejectsViolations) {
  Context Ctx;
  for (const char *Text : {
           "(f (g 1))",                    // nested application
           "(let (x (let (y 1) y)) x)",    // let-bound let
           "(if0 z 1 2)",                  // bare conditional
           "(let (x ((f 1) 2)) x)",        // non-value operator
           "(let (x (if0 (add1 z) 1 2)) x)", // non-value condition
           "(let (f (lambda (y) (y y))) f)", // non-ANF lambda body
       }) {
    const Term *T = mustParse(Ctx, Text);
    EXPECT_FALSE(anf::isAnf(T).hasValue()) << Text;
  }
}

TEST(Anf, NormalizerProducesAnf) {
  Context Ctx;
  for (const char *Text : {
           "(f (g 1))",
           "(let (x (let (y 1) y)) x)",
           "(add1 (let (x 1) 0))",
           "(if0 (add1 0) ((lambda (x) x) 1) (f (f 2)))",
           "((lambda (x) (x (x 0))) (lambda (y) (add1 y)))",
           "(let (x (if0 (if0 z 0 1) (g 5) 7)) (add1 x))",
       }) {
    const Term *T = mustParse(Ctx, Text);
    const Term *N = anf::normalize(Ctx, T);
    Result<bool> R = anf::isAnf(N);
    EXPECT_TRUE(R.hasValue())
        << Text << " => " << print(Ctx, N)
        << (R.hasValue() ? "" : (" : " + R.error().Message));
  }
}

TEST(Anf, PaperFootnoteExample) {
  // The paper's Section 2 example: (f (let (x 1) (g x))) becomes
  // (let (x 1) (let (x2 (g x)) (let (x3 (f x2)) x3))).
  Context Ctx;
  const Term *T = mustParse(Ctx, "(f (let (x 1) (g x)))");
  const Term *N = anf::normalize(Ctx, T);
  ASSERT_TRUE(anf::isAnf(N).hasValue());

  const auto *L1 = cast<LetTerm>(N);
  EXPECT_EQ(Ctx.spelling(L1->var()), "x");
  const auto *L2 = cast<LetTerm>(L1->body());
  const auto *App2 = cast<AppTerm>(L2->bound());
  EXPECT_EQ(Ctx.spelling(
                cast<VarValue>(cast<ValueTerm>(App2->fun())->value())->name()),
            "g");
  const auto *L3 = cast<LetTerm>(L2->body());
  const auto *App3 = cast<AppTerm>(L3->bound());
  EXPECT_EQ(Ctx.spelling(
                cast<VarValue>(cast<ValueTerm>(App3->fun())->value())->name()),
            "f");
  EXPECT_TRUE(isa<ValueTerm>(L3->body()));
}

TEST(Anf, PaperReorderingExample) {
  // (add1 (let (x V) 0)) is re-ordered to evaluate the let first:
  // (let (x V) (let (t (add1 0)) t)).
  Context Ctx;
  const Term *T = mustParse(Ctx, "(add1 (let (x 5) 0))");
  const Term *N = anf::normalize(Ctx, T);
  ASSERT_TRUE(anf::isAnf(N).hasValue());
  const auto *L1 = cast<LetTerm>(N);
  EXPECT_EQ(Ctx.spelling(L1->var()), "x");
  const auto *L2 = cast<LetTerm>(L1->body());
  const auto *App = cast<AppTerm>(L2->bound());
  EXPECT_TRUE(isa<PrimValue>(cast<ValueTerm>(App->fun())->value()));
}

TEST(Anf, NormalizationIsIdentityOnAnfTerms) {
  Context Ctx;
  const Term *T = mustParse(
      Ctx, "(let (f (lambda (y) (let (r (add1 y)) r))) (let (a (f 1)) a))");
  ASSERT_TRUE(anf::isAnf(T).hasValue());
  const Term *N = anf::normalize(Ctx, T);
  EXPECT_TRUE(structurallyEqual(T, N));
}

TEST(Anf, NormalizeProgramEstablishesHygiene) {
  Context Ctx;
  const Term *T = mustParse(Ctx, "(let (x 1) ((lambda (x) x) (add1 x)))");
  const Term *N = anf::normalizeProgram(Ctx, T);
  EXPECT_TRUE(anf::isAnf(N).hasValue());
  EXPECT_TRUE(checkUniqueBinders(Ctx, N).hasValue());
}

//===----------------------------------------------------------------------===//
// Property: normalization preserves the direct semantics (footnote 2)
//===----------------------------------------------------------------------===//

class AnfPreservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnfPreservation, RandomProgramsEvaluateTheSame) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.NumFreeVars = 2;
  gen::ProgramGenerator Gen(Ctx, Opts);

  for (int I = 0; I < 40; ++I) {
    const Term *Full = Gen.generateFull();
    const Term *Norm = anf::normalizeProgram(Ctx, Full);
    ASSERT_TRUE(anf::isAnf(Norm).hasValue()) << print(Ctx, Full);

    interp::RunLimits Limits;
    Limits.MaxSteps = 200000;
    interp::DirectInterp I1(Limits), I2(Limits);
    interp::RunResult R1 = I1.run(Full, intBindings(Full, {1, 0}));
    interp::RunResult R2 = I2.run(Norm, intBindings(Norm, {1, 0}));

    if (R1.Status == interp::RunStatus::OutOfFuel ||
        R2.Status == interp::RunStatus::OutOfFuel)
      continue; // budget artifacts are not semantic differences

    ASSERT_EQ(static_cast<int>(R1.Status), static_cast<int>(R2.Status))
        << print(Ctx, Full) << "\n => " << print(Ctx, Norm);
    if (R1.ok()) {
      ASSERT_EQ(static_cast<int>(R1.Value.Tag),
                static_cast<int>(R2.Value.Tag));
      if (R1.Value.isNum())
        ASSERT_EQ(R1.Value.Num, R2.Value.Num) << print(Ctx, Full);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfPreservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

class AnfGrammar : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnfGrammar, GeneratedAnfAlwaysValidatesAndRenormalizes) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 50; ++I) {
    const Term *T = Gen.generate();
    EXPECT_TRUE(anf::isAnf(T).hasValue());
    EXPECT_TRUE(checkUniqueBinders(Ctx, T).hasValue()) << print(Ctx, T);
    EXPECT_TRUE(structurallyEqual(T, anf::normalize(Ctx, T)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfGrammar,
                         ::testing::Values(7, 11, 17, 23));

} // namespace
