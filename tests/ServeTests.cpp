//===- tests/ServeTests.cpp - Fault-tolerant analysis daemon ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cpsflow serve` daemon's robustness contract, exercised against
/// an in-process Server on a throwaway AF_UNIX socket: every request
/// gets exactly one structured response (success, degraded success, or a
/// taxonomy error) even under injected worker faults; malformed input is
/// a protocol error, never a dead connection; admission past the queue
/// high-water mark sheds with kind "shed"; the result cache serves
/// byte-identical answers; and drain answers everything before exit.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/FaultInjector.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace cpsflow;
using namespace cpsflow::serve;
namespace fs = std::filesystem;

namespace {

/// A blocking line-protocol client with a receive timeout, so a daemon
/// bug can fail a test instead of wedging the suite.
class TestClient {
public:
  bool connectTo(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    timeval Tv{10, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool sendLine(const std::string &Line) {
    std::string Out = Line;
    Out.push_back('\n');
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Sent, Out.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  /// One response line, or "" on timeout/close.
  std::string recvLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return {};
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  std::string roundTrip(const std::string &Line) {
    if (!sendLine(Line))
      return {};
    return recvLine();
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// Starts a daemon on a unique socket (and optional cache dir) per test,
/// and tears both down.
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char *Name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Base = fs::temp_directory_path() /
           ("cpsflow-serve-" + std::to_string(::getpid()) + "-" + Name);
    fs::remove_all(Base);
    fs::create_directories(Base);
    Opts.SocketPath = (Base / "s.sock").string();
  }
  void TearDown() override {
    Server.reset();
    fs::remove_all(Base);
  }

  /// Builds and starts the server with the current Opts.
  void start() {
    Server = std::make_unique<serve::Server>(Opts);
    Result<bool> R = Server->start();
    ASSERT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.error().str());
  }

  /// Parses a response line or fails the test.
  JsonValue parsed(const std::string &Line) {
    Result<JsonValue> Doc = parseJson(Line);
    EXPECT_TRUE(Doc.hasValue()) << "not JSON: " << Line;
    return Doc.hasValue() ? Doc.take() : JsonValue();
  }

  static bool isOk(const JsonValue &Doc) {
    const JsonValue *Ok = Doc.find("ok");
    return Ok && Ok->asBool();
  }

  static std::string errorKind(const JsonValue &Doc) {
    const JsonValue *Err = Doc.find("error");
    const JsonValue *Kind = Err ? Err->find("kind") : nullptr;
    return Kind ? Kind->asString() : "";
  }

  fs::path Base;
  ServeOptions Opts;
  std::unique_ptr<serve::Server> Server;
};

const char *const Program = "(let (x 2) (+ x 3))";

std::string analyzeReq(const std::string &Program,
                       const std::string &Extra = "") {
  std::string P;
  for (char C : Program) {
    if (C == '"' || C == '\\')
      P.push_back('\\');
    P.push_back(C);
  }
  return "{\"op\":\"analyze\",\"program\":\"" + P + "\"" + Extra + "}";
}

TEST_F(ServeTest, AnalyzeAnswersAcrossAnalyzersAndDomains) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  for (const char *Analyzer :
       {"direct", "semantic", "syntactic", "dup", "pushdown", "pd"})
    for (const char *Domain : {"constant", "interval"}) {
      std::string Line = C.roundTrip(analyzeReq(
          Program, std::string(",\"analyzer\":\"") + Analyzer +
                       "\",\"domain\":\"" + Domain + "\""));
      JsonValue Doc = parsed(Line);
      EXPECT_TRUE(isOk(Doc)) << Analyzer << "/" << Domain << ": " << Line;
      const JsonValue *R = Doc.find("result");
      ASSERT_NE(R, nullptr);
      EXPECT_NE(R->find("answer"), nullptr);
      EXPECT_NE(R->find("stats"), nullptr);
    }
}

TEST_F(ServeTest, CacheServesByteIdenticalSecondAnswer) {
  Opts.CacheDir = (Base / "cache").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  std::string First = C.roundTrip(analyzeReq(Program));
  std::string Second = C.roundTrip(analyzeReq(Program));
  JsonValue D1 = parsed(First), D2 = parsed(Second);
  ASSERT_TRUE(isOk(D1)) << First;
  ASSERT_TRUE(isOk(D2)) << Second;
  EXPECT_FALSE(D1.find("cached")->asBool());
  EXPECT_TRUE(D2.find("cached")->asBool());
  // Identical modulo the "cached" flag itself: the result payloads must
  // be byte-identical (the acceptance criterion for the cache).
  size_t R1 = First.find("\"result\":");
  size_t R2 = Second.find("\"result\":");
  ASSERT_NE(R1, std::string::npos);
  ASSERT_NE(R2, std::string::npos);
  EXPECT_EQ(First.substr(R1), Second.substr(R2));
}

TEST_F(ServeTest, CorruptedCacheEntryIsRecomputedIdentically) {
  Opts.CacheDir = (Base / "cache").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  std::string Cold = C.roundTrip(analyzeReq(Program));
  ASSERT_TRUE(isOk(parsed(Cold)));

  // Corrupt the single entry on disk behind the daemon's back.
  fs::path Entries = fs::path(Opts.CacheDir) / "entries";
  size_t Count = 0;
  for (const auto &E : fs::directory_iterator(Entries)) {
    std::ofstream Out(E.path(), std::ios::binary | std::ios::trunc);
    Out << "garbage";
    ++Count;
  }
  ASSERT_EQ(Count, 1u);

  // Pin the recompute cold: a warm recompute would replay memo entries
  // seeded by the first request, and its stats block (replayHits)
  // legitimately differs from the original cold payload. Byte identity
  // of the full result is a cold-vs-cold contract; warm-vs-cold answer
  // identity is ServeIncrementalTests' concern.
  std::string Warm =
      C.roundTrip(analyzeReq(Program, ",\"incremental\":false"));
  JsonValue D = parsed(Warm);
  ASSERT_TRUE(isOk(D)) << Warm;
  EXPECT_FALSE(D.find("cached")->asBool())
      << "a corrupt entry must recompute, not serve";
  size_t R1 = Cold.find("\"result\":"), R2 = Warm.find("\"result\":");
  EXPECT_EQ(Cold.substr(R1), Warm.substr(R2))
      << "recomputed answer must match the original byte for byte";
  ASSERT_NE(Server->cache(), nullptr);
  EXPECT_EQ(Server->cache()->stats().Corrupt, 1u);
}

TEST_F(ServeTest, MalformedInputIsAProtocolErrorNotADeadConnection) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  for (const std::string &Bad : {
           std::string("this is not json"),
           std::string("{\"op\":\"analyze\"}"),           // missing program
           std::string("{\"op\":\"nope\"}"),              // unknown op
           std::string("{\"op\":\"analyze\",\"program\":\"(+ 1 2)\","
                       "\"frobnicate\":1}"),              // unknown field
           std::string("{\"op\":\"analyze\",\"program\":\"(+ 1 2)\","
                       "\"maxGoals\":-3}"),               // bad count
           std::string("{\"op\":\"analyze\",\"program\":\"(+ 1 2)\","
                       "\"analyzer\":\"quantum\"}"),      // unknown leg
       }) {
    JsonValue Doc = parsed(C.roundTrip(Bad));
    EXPECT_FALSE(isOk(Doc)) << Bad;
    EXPECT_EQ(errorKind(Doc), "protocol") << Bad;
  }
  // The connection is still alive and serving.
  EXPECT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
}

TEST_F(ServeTest, ParseFailureCarriesTheParseTaxonomy) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  JsonValue Doc = parsed(C.roundTrip(analyzeReq("(let (x 1)")));
  EXPECT_FALSE(isOk(Doc));
  EXPECT_EQ(errorKind(Doc), "parse");
}

TEST_F(ServeTest, DegradedAnswersAreMarkedAndNeverCached) {
  Opts.CacheDir = (Base / "cache").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  // A one-goal budget forces Section 4.4 degradation deterministically.
  std::string Req = analyzeReq(Program, ",\"maxGoals\":1");
  for (int I = 0; I < 2; ++I) {
    JsonValue Doc = parsed(C.roundTrip(Req));
    ASSERT_TRUE(isOk(Doc));
    EXPECT_FALSE(Doc.find("cached")->asBool())
        << "degraded results must not enter the cache";
    const JsonValue *Stats = Doc.find("result")->find("stats");
    ASSERT_NE(Stats, nullptr);
    EXPECT_TRUE(Stats->find("budgetExhausted")->asBool());
  }
}

TEST_F(ServeTest, QueuePastHighWaterMarkSheds) {
  Opts.QueueCap = 0; // everything analyze-shaped sheds, deterministically
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  JsonValue Doc = parsed(C.roundTrip(analyzeReq(Program)));
  EXPECT_FALSE(isOk(Doc));
  EXPECT_EQ(errorKind(Doc), "shed");
  // health and stats never queue, so they answer even when analyze sheds.
  EXPECT_TRUE(isOk(parsed(C.roundTrip("{\"op\":\"health\"}"))));
  EXPECT_TRUE(isOk(parsed(C.roundTrip("{\"op\":\"stats\"}"))));
}

TEST_F(ServeTest, HealthAndStatsReportTheRegistry) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));

  JsonValue H = parsed(C.roundTrip("{\"op\":\"health\",\"id\":7}"));
  EXPECT_TRUE(isOk(H));
  EXPECT_EQ(H.find("status")->asString(), "ok");
  ASSERT_NE(H.find("id"), nullptr);
  EXPECT_EQ(H.find("id")->asNumber(), 7);
  EXPECT_NE(H.find("workers"), nullptr);
  EXPECT_NE(H.find("queueCap"), nullptr);

  JsonValue S = parsed(C.roundTrip("{\"op\":\"stats\"}"));
  ASSERT_TRUE(isOk(S));
  const JsonValue *Stats = S.find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_GE(Stats->numberOr("serve.requests", 0), 2.0);
  EXPECT_GE(Stats->numberOr("serve.ok", 0), 1.0);
}

TEST_F(ServeTest, ShutdownOpDrainsAndExitsCleanly) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  JsonValue Doc = parsed(C.roundTrip("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(isOk(Doc));
  EXPECT_TRUE(Doc.find("draining")->asBool());
  Server->waitDrained();
  EXPECT_FALSE(fs::exists(Opts.SocketPath))
      << "drain must remove the socket file";
}

TEST_F(ServeTest, DrainWhileIdleIsImmediate) {
  start();
  Server->requestDrain();
  Server->waitDrained();
  EXPECT_TRUE(Server->draining());
}

TEST_F(ServeTest, AnalyzeAfterDrainIsShedNotHung) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  Server->requestDrain();
  // The reader may already be gone (drain shuts connections down); what
  // must not happen is an accepted-but-never-answered request. Either a
  // shed response or a closed connection is a correct outcome.
  if (C.sendLine(analyzeReq(Program))) {
    std::string Line = C.recvLine();
    if (!Line.empty()) {
      EXPECT_EQ(errorKind(parsed(Line)), "shed");
    }
  }
  Server->waitDrained();
}

#ifdef CPSFLOW_FAULT_INJECTION
TEST_F(ServeTest, InjectedWorkerThrowIsContainedPerRequest) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  // Request ordinal 1 throws inside the worker; the response must be a
  // structured internal error, and the daemon (and connection!) live on.
  fault::ScopedFault F({fault::Site::ServeWorker, fault::Action::Throw,
                        /*Name=*/"", /*AtCount=*/1, /*Every=*/0,
                        /*StallMs=*/0});
  JsonValue Doc = parsed(C.roundTrip(analyzeReq(Program)));
  EXPECT_FALSE(isOk(Doc));
  EXPECT_EQ(errorKind(Doc), "internal");
  // Ordinal 2: same worker pool, no fault, full answer.
  EXPECT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
}

TEST_F(ServeTest, InjectedAllocationFailureMapsToMemoryKind) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  fault::ScopedFault F({fault::Site::ServeWorker, fault::Action::BadAlloc,
                        /*Name=*/"", /*AtCount=*/1, /*Every=*/0,
                        /*StallMs=*/0});
  JsonValue Doc = parsed(C.roundTrip(analyzeReq(Program)));
  EXPECT_FALSE(isOk(Doc));
  EXPECT_EQ(errorKind(Doc), "memory");
  EXPECT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
}

TEST_F(ServeTest, InjectedHandlerFaultStillAnswers) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  fault::ScopedFault F({fault::Site::ServeHandler, fault::Action::Throw,
                        /*Name=*/"", /*AtCount=*/1, /*Every=*/0,
                        /*StallMs=*/0});
  JsonValue Doc = parsed(C.roundTrip(analyzeReq(Program)));
  EXPECT_FALSE(isOk(Doc));
  EXPECT_EQ(errorKind(Doc), "internal");
  EXPECT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
}

TEST_F(ServeTest, TornCacheWriteDegradesToUncachedService) {
  Opts.CacheDir = (Base / "cache").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  fault::ScopedFault F({fault::Site::CacheWrite, fault::Action::Tear,
                        /*Name=*/"", /*AtCount=*/1, /*Every=*/0,
                        /*StallMs=*/0});
  // Every store is torn: both requests recompute, answers stay correct
  // and identical, nothing is ever served from the torn frames.
  std::string First = C.roundTrip(analyzeReq(Program));
  std::string Second = C.roundTrip(analyzeReq(Program));
  JsonValue D1 = parsed(First), D2 = parsed(Second);
  ASSERT_TRUE(isOk(D1));
  ASSERT_TRUE(isOk(D2));
  EXPECT_FALSE(D2.find("cached")->asBool());
  size_t R1 = First.find("\"result\":"), R2 = Second.find("\"result\":");
  EXPECT_EQ(First.substr(R1), Second.substr(R2));
  ASSERT_NE(Server->cache(), nullptr);
  EXPECT_GE(Server->cache()->stats().StoreFailures, 1u);
}
#endif // CPSFLOW_FAULT_INJECTION

// Protocol-layer unit checks that need no socket.
TEST(ServeProtocol, RequestDepthCapRejectsDeepJson) {
  std::string Deep;
  for (int I = 0; I < 64; ++I)
    Deep += "{\"op\":";
  Result<ServeRequest> R = parseServeRequest(Deep);
  EXPECT_FALSE(R.hasValue());
}

TEST(ServeProtocol, OversizedRequestIsRejected) {
  std::string Big = "{\"op\":\"analyze\",\"program\":\"";
  Big.append(MaxRequestBytes, 'x');
  Big += "\"}";
  Result<ServeRequest> R = parseServeRequest(Big);
  EXPECT_FALSE(R.hasValue());
}

TEST(ServeProtocol, ErrorKindsRenderTheTaxonomy) {
  EXPECT_STREQ(str(ServeErrorKind::Parse), "parse");
  EXPECT_STREQ(str(ServeErrorKind::Cps), "cps");
  EXPECT_STREQ(str(ServeErrorKind::Deadline), "deadline");
  EXPECT_STREQ(str(ServeErrorKind::Memory), "memory");
  EXPECT_STREQ(str(ServeErrorKind::Internal), "internal");
  EXPECT_STREQ(str(ServeErrorKind::Shed), "shed");
  EXPECT_STREQ(str(ServeErrorKind::Protocol), "protocol");
}

} // namespace
