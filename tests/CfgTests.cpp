//===- tests/CfgTests.cpp - CFG extraction and comparison -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "all analyzers compute the control flow graph of the source
/// program" claim: the CPS analyzer's CFG, mapped back to source program
/// points, is comparable with the Figure 4/5 CFGs; on the witnesses and
/// on well-typed random programs the call graphs coincide.
///
//===----------------------------------------------------------------------===//

#include "analysis/CfgCompare.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "interp/Direct.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using CD = domain::ConstantDomain;

namespace {

TEST(CfgCompare, SourceViewMapsCallSitesBack) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AC = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();

  DirectCfg FromCps = sourceView(W.Cps, AC.Cfg);
  // Both analyses see the same two call sites applying the identity.
  ASSERT_EQ(FromCps.Callees.size(), 2u);
  CfgComparison C = compareCfgs(AD.Cfg, FromCps);
  EXPECT_TRUE(C.identical()) << str(C);
}

TEST(CfgCompare, BranchFeasibilityMapsBack) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AC = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();

  DirectCfg FromCps = sourceView(W.Cps, AC.Cfg);
  EXPECT_EQ(FromCps.Branches.size(), AD.Cfg.Branches.size());
  // Every branch both analyses agree is two-sided (z unknown; a1 merges
  // to T directly while the CPS analysis splits it per path, but both
  // paths exist so both branches are feasible overall).
  CfgComparison C = compareCfgs(AD.Cfg, FromCps);
  EXPECT_EQ(C.EqualBranches, C.Branches) << str(C);
}

TEST(CfgCompare, SemanticCfgRefinesDirectCfg) {
  Context Ctx;
  Witness W = gen::callMergeChain(Ctx, 2);
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AS =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();

  // Callee sets agree on this family.
  CfgComparison C = compareCfgs(AD.Cfg, AS.Cfg);
  EXPECT_EQ(C.EqualSites, C.CallSites) << str(C);

  // Branch feasibility is where per-path precision shows: the inner
  // conditional (if0 (sub1 a) 5 6) is two-sided for the direct analysis
  // (a = T) but then-only for the semantic one (a = 1 on the only path
  // that reaches it). Semantic feasibility is always a subset.
  bool SemanticStrictlyRefines = false;
  for (const auto &[If, SemBI] : AS.Cfg.Branches) {
    auto It = AD.Cfg.Branches.find(If);
    ASSERT_NE(It, AD.Cfg.Branches.end());
    EXPECT_TRUE(!SemBI.ThenFeasible || It->second.ThenFeasible);
    EXPECT_TRUE(!SemBI.ElseFeasible || It->second.ElseFeasible);
    if (SemBI.ThenFeasible != It->second.ThenFeasible ||
        SemBI.ElseFeasible != It->second.ElseFeasible)
      SemanticStrictlyRefines = true;
  }
  EXPECT_TRUE(SemanticStrictlyRefines);
}

TEST(CfgCompare, RendersSummary) {
  CfgComparison C;
  C.CallSites = 3;
  C.EqualSites = 2;
  C.LeftExtra = 1;
  C.Branches = 1;
  C.EqualBranches = 1;
  std::string S = str(C);
  EXPECT_NE(S.find("2/3 call sites equal"), std::string::npos);
  EXPECT_NE(S.find("extra left"), std::string::npos);
}

class CfgAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CfgAgreement, WellTypedRandomProgramsAgreeOnCallGraphs) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.WellTyped = true;
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 20; ++I) {
    const syntax::Term *T = Gen.generate();
    Witness W = packageProgram(Ctx, "random", T);
    for (Symbol S : syntax::freeVars(T)) {
      AbsBindingSpec B;
      B.Var = S;
      B.NumTop = true;
      W.Bindings.push_back(B);
    }
    auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto AS =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto AC =
        SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
    if (AD.Stats.Cuts || AS.Stats.Cuts || AC.Stats.Cuts)
      continue;

    // CFG facts inherit the precision relations: the semantic analysis
    // never sees a callee or feasible branch the direct one misses
    // (Theorem 5.4's direction), but the direct one may see spurious
    // extras the per-path analysis rules out.
    CfgComparison DS = compareCfgs(AD.Cfg, AS.Cfg);
    EXPECT_EQ(DS.RightExtra, 0u)
        << syntax::print(Ctx, T) << "\n direct vs semantic: " << str(DS);
    EXPECT_EQ(DS.IncomparableSites, 0u)
        << syntax::print(Ctx, T) << "\n direct vs semantic: " << str(DS);

    // Direct versus syntactic call graphs are incomparable in general
    // (Theorems 5.1/5.2); only compute the mapping here — the soundness
    // anchor is the concrete run below.
    DirectCfg FromCps = sourceView(W.Cps, AC.Cfg);

    // Ground truth: every concretely observed callee appears in every
    // abstract CFG.
    interp::DirectInterp CI;
    interp::RunResult CR = CI.run(T, cpsflow::test::intBindings(T, {0, 3}));
    if (CR.ok()) {
      for (const auto &[Site, Lams] : CI.calleeLog())
        for (const syntax::LamValue *Lam : Lams) {
          domain::CloRef Ref = domain::CloRef::lam(Lam);
          auto InCfg = [&](const DirectCfg &Cfg) {
            auto It = Cfg.Callees.find(Site);
            return It != Cfg.Callees.end() && It->second.contains(Ref);
          };
          EXPECT_TRUE(InCfg(AD.Cfg)) << syntax::print(Ctx, T);
          EXPECT_TRUE(InCfg(AS.Cfg)) << syntax::print(Ctx, T);
          EXPECT_TRUE(InCfg(FromCps)) << syntax::print(Ctx, T);
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgAgreement,
                         ::testing::Values(411, 422, 433));

} // namespace
