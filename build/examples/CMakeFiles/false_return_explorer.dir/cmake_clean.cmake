file(REMOVE_RECURSE
  "CMakeFiles/false_return_explorer.dir/false_return_explorer.cpp.o"
  "CMakeFiles/false_return_explorer.dir/false_return_explorer.cpp.o.d"
  "false_return_explorer"
  "false_return_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_return_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
