//===- syntax/Rename.h - Alpha-uniqueness renamer ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a term so that every binder binds a distinct variable, distinct
/// also from every free variable — the hygiene assumption of Section 2 that
/// lets the abstract interpreters key their stores by variable name.
/// Binders whose names are already unique keep their spelling; clashing
/// binders get fresh names derived from the original stem.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_RENAME_H
#define CPSFLOW_SYNTAX_RENAME_H

#include "syntax/Ast.h"

namespace cpsflow {
namespace syntax {

/// \returns an alpha-equivalent copy of \p T in which all binders are
/// unique. The result always satisfies checkUniqueBinders. If \p T already
/// satisfies it, the result is structurally equal to \p T (though freshly
/// allocated).
const Term *renameUnique(Context &Ctx, const Term *T);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_RENAME_H
