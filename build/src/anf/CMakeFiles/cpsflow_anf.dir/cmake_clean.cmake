file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_anf.dir/Anf.cpp.o"
  "CMakeFiles/cpsflow_anf.dir/Anf.cpp.o.d"
  "CMakeFiles/cpsflow_anf.dir/Reductions.cpp.o"
  "CMakeFiles/cpsflow_anf.dir/Reductions.cpp.o.d"
  "libcpsflow_anf.a"
  "libcpsflow_anf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_anf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
