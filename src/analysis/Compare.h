//===- analysis/Compare.h - Precision comparisons ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison machinery behind the Section 5 theorems.
///
/// "More precise" is the lattice order: analyzer L is more precise than R
/// on a program when L's answer (value and per-variable store entries) is
/// strictly below R's. Comparisons across the direct/semantic world and
/// the syntactic-CPS world first map through delta_e (Section 5.1):
///
/// \code
///   delta_e((n, {cl_1, ..., cl_i})) = (n, {V_e[cl_1], ..., V_e[cl_i]}, {})
///   V_e((cle x, M)) = (cle x k, F_k[M])    V_e(inc) = inck   ...
/// \endcode
///
/// using the source-lambda -> CPS-lambda correspondence recorded by the
/// transformation.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_COMPARE_H
#define CPSFLOW_ANALYSIS_COMPARE_H

#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "cps/Transform.h"

#include <cassert>
#include <string>
#include <vector>

namespace cpsflow {
namespace analysis {

/// Relative position of two lattice elements.
enum class PrecisionOrder : uint8_t {
  Equal,
  LeftMorePrecise,  ///< left strictly below right
  RightMorePrecise, ///< right strictly below left
  Incomparable,
};

/// Renders a PrecisionOrder for tables.
inline const char *str(PrecisionOrder O) {
  switch (O) {
  case PrecisionOrder::Equal:
    return "equal";
  case PrecisionOrder::LeftMorePrecise:
    return "left more precise";
  case PrecisionOrder::RightMorePrecise:
    return "right more precise";
  case PrecisionOrder::Incomparable:
    return "incomparable";
  }
  return "?";
}

/// Compares two elements of the same lattice via leq both ways.
template <typename V>
PrecisionOrder compareLattice(const V &A, const V &B) {
  bool AB = V::leq(A, B);
  bool BA = V::leq(B, A);
  if (AB && BA)
    return PrecisionOrder::Equal;
  if (AB)
    return PrecisionOrder::LeftMorePrecise;
  if (BA)
    return PrecisionOrder::RightMorePrecise;
  return PrecisionOrder::Incomparable;
}

/// Folds a component comparison into a running overall verdict.
inline PrecisionOrder mergeOrders(PrecisionOrder Acc, PrecisionOrder Next) {
  if (Acc == PrecisionOrder::Equal)
    return Next;
  if (Next == PrecisionOrder::Equal)
    return Acc;
  if (Acc == Next)
    return Acc;
  return PrecisionOrder::Incomparable;
}

/// delta_e on abstract values: maps a direct/semantic abstract value into
/// the syntactic-CPS value lattice (empty continuation component).
template <typename D>
domain::CpsAbsVal<D> deltaE(const domain::AbsVal<D> &V,
                            const cps::CpsProgram &Program) {
  domain::CpsAbsVal<D> Out;
  Out.Num = V.Num;
  for (const domain::CloRef &C : V.Clos) {
    switch (C.Tag) {
    case domain::CloRef::K::Inc:
      Out.Clos.insert(domain::CpsCloRef::inck());
      break;
    case domain::CloRef::K::Dec:
      Out.Clos.insert(domain::CpsCloRef::deck());
      break;
    case domain::CloRef::K::Lam: {
      auto It = Program.LamToCps.find(C.Lam);
      assert(It != Program.LamToCps.end() &&
             "source lambda without a CPS image");
      Out.Clos.insert(domain::CpsCloRef::lam(It->second));
      break;
    }
    }
  }
  return Out;
}

/// One row of a per-variable comparison table.
struct VarComparison {
  Symbol Var;
  PrecisionOrder Order;
  std::string Left;  ///< rendered left value
  std::string Right; ///< rendered right value
};

/// Comparison verdict for two analysis results.
struct Comparison {
  /// On the answer values only.
  PrecisionOrder OnValue = PrecisionOrder::Equal;
  /// Folded over the value and every compared variable.
  PrecisionOrder Overall = PrecisionOrder::Equal;
  /// Per-variable detail.
  std::vector<VarComparison> Vars;
};

/// Compares two results from the direct/semantic world (Theorem 5.4:
/// pass the semantic result on the left, the direct on the right; the
/// theorem asserts the verdict is never RightMorePrecise).
/// \p SourceVars selects which store entries to compare.
template <typename D, typename LeftResult, typename RightResult>
Comparison compareDirectWorld(const Context &Ctx, const LeftResult &L,
                              const RightResult &R,
                              const std::vector<Symbol> &SourceVars) {
  Comparison Out;
  Out.OnValue = compareLattice(L.Answer.Value, R.Answer.Value);
  Out.Overall = Out.OnValue;
  for (Symbol X : SourceVars) {
    domain::AbsVal<D> LV = L.valueOf(X);
    domain::AbsVal<D> RV = R.valueOf(X);
    PrecisionOrder O = compareLattice(LV, RV);
    Out.Overall = mergeOrders(Out.Overall, O);
    Out.Vars.push_back(VarComparison{X, O, LV.str(Ctx), RV.str(Ctx)});
  }
  return Out;
}

/// Compares a direct-world result (left, mapped through delta_e) with a
/// syntactic-CPS result (right). Per Theorem 5.1/5.2 the verdict can go
/// either way (incomparable in general); per Theorem 5.5 with the
/// semantic result on the left it is never RightMorePrecise.
template <typename D, typename LeftResult>
Comparison compareWithSyntactic(const Context &Ctx, const LeftResult &L,
                                const SyntacticResult<D> &R,
                                const cps::CpsProgram &Program,
                                const std::vector<Symbol> &SourceVars) {
  Comparison Out;
  domain::CpsAbsVal<D> LVal = deltaE<D>(L.Answer.Value, Program);
  Out.OnValue = compareLattice(LVal, R.Answer.Value);
  Out.Overall = Out.OnValue;
  for (Symbol X : SourceVars) {
    domain::CpsAbsVal<D> LV = deltaE<D>(L.valueOf(X), Program);
    domain::CpsAbsVal<D> RV = R.valueOf(X);
    PrecisionOrder O = compareLattice(LV, RV);
    Out.Overall = mergeOrders(Out.Overall, O);
    Out.Vars.push_back(VarComparison{X, O, LV.str(Ctx), RV.str(Ctx)});
  }
  return Out;
}

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_COMPARE_H
