//===- support/Governor.h - Per-run resource governor -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor: a per-run guard that bounds an analyzer run in
/// wall-clock time, interned-store memory, goal-stack depth, and goal
/// count, and carries a cooperative cancellation token settable from
/// another thread (the batch driver's watchdog).
///
/// Section 6.2 of the paper is the motivation: the CPS analyses are
/// uncomputable with `loop` and exponential at conditionals/calls, so a
/// production analyzer must bound every run in *time and memory*, not
/// just goal count, and degrade to the sound Section 4.4 cut value
/// instead of dying. Any tripped limit degrades the run exactly like the
/// original MaxGoals path — the current goal returns the least precise
/// value (T, CL_T) with the current store, which joins upward — but the
/// trip is recorded as a structured DegradeReason so clients can
/// distinguish *exact* answers from *degraded* ones, and *which* wall the
/// run hit.
///
/// Cost model: the per-goal check is three predictable compares plus a
/// counter decrement. The expensive probes — the clock read and the
/// cross-thread cancellation load — run only every CheckPeriod goals
/// (bench/governor_overhead measures the total at <2% of analyzer
/// throughput). Depth and memory are checked every goal: both are O(1)
/// reads against per-run state.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_GOVERNOR_H
#define CPSFLOW_SUPPORT_GOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

namespace cpsflow {
namespace support {

/// Why a run degraded. Ordered roughly by how "external" the trip is;
/// None means the run computed its answer without hitting any wall.
enum class DegradeReason : uint8_t {
  None,      ///< no limit tripped
  Goals,     ///< AnalyzerOptions::MaxGoals exhausted (the original path)
  Deadline,  ///< GovernorLimits::Deadline passed
  Memory,    ///< store interner grew past GovernorLimits::MaxStoreBytes
  Depth,     ///< goal stack deeper than GovernorLimits::MaxDepth
  Cancelled, ///< the cancellation token fired (watchdog or client)
};

inline const char *str(DegradeReason R) {
  switch (R) {
  case DegradeReason::None:
    return "none";
  case DegradeReason::Goals:
    return "goals";
  case DegradeReason::Deadline:
    return "deadline";
  case DegradeReason::Memory:
    return "memory";
  case DegradeReason::Depth:
    return "depth";
  case DegradeReason::Cancelled:
    return "cancelled";
  }
  return "?";
}

/// Cooperative cancellation: the runner polls, any thread may set. Shared
/// by shared_ptr so the setter can outlive (or predate) the run.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// The limits one run is governed by. Default-constructed limits govern
/// nothing (every check short-circuits), so ungoverned runs behave — and
/// cost — exactly like the pre-governor analyzers.
struct GovernorLimits {
  /// Absolute wall-clock deadline. Use deadlineIn() for "N ms from now".
  std::optional<std::chrono::steady_clock::time_point> Deadline;

  /// Ceiling on the run's StoreInterner footprint estimate in bytes
  /// (StoreInterner::approxBytes); 0 = unlimited. The interner is where a
  /// duplication blow-up accumulates state, so its growth is the run's
  /// memory proxy.
  uint64_t MaxStoreBytes = 0;

  /// Goal-stack depth cap; 0 = unlimited. Bounds the recursion of a
  /// pathological derivation independently of total goal count.
  uint32_t MaxDepth = 0;

  /// Cooperative cancellation; null = not cancellable.
  std::shared_ptr<CancelToken> Cancel;

  /// Secondary process-wide interrupt token (SIGINT/SIGTERM), checked
  /// alongside Cancel in the periodic probe. Kept separate because Cancel
  /// is per-run (the batch watchdog cancels ONE stuck program through it)
  /// while an interrupt must stop every in-flight run at once without the
  /// driver walking and cancelling each per-run token.
  std::shared_ptr<CancelToken> Interrupt;

  /// Goals between the expensive probes (clock read, cancellation load).
  /// Must be >= 1. Small values make cancellation/deadline latency tight
  /// at some per-goal cost; tests use 1 for determinism of trip points.
  uint32_t CheckPeriod = 1024;

  /// Sets Deadline to \p Ms milliseconds from now (no-op if Ms <= 0).
  void deadlineIn(double Ms) {
    if (Ms > 0)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(Ms));
  }
};

/// The per-run guard. Construct with the limits and the run's goal
/// budget; call check() once per proof goal. Single-threaded like the
/// analyzer that owns it (only the CancelToken is cross-thread).
class Governor {
public:
  Governor() : Governor(GovernorLimits(), UINT64_MAX) {}

  /// The first goal always probes (Countdown starts at 1): a run whose
  /// deadline already passed — or whose token was cancelled before it
  /// started, e.g. by the watchdog during a stall — trips immediately
  /// even when the run is shorter than CheckPeriod.
  Governor(const GovernorLimits &L, uint64_t MaxGoals)
      : Limits(L), MaxGoals(MaxGoals), Countdown(1) {}

  /// Returns the first tripped limit, or None. Latches: once a limit has
  /// tripped, every later call reports the same reason, mirroring the
  /// analyzers' sticky BudgetExhausted flag.
  DegradeReason check(uint64_t Goals, uint32_t Depth, size_t StoreBytes) {
    if (Tripped != DegradeReason::None)
      return Tripped;
    if (Goals > MaxGoals)
      return trip(DegradeReason::Goals);
    if (Limits.MaxDepth && Depth > Limits.MaxDepth)
      return trip(DegradeReason::Depth);
    if (Limits.MaxStoreBytes && StoreBytes > Limits.MaxStoreBytes)
      return trip(DegradeReason::Memory);
    if (--Countdown == 0) {
      Countdown = Limits.CheckPeriod ? Limits.CheckPeriod : 1;
      if (Limits.Cancel && Limits.Cancel->cancelled())
        return trip(DegradeReason::Cancelled);
      if (Limits.Interrupt && Limits.Interrupt->cancelled())
        return trip(DegradeReason::Cancelled);
      if (Limits.Deadline &&
          std::chrono::steady_clock::now() > *Limits.Deadline)
        return trip(DegradeReason::Deadline);
    }
    return DegradeReason::None;
  }

  DegradeReason tripped() const { return Tripped; }

private:
  DegradeReason trip(DegradeReason R) { return Tripped = R; }

  GovernorLimits Limits;
  uint64_t MaxGoals;
  uint32_t Countdown;
  DegradeReason Tripped = DegradeReason::None;
};

} // namespace support
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_GOVERNOR_H
