file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_analysis.dir/CfgCompare.cpp.o"
  "CMakeFiles/cpsflow_analysis.dir/CfgCompare.cpp.o.d"
  "CMakeFiles/cpsflow_analysis.dir/Universe.cpp.o"
  "CMakeFiles/cpsflow_analysis.dir/Universe.cpp.o.d"
  "CMakeFiles/cpsflow_analysis.dir/Witnesses.cpp.o"
  "CMakeFiles/cpsflow_analysis.dir/Witnesses.cpp.o.d"
  "libcpsflow_analysis.a"
  "libcpsflow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
