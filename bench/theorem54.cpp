//===- bench/theorem54.cpp - E4: Theorem 5.4 reproduction -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E4 — Theorem 5.4: the semantic-CPS analysis is at least as precise as
/// the direct analysis, with equality exactly when the analysis is
/// distributive. Swept over the paper's witnesses and a random corpus,
/// under the non-distributive constant-propagation domain and the
/// distributive unit (pure 0CFA) domain.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

template <typename D>
const char *verdict(const Context &Ctx, const Witness &W) {
  auto AD =
      DirectAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W)).run();
  auto AS =
      SemanticCpsAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W)).run();
  Comparison C = compareDirectWorld<D>(Ctx, AS, AD, W.InterestingVars);
  return str(C.Overall);
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E4: Theorem 5.4 — semantic-CPS vs direct, by domain");
  std::printf("(verdicts are for the semantic analysis on the left)\n\n");
  std::printf("  witness        | constant (non-distributive) | unit "
              "(distributive)\n");
  std::printf("  ---------------+------------------------------+--------"
              "-----------\n");
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    std::printf("  %-14s | %-28s | %s\n", W.Name.c_str(),
                verdict<domain::ConstantDomain>(Ctx, W),
                verdict<domain::UnitDomain>(Ctx, W));
  }

  // Random corpus: count outcomes per domain.
  gen::GenOptions Opts;
  Opts.Seed = 54;
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  Opts.WellTyped = true; // avoid dead paths; see DESIGN.md section 7
  gen::ProgramGenerator Gen(Ctx, Opts);
  int ConstEq = 0, ConstSemWins = 0, UnitEq = 0, UnitOther = 0, N = 0;
  for (int I = 0; I < 150; ++I) {
    const syntax::Term *T = Gen.generate();
    Witness W = packageProgram(Ctx, "random", T);
    for (Symbol S : syntax::freeVars(T)) {
      AbsBindingSpec B;
      B.Var = S;
      B.NumTop = true;
      W.Bindings.push_back(B);
    }

    auto CD_D = DirectAnalyzer<domain::ConstantDomain>(
                    Ctx, W.Anf, directBindings<domain::ConstantDomain>(W))
                    .run();
    auto CD_S = SemanticCpsAnalyzer<domain::ConstantDomain>(
                    Ctx, W.Anf, directBindings<domain::ConstantDomain>(W))
                    .run();
    auto UD_D = DirectAnalyzer<domain::UnitDomain>(
                    Ctx, W.Anf, directBindings<domain::UnitDomain>(W))
                    .run();
    auto UD_S = SemanticCpsAnalyzer<domain::UnitDomain>(
                    Ctx, W.Anf, directBindings<domain::UnitDomain>(W))
                    .run();
    if (CD_D.Stats.Cuts || CD_S.Stats.Cuts || UD_D.Stats.Cuts ||
        UD_S.Stats.Cuts || UD_D.Stats.DeadPaths || UD_S.Stats.DeadPaths ||
        UD_D.Stats.PrunedBranches || UD_S.Stats.PrunedBranches)
      continue; // unit equality needs a fully distributive run (DESIGN s7)
    ++N;

    auto Vars = W.InterestingVars;
    Comparison CC = compareDirectWorld<domain::ConstantDomain>(Ctx, CD_S,
                                                               CD_D, Vars);
    Comparison CU =
        compareDirectWorld<domain::UnitDomain>(Ctx, UD_S, UD_D, Vars);
    if (CC.Overall == PrecisionOrder::Equal)
      ++ConstEq;
    else if (CC.Overall == PrecisionOrder::LeftMorePrecise)
      ++ConstSemWins;
    if (CU.Overall == PrecisionOrder::Equal)
      ++UnitEq;
    else
      ++UnitOther;
  }

  std::printf("\nrandom corpus (%d cut- and dead-path-free programs, seed 54):\n", N);
  std::printf("  constant domain: equal %d, semantic strictly better %d, "
              "other %d\n",
              ConstEq, ConstSemWins, N - ConstEq - ConstSemWins);
  std::printf("  unit domain:     equal %d, other %d   (paper: always "
              "equal when distributive)\n",
              UnitEq, UnitOther);
  return 0;
}
