//===- bench/inline_vs_cps.cpp - E12: the Section 6.3 coda ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E12 — the paper's closing sentence, made measurable: "a more practical
/// alternative is to combine heuristic in-lining with a direct-style
/// analysis." Compares plain Figure 4, the CPS analyzers, and
/// inline-then-Figure-4 on the witness shapes (with the closures
/// let-bound so the inliner can see them) and on the scaling families.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "anf/Anf.h"
#include "clients/Inline.h"
#include "gen/Workloads.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

const syntax::Term *prepare(Context &Ctx, const char *Text) {
  Result<const syntax::Term *> T = syntax::parseTerm(Ctx, Text);
  return anf::normalizeProgram(Ctx, *T);
}

struct Row {
  std::string Probe1, Probe2;
  uint64_t Goals;
};

Row probeTwo(const Context &Ctx, const DirectResult<CD> &R, Symbol A,
             Symbol B) {
  return Row{CD::str(R.valueOf(A).Num), CD::str(R.valueOf(B).Num),
             R.Stats.Goals};
}

Row probeTwo(const Context &Ctx, const SemanticResult<CD> &R, Symbol A,
             Symbol B) {
  return Row{CD::str(R.valueOf(A).Num), CD::str(R.valueOf(B).Num),
             R.Stats.Goals};
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E12: heuristic inlining + direct analysis (Section 6.3)");

  {
    // Theorem 5.1 with the identity let-bound.
    const syntax::Term *T = prepare(
        Ctx,
        "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a2)))");
    Symbol A1 = Ctx.intern("a1"), A2 = Ctx.intern("a2");

    auto Plain = DirectAnalyzer<CD>(Ctx, T).run();
    auto Sem = SemanticCpsAnalyzer<CD>(Ctx, T).run();
    clients::InlineResult I = clients::inlineCalls(Ctx, T);
    auto Inl = DirectAnalyzer<CD>(Ctx, I.Inlined).run();

    std::printf("theorem 5.1 shape (f let-bound):\n");
    std::printf("  analyzer        | a1 | a2 | goals\n");
    std::printf("  ----------------+----+----+------\n");
    Row RP = probeTwo(Ctx, Plain, A1, A2);
    Row RS = probeTwo(Ctx, Sem, A1, A2);
    std::printf("  direct (fig 4)  | %-2s | %-2s | %llu\n", RP.Probe1.c_str(),
                RP.Probe2.c_str(), (unsigned long long)RP.Goals);
    std::printf("  semantic (fig 5)| %-2s | %-2s | %llu\n", RS.Probe1.c_str(),
                RS.Probe2.c_str(), (unsigned long long)RS.Goals);
    // Inlining renames; report the answer value instead of a2's slot.
    std::printf("  inline + direct | answer %s (per-site copies: a1 = 1, "
                "a2 = 2) | %llu goals, %zu calls inlined\n",
                CD::str(Inl.Answer.Value.Num).c_str(),
                (unsigned long long)Inl.Stats.Goals, I.InlinedCalls);
    std::printf("\n  every paper analyzer merges x across the two calls "
                "(a2 = T at best); inlining separates the call sites "
                "outright.\n\n");
  }

  {
    // Theorem 5.2b's call-merge shape with the two closures let-bound and
    // selected by an unknown conditional.
    const syntax::Term *T = prepare(
        Ctx, "(let (k0 (lambda (d0) 0))"
             " (let (k1 (lambda (d1) 1))"
             "  (let (f (if0 z k0 k1))"
             "   (let (a1 (f 3))"
             "    (let (a2 (if0 a1 5 (if0 (sub1 a1) 5 6)))"
             "     a2)))))");
    std::vector<DirectBinding<CD>> Init = {
        {Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}};

    auto Plain = DirectAnalyzer<CD>(Ctx, T, Init).run();
    auto Sem = SemanticCpsAnalyzer<CD>(Ctx, T, Init).run();
    clients::InlineResult I = clients::inlineCalls(Ctx, T);
    std::vector<DirectBinding<CD>> Init2 = Init;
    auto Inl = DirectAnalyzer<CD>(Ctx, I.Inlined, Init2).run();

    std::printf("theorem 5.2b shape (closures let-bound, unknown "
                "selector) — an honest negative:\n");
    std::printf("  direct (fig 4):  answer %s, %llu goals\n",
                CD::str(Plain.Answer.Value.Num).c_str(),
                (unsigned long long)Plain.Stats.Goals);
    std::printf("  semantic (fig 5): answer %s, %llu goals\n",
                CD::str(Sem.Answer.Value.Num).c_str(),
                (unsigned long long)Sem.Stats.Goals);
    std::printf("  inline + direct: answer %s, %llu goals, %zu calls "
                "inlined\n",
                CD::str(Inl.Answer.Value.Num).c_str(),
                (unsigned long long)Inl.Stats.Goals, I.InlinedCalls);
    std::printf("\n  here f is bound to a conditional, not a lambda, and "
                "k0/k1 escape through it, so the inliner (correctly) "
                "declines: call-site splitting cannot separate *data-"
                "dependent* callees. That is the case the Section 6.3 "
                "duplication budget handles (bench E9) — the two "
                "mechanisms are complementary.\n\n");
  }

  {
    // Scaling: closure towers — inlining eliminates the calls entirely.
    std::printf("closure towers (single-callee; all analyzers exact):\n");
    std::printf("   n | direct goals | inline+direct goals | calls "
                "inlined\n");
    for (uint32_t N : {4u, 8u, 12u}) {
      Witness W = gen::closureTower(Ctx, N);
      auto Plain = DirectAnalyzer<CD>(Ctx, W.Anf).run();
      clients::InlineResult I = clients::inlineCalls(Ctx, W.Anf);
      auto Inl = DirectAnalyzer<CD>(Ctx, I.Inlined).run();
      std::printf("  %2u | %12llu | %19llu | %zu\n", N,
                  (unsigned long long)Plain.Stats.Goals,
                  (unsigned long long)Inl.Stats.Goals, I.InlinedCalls);
    }
  }

  std::printf("\nexpected shape: on call-site-splitting shapes (theorem "
              "5.1, towers) inline+direct surpasses every paper analyzer "
              "at lower cost; on data-dependent-callee shapes it falls "
              "back to Figure 4 and the duplication budget (E9) is the "
              "right tool — together they realize the paper's closing "
              "recommendation.\n");
  return 0;
}
