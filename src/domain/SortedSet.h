//===- domain/SortedSet.h - Powerset lattice elements -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small sorted-vector set used for the powerset components of the
/// abstract value lattices (sets of abstract closures / continuations,
/// Section 4.2). Sets are tiny (bounded by the number of lambdas in the
/// program), so a sorted vector beats node-based containers and gives
/// deterministic iteration for printing.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_SORTEDSET_H
#define CPSFLOW_DOMAIN_SORTEDSET_H

#include "support/Hashing.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace cpsflow {
namespace domain {

/// An immutable-ish ordered set of \p Ref (requires operator<, operator==,
/// and hashValue on Ref). Join is set union; the order is set inclusion.
template <typename Ref> class SortedSet {
public:
  SortedSet() = default;

  /// Singleton set.
  static SortedSet single(Ref R) {
    SortedSet S;
    S.Items.push_back(R);
    return S;
  }

  /// Set from arbitrary items (sorted/deduplicated here).
  static SortedSet of(std::vector<Ref> Items) {
    SortedSet S;
    std::sort(Items.begin(), Items.end());
    Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
    S.Items = std::move(Items);
    return S;
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  bool contains(const Ref &R) const {
    return std::binary_search(Items.begin(), Items.end(), R);
  }

  /// Inserts \p R; \returns true if the set changed.
  bool insert(const Ref &R) {
    auto It = std::lower_bound(Items.begin(), Items.end(), R);
    if (It != Items.end() && *It == R)
      return false;
    Items.insert(It, R);
    return true;
  }

  /// Set union (the lattice join).
  static SortedSet join(const SortedSet &A, const SortedSet &B) {
    SortedSet Out;
    Out.Items.reserve(A.Items.size() + B.Items.size());
    std::set_union(A.Items.begin(), A.Items.end(), B.Items.begin(),
                   B.Items.end(), std::back_inserter(Out.Items));
    return Out;
  }

  /// Set inclusion (the lattice order).
  static bool leq(const SortedSet &A, const SortedSet &B) {
    return std::includes(B.Items.begin(), B.Items.end(), A.Items.begin(),
                         A.Items.end());
  }

  friend bool operator==(const SortedSet &A, const SortedSet &B) {
    return A.Items == B.Items;
  }
  friend bool operator!=(const SortedSet &A, const SortedSet &B) {
    return !(A == B);
  }

  uint64_t hashValue() const {
    uint64_t H = 0x5e75u;
    for (const Ref &R : Items)
      hashCombine(H, R.hashValue());
    return H;
  }

  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

private:
  std::vector<Ref> Items;
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_SORTEDSET_H
