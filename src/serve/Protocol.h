//===- serve/Protocol.h - Serve wire protocol -------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cpsflow serve` wire protocol: line-delimited JSON over a unix
/// stream socket. One request object per line in, one response object per
/// line out, in request order per connection (docs/SERVE.md).
///
/// Requests:
///
/// \code
///   {"op":"analyze","program":"(add1 2)","analyzer":"direct",
///    "domain":"constant","id":7}
///   {"op":"health"}   {"op":"stats"}   {"op":"shutdown"}
///   {"op":"metrics","format":"prometheus"}   {"op":"dump"}
/// \endcode
///
/// Every response carries "ok". Failures carry the structured taxonomy
/// the batch driver introduced (parse|cps|deadline|memory|internal) plus
/// the serve-layer kinds (shed for admission-control rejections, protocol
/// for malformed requests) — a client never sees a dead connection or an
/// unexplained close while the daemon is up.
///
/// Request parsing is deliberately strict and bounded: the body is read
/// with a tight JSON nesting cap (MaxRequestJsonDepth) and unknown fields
/// are rejected, so a hostile client cannot feed the daemon anything the
/// analyzers were not built to see.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_PROTOCOL_H
#define CPSFLOW_SERVE_PROTOCOL_H

#include "support/Result.h"

#include <cstdint>
#include <string>

namespace cpsflow {
namespace serve {

/// Why a request failed. The first five mirror clients::BatchFailKind;
/// Shed and Protocol are serve-layer outcomes.
enum class ServeErrorKind : uint8_t {
  Parse,    ///< program source did not parse
  Cps,      ///< CPS transform failed
  Deadline, ///< deadline tripped and the client asked for fail-on-budget
  Memory,   ///< allocation failure contained in the worker
  Internal, ///< contained unexpected exception (incl. injected faults)
  Shed,     ///< admission control: queue past the high-water mark
  Protocol, ///< malformed request line (bad JSON, bad op, bad field)
};

const char *str(ServeErrorKind K);

/// JSON nesting cap for request bodies. Requests are flat objects; 16
/// levels is already generous, and the cap keeps adversarial "[[[["
/// bodies from walking the parser's native stack.
inline constexpr unsigned MaxRequestJsonDepth = 16;

/// Longest accepted request line in bytes (1 MiB). A line past this is a
/// protocol error, not an unbounded buffer.
inline constexpr size_t MaxRequestBytes = 1u << 20;

/// A parsed request.
struct ServeRequest {
  enum class Op : uint8_t { Analyze, Health, Stats, Shutdown, Metrics, Dump };

  Op Kind = Op::Analyze;

  /// Echoed back verbatim in the response when the client supplied one
  /// (correlation id for pipelined requests).
  uint64_t Id = 0;
  bool HasId = false;

  /// metrics-op exposition format: "json" (default) or "prometheus".
  /// Rejected on any other op — the strict-parse ethos: a field that
  /// cannot mean anything is a protocol error, not dead weight.
  std::string Format = "json";

  // -- analyze fields. Defaults are the server's; a request may tighten
  // or loosen its own budgets within the server's ceilings.
  std::string Program;
  std::string Analyzer = "direct";
  std::string Domain = "constant";
  uint64_t MaxGoals = 0;   ///< 0 = server default
  uint32_t LoopUnroll = 64;
  uint64_t DupBudget = 2;
  double DeadlineMs = -1;  ///< <0 = server default; 0 = no deadline
  bool UseSummaries = true;
  bool NoCache = false;    ///< bypass the result cache for this request
  /// Allow cross-request memo reuse (the hot MemoStore) for this request.
  /// Off: the analysis runs cold and publishes nothing.
  bool Incremental = true;
};

/// Parses one request line. Any failure is a protocol error with a
/// message safe to echo to the client.
Result<ServeRequest> parseServeRequest(const std::string &Line);

/// Renders an error response line (no trailing newline).
/// \p Req may be null when the line never parsed.
std::string errorResponse(const ServeRequest *Req, ServeErrorKind Kind,
                          const std::string &Message);

/// Renders a success response line around \p PayloadJson, a pre-rendered
/// JSON object value (the cacheable analysis result). \p Cached reports
/// whether the payload came from the result cache.
std::string analyzeResponse(const ServeRequest &Req,
                            const std::string &PayloadJson, bool Cached);

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_PROTOCOL_H
