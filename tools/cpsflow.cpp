//===- tools/cpsflow.cpp - Command-line driver ------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cpsflow command-line driver: every stage of the library behind one
/// binary, for poking at programs without writing C++.
///
/// \code
///   cpsflow parse FILE                 echo the parsed program
///   cpsflow anf FILE                   print the A-normal form
///   cpsflow steps FILE                 show each A-reduction step
///   cpsflow cps FILE                   print the CPS transform
///   cpsflow run FILE [options]         run a concrete machine
///   cpsflow analyze FILE [options]     run an abstract analyzer
///   cpsflow compare FILE [options]     run all three analyzers, compare
///   cpsflow fold FILE                  constant-fold and print
///   cpsflow inline FILE                heuristically inline and print
///   cpsflow batch DIR [options]        analyze a corpus of *.scm, JSON out
///   cpsflow fuzz [DIR] [options]       differential fuzzing campaign over
///                                      the theorem oracles; DIR seeds the
///                                      mutator (optional)
///   cpsflow explain FILE --var x       derivation chain for x's final
///                                      abstract value (docs/EXPLAIN.md)
///   cpsflow serve --socket PATH        long-running analysis daemon:
///                                      line-delimited JSON over an
///                                      AF_UNIX socket, worker pool,
///                                      crash-safe result cache
///                                      (docs/SERVE.md; tools/loadgen is
///                                      the matching load driver)
///   cpsflow version                    build configuration and the JSON
///                                      schema versions this binary emits
///
/// options:
///   --machine=direct|semantic|syntactic    (run; default direct)
///   --analyzer=direct|semantic|syntactic|dup|pushdown
///                         (analyze; default direct; aliases scps=semantic,
///                         syncps=syntactic, pd=cfa2=pushdown)
///   --domain=constant|unit|sign|parity|interval (default constant)
///   --bind x=N            bind free variable x to integer N (repeatable;
///                         for analyze: to the abstract constant N)
///   --top x               bind free variable x to the numeric top
///   --budget N            dup analyzer duplication budget (default 2)
///   --fuel N              concrete step budget (default 2^20)
///   --show-cfg            print the extracted control-flow graph
///   --show-store          print the final abstract store
///   --threads N           batch worker threads (default 1)
///   --out FILE            batch: write the JSON report to FILE
///   --no-timing           batch: omit wall-time/thread fields (so outputs
///                         compare byte-for-byte across runs)
///   FILE may be "-" for stdin.
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "analysis/CfgCompare.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "anf/Reductions.h"
#include "clients/Batch.h"
#include "clients/ConstFold.h"
#include "clients/Explain.h"
#include "clients/Inline.h"
#include "clients/Reports.h"
#include "cps/Transform.h"
#include "fuzz/Campaign.h"
#include "serve/Server.h"
#include "support/FaultInjector.h"
#include "interp/Delta.h"
#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ParseNum.h"
#include "support/Trace.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"
#include "syntax/Rename.h"
#include "syntax/Sugar.h"
#include "syntax/Printer.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cpsflow;

namespace {

struct Options {
  std::string Command;
  std::string File;
  std::string Machine = "direct";
  std::string Analyzer = "direct";
  std::string Domain = "constant";
  std::vector<std::pair<std::string, int64_t>> Bindings;
  std::vector<std::string> TopVars;
  uint64_t Budget = 2;
  uint64_t Fuel = 1u << 20;
  unsigned Threads = 1;
  double DeadlineMs = 0;
  uint64_t MaxStoreMb = 0;
  uint32_t MaxDepthCap = 0;
  uint32_t LoopUnroll = 64;
  uint64_t MaxGoals = 0; ///< 0 = the command's default budget.
  bool NoSummaries = false;
  bool FailOnBudget = false;
  bool Retry = false;
  std::string OutFile;
  std::string TraceOut; ///< Chrome trace destination; empty = no tracing.
  bool ShowMetrics = false;
  bool NoTiming = false;
  bool ShowCfg = false;
  bool ShowStore = false;
  bool Json = false;
  bool TraceRun = false;
  bool ShowDerivation = false;

  // explain-only knobs.
  std::string Var;      ///< variable whose derivation to explain.
  std::string GraphOut; ///< derivation-graph destination (.dot or .json).

  // serve-only knobs.
  std::string ServeSocket;    ///< AF_UNIX listen path (required).
  unsigned ServeWorkers = 2;  ///< analysis worker pool size.
  uint64_t QueueCap = 64;     ///< admission high-water mark.
  std::string CacheDir;       ///< result-cache directory; empty = off.
  double DrainGraceMs = 2000; ///< drain grace before degrading work.
  bool NoIncremental = false; ///< disable cross-request memo reuse.
  std::string LogOut;         ///< request-log file; empty = off.
  uint64_t LogRotateMb = 64;  ///< request-log rotation cap (0 = never).
  uint64_t FlightRecords = 256; ///< flight-recorder ring; 0 = off.
  std::string FlightDump;     ///< dump path override.
  double TraceSlowMs = 0;     ///< slow-request trace threshold; 0 = off.
  std::string TraceDir;       ///< slow-trace spill directory override.
  uint64_t TraceSlowMax = 32; ///< spilled-trace file budget.

  // fuzz-only knobs.
  uint64_t FuzzSeed = 1;
  uint64_t Iterations = 0;
  double Seconds = 10;
  uint64_t Wave = 0;
  uint64_t MaxFindings = 32;
  bool NoShrink = false;
  std::string FindingsDir;
  std::string OracleList;
  std::string ReplayFile;
};

[[noreturn]] void usage(const char *Message = nullptr) {
  if (Message)
    std::fprintf(stderr, "error: %s\n\n", Message);
  std::fprintf(
      stderr,
      "usage: cpsflow COMMAND FILE [options]\n"
      "commands: parse | anf | steps | cps | run | analyze | compare | "
      "fold | inline | batch | fuzz | explain | serve | version\n"
      "options:  --machine=direct|semantic|syntactic\n"
      "          --analyzer=direct|semantic|syntactic|dup|pushdown\n"
      "                             (aliases: scps=semantic,\n"
      "                             syncps=syntactic, pd=cfa2=pushdown)\n"
      "          --domain=constant|unit|sign|parity|interval\n"
      "          --bind x=N   --top x   --budget N   --fuel N\n"
      "          --show-cfg   --show-store   --show-derivation\n"
      "          --json   --trace\n"
      "          --deadline-ms N    soft wall-clock deadline per analysis\n"
      "          --max-store-mb N   interned-store memory ceiling\n"
      "          --max-depth N      goal-stack depth cap\n"
      "          --loop-unroll N    CPS loop unroll bound (default 64)\n"
      "          --max-goals N      proof-goal budget per analyzer leg\n"
      "          --no-summaries     disable continuation-summary reuse in\n"
      "                             the syntactic analyzer (answers are\n"
      "                             identical; only speed differs)\n"
      "          --trace-out FILE   write a Chrome trace_event JSON file\n"
      "                             (open in chrome://tracing or Perfetto)\n"
      "          --metrics          print per-leg counters/histograms\n"
      "          --on-budget=fail|degrade   degraded answers: exit 1 or\n"
      "                             report (default degrade)\n"
      "          --retry            batch: rerun deadline-tripped programs\n"
      "                             once at reduced cost\n"
      "          --threads N  --out FILE  --no-timing   (batch only;\n"
      "          batch takes a DIRECTORY of *.scm in place of FILE)\n"
      "explain options:\n"
      "          --var x            variable to explain (required)\n"
      "          --graph-out FILE   export the full derivation graph;\n"
      "                             FILE.dot for Graphviz, else JSON\n"
      "          --analyzer accepts the aliases scps (semantic),\n"
      "          syncps (syntactic), and pd/cfa2 (pushdown) here as well\n"
      "fuzz options (fuzz takes an optional seed DIRECTORY of *.scm):\n"
      "          --seconds N        wall-clock budget (default 10)\n"
      "          --iterations N     exact task count (overrides --seconds;\n"
      "                             fixed seed+iterations reproduce the\n"
      "                             same findings at any --threads)\n"
      "          --fuzz-seed N      campaign master seed (default 1)\n"
      "          --oracles LIST     comma list, e.g. O1,O3 or soundness\n"
      "          --findings-dir D   write reproducers + findings.json\n"
      "          --max-findings N   stop after N findings (default 32)\n"
      "          --wave N           tasks per scheduling wave (default 32)\n"
      "          --no-shrink        keep findings unminimized\n"
      "          --replay FILE      re-check one reproducer and exit\n"
      "serve options (serve takes no FILE; see docs/SERVE.md):\n"
      "          --socket PATH      AF_UNIX listen path (required)\n"
      "          --serve-workers N  analysis worker pool size (default 2)\n"
      "          --queue-cap N      admission high-water mark: analyze\n"
      "                             requests past it are shed (default 64)\n"
      "          --cache-dir DIR    persistent crash-safe result cache\n"
      "                             (omitted = caching off)\n"
      "          --drain-grace-ms N grace before in-flight analyses are\n"
      "                             degraded on drain (default 2000)\n"
      "          --no-incremental   disable cross-request memo reuse\n"
      "                             (every analysis runs cold)\n"
      "          --log-out FILE     structured request log: one JSON line\n"
      "                             per finished analyze request\n"
      "          --log-rotate-mb N  rotate the request log past N MiB\n"
      "                             (default 64; 0 = never)\n"
      "          --flight-records N flight-recorder ring size (default\n"
      "                             256; 0 = off); dumped on drain and on\n"
      "                             the dump op\n"
      "          --flight-dump FILE flight dump path (default\n"
      "                             SOCKET.flight.json)\n"
      "          --trace-slow-ms N  spill a Chrome trace for requests\n"
      "                             whose analysis exceeds N ms (0 = off)\n"
      "          --trace-dir DIR    slow-trace spill directory (default\n"
      "                             SOCKET.traces)\n"
      "          --trace-slow-max N cap on spilled trace files\n"
      "                             (default 32)\n"
      "          the governor flags above (--deadline-ms, --max-goals,\n"
      "          --max-store-mb, --max-depth) set per-request defaults\n"
      "FILE may be '-' for stdin.\n");
  std::exit(2);
}

/// Checked numeric flag parsing: any malformed or out-of-range value is a
/// usage error naming the offending flag and text — never a silent 0 or a
/// truncated cast (the std::atoi failure modes this replaces).
uint64_t flagUint(const char *Flag, const char *Text,
                  uint64_t Max = std::numeric_limits<uint64_t>::max()) {
  Result<uint64_t> R = support::parseUint(Text, Max);
  if (!R)
    usage((std::string(Flag) + ": " + R.error().str()).c_str());
  return *R;
}

int64_t flagInt(const char *Flag, const std::string &Text) {
  Result<int64_t> R = support::parseInt(Text);
  if (!R)
    usage((std::string(Flag) + ": " + R.error().str()).c_str());
  return *R;
}

double flagMs(const char *Flag, const char *Text) {
  Result<double> R = support::parseNonNegativeMs(Text);
  if (!R)
    usage((std::string(Flag) + ": " + R.error().str()).c_str());
  return *R;
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  if (Argc < 2)
    usage();
  O.Command = Argv[1];
  if (O.Command == "--version")
    O.Command = "version";
  // fuzz's corpus directory is optional, and version and serve take no
  // input at all; every other command requires its FILE (or DIR)
  // positional.
  int First = 2;
  if (First < Argc && Argv[First][0] != '-') {
    O.File = Argv[First];
    ++First;
  } else if (O.Command != "fuzz" && O.Command != "version" &&
             O.Command != "serve") {
    if (First < Argc && std::strcmp(Argv[First], "-") == 0) {
      O.File = "-";
      ++First;
    } else {
      usage();
    }
  }
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const std::string &Prefix) -> std::string {
      return A.substr(Prefix.size());
    };
    if (A.rfind("--machine=", 0) == 0)
      O.Machine = Value("--machine=");
    else if (A.rfind("--analyzer=", 0) == 0)
      O.Analyzer = Value("--analyzer=");
    else if (A == "--analyzer" && I + 1 < Argc)
      O.Analyzer = Argv[++I];
    else if (A.rfind("--domain=", 0) == 0)
      O.Domain = Value("--domain=");
    else if (A == "--domain" && I + 1 < Argc)
      O.Domain = Argv[++I];
    else if (A == "--bind" && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos)
        usage("--bind expects x=N");
      O.Bindings.emplace_back(Spec.substr(0, Eq),
                              flagInt("--bind", Spec.substr(Eq + 1)));
    } else if (A == "--top" && I + 1 < Argc) {
      O.TopVars.push_back(Argv[++I]);
    } else if (A == "--budget" && I + 1 < Argc) {
      O.Budget = flagUint("--budget", Argv[++I]);
    } else if (A == "--fuel" && I + 1 < Argc) {
      O.Fuel = flagUint("--fuel", Argv[++I]);
    } else if (A == "--threads" && I + 1 < Argc) {
      O.Threads = static_cast<unsigned>(
          flagUint("--threads", Argv[++I], /*Max=*/4096));
    } else if (A == "--deadline-ms" && I + 1 < Argc) {
      O.DeadlineMs = flagMs("--deadline-ms", Argv[++I]);
    } else if (A == "--max-store-mb" && I + 1 < Argc) {
      // Cap so the byte conversion below cannot overflow.
      O.MaxStoreMb = flagUint("--max-store-mb", Argv[++I],
                              /*Max=*/uint64_t{1} << 40);
    } else if (A == "--max-depth" && I + 1 < Argc) {
      O.MaxDepthCap = static_cast<uint32_t>(
          flagUint("--max-depth", Argv[++I],
                   std::numeric_limits<uint32_t>::max()));
    } else if (A == "--loop-unroll" && I + 1 < Argc) {
      O.LoopUnroll = static_cast<uint32_t>(
          flagUint("--loop-unroll", Argv[++I],
                   std::numeric_limits<uint32_t>::max()));
    } else if (A == "--max-goals" && I + 1 < Argc) {
      O.MaxGoals = flagUint("--max-goals", Argv[++I]);
      if (O.MaxGoals == 0)
        usage("--max-goals: the budget must be at least 1");
    } else if (A == "--trace-out" && I + 1 < Argc) {
      O.TraceOut = Argv[++I];
    } else if (A == "--metrics") {
      O.ShowMetrics = true;
    } else if (A.rfind("--on-budget=", 0) == 0) {
      std::string Mode = Value("--on-budget=");
      if (Mode == "fail")
        O.FailOnBudget = true;
      else if (Mode == "degrade")
        O.FailOnBudget = false;
      else
        usage("--on-budget expects fail or degrade");
    } else if (A == "--retry") {
      O.Retry = true;
    } else if (A == "--out" && I + 1 < Argc) {
      O.OutFile = Argv[++I];
    } else if (A == "--seconds" && I + 1 < Argc) {
      O.Seconds = flagMs("--seconds", Argv[++I]);
    } else if (A == "--iterations" && I + 1 < Argc) {
      O.Iterations = flagUint("--iterations", Argv[++I]);
    } else if (A == "--fuzz-seed" && I + 1 < Argc) {
      O.FuzzSeed = flagUint("--fuzz-seed", Argv[++I]);
    } else if (A == "--wave" && I + 1 < Argc) {
      O.Wave = flagUint("--wave", Argv[++I]);
    } else if (A == "--max-findings" && I + 1 < Argc) {
      O.MaxFindings = flagUint("--max-findings", Argv[++I]);
    } else if (A == "--findings-dir" && I + 1 < Argc) {
      O.FindingsDir = Argv[++I];
    } else if (A == "--oracles" && I + 1 < Argc) {
      O.OracleList = Argv[++I];
    } else if (A == "--no-summaries") {
      O.NoSummaries = true;
    } else if (A == "--no-shrink") {
      O.NoShrink = true;
    } else if (A == "--replay" && I + 1 < Argc) {
      O.ReplayFile = Argv[++I];
    } else if (A == "--socket" && I + 1 < Argc) {
      O.ServeSocket = Argv[++I];
    } else if (A == "--serve-workers" && I + 1 < Argc) {
      O.ServeWorkers = static_cast<unsigned>(
          flagUint("--serve-workers", Argv[++I], /*Max=*/4096));
      if (O.ServeWorkers == 0)
        usage("--serve-workers: need at least 1");
    } else if (A == "--queue-cap" && I + 1 < Argc) {
      O.QueueCap = flagUint("--queue-cap", Argv[++I],
                            /*Max=*/uint64_t{1} << 20);
    } else if (A == "--cache-dir" && I + 1 < Argc) {
      O.CacheDir = Argv[++I];
    } else if (A == "--drain-grace-ms" && I + 1 < Argc) {
      O.DrainGraceMs = flagMs("--drain-grace-ms", Argv[++I]);
    } else if (A == "--no-incremental") {
      O.NoIncremental = true;
    } else if (A == "--log-out" && I + 1 < Argc) {
      O.LogOut = Argv[++I];
    } else if (A == "--log-rotate-mb" && I + 1 < Argc) {
      O.LogRotateMb = flagUint("--log-rotate-mb", Argv[++I],
                               /*Max=*/uint64_t{1} << 20);
    } else if (A == "--flight-records" && I + 1 < Argc) {
      O.FlightRecords = flagUint("--flight-records", Argv[++I],
                                 /*Max=*/uint64_t{1} << 20);
    } else if (A == "--flight-dump" && I + 1 < Argc) {
      O.FlightDump = Argv[++I];
    } else if (A == "--trace-slow-ms" && I + 1 < Argc) {
      O.TraceSlowMs = flagMs("--trace-slow-ms", Argv[++I]);
    } else if (A == "--trace-dir" && I + 1 < Argc) {
      O.TraceDir = Argv[++I];
    } else if (A == "--trace-slow-max" && I + 1 < Argc) {
      O.TraceSlowMax = flagUint("--trace-slow-max", Argv[++I],
                                /*Max=*/uint64_t{1} << 20);
    } else if (A == "--no-timing") {
      O.NoTiming = true;
    } else if (A == "--show-cfg") {
      O.ShowCfg = true;
    } else if (A == "--show-store") {
      O.ShowStore = true;
    } else if (A == "--json") {
      O.Json = true;
    } else if (A == "--trace") {
      O.TraceRun = true;
    } else if (A == "--show-derivation") {
      O.ShowDerivation = true;
    } else if (A == "--var" && I + 1 < Argc) {
      O.Var = Argv[++I];
    } else if (A == "--graph-out" && I + 1 < Argc) {
      O.GraphOut = Argv[++I];
    } else {
      usage(("unknown option '" + A + "'").c_str());
    }
  }
  // Fold the documented shorthands (scps, syncps, pd, cfa2) into the
  // canonical analyzer names via the shared registry, and reject unknown
  // names up front with the valid-choices list.
  if (std::optional<std::string> Canon =
          analysis::canonicalAnalyzerName(O.Analyzer)) {
    O.Analyzer = *Canon;
  } else {
    usage(("unknown analyzer '" + O.Analyzer +
           "' (valid: " + analysis::knownAnalyzerNames() +
           "; aliases: " + analysis::knownAnalyzerAliases() + ")")
              .c_str());
  }
  return O;
}

std::string readInput(const std::string &File) {
  std::ostringstream Buf;
  if (File == "-") {
    Buf << std::cin.rdbuf();
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      std::exit(1);
    }
    Buf << In.rdbuf();
  }
  return Buf.str();
}

/// Everything the subcommands need after the common front end. The
/// Context is not movable, so subcommands construct a Loaded and call
/// load() on it.
struct Loaded {
  Context Ctx;
  const syntax::Term *Raw = nullptr;
  const syntax::Term *Anf = nullptr;
  support::Tracer *Trace = nullptr; ///< Set before load() to span phases.

  void load(const Options &O) {
    // The surface language (syntax/Sugar.h) is a superset of core A:
    // defines, curried lambdas/applications, let*, rec, +/- literals.
    Result<const syntax::Term *> R = [&] {
      support::TraceSpan S(Trace, "parse");
      return syntax::parseSugaredProgram(Ctx, readInput(O.File));
    }();
    if (!R) {
      // Exit 2, like flag/usage errors: the input never reached an
      // analyzer, so this is an input error, not an analysis failure.
      std::fprintf(stderr, "parse error: %s\n", R.error().str().c_str());
      std::exit(2);
    }
    Raw = *R;
    support::TraceSpan S(Trace, "anf");
    Anf = anf::normalizeProgram(Ctx, Raw);
  }
};

/// Writes \p Trace as a Chrome trace_event JSON document to O.TraceOut.
/// Returns false (after reporting) when the file cannot be written.
bool writeTraceFile(const Options &O, const support::Tracer &Trace) {
  std::ofstream Out(O.TraceOut);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                 O.TraceOut.c_str());
    return false;
  }
  Out << Trace.json() << '\n';
  return true;
}

int cmdParse(const Options &O) {
  Loaded L;
  L.load(O);
  std::printf("%s\n", syntax::printIndented(L.Ctx, L.Raw).c_str());
  return 0;
}

int cmdAnf(const Options &O) {
  Loaded L;
  L.load(O);
  std::printf("%s\n", syntax::printIndented(L.Ctx, L.Anf).c_str());
  return 0;
}

int cmdSteps(const Options &O) {
  Loaded L;
  L.load(O);
  const syntax::Term *T = syntax::renameUnique(L.Ctx, L.Raw);
  std::printf("    %s\n", syntax::print(L.Ctx, T).c_str());
  size_t N = 0;
  while (auto S = anf::stepA(L.Ctx, T)) {
    T = S->Next;
    std::printf("%s  %s\n", anf::str(S->Rule),
                syntax::print(L.Ctx, T).c_str());
    if (++N > 10000) {
      std::fprintf(stderr, "error: reduction did not terminate\n");
      return 1;
    }
  }
  std::printf("(%zu steps to A-normal form)\n", N);
  return 0;
}

int cmdCps(const Options &O) {
  Loaded L;
  L.load(O);
  Result<cps::CpsProgram> P = cps::cpsTransform(L.Ctx, L.Anf);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
    return 1;
  }
  std::printf("%s\n", cps::printCps(L.Ctx, P->Root).c_str());
  return 0;
}

const char *statusName(interp::RunStatus S) {
  switch (S) {
  case interp::RunStatus::Ok:
    return "ok";
  case interp::RunStatus::Stuck:
    return "stuck";
  case interp::RunStatus::Diverged:
    return "diverged";
  case interp::RunStatus::OutOfFuel:
    return "out of fuel";
  }
  return "?";
}

int cmdRun(const Options &O) {
  Loaded L;
  L.load(O);
  interp::RunLimits Limits;
  Limits.MaxSteps = O.Fuel;

  std::vector<interp::InitialBinding> Init;
  for (const auto &[Name, Value] : O.Bindings)
    Init.push_back({L.Ctx.intern(Name), interp::RtValue::number(Value)});

  auto PrintTrace = [&](const std::vector<std::string> &Lines) {
    for (const std::string &Line : Lines)
      std::printf("  | %s\n", Line.c_str());
  };

  if (O.Machine == "direct" || O.Machine == "semantic") {
    interp::RunResult R;
    if (O.Machine == "direct") {
      interp::DirectInterp I(Limits);
      if (O.TraceRun)
        I.enableTrace(L.Ctx);
      R = I.run(L.Anf, Init);
      if (O.TraceRun)
        PrintTrace(I.trace());
    } else {
      interp::SemanticCpsInterp I(Limits);
      if (O.TraceRun)
        I.enableTrace(L.Ctx);
      R = I.run(L.Anf, Init);
      if (O.TraceRun)
        PrintTrace(I.trace());
    }
    std::printf("status: %s\n", statusName(R.Status));
    if (R.ok())
      std::printf("value:  %s\n", interp::str(L.Ctx, R.Value).c_str());
    else if (!R.Message.empty())
      std::printf("reason: %s\n", R.Message.c_str());
    std::printf("steps:  %llu\n", (unsigned long long)R.Steps);
    return R.ok() ? 0 : 1;
  }
  if (O.Machine == "syntactic") {
    Result<cps::CpsProgram> P = cps::cpsTransform(L.Ctx, L.Anf);
    if (!P) {
      std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
      return 1;
    }
    std::vector<interp::CpsInitialBinding> CInit;
    for (const auto &[Name, Value] : O.Bindings)
      CInit.push_back(
          {L.Ctx.intern(Name), interp::CpsRtValue::number(Value)});
    interp::SyntacticCpsInterp I(Limits);
    if (O.TraceRun)
      I.enableTrace(L.Ctx);
    interp::CpsRunResult R = I.run(*P, CInit);
    if (O.TraceRun)
      for (const std::string &Line : I.trace())
        std::printf("  | %s\n", Line.c_str());
    std::printf("status: %s\n", statusName(R.Status));
    if (R.ok())
      std::printf("value:  %s\n", interp::str(L.Ctx, R.Value).c_str());
    std::printf("steps:  %llu\n", (unsigned long long)R.Steps);
    return R.ok() ? 0 : 1;
  }
  usage("unknown machine");
}

/// Runs `analyze` or `compare` at a fixed numeric domain.
template <typename D> int analyzeAt(const Options &O, Loaded &L) {
  support::TraceSpan BindSpan(L.Trace, "bind");
  std::vector<analysis::DirectBinding<D>> Init;
  for (const auto &[Name, Value] : O.Bindings)
    Init.push_back({L.Ctx.intern(Name),
                    domain::AbsVal<D>::number(D::constant(Value))});
  for (const std::string &Name : O.TopVars)
    Init.push_back(
        {L.Ctx.intern(Name), domain::AbsVal<D>::number(D::top())});
  BindSpan.close();

  Result<cps::CpsProgram> P = [&] {
    support::TraceSpan S(L.Trace, "cps");
    return cps::cpsTransform(L.Ctx, L.Anf);
  }();
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
    return 1;
  }
  support::TraceSpan CBindSpan(L.Trace, "bind");
  std::vector<analysis::CpsBinding<D>> CInit;
  for (const analysis::DirectBinding<D> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<D>(B.Value, *P)});

  std::vector<Symbol> Vars = syntax::collectVariables(L.Anf);
  CBindSpan.close();

  // One governed options block shared by every analyzer this command
  // runs; compare's three legs share one absolute deadline.
  analysis::AnalyzerOptions AOpts;
  AOpts.LoopUnroll = O.LoopUnroll;
  AOpts.Governor.MaxStoreBytes = O.MaxStoreMb * 1024 * 1024;
  AOpts.Governor.MaxDepth = O.MaxDepthCap;
  if (O.DeadlineMs > 0)
    AOpts.Governor.deadlineIn(O.DeadlineMs);
  if (O.MaxGoals)
    AOpts.MaxGoals = O.MaxGoals;
  AOpts.UseSummaries = !O.NoSummaries;
  AOpts.Trace = L.Trace;

  // `explain` runs one analyzer with the provenance recorder attached and
  // prints the derivation chain of --var back to the program points that
  // produced (or lost) its value. See docs/EXPLAIN.md.
  if (O.Command == "explain") {
    if (O.Var.empty())
      usage("explain requires --var x");
    domain::Provenance Prov;
    AOpts.Prov = &Prov;

    auto WriteGraph = [&](const domain::VarIndex &VI) {
      if (O.GraphOut.empty())
        return true;
      bool Dot = O.GraphOut.size() >= 4 &&
                 O.GraphOut.compare(O.GraphOut.size() - 4, 4, ".dot") == 0;
      std::ofstream Out(O.GraphOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     O.GraphOut.c_str());
        return false;
      }
      Out << (Dot ? clients::provenanceDot(Prov, VI, L.Ctx)
                  : clients::provenanceJson(Prov, VI, L.Ctx))
          << '\n';
      return true;
    };

    auto ExplainLeg = [&](const char *Leg, const auto &A, const auto &R) {
      const domain::VarIndex &VI = *R.Vars;
      std::optional<uint32_t> Slot = VI.tryOf(L.Ctx.intern(O.Var));
      if (!Slot) {
        std::fprintf(stderr,
                     "error: '%s' is not a variable of this program\n",
                     O.Var.c_str());
        return 1;
      }
      domain::StoreId S = Prov.finalStore();
      const auto &In = A.interner();
      std::string Shown = S == domain::NoStore
                              ? std::string("bottom (dead)")
                              : In.get(S, *Slot).str(L.Ctx);
      std::printf("%s: %s = %s\n", Leg, O.Var.c_str(), Shown.c_str());
      std::vector<std::string> Lines =
          clients::explainSlot(Prov, In, VI, L.Ctx, *Slot, S);
      if (Lines.empty())
        std::printf("  (no recorded derivation: the variable keeps its "
                    "initial value)\n");
      for (const std::string &Line : Lines)
        std::printf("  %s\n", Line.c_str());
      if (R.Stats.BudgetExhausted)
        std::printf("  note: this analysis degraded (%s); cut edges above "
                    "may carry that reason\n",
                    support::str(R.Stats.Degraded));
      return WriteGraph(VI) ? 0 : 1;
    };

    if (O.Analyzer == "direct") {
      analysis::DirectAnalyzer<D> A(L.Ctx, L.Anf, Init, AOpts);
      auto R = A.run();
      return ExplainLeg("direct", A, R);
    }
    if (O.Analyzer == "semantic") {
      analysis::SemanticCpsAnalyzer<D> A(L.Ctx, L.Anf, Init, AOpts);
      auto R = A.run();
      return ExplainLeg("semantic", A, R);
    }
    if (O.Analyzer == "syntactic") {
      analysis::SyntacticCpsAnalyzer<D> A(L.Ctx, *P, CInit, AOpts);
      auto R = A.run();
      return ExplainLeg("syntactic", A, R);
    }
    if (O.Analyzer == "dup") {
      analysis::DupAnalyzer<D> A(L.Ctx, L.Anf, Init, O.Budget, AOpts);
      auto R = A.run();
      return ExplainLeg("dup", A, R);
    }
    if (O.Analyzer == "pushdown") {
      analysis::PushdownAnalyzer<D> A(L.Ctx, L.Anf, Init, AOpts);
      auto R = A.run();
      return ExplainLeg("pushdown", A, R);
    }
    usage("unknown analyzer");
  }

  // --metrics: one registry per analyzer leg, rendered as a table after
  // the report. Deque keeps registry addresses stable while legs append.
  std::deque<support::MetricsRegistry> Registries;
  std::vector<std::pair<std::string, const support::MetricsRegistry *>>
      MetricLegs;
  auto legOptions = [&](const char *Leg) {
    analysis::AnalyzerOptions LOpts = AOpts;
    if (O.ShowMetrics) {
      Registries.emplace_back();
      MetricLegs.emplace_back(Leg, &Registries.back());
      LOpts.Metrics = &Registries.back();
    }
    return LOpts;
  };
  auto finishLeg = [&](std::chrono::steady_clock::time_point Start) {
    if (!O.ShowMetrics)
      return;
    Registries.back().set(
        "wallUs",
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Start)
                .count()));
  };
  auto printMetrics = [&] {
    if (!O.ShowMetrics)
      return;
    std::string Table = clients::metricsTable(MetricLegs);
    // With --json, stdout is a JSON document; keep the table on stderr.
    std::fprintf(O.Json ? stderr : stdout, "\nmetrics:\n%s",
                 Table.c_str());
  };

  bool AnyDegraded = false;
  auto Finish = [&](int RC) {
    return (O.FailOnBudget && AnyDegraded && RC == 0) ? 1 : RC;
  };

  // Shared JSON document across Report calls (compare emits several).
  JsonWriter W;
  bool JsonOpen = false;
  auto JsonBegin = [&] {
    if (!O.Json || JsonOpen)
      return;
    W.beginObject();
    W.key("command").value(O.Command.c_str());
    W.key("domain").value(O.Domain.c_str());
    W.key("results").beginArray();
    JsonOpen = true;
  };
  auto JsonEnd = [&](const char *VerdictDvC, const char *VerdictSvD,
                     const char *VerdictPvD = nullptr,
                     const char *VerdictPvC = nullptr) {
    if (!O.Json)
      return 0;
    W.endArray();
    if (VerdictDvC) {
      W.key("direct_vs_syntactic").value(VerdictDvC);
      W.key("semantic_vs_direct").value(VerdictSvD);
    }
    if (VerdictPvD) {
      W.key("pushdown_vs_direct").value(VerdictPvD);
      W.key("pushdown_vs_syntactic").value(VerdictPvC);
    }
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return 0;
  };

  auto Report = [&](const char *RawName, const auto &R) {
    support::TraceSpan S(L.Trace, "report");
    AnyDegraded |= R.Stats.BudgetExhausted;
    std::string Padded = RawName;
    Padded.resize(9, ' ');
    const char *Name = Padded.c_str();
    if (O.Json) {
      Name = RawName;
      JsonBegin();
      W.beginObject();
      W.key("analyzer").value(Name);
      W.key("answer").value(R.Answer.Value.str(L.Ctx));
      W.key("stats").beginObject();
      W.key("goals").value(R.Stats.Goals);
      W.key("cacheHits").value(R.Stats.CacheHits);
      W.key("cuts").value(R.Stats.Cuts);
      W.key("maxDepth").value(R.Stats.MaxDepth);
      W.key("deadPaths").value(R.Stats.DeadPaths);
      W.key("prunedBranches").value(R.Stats.PrunedBranches);
      W.key("budgetExhausted").value(R.Stats.BudgetExhausted);
      W.key("degradeReason").value(support::str(R.Stats.Degraded));
      W.key("loopBounded").value(R.Stats.LoopBounded);
      W.endObject();
      if (O.ShowStore) {
        W.key("store").beginObject();
        for (Symbol X : Vars)
          W.key(std::string(L.Ctx.spelling(X)))
              .value(R.valueOf(X).str(L.Ctx));
        W.endObject();
      }
      W.endObject();
      return;
    }
    std::printf("%s answer: %s\n", Name, R.Answer.Value.str(L.Ctx).c_str());
    std::printf("%s stats:  %s\n", Name,
                clients::describeStats(R.Stats).c_str());
    if (O.ShowStore)
      std::printf("%s store:\n%s", Name,
                  clients::describeVars(L.Ctx, R, Vars).c_str());
    if (O.ShowCfg)
      std::printf("%s cfg:\n%s", Name,
                  clients::describeCfg(L.Ctx, R.Cfg).c_str());
  };

  if (O.Command == "compare") {
    // Each leg records provenance so disagreements can be attributed to
    // the first precision-loss edge on the variable's derivation chain
    // (the Theorem 5.1/5.2 narratives; docs/EXPLAIN.md). The analyzers
    // outlive the reports because loss attribution reads their interners.
    domain::Provenance DProv, SProv, CProv;
    auto DOpts = legOptions("direct");
    DOpts.Prov = &DProv;
    analysis::DirectAnalyzer<D> DA(L.Ctx, L.Anf, Init, DOpts);
    auto T0 = std::chrono::steady_clock::now();
    auto AD = [&] {
      support::TraceSpan S(L.Trace, "analyze:direct");
      return DA.run();
    }();
    finishLeg(T0);
    auto SOpts = legOptions("semantic");
    SOpts.Prov = &SProv;
    analysis::SemanticCpsAnalyzer<D> SA(L.Ctx, L.Anf, Init, SOpts);
    auto T1 = std::chrono::steady_clock::now();
    auto AS = [&] {
      support::TraceSpan S(L.Trace, "analyze:semantic");
      return SA.run();
    }();
    finishLeg(T1);
    auto COpts = legOptions("syntactic");
    COpts.Prov = &CProv;
    analysis::SyntacticCpsAnalyzer<D> CA(L.Ctx, *P, CInit, COpts);
    auto T2 = std::chrono::steady_clock::now();
    auto AC = [&] {
      support::TraceSpan S(L.Trace, "analyze:syntactic");
      return CA.run();
    }();
    finishLeg(T2);
    // `compare --analyzer pushdown` adds the fifth leg and its verdicts
    // against direct (equal on merge-free programs like the Theorem 5.1
    // witness) and against syntactic (never RightMorePrecise).
    domain::Provenance PProv;
    std::optional<analysis::PushdownAnalyzer<D>> PA;
    std::optional<analysis::PushdownResult<D>> APd;
    if (O.Analyzer == "pushdown") {
      auto POpts = legOptions("pushdown");
      POpts.Prov = &PProv;
      PA.emplace(L.Ctx, L.Anf, Init, POpts);
      auto T3 = std::chrono::steady_clock::now();
      APd = [&] {
        support::TraceSpan S(L.Trace, "analyze:pushdown");
        return PA->run();
      }();
      finishLeg(T3);
    }
    Report("direct", AD);
    Report("semantic", AS);
    Report("syntactic", AC);
    if (APd)
      Report("pushdown", *APd);

    // The first loss edge on a leg's derivation chain for \p Var, as a
    // printable note — empty when the chain is pure flow (that leg did
    // not lose anything; the other one did).
    auto LossNote = [&](const domain::Provenance &Prov, const auto &A,
                        const auto &R, Symbol Var) -> std::string {
      std::optional<uint32_t> Slot = R.Vars->tryOf(Var);
      if (!Slot)
        return {};
      domain::ProvId Eid = clients::firstLossEdge(
          Prov, A.interner(), *Slot, Prov.finalStore());
      if (Eid == domain::NoProv)
        return {};
      const domain::ProvEdge &E = Prov.edge(Eid);
      std::string Where = E.Loc.isValid()
                              ? E.Loc.str()
                              : "node " + std::to_string(E.NodeId);
      return std::string(domain::str(E.Kind)) + " at " + Where;
    };
    auto PrintLoss = [&](const char *Leg, std::string Note) {
      if (!Note.empty())
        std::printf("      %s first loses precision via %s\n", Leg,
                    Note.c_str());
    };

    support::TraceSpan VS(L.Trace, "report");
    analysis::Comparison DvC = analysis::compareWithSyntactic<D>(
        L.Ctx, AD, AC, *P, Vars);
    analysis::Comparison SvD =
        analysis::compareDirectWorld<D>(L.Ctx, AS, AD, Vars);
    std::optional<analysis::Comparison> PvD, PvC;
    if (APd) {
      PvD = analysis::compareDirectWorld<D>(L.Ctx, *APd, AD, Vars);
      PvC = analysis::compareWithSyntactic<D>(L.Ctx, *APd, AC, *P, Vars);
    }
    if (O.Json) {
      int RC = Finish(JsonEnd(str(DvC.Overall), str(SvD.Overall),
                              PvD ? str(PvD->Overall) : nullptr,
                              PvC ? str(PvC->Overall) : nullptr));
      printMetrics();
      return RC;
    }
    std::printf("\ndirect vs syntactic-CPS: %s\n", str(DvC.Overall));
    std::printf("semantic vs direct:      %s\n", str(SvD.Overall));
    if (PvD) {
      std::printf("pushdown vs direct:      %s\n", str(PvD->Overall));
      std::printf("pushdown vs syntactic:   %s\n", str(PvC->Overall));
    }
    for (const analysis::VarComparison &VC : DvC.Vars)
      if (VC.Order != analysis::PrecisionOrder::Equal) {
        std::printf("  %s: direct %s vs cps %s (%s)\n",
                    std::string(L.Ctx.spelling(VC.Var)).c_str(),
                    VC.Left.c_str(), VC.Right.c_str(), str(VC.Order));
        PrintLoss("direct", LossNote(DProv, DA, AD, VC.Var));
        PrintLoss("syntactic", LossNote(CProv, CA, AC, VC.Var));
      }
    for (const analysis::VarComparison &VC : SvD.Vars)
      if (VC.Order != analysis::PrecisionOrder::Equal) {
        std::printf("  %s: semantic %s vs direct %s (%s)\n",
                    std::string(L.Ctx.spelling(VC.Var)).c_str(),
                    VC.Left.c_str(), VC.Right.c_str(), str(VC.Order));
        PrintLoss("semantic", LossNote(SProv, SA, AS, VC.Var));
        PrintLoss("direct", LossNote(DProv, DA, AD, VC.Var));
      }
    if (PvD)
      for (const analysis::VarComparison &VC : PvD->Vars)
        if (VC.Order != analysis::PrecisionOrder::Equal) {
          std::printf("  %s: pushdown %s vs direct %s (%s)\n",
                      std::string(L.Ctx.spelling(VC.Var)).c_str(),
                      VC.Left.c_str(), VC.Right.c_str(), str(VC.Order));
          PrintLoss("pushdown", LossNote(PProv, *PA, *APd, VC.Var));
          PrintLoss("direct", LossNote(DProv, DA, AD, VC.Var));
        }
    printMetrics();
    return Finish(0);
  }

  if (O.Analyzer == "direct") {
    std::vector<std::string> Derivation;
    auto LOpts = legOptions("direct");
    if (O.ShowDerivation)
      LOpts.DerivationSink = &Derivation;
    auto T0 = std::chrono::steady_clock::now();
    auto R = [&] {
      support::TraceSpan S(L.Trace, "analyze:direct");
      return analysis::DirectAnalyzer<D>(L.Ctx, L.Anf, Init, LOpts).run();
    }();
    finishLeg(T0);
    if (O.ShowDerivation && !O.Json) {
      std::printf("derivation (Figure 4 style, goal |- answer):\n");
      for (const std::string &Line : Derivation)
        std::printf("  %s\n", Line.c_str());
    }
    Report("direct", R);
  } else if (O.Analyzer == "semantic") {
    auto LOpts = legOptions("semantic");
    auto T0 = std::chrono::steady_clock::now();
    auto R = [&] {
      support::TraceSpan S(L.Trace, "analyze:semantic");
      return analysis::SemanticCpsAnalyzer<D>(L.Ctx, L.Anf, Init, LOpts)
          .run();
    }();
    finishLeg(T0);
    Report("semantic", R);
  } else if (O.Analyzer == "syntactic") {
    auto LOpts = legOptions("syntactic");
    auto T0 = std::chrono::steady_clock::now();
    auto R = [&] {
      support::TraceSpan S(L.Trace, "analyze:syntactic");
      return analysis::SyntacticCpsAnalyzer<D>(L.Ctx, *P, CInit, LOpts)
          .run();
    }();
    finishLeg(T0);
    Report("syntactic", R);
  } else if (O.Analyzer == "dup") {
    auto LOpts = legOptions("dup");
    auto T0 = std::chrono::steady_clock::now();
    auto R = [&] {
      support::TraceSpan S(L.Trace, "analyze:dup");
      return analysis::DupAnalyzer<D>(L.Ctx, L.Anf, Init, O.Budget, LOpts)
          .run();
    }();
    finishLeg(T0);
    Report("dup", R);
  } else if (O.Analyzer == "pushdown") {
    std::vector<std::string> Derivation;
    auto LOpts = legOptions("pushdown");
    if (O.ShowDerivation)
      LOpts.DerivationSink = &Derivation;
    auto T0 = std::chrono::steady_clock::now();
    auto R = [&] {
      support::TraceSpan S(L.Trace, "analyze:pushdown");
      return analysis::PushdownAnalyzer<D>(L.Ctx, L.Anf, Init, LOpts).run();
    }();
    finishLeg(T0);
    if (O.ShowDerivation && !O.Json) {
      std::printf("derivation (pushdown summaries, goal |- paths):\n");
      for (const std::string &Line : Derivation)
        std::printf("  %s\n", Line.c_str());
    }
    Report("pushdown", R);
  } else {
    usage("unknown analyzer");
  }
  int RC = O.Json ? Finish(JsonEnd(nullptr, nullptr)) : Finish(0);
  printMetrics();
  return RC;
}

int cmdAnalyze(const Options &O) {
  support::Tracer T;
  Loaded L;
  if (!O.TraceOut.empty())
    L.Trace = &T;
  int RC = [&] {
    // One "total" span brackets the whole pipeline so phase coverage is
    // auditable (the phase spans should tile nearly all of it).
    support::TraceSpan Total(L.Trace, "total");
    L.load(O);
    if (O.Domain == "constant")
      return analyzeAt<domain::ConstantDomain>(O, L);
    if (O.Domain == "unit")
      return analyzeAt<domain::UnitDomain>(O, L);
    if (O.Domain == "sign")
      return analyzeAt<domain::SignDomain>(O, L);
    if (O.Domain == "parity")
      return analyzeAt<domain::ParityDomain>(O, L);
    if (O.Domain == "interval")
      return analyzeAt<domain::IntervalDomain>(O, L);
    usage("unknown domain");
  }();
  if (L.Trace && !writeTraceFile(O, T))
    return 1;
  return RC;
}

// Process-wide signal state for the long-running commands (batch, fuzz,
// serve). The handler touches only async-signal-safe state: a lock-free
// atomic flag plus the lock-free CancelToken registered before the
// handler was installed. Analyses see the token through the governor's
// periodic probe and degrade via the Section 4.4 cut path, so the report
// that follows an interrupt is valid JSON over sound partial results.
std::atomic<int> GSignal{0};
support::CancelToken *GInterrupt = nullptr;

/// Installs SIGINT/SIGTERM handlers. The returned token is anchored in a
/// function-local static, so the handler's raw pointer outlives every
/// command that runs after installation.
std::shared_ptr<support::CancelToken> installInterruptHandlers() {
  static std::shared_ptr<support::CancelToken> Tok =
      std::make_shared<support::CancelToken>();
  GInterrupt = Tok.get();
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = [](int Sig) {
    GSignal.store(Sig);
    if (GInterrupt)
      GInterrupt->cancel();
  };
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESTART;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  return Tok;
}

/// 130 for SIGINT, 143 for SIGTERM — the conventional 128+signal codes,
/// emitted after the partial report has been flushed.
int interruptExitCode() {
  int Sig = GSignal.load();
  return 128 + (Sig ? Sig : SIGINT);
}

serve::FlightRecorder *GFlight = nullptr;
char GFlightCrashPath[512] = {};

/// Installs best-effort fatal-signal handlers (SIGSEGV/SIGBUS/SIGABRT)
/// that spill the flight recorder before the process dies, so even a
/// crash leaves a post-mortem naming the requests in flight. fatalDump
/// is written for this context: try_lock, pre-rendered records, raw
/// write+rename, checksummed frame so a torn dump is detectable.
/// SA_RESETHAND restores the default action, and the handler re-raises,
/// so the process still dies with the original signal disposition.
void installFatalDumpHandlers(serve::FlightRecorder *Flight,
                              const std::string &CrashPath) {
  GFlight = Flight;
  std::snprintf(GFlightCrashPath, sizeof(GFlightCrashPath), "%s",
                CrashPath.c_str());
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = [](int Sig) {
    if (GFlight)
      GFlight->fatalDump(GFlightCrashPath);
    ::raise(Sig);
  };
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &SA, nullptr);
  sigaction(SIGBUS, &SA, nullptr);
  sigaction(SIGABRT, &SA, nullptr);
}

int cmdBatch(const Options &O) {
  // O.File is a corpus directory here, not a single program.
  Result<std::vector<std::string>> Files = clients::collectCorpus(O.File);
  if (!Files) {
    std::fprintf(stderr, "error: %s\n", Files.error().str().c_str());
    return 1;
  }
  if (Files->empty()) {
    std::fprintf(stderr, "error: no *.scm programs under '%s'\n",
                 O.File.c_str());
    return 1;
  }
  clients::BatchOptions BOpts;
  BOpts.Threads = O.Threads;
  BOpts.Domain = O.Domain;
  BOpts.DupBudget = O.Budget;
  BOpts.MaxGoals = O.MaxGoals ? O.MaxGoals : 5'000'000;
  BOpts.LoopUnroll = O.LoopUnroll;
  BOpts.DeadlineMs = O.DeadlineMs;
  BOpts.MaxStoreBytes = O.MaxStoreMb * 1024 * 1024;
  BOpts.MaxDepth = O.MaxDepthCap;
  BOpts.FailOnBudget = O.FailOnBudget;
  BOpts.Retry = O.Retry;
  BOpts.UseSummaries = !O.NoSummaries;
  BOpts.IncludeTiming = !O.NoTiming;
  BOpts.Interrupt = installInterruptHandlers();
  support::Tracer T;
  if (!O.TraceOut.empty())
    BOpts.Trace = &T;
  clients::BatchResult R = clients::runBatchFiles(*Files, BOpts);
  if (BOpts.Trace && !writeTraceFile(O, T))
    return 1;
  std::string Json = clients::batchJson(R, BOpts);
  if (!O.OutFile.empty()) {
    std::ofstream Out(O.OutFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.OutFile.c_str());
      return 1;
    }
    Out << Json << '\n';
  } else {
    std::printf("%s\n", Json.c_str());
  }
  uint64_t Failures = 0;
  for (const clients::BatchProgramResult &P : R.Programs)
    if (!P.Ok) {
      ++Failures;
      std::fprintf(stderr, "warning: %s: [%s] %s\n", P.Name.c_str(),
                   clients::str(P.Kind), P.Error.c_str());
    }
  // The report above is complete and valid even after an interrupt
  // (degraded/skipped programs are ordinary records); the exit code is
  // what tells callers the run was cut short.
  if (R.Interrupted) {
    std::fprintf(stderr, "interrupted: partial report flushed\n");
    return interruptExitCode();
  }
  // Failures are contained per-program records by design; only strict
  // mode turns them into a failing exit.
  return (O.FailOnBudget && Failures) ? 1 : 0;
}

/// Builds the oracle knobs shared by `fuzz` campaigns and --replay.
Result<fuzz::OracleOptions> fuzzOracleOptions(const Options &O) {
  fuzz::OracleOptions OOpts;
  OOpts.Domain = O.Domain;
  if (!O.OracleList.empty()) {
    Result<uint32_t> Mask = fuzz::parseOracleMask(O.OracleList);
    if (!Mask)
      return Mask.error();
    OOpts.Mask = *Mask;
  }
  if (O.MaxGoals)
    OOpts.MaxGoals = O.MaxGoals;
  OOpts.MaxSteps = O.Fuel;
  OOpts.LoopUnroll = O.LoopUnroll;
  OOpts.DupBudget = O.Budget;
  OOpts.DeadlineMs = O.DeadlineMs;
  OOpts.MaxStoreBytes = O.MaxStoreMb * 1024 * 1024;
  OOpts.MaxDepth = O.MaxDepthCap;
  return OOpts;
}

int cmdFuzz(const Options &O) {
  Result<fuzz::OracleOptions> OOpts = fuzzOracleOptions(O);
  if (!OOpts) {
    std::fprintf(stderr, "error: %s\n", OOpts.error().str().c_str());
    return 2;
  }

#ifdef CPSFLOW_FAULT_INJECTION
  // CPSFLOW_FUZZ_INJECT=<oracle tag> forces a violation at that oracle's
  // fault site — the end-to-end canary for detect -> shrink -> replay
  // ("" or "all" trips every oracle).
  if (const char *Inject = std::getenv("CPSFLOW_FUZZ_INJECT")) {
    fault::Plan P;
    P.Where = fault::Site::FuzzOracle;
    P.What = fault::Action::Throw;
    if (std::strcmp(Inject, "all") != 0)
      P.Name = Inject;
    fault::arm(P);
  }
#endif

  if (!O.ReplayFile.empty()) {
    Result<fuzz::OracleOutcome> Out =
        fuzz::replaySource(readInput(O.ReplayFile), *OOpts);
    if (!Out) {
      std::fprintf(stderr, "error: %s\n", Out.error().str().c_str());
      return 1;
    }
    for (const fuzz::OracleViolation &V : Out->Violations)
      std::printf("[%s] %s\n", fuzz::tag(V.Id), V.Message.c_str());
    if (Out->Violations.empty()) {
      std::printf("clean: no enabled oracle is violated\n");
      return 0;
    }
    return 1;
  }

  // The optional positional is a seed corpus directory for the mutator.
  std::vector<std::pair<std::string, std::string>> Seeds;
  if (!O.File.empty()) {
    Result<std::vector<std::string>> Files = clients::collectCorpus(O.File);
    if (!Files) {
      std::fprintf(stderr, "error: %s\n", Files.error().str().c_str());
      return 1;
    }
    for (const std::string &Path : *Files)
      Seeds.emplace_back(std::filesystem::path(Path).filename().string(),
                         readInput(Path));
  }

  fuzz::CampaignOptions COpts;
  COpts.FuzzSeed = O.FuzzSeed;
  COpts.Threads = O.Threads;
  COpts.Iterations = O.Iterations;
  COpts.Seconds = O.Seconds;
  COpts.Wave = O.Wave;
  COpts.MaxFindings = O.MaxFindings;
  COpts.Shrink = !O.NoShrink;
  COpts.Oracle = *OOpts;
  COpts.Oracle.Interrupt = installInterruptHandlers();
  COpts.IncludeTiming = !O.NoTiming;
  support::Tracer T;
  if (!O.TraceOut.empty())
    COpts.Trace = &T;

  fuzz::CampaignResult R = fuzz::runCampaign(COpts, Seeds);
  if (COpts.Trace && !writeTraceFile(O, T))
    return 1;

  std::string Json = fuzz::campaignJson(R, COpts);
  if (!O.OutFile.empty()) {
    std::ofstream Out(O.OutFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.OutFile.c_str());
      return 1;
    }
    Out << Json << '\n';
  } else {
    std::printf("%s\n", Json.c_str());
  }

  if (!O.FindingsDir.empty()) {
    Result<size_t> N = fuzz::writeFindings(O.FindingsDir, R, COpts);
    if (!N) {
      std::fprintf(stderr, "error: %s\n", N.error().str().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu file(s) under %s\n", *N,
                 O.FindingsDir.c_str());
  }

  std::fprintf(stderr, "%s", fuzz::campaignSummary(R, COpts).c_str());
  if (R.Interrupted) {
    std::fprintf(stderr, "interrupted: partial report flushed\n");
    return interruptExitCode();
  }
  return R.Findings.empty() ? 0 : 1;
}

int cmdServe(const Options &O) {
  if (O.ServeSocket.empty())
    usage("serve requires --socket PATH");

#ifdef CPSFLOW_FAULT_INJECTION
  // CPSFLOW_SERVE_INJECT=SPEC[,SPEC...] arms serve-layer faults for soak
  // runs, the serving analogue of CPSFLOW_FUZZ_INJECT. Each SPEC is
  // worker | handler | memory | stall (optionally :N = every Nth
  // request; default every 3rd) or tear (every cache entry write is
  // torn). The soak test's claim is that none of these ever kills the
  // process or wedges a worker — only per-request structured errors.
  if (const char *Inject = std::getenv("CPSFLOW_SERVE_INJECT")) {
    std::stringstream Specs(Inject);
    std::string Spec;
    while (std::getline(Specs, Spec, ',')) {
      if (Spec.empty())
        continue;
      uint64_t Every = 3;
      size_t Colon = Spec.find(':');
      if (Colon != std::string::npos) {
        Every = flagUint("CPSFLOW_SERVE_INJECT", Spec.c_str() + Colon + 1,
                         /*Max=*/uint64_t{1} << 32);
        Spec.resize(Colon);
      }
      fault::Plan P;
      P.AtCount = 0;
      P.Every = Every;
      if (Spec == "worker") {
        P.Where = fault::Site::ServeWorker;
        P.What = fault::Action::Throw;
      } else if (Spec == "handler") {
        P.Where = fault::Site::ServeHandler;
        P.What = fault::Action::Throw;
      } else if (Spec == "memory") {
        P.Where = fault::Site::ServeWorker;
        P.What = fault::Action::BadAlloc;
      } else if (Spec == "stall") {
        P.Where = fault::Site::ServeHandler;
        P.What = fault::Action::Stall;
        P.StallMs = 200;
      } else if (Spec == "tear") {
        P.Where = fault::Site::CacheWrite;
        P.What = fault::Action::Tear;
      } else {
        std::fprintf(stderr,
                     "error: CPSFLOW_SERVE_INJECT: unknown spec '%s'\n",
                     Spec.c_str());
        return 2;
      }
      fault::arm(P);
    }
  }
#endif

  serve::ServeOptions SOpts;
  SOpts.SocketPath = O.ServeSocket;
  SOpts.Workers = O.ServeWorkers;
  SOpts.QueueCap = static_cast<size_t>(O.QueueCap);
  SOpts.CacheDir = O.CacheDir;
  SOpts.DrainGraceMs = O.DrainGraceMs;
  SOpts.Incremental = !O.NoIncremental;
  SOpts.LogPath = O.LogOut;
  SOpts.LogRotateBytes = O.LogRotateMb * 1024 * 1024;
  SOpts.FlightRecords = static_cast<size_t>(O.FlightRecords);
  SOpts.FlightDumpPath = O.FlightDump;
  SOpts.TraceSlowMs = O.TraceSlowMs;
  SOpts.TraceDir = O.TraceDir;
  SOpts.TraceSlowMax = O.TraceSlowMax;
  if (O.MaxGoals)
    SOpts.Defaults.MaxGoals = O.MaxGoals;
  if (O.DeadlineMs > 0)
    SOpts.Defaults.DeadlineMs = O.DeadlineMs;
  if (O.MaxStoreMb)
    SOpts.Defaults.MaxStoreBytes = O.MaxStoreMb * 1024 * 1024;
  if (O.MaxDepthCap)
    SOpts.Defaults.MaxDepth = O.MaxDepthCap;

  serve::Server S(SOpts);
  Result<bool> Started = S.start();
  if (!Started) {
    std::fprintf(stderr, "error: %s\n", Started.error().str().c_str());
    return 1;
  }
  // Handlers only set the flag this loop polls: requestDrain() takes
  // locks, so it must not run inside the handler itself.
  installInterruptHandlers();
  if (S.flight())
    installFatalDumpHandlers(S.flight(),
                             S.options().FlightDumpPath + ".crash");
  std::fprintf(stderr,
               "cpsflow serve: listening on %s (%u workers, queue cap "
               "%zu, cache %s)\n",
               O.ServeSocket.c_str(), SOpts.Workers, SOpts.QueueCap,
               O.CacheDir.empty() ? "off" : O.CacheDir.c_str());
  while (GSignal.load() == 0 && !S.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::fprintf(stderr, "cpsflow serve: draining\n");
  S.requestDrain();
  S.waitDrained();
  std::fprintf(stderr, "cpsflow serve: drained, exiting\n");
  // A signal-initiated exit reports 128+sig; a shutdown op is a clean 0.
  return GSignal.load() ? interruptExitCode() : 0;
}

int cmdVersion() {
  std::printf("cpsflow — direct vs CPS data-flow analysis testbed\n");
  std::printf("build configuration:\n");
#ifdef NDEBUG
  std::printf("  assertions:       off\n");
#else
  std::printf("  assertions:       on\n");
#endif
#ifdef CPSFLOW_FAULT_INJECTION
  std::printf("  fault injection:  available\n");
#else
  std::printf("  fault injection:  unavailable\n");
#endif
#ifdef __VERSION__
  std::printf("  compiler:         %s\n", __VERSION__);
#endif
  std::printf("JSON schema versions this binary emits:\n");
  std::printf("  batch report (batch --out):       %d\n",
              clients::BatchSchemaVersion);
  std::printf("  fuzz findings (fuzz):             %d\n",
              fuzz::FindingsSchemaVersion);
  std::printf("  provenance graph (explain --graph-out): %d\n",
              clients::ProvenanceGraphSchemaVersion);
  std::printf("  serve request log (serve --log-out):    %d\n",
              serve::RequestLogSchemaVersion);
  std::printf("  serve flight recorder (dump frames):    %d\n",
              serve::FlightRecorderSchemaVersion);
  return 0;
}

int cmdInline(const Options &O) {
  Loaded L;
  L.load(O);
  clients::InlineResult R = clients::inlineCalls(L.Ctx, L.Anf);
  std::printf("%s\n", syntax::printIndented(L.Ctx, R.Inlined).c_str());
  std::fprintf(stderr, "; inlined %zu calls in %u passes\n",
               R.InlinedCalls, R.Passes);
  return 0;
}

int cmdFold(const Options &O) {
  Loaded L;
  L.load(O);
  auto R = analysis::DirectAnalyzer<domain::ConstantDomain>(L.Ctx, L.Anf)
               .run();
  clients::FoldResult F = clients::constantFold(L.Ctx, L.Anf, R);
  std::printf("%s\n", syntax::printIndented(L.Ctx, F.Folded).c_str());
  std::fprintf(stderr, "; folded %zu applications, removed %zu branches\n",
               F.FoldedApps, F.ElimBranches);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O = parseArgs(Argc, Argv);
  if (O.Command == "parse")
    return cmdParse(O);
  if (O.Command == "anf")
    return cmdAnf(O);
  if (O.Command == "steps")
    return cmdSteps(O);
  if (O.Command == "cps")
    return cmdCps(O);
  if (O.Command == "run")
    return cmdRun(O);
  if (O.Command == "analyze" || O.Command == "compare" ||
      O.Command == "explain")
    return cmdAnalyze(O);
  if (O.Command == "version")
    return cmdVersion();
  if (O.Command == "fold")
    return cmdFold(O);
  if (O.Command == "inline")
    return cmdInline(O);
  if (O.Command == "batch")
    return cmdBatch(O);
  if (O.Command == "fuzz")
    return cmdFuzz(O);
  if (O.Command == "serve")
    return cmdServe(O);
  usage(("unknown command '" + O.Command + "'").c_str());
}
