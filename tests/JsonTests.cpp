//===- tests/JsonTests.cpp - JSON writer tests ------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace cpsflow;

namespace {

TEST(Json, EmptyObjectAndArray) {
  {
    JsonWriter W;
    W.beginObject().endObject();
    EXPECT_EQ(W.str(), "{}");
  }
  {
    JsonWriter W;
    W.beginArray().endArray();
    EXPECT_EQ(W.str(), "[]");
  }
}

TEST(Json, KeyValueCommas) {
  JsonWriter W;
  W.beginObject();
  W.key("a").value(1);
  W.key("b").value("two");
  W.key("c").value(true);
  W.endObject();
  EXPECT_EQ(W.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(Json, NestedStructures) {
  JsonWriter W;
  W.beginObject();
  W.key("xs").beginArray();
  W.value(1).value(2);
  W.beginObject().key("y").value(3).endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), R"({"xs":[1,2,{"y":3}]})");
}

TEST(Json, EscapesSpecialCharacters) {
  JsonWriter W;
  W.beginObject();
  W.key("s").value("a\"b\\c\nd\te");
  W.endObject();
  EXPECT_EQ(W.str(), R"({"s":"a\"b\\c\nd\te"})");
}

TEST(Json, EscapesControlCharacters) {
  JsonWriter W;
  W.beginObject();
  std::string Ctl = "x";
  Ctl += static_cast<char>(1);
  W.key("s").value(Ctl);
  W.endObject();
  EXPECT_EQ(W.str(), "{\"s\":\"x\\u0001\"}");
}

TEST(Json, NegativeAndLargeNumbers) {
  JsonWriter W;
  W.beginArray();
  W.value(static_cast<int64_t>(-42));
  W.value(static_cast<uint64_t>(1) << 40);
  W.value(false);
  W.endArray();
  EXPECT_EQ(W.str(), "[-42,1099511627776,false]");
}

} // namespace
