//===- syntax/Printer.cpp - Pretty-printer for language A -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Printer.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

class PrinterImpl {
public:
  PrinterImpl(const Context &Ctx, bool Indented)
      : Ctx(Ctx), Indented(Indented) {}

  std::string render(const Term *T) {
    term(T, 0);
    return Out.str();
  }

  std::string render(const Value *V) {
    value(V, 0);
    return Out.str();
  }

private:
  void newline(int Depth) {
    if (!Indented) {
      Out << ' ';
      return;
    }
    Out << '\n';
    for (int I = 0; I < Depth; ++I)
      Out << "  ";
  }

  void value(const Value *V, int Depth) {
    switch (V->kind()) {
    case ValueKind::VK_Num:
      Out << cast<NumValue>(V)->value();
      return;
    case ValueKind::VK_Var:
      Out << Ctx.spelling(cast<VarValue>(V)->name());
      return;
    case ValueKind::VK_Prim:
      Out << (cast<PrimValue>(V)->op() == PrimOp::Add1 ? "add1" : "sub1");
      return;
    case ValueKind::VK_Lam: {
      const auto *Lam = cast<LamValue>(V);
      Out << "(lambda (" << Ctx.spelling(Lam->param()) << ")";
      newline(Depth + 1);
      term(Lam->body(), Depth + 1);
      Out << ')';
      return;
    }
    }
  }

  void term(const Term *T, int Depth) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      value(cast<ValueTerm>(T)->value(), Depth);
      return;
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      Out << '(';
      term(App->fun(), Depth);
      Out << ' ';
      term(App->arg(), Depth);
      Out << ')';
      return;
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      Out << "(let (" << Ctx.spelling(Let->var()) << ' ';
      term(Let->bound(), Depth + 1);
      Out << ')';
      newline(Depth + 1);
      term(Let->body(), Depth + 1);
      Out << ')';
      return;
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      Out << "(if0 ";
      term(If->cond(), Depth);
      newline(Depth + 2);
      term(If->thenBranch(), Depth + 2);
      newline(Depth + 2);
      term(If->elseBranch(), Depth + 2);
      Out << ')';
      return;
    }
    case TermKind::TK_Loop:
      Out << "(loop)";
      return;
    }
  }

  const Context &Ctx;
  bool Indented;
  std::ostringstream Out;
};

} // namespace

std::string cpsflow::syntax::print(const Context &Ctx, const Term *T) {
  return PrinterImpl(Ctx, /*Indented=*/false).render(T);
}

std::string cpsflow::syntax::print(const Context &Ctx, const Value *V) {
  return PrinterImpl(Ctx, /*Indented=*/false).render(V);
}

std::string cpsflow::syntax::printIndented(const Context &Ctx,
                                           const Term *T) {
  return PrinterImpl(Ctx, /*Indented=*/true).render(T);
}
