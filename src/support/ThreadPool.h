//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for embarrassingly parallel batch work
/// (the corpus driver and the multi-threaded benches). Jobs are opaque
/// closures; there is no work stealing, no priorities, and no futures —
/// callers index results into pre-sized slots and call wait().
///
/// Jobs must not share mutable state unless they synchronize themselves;
/// the intended pattern is one independent job per corpus program, each
/// with its own Context and analyzers.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_THREADPOOL_H
#define CPSFLOW_SUPPORT_THREADPOOL_H

#include <cassert>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpsflow {

/// Fixed-size worker pool. See the file comment.
class ThreadPool {
public:
  /// Spawns \p Threads workers (clamped to at least one).
  explicit ThreadPool(unsigned Threads) {
    if (Threads == 0)
      Threads = 1;
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this, I] {
        WorkerId = I;
        workerLoop();
      });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(M);
      ShuttingDown = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Index of the pool worker running the calling job, 0-based; 0 on any
  /// thread that is not a pool worker (e.g. a caller running jobs
  /// inline). Used to label observability output (trace tracks,
  /// per-thread timing), never for correctness.
  static unsigned currentWorker() { return WorkerId; }

  /// Enqueues \p Job. Safe to call from any thread (including from inside
  /// a job).
  void submit(std::function<void()> Job) {
    {
      std::unique_lock<std::mutex> Lock(M);
      assert(!ShuttingDown && "submit after destruction began");
      Queue.push_back(std::move(Job));
      ++Outstanding;
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every submitted job has finished running.
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Idle.wait(Lock, [this] { return Outstanding == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Job;
      {
        std::unique_lock<std::mutex> Lock(M);
        WakeWorkers.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
        if (Queue.empty())
          return; // shutting down and drained
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
      {
        std::unique_lock<std::mutex> Lock(M);
        if (--Outstanding == 0)
          Idle.notify_all();
      }
    }
  }

  inline static thread_local unsigned WorkerId = 0;

  std::mutex M;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t Outstanding = 0;
  bool ShuttingDown = false;
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_THREADPOOL_H
