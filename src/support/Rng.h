//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic PRNG (xoshiro256**) for the program generator and
/// property tests. std::mt19937 distributions are not guaranteed identical
/// across standard library implementations; this generator is, so seeds in
/// EXPERIMENTS.md reproduce bit-identical workloads everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_RNG_H
#define CPSFLOW_SUPPORT_RNG_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>

namespace cpsflow {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ull;
      Word = mix64(X);
    }
  }

  /// Next raw 64-bit word.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound) via Lemire's multiply-shift reduction.
  /// \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection-free enough for workload generation; bias is < 2^-64*Bound.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability \p Numerator / \p Denominator.
  bool chance(uint64_t Numerator, uint64_t Denominator) {
    assert(Denominator > 0 && "zero denominator");
    return below(Denominator) < Numerator;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_RNG_H
