//===- interp/SemanticCps.cpp - Figure 2: semantic-CPS machine --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/SemanticCps.h"

#include "anf/Anf.h"
#include "syntax/Printer.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::interp;
using namespace cpsflow::syntax;

RunResult SemanticCpsInterp::run(const Term *Program,
                                 const std::vector<InitialBinding> &Initial) {
  assert(anf::isAnfQuick(Program) &&
         "the Figure 2 machine is defined on A-normal forms");

  RunResult Result;
  Result.Status = RunStatus::Ok;

  const EnvNode *Env = nullptr;
  for (const InitialBinding &B : Initial)
    Env = Envs.extend(Env, B.Var, TheStore.alloc(B.Var, B.Value));

  // Machine registers: either evaluating a term (Mode == Eval) or returning
  // a value through the continuation (Mode == Return, i.e. appr).
  enum class Mode { Eval, Return };
  Mode M = Mode::Eval;
  const Term *Ctl = Program;
  RtValue Ret;
  std::vector<Frame> Kont; // top of stack at the back

  auto Stuck = [&](const char *Why) {
    Result.Status = RunStatus::Stuck;
    Result.Message = Why;
  };

  // phi of Figure 1, shared by Figure 2.
  auto Phi = [&](const Value *V, const EnvNode *Rho,
                 RtValue &Out) -> bool {
    switch (V->kind()) {
    case ValueKind::VK_Num:
      Out = RtValue::number(cast<NumValue>(V)->value());
      return true;
    case ValueKind::VK_Var: {
      const EnvNode *B = EnvArena::lookup(Rho, cast<VarValue>(V)->name());
      if (!B) {
        Stuck("unbound variable");
        return false;
      }
      Out = TheStore.at(B->Location);
      return true;
    }
    case ValueKind::VK_Prim:
      Out = cast<PrimValue>(V)->op() == PrimOp::Add1 ? RtValue::inc()
                                                     : RtValue::dec();
      return true;
    case ValueKind::VK_Lam:
      Out = RtValue::closure(cast<LamValue>(V), Rho);
      return true;
    }
    Stuck("unknown value kind");
    return false;
  };

  while (Result.Status == RunStatus::Ok) {
    if (++Result.Steps > Limits.MaxSteps) {
      Result.Status = RunStatus::OutOfFuel;
      Result.Message = "step budget exceeded";
      break;
    }
    MaxKontDepth = std::max(MaxKontDepth, Kont.size());

    if (TraceCtx && Trace.size() < MaxTrace) {
      std::ostringstream O;
      O << "[kont " << Kont.size() << "] ";
      if (M == Mode::Return)
        O << "return " << str(*TraceCtx, Ret);
      else
        O << "eval " << snippet(syntax::print(*TraceCtx, Ctl));
      Trace.push_back(O.str());
    }

    if (M == Mode::Return) {
      // appr: (nil, A) is the final answer; otherwise bind the return
      // value, restore the frame's environment, pop, continue.
      if (Kont.empty()) {
        Result.Value = Ret;
        return Result;
      }
      Frame F = Kont.back();
      Kont.pop_back();
      Loc L = TheStore.alloc(F.Let->var(), Ret);
      Env = Envs.extend(F.Env, F.Let->var(), L);
      Ctl = F.Let->body();
      M = Mode::Eval;
      continue;
    }

    // Mode::Eval over the ANF grammar.
    if (const auto *VT = dyn_cast<ValueTerm>(Ctl)) {
      RtValue U;
      if (!Phi(VT->value(), Env, U))
        break;
      Ret = U;
      M = Mode::Return;
      continue;
    }

    const auto *Let = cast<LetTerm>(Ctl);
    const Term *Bound = Let->bound();
    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      RtValue U;
      if (!Phi(cast<ValueTerm>(Bound)->value(), Env, U))
        break;
      Loc L = TheStore.alloc(Let->var(), U);
      Env = Envs.extend(Env, Let->var(), L);
      Ctl = Let->body();
      continue;
    }
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      RtValue Fun, Arg;
      if (!Phi(cast<ValueTerm>(App->fun())->value(), Env, Fun) ||
          !Phi(cast<ValueTerm>(App->arg())->value(), Env, Arg))
        break;
      Kont.push_back(Frame{Let, Env});
      // appk.
      switch (Fun.Tag) {
      case RtValue::Kind::Inc:
      case RtValue::Kind::Dec:
        if (!Arg.isNum()) {
          Stuck("add1/sub1 applied to a non-number");
          break;
        }
        Ret = RtValue::number(Fun.Tag == RtValue::Kind::Inc ? Arg.Num + 1
                                                            : Arg.Num - 1);
        M = Mode::Return;
        break;
      case RtValue::Kind::Closure: {
        Loc L = TheStore.alloc(Fun.Lam->param(), Arg);
        Env = Envs.extend(Fun.Env, Fun.Lam->param(), L);
        Ctl = Fun.Lam->body();
        break;
      }
      case RtValue::Kind::Num:
        Stuck("application of a number");
        break;
      }
      continue;
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      RtValue Cond;
      if (!Phi(cast<ValueTerm>(If->cond())->value(), Env, Cond))
        break;
      Kont.push_back(Frame{Let, Env});
      bool TakeThen = Cond.isNum() && Cond.Num == 0;
      Ctl = TakeThen ? If->thenBranch() : If->elseBranch();
      continue;
    }
    case TermKind::TK_Loop:
      Result.Status = RunStatus::Diverged;
      Result.Message = "loop construct never returns";
      break;
    case TermKind::TK_Let:
      Stuck("not A-normal form: let-bound let");
      break;
    }
  }

  return Result;
}
