//===- serve/MemoStore.h - Hot cross-request memo tables --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's in-memory home for analysis::MemoTable snapshots —
/// the state that makes re-analysis after an edit incremental. Tables are
/// keyed by everything that shapes an answer *except* the program source:
/// analyzer, domain, and every governor budget. Two requests with the
/// same key but different sources still share a table, because the table
/// itself is content-addressed (term digests, spelling hashes) and
/// self-validating: entries that do not match the new program simply
/// never replay, and a closure-universe change drops the whole table at
/// import time.
///
/// Publication is copy-on-write: merge() builds a fresh table and swaps
/// the shared_ptr, so workers that already took a snapshot() keep reading
/// their (immutable) table with no locking beyond the pointer swap. A
/// merge whose universe agrees with the resident table appends only
/// entries with unseen fingerprints, up to MaxEntries; a universe change
/// (an edit that touched a lambda) replaces the table outright — the old
/// entries could never replay again anyway.
///
/// Degraded runs never reach this store: the analyzer refuses to export
/// under a tripped budget, and Analyze.cpp only merges complete runs.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SERVE_MEMOSTORE_H
#define CPSFLOW_SERVE_MEMOSTORE_H

#include "analysis/MemoTransfer.h"
#include "support/Hashing.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace cpsflow {
namespace serve {

/// Everything that must agree for a memo entry recorded by one request to
/// be sound for another: the CacheKey minus the source digest.
struct MemoStoreKey {
  std::string Analyzer;
  std::string Domain;
  uint64_t MaxGoals = 0;
  uint32_t LoopUnroll = 0;
  uint64_t DupBudget = 0;
  bool UseSummaries = true;

  friend bool operator==(const MemoStoreKey &A, const MemoStoreKey &B) {
    return A.Analyzer == B.Analyzer && A.Domain == B.Domain &&
           A.MaxGoals == B.MaxGoals && A.LoopUnroll == B.LoopUnroll &&
           A.DupBudget == B.DupBudget && A.UseSummaries == B.UseSummaries;
  }
};

struct MemoStoreKeyHash {
  size_t operator()(const MemoStoreKey &K) const {
    uint64_t H = 0x6d656d6f73746f72ull; // "memostor"
    hashCombine(H, std::hash<std::string>()(K.Analyzer));
    hashCombine(H, std::hash<std::string>()(K.Domain));
    hashCombine(H, K.MaxGoals);
    hashCombine(H, uint64_t(K.LoopUnroll));
    hashCombine(H, K.DupBudget);
    hashCombine(H, uint64_t(K.UseSummaries));
    return mix64(H);
  }
};

class MemoStore {
public:
  /// Entry cap per table: past this, merges stop appending (the resident
  /// entries keep replaying; new ones are dropped until a universe change
  /// resets the table). Bounds daemon memory under adversarial churn.
  static constexpr size_t MaxEntries = 1u << 16;

  /// The resident table for \p K, or null. The snapshot is immutable and
  /// safe to read for as long as the pointer is held, concurrent merges
  /// included. \p D must be the domain \p K.Domain names.
  template <typename D>
  std::shared_ptr<const analysis::MemoTable<D>>
  snapshot(const MemoStoreKey &K) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Tables.find(K);
    if (It == Tables.end())
      return nullptr;
    return std::static_pointer_cast<const analysis::MemoTable<D>>(
        It->second.Table);
  }

  /// Publishes a completed run's export. Same universe: append entries
  /// with new fingerprints (copy-on-write). Different universe (or first
  /// table for the key): \p Exported becomes the resident table.
  template <typename D>
  void merge(const MemoStoreKey &K, analysis::MemoTable<D> &&Exported) {
    if (Exported.Entries.empty())
      return;
    std::lock_guard<std::mutex> Lock(Mu);
    Slot &S = Tables[K];
    auto Cur = std::static_pointer_cast<const analysis::MemoTable<D>>(S.Table);
    if (!Cur || Cur->UniverseLamDigests != Exported.UniverseLamDigests) {
      if (Exported.Entries.size() > MaxEntries)
        Exported.Entries.resize(MaxEntries);
      S.Entries = Exported.Entries.size();
      S.Table = std::make_shared<analysis::MemoTable<D>>(std::move(Exported));
      return;
    }
    std::unordered_set<uint64_t> Seen;
    Seen.reserve(Cur->Entries.size());
    for (const analysis::XferEntry<D> &E : Cur->Entries)
      Seen.insert(E.fingerprint());
    auto Next = std::make_shared<analysis::MemoTable<D>>(*Cur);
    for (analysis::XferEntry<D> &E : Exported.Entries) {
      if (Next->Entries.size() >= MaxEntries)
        break;
      if (Seen.insert(E.fingerprint()).second)
        Next->Entries.push_back(std::move(E));
    }
    if (Next->Entries.size() == Cur->Entries.size())
      return; // nothing new; keep the resident table
    S.Entries = Next->Entries.size();
    S.Table = std::move(Next);
  }

  /// Observability for the `stats` op: live table count and total
  /// resident entries.
  struct StoreStats {
    uint64_t Tables = 0;
    uint64_t Entries = 0;
  };
  StoreStats stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    StoreStats Out;
    Out.Tables = Tables.size();
    for (const auto &[K, S] : Tables)
      Out.Entries += S.Entries;
    return Out;
  }

private:
  struct Slot {
    /// Type-erased MemoTable<D>; D is named by the key's Domain, so the
    /// typed accessors' casts are safe by construction.
    std::shared_ptr<const void> Table;
    size_t Entries = 0;
  };

  mutable std::mutex Mu;
  std::unordered_map<MemoStoreKey, Slot, MemoStoreKeyHash> Tables;
};

} // namespace serve
} // namespace cpsflow

#endif // CPSFLOW_SERVE_MEMOSTORE_H
