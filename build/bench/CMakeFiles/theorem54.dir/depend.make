# Empty dependencies file for theorem54.
# This may be replaced when dependencies are built.
