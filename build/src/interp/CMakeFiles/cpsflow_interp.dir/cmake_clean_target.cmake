file(REMOVE_RECURSE
  "libcpsflow_interp.a"
)
