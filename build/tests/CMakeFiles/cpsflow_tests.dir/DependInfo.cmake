
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AgreementTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/AgreementTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/AgreementTests.cpp.o.d"
  "/root/repo/tests/AnalyzerEdgeTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/AnalyzerEdgeTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/AnalyzerEdgeTests.cpp.o.d"
  "/root/repo/tests/AnalyzerUnitTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/AnalyzerUnitTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/AnalyzerUnitTests.cpp.o.d"
  "/root/repo/tests/AnfTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/AnfTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/AnfTests.cpp.o.d"
  "/root/repo/tests/CfgTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/CfgTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/CfgTests.cpp.o.d"
  "/root/repo/tests/ClientTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/ClientTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/ClientTests.cpp.o.d"
  "/root/repo/tests/CpsTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/CpsTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/CpsTests.cpp.o.d"
  "/root/repo/tests/CrossDomainTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/CrossDomainTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/CrossDomainTests.cpp.o.d"
  "/root/repo/tests/DomainTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/DomainTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/DomainTests.cpp.o.d"
  "/root/repo/tests/DupAnalyzerTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/DupAnalyzerTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/DupAnalyzerTests.cpp.o.d"
  "/root/repo/tests/ExhaustiveTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/ExhaustiveTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/ExhaustiveTests.cpp.o.d"
  "/root/repo/tests/InlineTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/InlineTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/InlineTests.cpp.o.d"
  "/root/repo/tests/InterpTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/InterpTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/InterpTests.cpp.o.d"
  "/root/repo/tests/JsonTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/JsonTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/JsonTests.cpp.o.d"
  "/root/repo/tests/ReductionTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/ReductionTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/ReductionTests.cpp.o.d"
  "/root/repo/tests/RobustnessTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/RobustnessTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/RobustnessTests.cpp.o.d"
  "/root/repo/tests/SoundnessTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/SoundnessTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/SoundnessTests.cpp.o.d"
  "/root/repo/tests/SugarTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/SugarTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/SugarTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/SyntaxTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/SyntaxTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/SyntaxTests.cpp.o.d"
  "/root/repo/tests/TheoremTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/TheoremTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/TheoremTests.cpp.o.d"
  "/root/repo/tests/WorkloadTests.cpp" "tests/CMakeFiles/cpsflow_tests.dir/WorkloadTests.cpp.o" "gcc" "tests/CMakeFiles/cpsflow_tests.dir/WorkloadTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cpsflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/cpsflow_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cpsflow_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/cpsflow_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/cpsflow_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/anf/CMakeFiles/cpsflow_anf.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/cpsflow_syntax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
