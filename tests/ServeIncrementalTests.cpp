//===- tests/ServeIncrementalTests.cpp - Warm-vs-cold identity --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental re-analysis contract of `cpsflow serve`: a warm
/// (memo-assisted) analysis answers byte-for-byte what a cold one
/// answers, for every analyzer, across an edit script, at every worker
/// pool size — the memo store may only ever change goal counts. Each
/// edited request is asked twice on the same daemon, once incremental
/// (the default) and once with "incremental":false, and the answer and
/// degrade reason must match exactly. The direct analyzer must also
/// demonstrate actual reuse (replayHits > 0) once the store is seeded,
/// including from a different connection than the one that seeded it.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::serve;
namespace fs = std::filesystem;

namespace {

/// A blocking line-protocol client with a receive timeout (see
/// ServeTests.cpp, whose client this mirrors).
class TestClient {
public:
  bool connectTo(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    timeval Tv{10, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  std::string roundTrip(const std::string &Line) {
    std::string Out = Line;
    Out.push_back('\n');
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N =
          ::send(Fd, Out.data() + Sent, Out.size() - Sent, MSG_NOSIGNAL);
      if (N <= 0)
        return {};
      Sent += static_cast<size_t>(N);
    }
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line2 = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line2;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return {};
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// An in-memory corpus with one numeric leaf hole in the main
/// expression, so the edit script re-analyzes programs whose define-d
/// closures (the memo universe) never change.
struct EditProgram {
  const char *Name;
  const char *Prefix; ///< source up to the edited numeral
  const char *Suffix; ///< source after it
  uint64_t Leaf;      ///< the numeral's starting value

  std::string at(uint64_t Edit) const {
    return std::string(Prefix) + std::to_string(Leaf + Edit) + Suffix;
  }
};

const EditProgram Corpus[] = {
    {"arith",
     "(define (plus a b) (if0 a b (add1 (plus (sub1 a) b))))\n"
     "(define (times a b) (if0 a 0 (plus b (times (sub1 a) b))))\n"
     "(plus (times ",
     " 4) 1)", 3},
    {"calls",
     "(define (twice f x) (f (f x)))\n"
     "(define (inc x) (add1 x))\n"
     "(twice inc ", ")", 5},
    {"branchy",
     "(define (pick p a b) (if0 p a b))\n"
     "(let (x ", ") (pick x (add1 x) (sub1 x)))", 0},
};

const char *const Analyzers[] = {"direct", "semantic", "syntactic", "dup",
                                 "pushdown"};

struct Leg {
  bool Ok = false;
  std::string Answer;
  std::string DegradeReason;
  double ReplayHits = 0;
};

Leg legOf(const std::string &Line) {
  Leg L;
  Result<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject())
    return L;
  const JsonValue *Ok = Doc->find("ok");
  const JsonValue *R = Doc->find("result");
  const JsonValue *Stats = R ? R->find("stats") : nullptr;
  if (!Ok || !Ok->asBool() || !Stats)
    return L;
  L.Ok = true;
  L.Answer = R->find("answer") ? R->find("answer")->asString() : "";
  L.DegradeReason = Stats->find("degradeReason")
                        ? Stats->find("degradeReason")->asString()
                        : "";
  L.ReplayHits = Stats->numberOr("replayHits", 0);
  return L;
}

std::string escaped(const std::string &S) {
  std::string P;
  for (char C : S) {
    if (C == '"' || C == '\\')
      P.push_back('\\');
    if (C == '\n') {
      P += "\\n";
      continue;
    }
    P.push_back(C);
  }
  return P;
}

std::string analyzeReq(const std::string &Program, const std::string &Analyzer,
                       bool Incremental) {
  std::string R = "{\"op\":\"analyze\",\"program\":\"" + escaped(Program) +
                  "\",\"analyzer\":\"" + Analyzer +
                  "\",\"domain\":\"constant\",\"noCache\":true";
  if (!Incremental)
    R += ",\"incremental\":false";
  R += "}";
  return R;
}

class ServeIncrementalTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char *Name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Base = fs::temp_directory_path() /
           ("cpsflow-incr-" + std::to_string(::getpid()) + "-" + Name);
    fs::remove_all(Base);
    fs::create_directories(Base);
    Opts.SocketPath = (Base / "s.sock").string();
  }
  void TearDown() override {
    Server.reset();
    fs::remove_all(Base);
  }

  void start(unsigned Workers) {
    Opts.Workers = Workers;
    Server = std::make_unique<serve::Server>(Opts);
    Result<bool> R = Server->start();
    ASSERT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.error().str());
  }

  fs::path Base;
  ServeOptions Opts;
  std::unique_ptr<serve::Server> Server;
};

TEST_F(ServeIncrementalTest, WarmAnswersMatchColdAcrossCorpusAndAnalyzers) {
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    Server.reset();
    fs::remove(Opts.SocketPath);
    start(Workers);
    ASSERT_TRUE(Server);
    TestClient C;
    ASSERT_TRUE(C.connectTo(Opts.SocketPath));
    for (const EditProgram &P : Corpus) {
      for (const char *Analyzer : Analyzers) {
        double TotalHits = 0;
        for (uint64_t Edit = 0; Edit < 4; ++Edit) {
          std::string Src = P.at(Edit);
          Leg Warm = legOf(C.roundTrip(analyzeReq(Src, Analyzer, true)));
          Leg Cold = legOf(C.roundTrip(analyzeReq(Src, Analyzer, false)));
          ASSERT_TRUE(Warm.Ok && Cold.Ok)
              << P.Name << "/" << Analyzer << " edit " << Edit
              << " workers " << Workers;
          EXPECT_EQ(Warm.Answer, Cold.Answer)
              << P.Name << "/" << Analyzer << " edit " << Edit
              << " workers " << Workers;
          EXPECT_EQ(Warm.DegradeReason, Cold.DegradeReason)
              << P.Name << "/" << Analyzer << " edit " << Edit;
          EXPECT_EQ(Cold.ReplayHits, 0) << "cold runs must never replay";
          TotalHits += Warm.ReplayHits;
        }
        if (std::string(Analyzer) == "direct")
          EXPECT_GT(TotalHits, 0)
              << P.Name << " workers " << Workers
              << ": the edit script must actually reuse memo entries";
        else
          EXPECT_EQ(TotalHits, 0)
              << Analyzer << " has no memo transfer; warm == cold";
      }
    }
  }
}

TEST_F(ServeIncrementalTest, MemoStoreIsSharedAcrossConnections) {
  start(2);
  {
    TestClient Seeder;
    ASSERT_TRUE(Seeder.connectTo(Opts.SocketPath));
    Leg First =
        legOf(Seeder.roundTrip(analyzeReq(Corpus[0].at(0), "direct", true)));
    ASSERT_TRUE(First.Ok);
  }
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  Leg Warm = legOf(C.roundTrip(analyzeReq(Corpus[0].at(1), "direct", true)));
  Leg Cold = legOf(C.roundTrip(analyzeReq(Corpus[0].at(1), "direct", false)));
  ASSERT_TRUE(Warm.Ok && Cold.Ok);
  EXPECT_EQ(Warm.Answer, Cold.Answer);
  EXPECT_GT(Warm.ReplayHits, 0)
      << "the memo store must be daemon-global, not per-connection";
}

TEST_F(ServeIncrementalTest, NoIncrementalOptionRunsEveryRequestCold) {
  Opts.Incremental = false;
  start(2);
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  for (uint64_t Edit = 0; Edit < 3; ++Edit) {
    Leg L = legOf(
        C.roundTrip(analyzeReq(Corpus[0].at(Edit), "direct", true)));
    ASSERT_TRUE(L.Ok);
    EXPECT_EQ(L.ReplayHits, 0)
        << "--no-incremental must disable replay even for willing requests";
  }
}

TEST_F(ServeIncrementalTest, ConcurrentWarmAndColdClientsAgree) {
  start(4);
  // Every thread walks the same edit script, warm, while one walks it
  // cold; all answers per edit must agree regardless of interleaving.
  constexpr int Edits = 6;
  std::vector<std::string> ColdAnswers(Edits);
  {
    TestClient C;
    ASSERT_TRUE(C.connectTo(Opts.SocketPath));
    for (int E = 0; E < Edits; ++E) {
      Leg L = legOf(
          C.roundTrip(analyzeReq(Corpus[0].at(E), "direct", false)));
      ASSERT_TRUE(L.Ok);
      ColdAnswers[E] = L.Answer;
    }
  }
  std::vector<std::thread> Threads;
  std::vector<int> Mismatches(4, 0);
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      TestClient C;
      if (!C.connectTo(Opts.SocketPath)) {
        Mismatches[T] = -1;
        return;
      }
      for (int E = 0; E < Edits; ++E) {
        Leg L = legOf(
            C.roundTrip(analyzeReq(Corpus[0].at(E), "direct", true)));
        if (!L.Ok || L.Answer != ColdAnswers[E])
          ++Mismatches[T];
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < 4; ++T)
    EXPECT_EQ(Mismatches[T], 0) << "client " << T;
}

} // namespace
