//===- analysis/Witnesses.h - Theorem witness programs ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The witness programs of the Section 5 theorems, exactly as the paper's
/// proofs give them, packaged with their initial abstract stores and CPS
/// transforms:
///
///  * Theorem 5.1 — `(let (a1 (f 1)) (let (a2 (f 2)) a2))` with f bound
///    to the identity closure. The direct analysis finds a1 = 1; the
///    syntactic-CPS analysis confuses the two returns of f and loses it.
///  * Theorem 5.2a — two stacked conditionals where the CPS analyses
///    propagate the constant 3 per branch while the direct analysis
///    merges the branches and loses everything about a2.
///  * Theorem 5.2b — a call to one of two constant-returning closures
///    followed by conditionals; the CPS analyses find a2 = 5 per path.
///
/// Bindings are recorded domain-independently and converted per numeric
/// domain on demand, so every witness runs under every domain.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_WITNESSES_H
#define CPSFLOW_ANALYSIS_WITNESSES_H

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "cps/Transform.h"
#include "syntax/Ast.h"

#include <optional>
#include <string>
#include <vector>

namespace cpsflow {
namespace analysis {

/// A domain-independent initial-store entry.
struct AbsBindingSpec {
  Symbol Var;
  bool NumTop = false;                ///< numeric component is top
  std::optional<int64_t> NumConst;    ///< or the abstraction of a constant
  std::vector<const syntax::LamValue *> Lams; ///< closures
};

/// A packaged witness: program, transform, initial store, and the
/// variables whose store entries the paper's proof talks about. The
/// workload families of gen/Workloads.h produce the same shape.
struct Witness {
  std::string Name;
  const syntax::Term *Anf = nullptr;
  cps::CpsProgram Cps;
  std::vector<AbsBindingSpec> Bindings;
  std::vector<Symbol> InterestingVars;
  /// For parameterized workloads: the single variable the experiment
  /// reports (invalid for the theorem witnesses).
  Symbol Probe;
};

/// Builds the Theorem 5.1 witness in \p Ctx.
Witness theorem51(Context &Ctx);
/// Builds the Theorem 5.2 first witness (conditional merging).
Witness theorem52a(Context &Ctx);
/// Builds the Theorem 5.2 second witness (call-site merging).
Witness theorem52b(Context &Ctx);

/// Packages an arbitrary ANF program (no initial bindings) as a witness:
/// transforms it and selects its let-bound variables as interesting.
Witness packageProgram(Context &Ctx, std::string Name,
                       const syntax::Term *Anf);

/// Completes a hand-assembled witness (Name, Anf, Bindings already set):
/// CPS-transforms the program and registers every binding lambda with the
/// transform so delta_e covers it. Used by the gen/Workloads.h families.
void finalizeWitness(Context &Ctx, Witness &W);

/// Instantiates the bindings at numeric domain \p D for the direct and
/// semantic analyzers.
template <typename D>
std::vector<DirectBinding<D>> directBindings(const Witness &W) {
  std::vector<DirectBinding<D>> Out;
  for (const AbsBindingSpec &B : W.Bindings) {
    domain::AbsVal<D> V;
    if (B.NumTop)
      V.Num = D::top();
    else if (B.NumConst)
      V.Num = D::constant(*B.NumConst);
    for (const syntax::LamValue *Lam : B.Lams)
      V.Clos.insert(domain::CloRef::lam(Lam));
    Out.push_back(DirectBinding<D>{B.Var, std::move(V)});
  }
  return Out;
}

/// Instantiates the bindings for the syntactic-CPS analyzer: the
/// delta_e-image of the direct bindings (Section 5.1 seeds the CPS run
/// with delta_e(sigma)).
template <typename D>
std::vector<CpsBinding<D>> cpsBindings(const Witness &W) {
  std::vector<CpsBinding<D>> Out;
  for (const AbsBindingSpec &B : W.Bindings) {
    domain::AbsVal<D> V;
    if (B.NumTop)
      V.Num = D::top();
    else if (B.NumConst)
      V.Num = D::constant(*B.NumConst);
    for (const syntax::LamValue *Lam : B.Lams)
      V.Clos.insert(domain::CloRef::lam(Lam));
    Out.push_back(CpsBinding<D>{B.Var, deltaE<D>(V, W.Cps)});
  }
  return Out;
}

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_WITNESSES_H
