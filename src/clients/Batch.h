//===- clients/Batch.h - Parallel corpus driver -----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch corpus driver behind `cpsflow batch <dir>`: analyze a corpus
/// of programs with all five analyzers (direct, semantic-CPS,
/// syntactic-CPS, bounded-dup, pushdown), optionally in parallel, and render an
/// aggregate JSON report suitable for BENCH_*.json trajectory tracking.
///
/// Parallelism model: analyses are per-program independent. Each worker
/// job owns its program's Context, interners, and analyzers end to end;
/// the only shared state is the pre-sized result vector, written at
/// disjoint indices. Results are therefore bitwise-identical at every
/// thread count; only the timing fields (and the reported thread count)
/// vary, and batchJson can omit them (BatchOptions::IncludeTiming) so
/// outputs can be compared across runs. (Wall-clock limits — DeadlineMs —
/// are the one deliberate exception: where a deadline trips depends on
/// machine speed, so deadline-degraded answers are sound but not
/// reproducible goal-for-goal.)
///
/// Robustness model: every worker body is exception-contained — a program
/// that throws (out of memory, injected fault, latent bug) becomes a
/// structured per-program failure record with a BatchFailKind, never a
/// dead batch. Programs are additionally governed per run (soft deadline
/// via cancellation token + watchdog thread, memory ceiling, depth cap),
/// degrading to sound cut values exactly like goal-budget exhaustion.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_BATCH_H
#define CPSFLOW_CLIENTS_BATCH_H

#include "analysis/Common.h"
#include "support/Result.h"
#include "support/Trace.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace clients {

/// Version of the batch report document (batchJson). History:
///   2  containment records (errorKind, retried)
///   3  per-leg metrics distributions {sum, p50, p95, max}
///   4  per-leg loss-event counts: joins / callMerges alongside cuts,
///      in program records, leg totals, and metrics distributions
///   5  syntactic-leg continuation-summary counters: summaryHits /
///      summaryMisses / summaryEntries and a summaryReuseDepth histogram,
///      in program records, leg totals, and metrics distributions
///   6  fifth analyzer leg: a "pushdown" record (summarization-based
///      call-return matching) in program records, leg totals, and
///      metrics distributions
inline constexpr int BatchSchemaVersion = 6;

/// Knobs for one batch run.
struct BatchOptions {
  /// Worker threads (>= 1). Results are identical at every value.
  unsigned Threads = 1;
  /// Numeric domain name: constant|unit|sign|parity|interval.
  std::string Domain = "constant";
  /// Duplication budget for the dup analyzer leg.
  uint64_t DupBudget = 2;
  /// Per-analyzer goal budget; corpus programs that blow past it report
  /// budgetExhausted rather than stalling the batch.
  uint64_t MaxGoals = 5'000'000;
  /// Loop-unroll bound forwarded to the CPS analyzer legs; the retry pass
  /// halves it.
  uint32_t LoopUnroll = 64;
  /// Soft per-program wall-clock deadline in milliseconds; 0 = none. Each
  /// program gets one absolute deadline shared by all five analyzer legs,
  /// enforced cooperatively by the governor and backstopped by a watchdog
  /// thread that fires the program's cancellation token.
  double DeadlineMs = 0;
  /// Per-leg StoreInterner footprint ceiling in bytes; 0 = none.
  uint64_t MaxStoreBytes = 0;
  /// Per-leg goal-stack depth cap; 0 = none.
  uint32_t MaxDepth = 0;
  /// When true, a program whose legs degraded (any resource trip) is
  /// reported as a failure with a taxonomy kind instead of an Ok result
  /// with degraded stats (`--on-budget=fail`).
  bool FailOnBudget = false;
  /// When true, programs whose first attempt tripped the deadline are
  /// retried once at reduced cost (LoopUnroll/2, MaxGoals/2).
  bool Retry = false;
  /// Continuation-summary reuse in the syntactic leg (--no-summaries to
  /// turn off). Answers are identical either way; goal counts and wall
  /// time differ, which the summary counters in the report make visible.
  bool UseSummaries = true;
  /// When false, batchJson omits wall-time and thread-count fields so two
  /// runs' outputs can be compared byte-for-byte.
  bool IncludeTiming = true;
  /// When non-null, every worker emits phase spans (per program:
  /// pipeline stages and analyzer legs) and sampled per-goal instants to
  /// this shared tracer, one trace track per pool worker. Null (the
  /// default) keeps workers on the zero-overhead path.
  support::Tracer *Trace = nullptr;
  /// Process-wide interrupt token (SIGINT/SIGTERM). When it fires,
  /// in-flight programs degrade through the governor's cut path,
  /// not-yet-started programs report a structured failure without
  /// running, the retry pass is skipped, and the report is flagged
  /// "interrupted" — a partial but valid document.
  std::shared_ptr<support::CancelToken> Interrupt;
};

/// Failure taxonomy for programs with !Ok — what killed (or, under
/// FailOnBudget, degraded) the program. Aggregated in batchJson's
/// totals.failureKinds.
enum class BatchFailKind : uint8_t {
  None,     ///< program succeeded
  Parse,    ///< source did not parse
  Cps,      ///< CPS transform failed
  Deadline, ///< soft deadline tripped (governor or watchdog cancellation)
  Memory,   ///< memory ceiling tripped or allocation failed
  Internal, ///< contained unexpected exception, or a non-time budget trip
};

const char *str(BatchFailKind K);

/// One analyzer leg of one program.
struct BatchAnalyzerRecord {
  std::string Answer; ///< Rendered final abstract value.
  analysis::AnalyzerStats Stats;
  double WallMs = 0;
};

/// All five analyzer legs of one program.
struct BatchProgramResult {
  std::string Name; ///< File base name (or caller-supplied label).
  bool Ok = false;
  std::string Error; ///< Failure description, when !Ok.
  BatchFailKind Kind = BatchFailKind::None; ///< Taxonomy, when !Ok.
  bool Retried = false; ///< Result comes from the reduced-cost retry pass.
  uint64_t Nodes = 0; ///< ANF term size.
  unsigned Worker = 0; ///< Pool worker that produced the result (timing
                       ///< metadata only — assignment is scheduler-
                       ///< dependent, so batchJson gates it, like wallMs,
                       ///< behind IncludeTiming).
  BatchAnalyzerRecord Direct, Semantic, Syntactic, Dup, Pushdown;
};

/// A whole corpus run, program results in input order.
struct BatchResult {
  std::vector<BatchProgramResult> Programs;
  double WallMs = 0; ///< Whole-batch wall time.
  /// The interrupt token fired during the run: some programs may carry
  /// degraded answers or "interrupted before analysis" failures, and
  /// batchJson marks the document "interrupted": true.
  bool Interrupted = false;
};

/// Program files (*.scm) under \p Dir, sorted by name for deterministic
/// corpus order. Non-recursive. A missing or unreadable directory is an
/// Error (an empty corpus is a success with zero files).
Result<std::vector<std::string>> collectCorpus(const std::string &Dir);

/// Analyzes (name, source-text) pairs; see the file comment for the
/// parallelism contract.
BatchResult runBatch(
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    const BatchOptions &Opts);

/// Reads \p Files and analyzes them.
BatchResult runBatchFiles(const std::vector<std::string> &Files,
                          const BatchOptions &Opts);

/// Renders the aggregate JSON document (schema: see docs/CLI.md).
std::string batchJson(const BatchResult &R, const BatchOptions &Opts);

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_BATCH_H
