//===- gen/Digest.cpp - Stable structural term digests ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Digest.h"

#include "support/Hashing.h"
#include "syntax/Analysis.h"

namespace cpsflow {
namespace gen {

struct detail::SubtreeSink {
  static void noteTerm(SubtreeDigests &S, const syntax::Term *T, uint64_t D) {
    S.Terms.emplace(T, D);
  }
  static void noteValue(SubtreeDigests &S, const syntax::Value *V,
                        uint64_t D) {
    S.Values.emplace(V, D);
    if (V->kind() == syntax::ValueKind::VK_Lam) {
      const auto *L = syntax::cast<syntax::LamValue>(V);
      auto [It, Inserted] = S.Lams.emplace(D, L);
      // Re-seeing the same digest is fine when it names one shared node
      // or a structurally identical twin; anything else is a collision.
      if (!Inserted && It->second != L &&
          !syntax::structurallyEqual(It->second, L))
        S.Collided = true;
    }
  }
};

namespace {

uint64_t stringHash(std::string_view S) {
  // FNV-1a, then mix64: simple, endian-free, stable everywhere.
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return mix64(H);
}

// Distinct per-kind salts so (let (x 1) x) and (if0 1 x x) with the same
// child digests cannot collide structurally.
enum : uint64_t {
  SaltNum = 0xA1,
  SaltVar = 0xA2,
  SaltPrimAdd = 0xA3,
  SaltPrimSub = 0xA4,
  SaltLam = 0xA5,
  SaltValueTerm = 0xB1,
  SaltApp = 0xB2,
  SaltLet = 0xB3,
  SaltIf0 = 0xB4,
  SaltLoop = 0xB5,
};

uint64_t digestValue(const Context &Ctx, const syntax::Value *V,
                     SubtreeDigests *Sink);

uint64_t digestTerm(const Context &Ctx, const syntax::Term *T,
                    SubtreeDigests *Sink) {
  using namespace syntax;
  uint64_t H = 0;
  switch (T->kind()) {
  case TermKind::TK_Value:
    H = SaltValueTerm;
    hashCombine(H, digestValue(Ctx, cast<ValueTerm>(T)->value(), Sink));
    break;
  case TermKind::TK_App: {
    const auto *A = cast<AppTerm>(T);
    H = SaltApp;
    hashCombine(H, digestTerm(Ctx, A->fun(), Sink));
    hashCombine(H, digestTerm(Ctx, A->arg(), Sink));
    break;
  }
  case TermKind::TK_Let: {
    const auto *L = cast<LetTerm>(T);
    H = SaltLet;
    hashCombine(H, stringHash(Ctx.spelling(L->var())));
    hashCombine(H, digestTerm(Ctx, L->bound(), Sink));
    hashCombine(H, digestTerm(Ctx, L->body(), Sink));
    break;
  }
  case TermKind::TK_If0: {
    const auto *I = cast<If0Term>(T);
    H = SaltIf0;
    hashCombine(H, digestTerm(Ctx, I->cond(), Sink));
    hashCombine(H, digestTerm(Ctx, I->thenBranch(), Sink));
    hashCombine(H, digestTerm(Ctx, I->elseBranch(), Sink));
    break;
  }
  case TermKind::TK_Loop:
    H = SaltLoop;
    break;
  }
  uint64_t D = mix64(H);
  if (Sink)
    detail::SubtreeSink::noteTerm(*Sink, T, D);
  return D;
}

uint64_t digestValue(const Context &Ctx, const syntax::Value *V,
                     SubtreeDigests *Sink) {
  using namespace syntax;
  uint64_t H = 0;
  switch (V->kind()) {
  case ValueKind::VK_Num:
    H = SaltNum;
    hashCombine(H, static_cast<uint64_t>(cast<NumValue>(V)->value()));
    break;
  case ValueKind::VK_Var:
    H = SaltVar;
    hashCombine(H, stringHash(Ctx.spelling(cast<VarValue>(V)->name())));
    break;
  case ValueKind::VK_Prim:
    H = cast<PrimValue>(V)->op() == PrimOp::Add1 ? SaltPrimAdd : SaltPrimSub;
    break;
  case ValueKind::VK_Lam: {
    const auto *L = cast<LamValue>(V);
    H = SaltLam;
    hashCombine(H, stringHash(Ctx.spelling(L->param())));
    hashCombine(H, digestTerm(Ctx, L->body(), Sink));
    break;
  }
  }
  uint64_t D = mix64(H);
  if (Sink)
    detail::SubtreeSink::noteValue(*Sink, V, D);
  return D;
}

} // namespace

uint64_t termDigest(const Context &Ctx, const syntax::Term *T) {
  return digestTerm(Ctx, T, nullptr);
}

uint64_t valueDigest(const Context &Ctx, const syntax::Value *V) {
  return digestValue(Ctx, V, nullptr);
}

uint64_t textDigest(std::string_view Text) { return stringHash(Text); }

uint64_t textDigest2(std::string_view Text) {
  // Same FNV-1a skeleton as textDigest but a different offset basis and
  // multiplier, folded with the length: a pair of texts colliding on both
  // digests and their lengths is no longer a realistic accident.
  uint64_t H = 0x6c62272e07bb0142ull ^ (Text.size() * 0x9e3779b97f4a7c15ull);
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x00000100000001b3ull ^ 0x200;
  }
  return mix64(H ^ (H >> 32));
}

void computeSubtreeDigests(const Context &Ctx, const syntax::Term *Root,
                           SubtreeDigests &Out) {
  digestTerm(Ctx, Root, &Out);
}

} // namespace gen
} // namespace cpsflow
