//===- clients/Reports.h - Human-readable analysis reports ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text renderings of analysis artifacts for the examples and benches:
/// control-flow graphs (with false-return highlighting), per-variable
/// abstract stores, and analyzer statistics.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_REPORTS_H
#define CPSFLOW_CLIENTS_REPORTS_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "support/Metrics.h"
#include "syntax/Ast.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace cpsflow {
namespace clients {

/// Renders the direct/semantic control-flow graph: one line per call site
/// and per conditional.
std::string describeCfg(const Context &Ctx, const analysis::DirectCfg &Cfg);

/// Renders the syntactic-CPS control-flow graph, flagging every return
/// point that collected more than one continuation as a FALSE RETURN.
std::string describeCfg(const Context &Ctx, const analysis::CpsCfg &Cfg);

/// Renders analyzer statistics on one line.
std::string describeStats(const analysis::AnalyzerStats &S);

/// Renders one aligned table over several analyzers' metrics registries
/// (the CLI's --metrics view): one row per metric (union of the legs'
/// names, first-seen order), one column per leg. Counters print as
/// numbers, histograms as their n/p50/p95/max summary.
std::string metricsTable(
    const std::vector<std::pair<std::string, const support::MetricsRegistry *>>
        &Legs);

/// Renders "var = value" lines for \p Vars from any analyzer result (a
/// type with valueOf(Symbol) whose value has str(Ctx)).
template <typename ResultT>
std::string describeVars(const Context &Ctx, const ResultT &R,
                         const std::vector<Symbol> &Vars) {
  std::ostringstream O;
  for (Symbol X : Vars)
    O << "  " << Ctx.spelling(X) << " = " << R.valueOf(X).str(Ctx) << "\n";
  return O.str();
}

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_REPORTS_H
