//===- gen/Digest.h - Stable structural term digests ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit structural digest of language-A terms that is stable across
/// Contexts, processes, and platforms: it hashes node kinds, numerals,
/// and variable *spellings* (never node ids, pointers, or symbol ids).
/// Two structurallyEqual terms always digest equal, whichever Context
/// each lives in.
///
/// Uses: the generator-stability golden test (fixed GenOptions seeds must
/// keep producing the same programs, or recorded fuzz reproducer seeds
/// rot), fuzz finding deduplication, and deterministic reproducer file
/// names.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_GEN_DIGEST_H
#define CPSFLOW_GEN_DIGEST_H

#include "syntax/Ast.h"

#include <cstdint>
#include <string_view>
#include <unordered_map>

namespace cpsflow {
namespace gen {

/// Structural digest of \p T. Depends only on the tree shape, numerals,
/// primitive tags, and identifier spellings.
uint64_t termDigest(const Context &Ctx, const syntax::Term *T);

/// Digest of \p V (same domain as termDigest).
uint64_t valueDigest(const Context &Ctx, const syntax::Value *V);

/// Digest of raw program text (for artifacts that exist only as source,
/// e.g. fuzz reproducer files before parsing).
uint64_t textDigest(std::string_view Text);

/// A second, independent 64-bit digest of raw text (different offset
/// basis and multiplier plus a length fold). Used wherever a single
/// 64-bit hash keying an answer would let a collision serve the wrong
/// result: verifying both digests (and the length) shrinks the accident
/// surface from 2^-64 to effectively zero.
uint64_t textDigest2(std::string_view Text);

namespace detail {
/// Private write access to SubtreeDigests for the single-pass builder in
/// Digest.cpp; keeps the table read-only to everyone else.
struct SubtreeSink;
} // namespace detail

/// Per-subtree structural digests of one normalized program: every Term
/// and Value node of the tree, mapped to its termDigest/valueDigest,
/// computed in a single bottom-up pass (so the whole table costs what one
/// root digest costs). The table is what makes cross-request memo reuse
/// content-addressed: two occurrences of the same subtree — in the same
/// program or across an edit — carry the same digest iff they are
/// structurally equal with identical identifier spellings.
///
/// LamByDigest additionally indexes every lambda node by its value
/// digest, giving the import side of memo transfer a way to rebind
/// recorded abstract closures to this program's nodes. A digest mapping
/// to two structurally distinct lambdas would be a 64-bit collision; the
/// builder keeps the first and marks the table (collided()) so callers
/// can refuse reuse rather than misbind.
class SubtreeDigests {
public:
  /// Digest of \p T, or 0 if \p T is not a node of the annotated tree
  /// (0 is never a valid mix64 output for practical purposes; callers
  /// treat it as "not annotated, do not reuse").
  uint64_t ofTerm(const syntax::Term *T) const {
    auto It = Terms.find(T);
    return It == Terms.end() ? 0 : It->second;
  }

  uint64_t ofValue(const syntax::Value *V) const {
    auto It = Values.find(V);
    return It == Values.end() ? 0 : It->second;
  }

  /// The lambda of this tree whose valueDigest is \p Digest, or null.
  const syntax::LamValue *lamOf(uint64_t Digest) const {
    auto It = Lams.find(Digest);
    return It == Lams.end() ? nullptr : It->second;
  }

  /// True when two distinct subtrees collided on one digest; reuse
  /// machinery must treat the whole table as untrustworthy.
  bool collided() const { return Collided; }

  size_t termCount() const { return Terms.size(); }

  /// Calls \p Fn(node, digest) for every Term of the annotated tree in
  /// unspecified order — for building reverse digest-to-node indices.
  template <typename F> void eachTerm(F &&Fn) const {
    for (const auto &[T, D] : Terms)
      Fn(T, D);
  }

private:
  friend struct detail::SubtreeSink;
  std::unordered_map<const syntax::Term *, uint64_t> Terms;
  std::unordered_map<const syntax::Value *, uint64_t> Values;
  std::unordered_map<uint64_t, const syntax::LamValue *> Lams;
  bool Collided = false;
};

/// Fills \p Out with the digest of every subtree of \p Root. Digests
/// agree exactly with termDigest/valueDigest on each node.
void computeSubtreeDigests(const Context &Ctx, const syntax::Term *Root,
                           SubtreeDigests &Out);

} // namespace gen
} // namespace cpsflow

#endif // CPSFLOW_GEN_DIGEST_H
