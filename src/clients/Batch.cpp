//===- clients/Batch.cpp - Parallel corpus driver -------------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Batch.h"

#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Compare.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "support/FaultInjector.h"
#include "support/Governor.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"
#include "syntax/Sugar.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>

namespace cpsflow {
namespace clients {

namespace {

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Runs one analyzer leg, timing it and rendering the answer value. When
/// tracing, the leg gets a phase span on the worker's track.
template <typename Analyzer>
BatchAnalyzerRecord runLeg(const Context &Ctx, Analyzer &&A,
                           support::Tracer *Trace, uint32_t Tid,
                           const char *Leg) {
  support::TraceSpan Span(Trace, std::string("analyze:") + Leg, "phase",
                          Tid);
  auto Start = std::chrono::steady_clock::now();
  auto R = A.run();
  BatchAnalyzerRecord Rec;
  Rec.WallMs = elapsedMs(Start);
  Rec.Answer = R.Answer.Value.str(Ctx);
  Rec.Stats = R.Stats;
  return Rec;
}

/// Analyzes one program at a fixed numeric domain. Owns the whole
/// pipeline — Context, parse, ANF, CPS, analyzers — so concurrent calls
/// share nothing. \p Limits is the program's governor configuration (one
/// absolute deadline and cancellation token shared by all four legs).
template <typename D>
BatchProgramResult analyzeOne(const std::string &Name,
                              const std::string &Source,
                              const BatchOptions &Opts,
                              const support::GovernorLimits &Limits) {
  BatchProgramResult Out;
  Out.Name = Name;

  support::Tracer *Trace = Opts.Trace;
  const uint32_t Tid = ThreadPool::currentWorker();
  support::TraceSpan Whole(Trace, "program:" + Name, "batch", Tid);

  Context Ctx;
  Result<const syntax::Term *> Parsed = [&] {
    support::TraceSpan S(Trace, "parse", "phase", Tid);
    return syntax::parseSugaredProgram(Ctx, Source);
  }();
  if (!Parsed) {
    Out.Error = "parse error: " + Parsed.error().str();
    Out.Kind = BatchFailKind::Parse;
    return Out;
  }
  const syntax::Term *Anf = [&] {
    support::TraceSpan S(Trace, "anf", "phase", Tid);
    return anf::normalizeProgram(Ctx, *Parsed);
  }();
  Out.Nodes = syntax::countNodes(Anf);

  Result<cps::CpsProgram> Cps = [&] {
    support::TraceSpan S(Trace, "cps", "phase", Tid);
    return cps::cpsTransform(Ctx, Anf);
  }();
  if (!Cps) {
    Out.Error = "cps error: " + Cps.error().str();
    Out.Kind = BatchFailKind::Cps;
    return Out;
  }

  // Corpus programs may leave inputs free; bind them to the numeric top
  // so every analyzer sees the same closed problem.
  std::vector<analysis::DirectBinding<D>> Init;
  for (Symbol X : syntax::freeVars(Anf))
    Init.push_back({X, domain::AbsVal<D>::number(D::top())});
  std::vector<analysis::CpsBinding<D>> CInit;
  for (const analysis::DirectBinding<D> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<D>(B.Value, *Cps)});

  analysis::AnalyzerOptions AOpts;
  AOpts.MaxGoals = Opts.MaxGoals;
  AOpts.LoopUnroll = Opts.LoopUnroll;
  AOpts.UseSummaries = Opts.UseSummaries;
  AOpts.Governor = Limits;
  AOpts.Trace = Trace;
  AOpts.TraceTid = Tid;

  Out.Direct = runLeg(Ctx, analysis::DirectAnalyzer<D>(Ctx, Anf, Init,
                                                       AOpts),
                      Trace, Tid, "direct");
  Out.Semantic = runLeg(
      Ctx, analysis::SemanticCpsAnalyzer<D>(Ctx, Anf, Init, AOpts), Trace,
      Tid, "semantic");
  Out.Syntactic = runLeg(
      Ctx, analysis::SyntacticCpsAnalyzer<D>(Ctx, *Cps, CInit, AOpts),
      Trace, Tid, "syntactic");
  Out.Dup = runLeg(Ctx, analysis::DupAnalyzer<D>(Ctx, Anf, Init,
                                                 Opts.DupBudget, AOpts),
                   Trace, Tid, "dup");
  Out.Pushdown = runLeg(
      Ctx, analysis::PushdownAnalyzer<D>(Ctx, Anf, Init, AOpts), Trace,
      Tid, "pushdown");
  Out.Ok = true;
  return Out;
}

BatchProgramResult dispatchOne(const std::string &Name,
                               const std::string &Source,
                               const BatchOptions &Opts,
                               const support::GovernorLimits &Limits) {
  if (Opts.Domain == "constant")
    return analyzeOne<domain::ConstantDomain>(Name, Source, Opts, Limits);
  if (Opts.Domain == "unit")
    return analyzeOne<domain::UnitDomain>(Name, Source, Opts, Limits);
  if (Opts.Domain == "sign")
    return analyzeOne<domain::SignDomain>(Name, Source, Opts, Limits);
  if (Opts.Domain == "parity")
    return analyzeOne<domain::ParityDomain>(Name, Source, Opts, Limits);
  if (Opts.Domain == "interval")
    return analyzeOne<domain::IntervalDomain>(Name, Source, Opts, Limits);
  BatchProgramResult Out;
  Out.Name = Name;
  Out.Error = "unknown domain '" + Opts.Domain + "'";
  Out.Kind = BatchFailKind::Internal;
  return Out;
}

/// Watches in-flight programs and fires their cancellation tokens when
/// their (grace-extended) deadline passes. The governor normally trips a
/// deadline itself; the watchdog is the backstop for a worker stalled
/// somewhere the governor is not polled (parse, a stuck primitive, an
/// injected stall). Cancellation is cooperative — the worker observes it
/// at its next governed goal and degrades soundly.
class Watchdog {
public:
  explicit Watchdog(double PollMs)
      : Poll(std::chrono::duration<double, std::milli>(PollMs)),
        Scanner([this] { loop(); }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    Wake.notify_all();
    Scanner.join();
  }

  uint64_t add(std::shared_ptr<support::CancelToken> Token,
               std::chrono::steady_clock::time_point Deadline) {
    std::lock_guard<std::mutex> Lock(M);
    uint64_t Id = NextId++;
    Watched.push_back({Id, std::move(Token), Deadline});
    return Id;
  }

  void remove(uint64_t Id) {
    std::lock_guard<std::mutex> Lock(M);
    Watched.erase(std::remove_if(Watched.begin(), Watched.end(),
                                 [Id](const EntryT &E) { return E.Id == Id; }),
                  Watched.end());
  }

private:
  struct EntryT {
    uint64_t Id;
    std::shared_ptr<support::CancelToken> Token;
    std::chrono::steady_clock::time_point Deadline;
  };

  void loop() {
    std::unique_lock<std::mutex> Lock(M);
    while (!Stop) {
      auto Now = std::chrono::steady_clock::now();
      for (const EntryT &E : Watched)
        if (Now > E.Deadline)
          E.Token->cancel();
      Wake.wait_for(Lock, Poll, [this] { return Stop; });
    }
  }

  std::mutex M;
  std::condition_variable Wake;
  bool Stop = false;
  uint64_t NextId = 1;
  std::vector<EntryT> Watched;
  std::chrono::duration<double, std::milli> Poll;
  std::thread Scanner; // last member: starts after everything it reads
};

/// Maps a governor trip to the failure taxonomy (FailOnBudget mode). A
/// watchdog cancellation is a deadline in disguise when a deadline was
/// armed; goal/depth trips have no wall-clock meaning and classify as
/// internal budget failures.
BatchFailKind failKindFor(support::DegradeReason R, bool DeadlineArmed) {
  switch (R) {
  case support::DegradeReason::Deadline:
    return BatchFailKind::Deadline;
  case support::DegradeReason::Cancelled:
    return DeadlineArmed ? BatchFailKind::Deadline : BatchFailKind::Internal;
  case support::DegradeReason::Memory:
    return BatchFailKind::Memory;
  default:
    return BatchFailKind::Internal;
  }
}

/// The five legs of \p P in fixed report order.
std::vector<std::pair<const char *, const BatchAnalyzerRecord *>>
legsOf(const BatchProgramResult &P) {
  return {{"direct", &P.Direct},
          {"semantic", &P.Semantic},
          {"syntactic", &P.Syntactic},
          {"dup", &P.Dup},
          {"pushdown", &P.Pushdown}};
}

/// One fully-contained worker body: governs, runs, and converts any
/// escaping exception into a structured failure record. Never throws.
BatchProgramResult containedDispatch(const std::string &Name,
                                     const std::string &Source,
                                     const BatchOptions &Opts,
                                     Watchdog *Dog) {
  // A program whose turn comes after the interrupt fired never starts:
  // report it as a structured failure instead of spending post-interrupt
  // time computing an answer nobody is waiting for.
  if (Opts.Interrupt && Opts.Interrupt->cancelled()) {
    BatchProgramResult Out;
    Out.Name = Name;
    Out.Error = "interrupted before analysis";
    Out.Kind = BatchFailKind::Internal;
    Out.Worker = ThreadPool::currentWorker();
    return Out;
  }

  const bool DeadlineArmed = Opts.DeadlineMs > 0;
  support::GovernorLimits Limits;
  Limits.MaxStoreBytes = Opts.MaxStoreBytes;
  Limits.MaxDepth = Opts.MaxDepth;
  Limits.Interrupt = Opts.Interrupt;
  uint64_t DogId = 0;
  if (DeadlineArmed) {
    Limits.deadlineIn(Opts.DeadlineMs);
    Limits.Cancel = std::make_shared<support::CancelToken>();
    if (Dog)
      // Grace past the governor's own deadline: the watchdog only steps
      // in for workers that failed to self-trip.
      DogId = Dog->add(Limits.Cancel,
                       *Limits.Deadline + std::chrono::milliseconds(50));
  }

  BatchProgramResult Out;
  try {
    CPSFLOW_FAULT_NAMED(fault::Site::BatchWorker, Name);
    Out = dispatchOne(Name, Source, Opts, Limits);
  } catch (const std::bad_alloc &) {
    Out = BatchProgramResult();
    Out.Name = Name;
    Out.Error = "contained failure: out of memory";
    Out.Kind = BatchFailKind::Memory;
  } catch (const std::exception &Ex) {
    Out = BatchProgramResult();
    Out.Name = Name;
    Out.Error = std::string("contained failure: ") + Ex.what();
    Out.Kind = BatchFailKind::Internal;
  } catch (...) {
    Out = BatchProgramResult();
    Out.Name = Name;
    Out.Error = "contained failure: unknown exception";
    Out.Kind = BatchFailKind::Internal;
  }
  if (Dog && DogId)
    Dog->remove(DogId);
  Out.Worker = ThreadPool::currentWorker();

  if (Out.Ok && Opts.FailOnBudget) {
    std::string Degraded;
    BatchFailKind Worst = BatchFailKind::None;
    for (const auto &[LegName, Rec] : legsOf(Out))
      if (Rec->Stats.Degraded != support::DegradeReason::None) {
        if (!Degraded.empty())
          Degraded += ", ";
        Degraded += std::string(LegName) + "=" + str(Rec->Stats.Degraded);
        BatchFailKind K = failKindFor(Rec->Stats.Degraded, DeadlineArmed);
        // Prefer the most specific kind: deadline > memory > internal.
        if (Worst == BatchFailKind::None || K == BatchFailKind::Deadline ||
            (K == BatchFailKind::Memory && Worst == BatchFailKind::Internal))
          Worst = K;
      }
    if (Worst != BatchFailKind::None) {
      Out.Ok = false;
      Out.Kind = Worst;
      Out.Error = "degraded: " + Degraded;
    }
  }
  return Out;
}

/// ANF node count of \p Source for largest-first scheduling — a cheap
/// pre-parse whose cost is dwarfed by the analyses it orders. Programs
/// that fail to parse (or throw) size 0 and dispatch last; their failure
/// is re-discovered and recorded by the worker proper.
uint64_t scheduleSize(const std::string &Source) {
  try {
    Context Ctx;
    Result<const syntax::Term *> Parsed =
        syntax::parseSugaredProgram(Ctx, Source);
    if (!Parsed)
      return 0;
    return syntax::countNodes(anf::normalizeProgram(Ctx, *Parsed));
  } catch (...) {
    return 0;
  }
}

/// True when \p P 's first attempt died or degraded on the deadline —
/// the retry pass reruns exactly these at reduced cost.
bool deadlineTripped(const BatchProgramResult &P) {
  if (!P.Ok)
    return P.Kind == BatchFailKind::Deadline;
  for (const auto &[LegName, Rec] : legsOf(P)) {
    (void)LegName;
    if (Rec->Stats.Degraded == support::DegradeReason::Deadline ||
        Rec->Stats.Degraded == support::DegradeReason::Cancelled)
      return true;
  }
  return false;
}

void writeAnalyzerRecord(JsonWriter &W, const char *Key,
                         const BatchAnalyzerRecord &Rec,
                         const BatchOptions &Opts) {
  W.key(Key).beginObject();
  W.key("answer").value(Rec.Answer);
  W.key("goals").value(Rec.Stats.Goals);
  W.key("cacheHits").value(Rec.Stats.CacheHits);
  W.key("cuts").value(Rec.Stats.Cuts);
  W.key("joins").value(Rec.Stats.Joins);
  W.key("callMerges").value(Rec.Stats.CallMerges);
  W.key("maxDepth").value(Rec.Stats.MaxDepth);
  W.key("deadPaths").value(Rec.Stats.DeadPaths);
  W.key("prunedBranches").value(Rec.Stats.PrunedBranches);
  W.key("memoEntries").value(Rec.Stats.MemoEntries);
  W.key("stores").value(Rec.Stats.InternedStores);
  W.key("storeBytes").value(Rec.Stats.InternerBytes);
  W.key("budgetExhausted").value(Rec.Stats.BudgetExhausted);
  W.key("degradeReason").value(support::str(Rec.Stats.Degraded));
  W.key("loopBounded").value(Rec.Stats.LoopBounded);
  // Schema 5: continuation-summary counters. Uniform across legs for a
  // regular document; non-zero only in the syntactic leg with summaries.
  W.key("summaryHits").value(Rec.Stats.SummaryHits);
  W.key("summaryMisses").value(Rec.Stats.SummaryMisses);
  W.key("summaryEntries").value(Rec.Stats.SummaryEntries);
  W.key("summaryReuseDepth");
  Rec.Stats.SummaryReuseDepth.writeJson(W);
  if (Opts.IncludeTiming)
    W.key("wallMs").value(Rec.WallMs);
  W.endObject();
}

/// Per-analyzer aggregate across the corpus.
struct LegTotals {
  uint64_t Goals = 0, CacheHits = 0, Cuts = 0, Joins = 0, CallMerges = 0;
  uint64_t SummaryHits = 0, SummaryMisses = 0, SummaryEntries = 0;
  double WallMs = 0;

  void add(const BatchAnalyzerRecord &Rec) {
    Goals += Rec.Stats.Goals;
    CacheHits += Rec.Stats.CacheHits;
    Cuts += Rec.Stats.Cuts;
    Joins += Rec.Stats.Joins;
    CallMerges += Rec.Stats.CallMerges;
    SummaryHits += Rec.Stats.SummaryHits;
    SummaryMisses += Rec.Stats.SummaryMisses;
    SummaryEntries += Rec.Stats.SummaryEntries;
    WallMs += Rec.WallMs;
  }

  void write(JsonWriter &W, const char *Key,
             const BatchOptions &Opts) const {
    W.key(Key).beginObject();
    W.key("goals").value(Goals);
    W.key("cacheHits").value(CacheHits);
    W.key("cuts").value(Cuts);
    W.key("joins").value(Joins);
    W.key("callMerges").value(CallMerges);
    W.key("summaryHits").value(SummaryHits);
    W.key("summaryMisses").value(SummaryMisses);
    W.key("summaryEntries").value(SummaryEntries);
    if (Opts.IncludeTiming)
      W.key("wallMs").value(WallMs);
    W.endObject();
  }
};

/// Nearest-rank percentile of \p V (sorted in place): the
/// ceil(Q*N)-th smallest sample. Deterministic — depends only on the
/// multiset of values, never on thread interleaving.
template <typename T> T percentileOf(std::vector<T> &V, double Q) {
  if (V.empty())
    return T{};
  std::sort(V.begin(), V.end());
  size_t Rank = static_cast<size_t>(
      std::ceil(Q * static_cast<double>(V.size())));
  if (Rank == 0)
    Rank = 1;
  return V[std::min(Rank, V.size()) - 1];
}

/// Per-leg distributions across ok programs, for the "metrics" section
/// (schema 3+): every scalar AnalyzerStats counter gets {sum, p50, p95,
/// max}; schema 4 adds the joins/callMerges loss counters.
struct LegSamples {
  std::vector<uint64_t> Goals, CacheHits, Cuts, Joins, CallMerges,
      MaxDepth, MemoEntries, Stores, SummaryHits, SummaryMisses;
  std::vector<double> WallMs;

  void add(const BatchAnalyzerRecord &Rec) {
    Goals.push_back(Rec.Stats.Goals);
    CacheHits.push_back(Rec.Stats.CacheHits);
    Cuts.push_back(Rec.Stats.Cuts);
    Joins.push_back(Rec.Stats.Joins);
    CallMerges.push_back(Rec.Stats.CallMerges);
    MaxDepth.push_back(Rec.Stats.MaxDepth);
    MemoEntries.push_back(Rec.Stats.MemoEntries);
    Stores.push_back(Rec.Stats.InternedStores);
    SummaryHits.push_back(Rec.Stats.SummaryHits);
    SummaryMisses.push_back(Rec.Stats.SummaryMisses);
    WallMs.push_back(Rec.WallMs);
  }

  static void writeSummary(JsonWriter &W, const char *Key,
                           std::vector<uint64_t> &V) {
    uint64_t Sum = 0, Max = 0;
    for (uint64_t X : V) {
      Sum += X;
      Max = std::max(Max, X);
    }
    W.key(Key).beginObject();
    W.key("sum").value(Sum);
    W.key("p50").value(percentileOf(V, 0.5));
    W.key("p95").value(percentileOf(V, 0.95));
    W.key("max").value(Max);
    W.endObject();
  }

  void write(JsonWriter &W, const char *Key, const BatchOptions &Opts) {
    W.key(Key).beginObject();
    writeSummary(W, "goals", Goals);
    writeSummary(W, "cacheHits", CacheHits);
    writeSummary(W, "cuts", Cuts);
    writeSummary(W, "joins", Joins);
    writeSummary(W, "callMerges", CallMerges);
    writeSummary(W, "maxDepth", MaxDepth);
    writeSummary(W, "memoEntries", MemoEntries);
    writeSummary(W, "stores", Stores);
    writeSummary(W, "summaryHits", SummaryHits);
    writeSummary(W, "summaryMisses", SummaryMisses);
    if (Opts.IncludeTiming) {
      double Sum = 0, Max = 0;
      for (double X : WallMs) {
        Sum += X;
        Max = std::max(Max, X);
      }
      W.key("wallMs").beginObject();
      W.key("sum").value(Sum);
      W.key("p50").value(percentileOf(WallMs, 0.5));
      W.key("p95").value(percentileOf(WallMs, 0.95));
      W.key("max").value(Max);
      W.endObject();
    }
    W.endObject();
  }
};

} // namespace

const char *str(BatchFailKind K) {
  switch (K) {
  case BatchFailKind::None:
    return "none";
  case BatchFailKind::Parse:
    return "parse";
  case BatchFailKind::Cps:
    return "cps";
  case BatchFailKind::Deadline:
    return "deadline";
  case BatchFailKind::Memory:
    return "memory";
  case BatchFailKind::Internal:
    return "internal";
  }
  return "?";
}

Result<std::vector<std::string>> collectCorpus(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec);
  if (Ec)
    return Error("cannot read corpus directory '" + Dir +
                 "': " + Ec.message());
  std::vector<std::string> Files;
  for (fs::directory_iterator End; It != End; It.increment(Ec)) {
    if (Ec)
      return Error("error scanning corpus directory '" + Dir +
                   "': " + Ec.message());
    const fs::directory_entry &E = *It;
    if (!E.is_regular_file(Ec) || Ec)
      continue;
    if (E.path().extension() == ".scm")
      Files.push_back(E.path().string());
  }
  if (Ec)
    return Error("error scanning corpus directory '" + Dir +
                 "': " + Ec.message());
  std::sort(Files.begin(), Files.end());
  return Files;
}

BatchResult runBatch(
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    const BatchOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult R;
  R.Programs.resize(NamedSources.size());

  // The watchdog thread exists only when a deadline can strand a worker.
  std::optional<Watchdog> Dog;
  if (Opts.DeadlineMs > 0)
    Dog.emplace(/*PollMs=*/5.0);
  Watchdog *DogP = Dog ? &*Dog : nullptr;

  // Largest programs first: submission order is a pure scheduling hint
  // (results land at fixed indices and the report iterates input order,
  // so output bytes are identical), but dispatching the long-pole
  // programs before the cheap tail keeps workers from idling behind one
  // big program submitted last. Sizes are computed once, up front, and
  // reused by the retry pass. Stable sort: equal sizes keep input order.
  std::vector<uint64_t> Sizes;
  if (Opts.Threads > 1) {
    Sizes.resize(NamedSources.size());
    for (size_t I = 0; I < NamedSources.size(); ++I)
      Sizes[I] = scheduleSize(NamedSources[I].second);
  }

  auto runPass = [&](const std::vector<size_t> &Indices,
                     const BatchOptions &PassOpts) {
    if (PassOpts.Threads <= 1) {
      for (size_t I : Indices)
        R.Programs[I] = containedDispatch(NamedSources[I].first,
                                          NamedSources[I].second, PassOpts,
                                          DogP);
    } else {
      std::vector<size_t> Order(Indices);
      std::stable_sort(Order.begin(), Order.end(),
                       [&](size_t A, size_t B) {
                         return Sizes[A] > Sizes[B];
                       });
      // One job per program; each writes only its own pre-sized slot.
      ThreadPool Pool(PassOpts.Threads);
      for (size_t I : Order)
        Pool.submit([I, &NamedSources, &PassOpts, &R, DogP] {
          R.Programs[I] = containedDispatch(NamedSources[I].first,
                                            NamedSources[I].second, PassOpts,
                                            DogP);
        });
      Pool.wait();
    }
  };

  std::vector<size_t> All(NamedSources.size());
  std::iota(All.begin(), All.end(), size_t{0});
  runPass(All, Opts);

  R.Interrupted = Opts.Interrupt && Opts.Interrupt->cancelled();

  // No retry pass after an interrupt: the user asked the batch to stop,
  // and "cancelled" trips would re-trip immediately anyway.
  if (Opts.Retry && !R.Interrupted) {
    std::vector<size_t> Again;
    for (size_t I = 0; I < R.Programs.size(); ++I)
      if (deadlineTripped(R.Programs[I]))
        Again.push_back(I);
    if (!Again.empty()) {
      // One reduced-cost retry: cheaper loop bound and goal budget give
      // the same deadline a real chance of sufficing.
      BatchOptions Reduced = Opts;
      Reduced.LoopUnroll = std::max<uint32_t>(1, Opts.LoopUnroll / 2);
      Reduced.MaxGoals = std::max<uint64_t>(1, Opts.MaxGoals / 2);
      runPass(Again, Reduced);
      for (size_t I : Again)
        R.Programs[I].Retried = true;
    }
  }

  // Re-check: the token may have fired mid-retry.
  R.Interrupted = Opts.Interrupt && Opts.Interrupt->cancelled();
  R.WallMs = elapsedMs(Start);
  return R;
}

BatchResult runBatchFiles(const std::vector<std::string> &Files,
                          const BatchOptions &Opts) {
  std::vector<std::pair<std::string, std::string>> Sources;
  Sources.reserve(Files.size());
  for (const std::string &File : Files) {
    std::ifstream In(File);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Name = std::filesystem::path(File).filename().string();
    if (!In) {
      // Surface the read failure as a per-program error so one bad path
      // doesn't abort the whole corpus.
      Sources.emplace_back(Name, "");
    } else {
      Sources.emplace_back(Name, Buf.str());
    }
  }
  return runBatch(Sources, Opts);
}

std::string batchJson(const BatchResult &R, const BatchOptions &Opts) {
  JsonWriter W;
  W.beginObject();
  W.key("schemaVersion").value(BatchSchemaVersion);
  W.key("domain").value(Opts.Domain);
  W.key("dupBudget").value(Opts.DupBudget);
  // Only interrupted runs carry the marker: un-interrupted documents stay
  // byte-identical to every earlier schema-6 report.
  if (R.Interrupted)
    W.key("interrupted").value(true);
  if (Opts.IncludeTiming) {
    W.key("threads").value(static_cast<uint64_t>(Opts.Threads));
    W.key("wallMs").value(R.WallMs);
  }

  LegTotals Direct, Semantic, Syntactic, Dup, Pushdown;
  LegSamples DirectS, SemanticS, SyntacticS, DupS, PushdownS;
  uint64_t Failures = 0;
  uint64_t Kinds[6] = {0, 0, 0, 0, 0, 0};

  W.key("programs").beginArray();
  for (const BatchProgramResult &P : R.Programs) {
    W.beginObject();
    W.key("name").value(P.Name);
    W.key("ok").value(P.Ok);
    if (P.Retried)
      W.key("retried").value(true);
    if (Opts.IncludeTiming)
      W.key("worker").value(static_cast<uint64_t>(P.Worker));
    if (!P.Ok) {
      ++Failures;
      ++Kinds[static_cast<size_t>(P.Kind)];
      W.key("error").value(P.Error);
      W.key("failKind").value(str(P.Kind));
      W.endObject();
      continue;
    }
    W.key("nodes").value(P.Nodes);
    writeAnalyzerRecord(W, "direct", P.Direct, Opts);
    writeAnalyzerRecord(W, "semantic", P.Semantic, Opts);
    writeAnalyzerRecord(W, "syntactic", P.Syntactic, Opts);
    writeAnalyzerRecord(W, "dup", P.Dup, Opts);
    writeAnalyzerRecord(W, "pushdown", P.Pushdown, Opts);
    W.endObject();
    Direct.add(P.Direct);
    Semantic.add(P.Semantic);
    Syntactic.add(P.Syntactic);
    Dup.add(P.Dup);
    Pushdown.add(P.Pushdown);
    DirectS.add(P.Direct);
    SemanticS.add(P.Semantic);
    SyntacticS.add(P.Syntactic);
    DupS.add(P.Dup);
    PushdownS.add(P.Pushdown);
  }
  W.endArray();

  W.key("totals").beginObject();
  W.key("programs").value(static_cast<uint64_t>(R.Programs.size()));
  W.key("failures").value(Failures);
  W.key("failureKinds").beginObject();
  for (BatchFailKind K :
       {BatchFailKind::Parse, BatchFailKind::Cps, BatchFailKind::Deadline,
        BatchFailKind::Memory, BatchFailKind::Internal})
    W.key(str(K)).value(Kinds[static_cast<size_t>(K)]);
  W.endObject();
  Direct.write(W, "direct", Opts);
  Semantic.write(W, "semantic", Opts);
  Syntactic.write(W, "syntactic", Opts);
  Dup.write(W, "dup", Opts);
  Pushdown.write(W, "pushdown", Opts);
  W.endObject();

  // Schema 3: per-leg distributions across ok programs. Computed from
  // per-program counters, which are thread-count independent, so this
  // whole section is byte-identical at every --threads value; only the
  // wallMs summaries and the per-thread breakdown (both gated behind
  // IncludeTiming, like every timing field) vary run to run.
  W.key("metrics").beginObject();
  DirectS.write(W, "direct", Opts);
  SemanticS.write(W, "semantic", Opts);
  SyntacticS.write(W, "syntactic", Opts);
  DupS.write(W, "dup", Opts);
  PushdownS.write(W, "pushdown", Opts);
  if (Opts.IncludeTiming) {
    std::vector<uint64_t> Programs(std::max(1u, Opts.Threads), 0);
    std::vector<double> ThreadMs(Programs.size(), 0);
    for (const BatchProgramResult &P : R.Programs) {
      size_t Tid = std::min<size_t>(P.Worker, Programs.size() - 1);
      ++Programs[Tid];
      for (const auto &[LegName, Rec] : legsOf(P)) {
        (void)LegName;
        ThreadMs[Tid] += Rec->WallMs;
      }
    }
    W.key("perThread").beginArray();
    for (size_t I = 0; I < Programs.size(); ++I) {
      W.beginObject();
      W.key("worker").value(static_cast<uint64_t>(I));
      W.key("programs").value(Programs[I]);
      W.key("analyzeMs").value(ThreadMs[I]);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();

  W.endObject();
  return W.str();
}

} // namespace clients
} // namespace cpsflow
