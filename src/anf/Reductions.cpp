//===- anf/Reductions.cpp - The A-reductions, step by step ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "anf/Reductions.h"

#include "anf/Anf.h"
#include "syntax/Builder.h"

#include <functional>
#include <optional>

using namespace cpsflow;
using namespace cpsflow::anf;
using namespace cpsflow::syntax;

namespace {

/// Leftmost-outermost reduction. Terms are visited in evaluation order;
/// the first violation of the restricted grammar is rewritten.
class Stepper {
public:
  explicit Stepper(Context &Ctx) : Ctx(Ctx), B(Ctx) {}

  /// Steps \p T in tail position (whole program, let body, or branch of a
  /// let-bound conditional).
  std::optional<AStep> tail(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return insideValue(cast<ValueTerm>(T)->value(), [&](const Value *V) {
        return static_cast<const Term *>(B.val(V, T->loc()));
      });

    case TermKind::TK_App: {
      // A3 with the empty context: name the tail call.
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, T, B.varTerm(Tmp, T->loc()), T->loc()),
                   ARule::A3_NameApp};
    }
    case TermKind::TK_If0: {
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, T, B.varTerm(Tmp, T->loc()), T->loc()),
                   ARule::A2_NameIf0};
    }
    case TermKind::TK_Loop: {
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, T, B.varTerm(Tmp, T->loc()), T->loc()),
                   ARule::A4_NameLoop};
    }

    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      // First reduce the binding, then the body.
      if (std::optional<AStep> S = binding(Let))
        return S;
      if (std::optional<AStep> S = tail(Let->body()))
        return AStep{B.let(Let->var(), Let->bound(), S->Next, T->loc()),
                     S->Rule};
      return std::nullopt;
    }
    }
    return std::nullopt;
  }

private:
  using ValueWrap = std::function<const Term *(const Value *)>;

  /// xi: reduce inside a lambda body. \p Wrap rebuilds the enclosing term
  /// from the (possibly rewritten) value.
  std::optional<AStep> insideValue(const Value *V, const ValueWrap &Wrap) {
    const auto *Lam = dyn_cast<LamValue>(V);
    if (!Lam)
      return std::nullopt;
    std::optional<AStep> S = tail(Lam->body());
    if (!S)
      return std::nullopt;
    return AStep{Wrap(B.lam(Lam->param(), S->Next, V->loc())), S->Rule};
  }

  /// Reduces inside the binding of \p Let, the evaluation context
  /// (let (x []) M). \returns nullopt if the binding is already a legal
  /// ANF right-hand side with fully reduced subparts.
  std::optional<AStep> binding(const LetTerm *Let) {
    const Term *Bound = Let->bound();
    SourceLoc Loc = Let->loc();
    auto Rebind = [&](const Term *NewBound) {
      return B.let(Let->var(), NewBound, Let->body(), Loc);
    };

    switch (Bound->kind()) {
    case TermKind::TK_Value:
      // xi inside a bound lambda.
      return insideValue(cast<ValueTerm>(Bound)->value(),
                         [&](const Value *V) {
                           return Rebind(B.val(V, Bound->loc()));
                         });

    case TermKind::TK_Let: {
      // A1: (let (x (let (y N1) N2)) M) --> (let (y N1) (let (x N2) M)).
      const auto *Inner = cast<LetTerm>(Bound);
      return AStep{B.let(Inner->var(), Inner->bound(),
                         B.let(Let->var(), Inner->body(), Let->body(), Loc),
                         Loc),
                   ARule::A1_LiftLet};
    }

    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      // Reduce the operator to a value first, then the operand.
      if (std::optional<AStep> S = operandPosition(
              App->fun(), [&](const Term *F) {
                return Rebind(B.app(F, App->arg(), Bound->loc()));
              },
              [&](Symbol Tmp) {
                return Rebind(
                    B.app(B.varTerm(Tmp), App->arg(), Bound->loc()));
              },
              Let))
        return S;
      if (std::optional<AStep> S = operandPosition(
              App->arg(), [&](const Term *A) {
                return Rebind(B.app(App->fun(), A, Bound->loc()));
              },
              [&](Symbol Tmp) {
                return Rebind(
                    B.app(App->fun(), B.varTerm(Tmp), Bound->loc()));
              },
              Let))
        return S;
      // Both parts are values: xi inside them.
      if (std::optional<AStep> S = insideValue(
              cast<ValueTerm>(App->fun())->value(), [&](const Value *V) {
                return Rebind(
                    B.app(B.val(V), App->arg(), Bound->loc()));
              }))
        return S;
      return insideValue(cast<ValueTerm>(App->arg())->value(),
                         [&](const Value *V) {
                           return Rebind(B.app(App->fun(), B.val(V),
                                               Bound->loc()));
                         });
    }

    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      // Reduce the condition to a value.
      if (std::optional<AStep> S = operandPosition(
              If->cond(), [&](const Term *C) {
                return Rebind(B.if0(C, If->thenBranch(), If->elseBranch(),
                                    Bound->loc()));
              },
              [&](Symbol Tmp) {
                return Rebind(B.if0(B.varTerm(Tmp), If->thenBranch(),
                                    If->elseBranch(), Bound->loc()));
              },
              Let))
        return S;
      // xi inside the condition value, then the branches (tail).
      if (std::optional<AStep> S = insideValue(
              cast<ValueTerm>(If->cond())->value(), [&](const Value *V) {
                return Rebind(B.if0(B.val(V), If->thenBranch(),
                                    If->elseBranch(), Bound->loc()));
              }))
        return S;
      if (std::optional<AStep> S = tail(If->thenBranch()))
        return AStep{Rebind(B.if0(If->cond(), S->Next, If->elseBranch(),
                                  Bound->loc())),
                     S->Rule};
      if (std::optional<AStep> S = tail(If->elseBranch()))
        return AStep{Rebind(B.if0(If->cond(), If->thenBranch(), S->Next,
                                  Bound->loc())),
                     S->Rule};
      return std::nullopt;
    }

    case TermKind::TK_Loop:
      return std::nullopt;
    }
    return std::nullopt;
  }

  using TermWrap = std::function<const Term *(const Term *)>;
  using NameWrap = std::function<const Term *(Symbol)>;

  /// Handles a strict operand position inside a let binding: the
  /// evaluation context E = (let (x inner-context) M). If the operand is
  /// a let, A1 hoists it past the whole context; if it is a serious term
  /// (application, conditional, loop), A2-A4 name it. \p Rewrap rebuilds
  /// the let with a replaced operand; \p NameUse rebuilds it with the
  /// operand replaced by a fresh variable.
  std::optional<AStep> operandPosition(const Term *Operand,
                                       const TermWrap &Rewrap,
                                       const NameWrap &NameUse,
                                       const LetTerm *Let) {
    switch (Operand->kind()) {
    case TermKind::TK_Value:
      return std::nullopt; // already a value; xi handled by the caller

    case TermKind::TK_Let: {
      // A1: E[(let (y N1) N2)] --> (let (y N1) E[N2]) where E is the
      // enclosing binding context with this operand as the hole.
      const auto *Inner = cast<LetTerm>(Operand);
      return AStep{B.let(Inner->var(), Inner->bound(),
                         Rewrap(Inner->body()), Let->loc()),
                   ARule::A1_LiftLet};
    }

    case TermKind::TK_App: {
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, Operand, NameUse(Tmp), Let->loc()),
                   ARule::A3_NameApp};
    }
    case TermKind::TK_If0: {
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, Operand, NameUse(Tmp), Let->loc()),
                   ARule::A2_NameIf0};
    }
    case TermKind::TK_Loop: {
      Symbol Tmp = Ctx.fresh("t");
      return AStep{B.let(Tmp, Operand, NameUse(Tmp), Let->loc()),
                   ARule::A4_NameLoop};
    }
    }
    return std::nullopt;
  }

  Context &Ctx;
  Builder B;
};

} // namespace

const char *cpsflow::anf::str(ARule Rule) {
  switch (Rule) {
  case ARule::A1_LiftLet:
    return "A1";
  case ARule::A2_NameIf0:
    return "A2";
  case ARule::A3_NameApp:
    return "A3";
  case ARule::A4_NameLoop:
    return "A4";
  }
  return "?";
}

std::optional<AStep> cpsflow::anf::stepA(Context &Ctx,
                                         const syntax::Term *T) {
  return Stepper(Ctx).tail(T);
}

Result<const syntax::Term *>
cpsflow::anf::normalizeBySteps(Context &Ctx, const syntax::Term *T,
                               size_t MaxSteps) {
  for (size_t I = 0; I < MaxSteps; ++I) {
    std::optional<AStep> S = stepA(Ctx, T);
    if (!S)
      return T;
    T = S->Next;
  }
  return Error("A-reduction did not terminate within the step budget");
}
