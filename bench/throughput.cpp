//===- bench/throughput.cpp - E10: pipeline throughput ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E10 — engineering throughput of the whole pipeline on random programs
/// of growing size: A-normalization, CPS transformation, the concrete
/// machines, and the three analyzers. The argument is the generator's
/// chain length (program size scales roughly linearly with it).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "gen/Generator.h"
#include "interp/Direct.h"
#include "syntax/Analysis.h"

#include <benchmark/benchmark.h>

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

const syntax::Term *makeProgram(Context &Ctx, int64_t Size) {
  gen::GenOptions Opts;
  Opts.Seed = 1010;
  Opts.ChainLength = static_cast<uint32_t>(Size);
  Opts.MaxDepth = 2;
  Opts.WellTyped = true; // so analyses traverse the whole program
  gen::ProgramGenerator Gen(Ctx, Opts);
  return Gen.generate();
}

void BM_Normalize(benchmark::State &State) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = 1010;
  Opts.ChainLength = static_cast<uint32_t>(State.range(0));
  gen::ProgramGenerator Gen(Ctx, Opts);
  const syntax::Term *Full = Gen.generateFull();
  for (auto _ : State)
    benchmark::DoNotOptimize(anf::normalize(Ctx, Full));
}

void BM_CpsTransform(benchmark::State &State) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  for (auto _ : State) {
    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    benchmark::DoNotOptimize(P.hasValue());
  }
}

void BM_DirectInterp(benchmark::State &State) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  std::vector<interp::InitialBinding> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, interp::RtValue::number(1)});
  for (auto _ : State) {
    interp::DirectInterp I;
    benchmark::DoNotOptimize(I.run(T, Init).Steps);
  }
}

template <typename AnalyzerRunner>
void analyzeLoop(benchmark::State &State, AnalyzerRunner Run) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  std::vector<DirectBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
  uint64_t Goals = 0;
  for (auto _ : State)
    Goals = Run(Ctx, T, Init);
  State.counters["goals"] = static_cast<double>(Goals);
  State.counters["nodes"] = static_cast<double>(syntax::countNodes(T));
}

void BM_DirectAnalysis(benchmark::State &State) {
  analyzeLoop(State, [](Context &Ctx, const syntax::Term *T,
                        const std::vector<DirectBinding<CD>> &Init) {
    auto R = DirectAnalyzer<CD>(Ctx, T, Init).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    return R.Stats.Goals;
  });
}

void BM_SemanticAnalysis(benchmark::State &State) {
  analyzeLoop(State, [](Context &Ctx, const syntax::Term *T,
                        const std::vector<DirectBinding<CD>> &Init) {
    auto R = SemanticCpsAnalyzer<CD>(Ctx, T, Init).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    return R.Stats.Goals;
  });
}

void BM_SyntacticAnalysis(benchmark::State &State) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  std::vector<CpsBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::CpsAbsVal<CD>::number(CD::top())});
  uint64_t Goals = 0;
  for (auto _ : State) {
    auto R = SyntacticCpsAnalyzer<CD>(Ctx, *P, Init).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    Goals = R.Stats.Goals;
  }
  State.counters["goals"] = static_cast<double>(Goals);
}

} // namespace

BENCHMARK(BM_Normalize)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_CpsTransform)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_DirectInterp)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_DirectAnalysis)->RangeMultiplier(2)->Range(8, 64);
// The CPS analyzers pay the duplication cost even on random programs;
// cap their sweep so the full bench run stays in CI-friendly time.
BENCHMARK(BM_SemanticAnalysis)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SyntacticAnalysis)->RangeMultiplier(2)->Range(8, 32);

BENCHMARK_MAIN();
