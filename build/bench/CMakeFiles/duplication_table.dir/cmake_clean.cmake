file(REMOVE_RECURSE
  "CMakeFiles/duplication_table.dir/duplication_table.cpp.o"
  "CMakeFiles/duplication_table.dir/duplication_table.cpp.o.d"
  "duplication_table"
  "duplication_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplication_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
