//===- bench/theorem52.cpp - E2/E3: Theorem 5.2 reproduction ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E2/E3 — regenerates both Theorem 5.2 cases, where the CPS analyses are
/// strictly more precise than the direct analysis because they duplicate
/// the continuation's analysis per path:
///
///  * E2 (5.2a): branch merging — the paper reports a2 = (3, {}, {}) per
///    execution path in the CPS analysis, T directly.
///  * E3 (5.2b): call-site merging — a2 = (5, {}, {}) per path in the CPS
///    analysis, T directly.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "syntax/Printer.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

void runCase(Context &Ctx, const char *Id, Witness W, const char *Expect) {
  Trio T = runTrio(Ctx, W);
  printHeader(Id);
  std::printf("program: %s\n\n", syntax::print(Ctx, W.Anf).c_str());
  std::printf("  var    | direct       | semantic     | syntactic\n");
  std::printf("  -------+--------------+--------------+----------\n");
  for (Symbol X : W.InterestingVars)
    printVarRow(Ctx, T, X);

  Comparison C = compareWithSyntactic<CD>(Ctx, T.Direct, T.Syntactic, W.Cps,
                                          W.InterestingVars);
  std::printf("\npaper expectation: %s; measured verdict (direct vs "
              "syntactic): %s\n",
              Expect, str(C.Overall));
  std::printf("a2: direct %s, semantic %s, syntactic %s\n",
              T.Direct.valueOf(Ctx.intern("a2")).str(Ctx).c_str(),
              T.Semantic.valueOf(Ctx.intern("a2")).str(Ctx).c_str(),
              T.Syntactic.valueOf(Ctx.intern("a2")).str(Ctx).c_str());
}

} // namespace

int main() {
  Context Ctx;
  runCase(Ctx, "E2: Theorem 5.2a — branch merging loses a2 directly",
          theorem52a(Ctx),
          "CPS strictly more precise, a2 = 3 in CPS vs T directly");
  runCase(Ctx, "E3: Theorem 5.2b — call merging loses a2 directly",
          theorem52b(Ctx),
          "CPS strictly more precise, a2 = 5 in CPS vs T directly");

  std::printf("\ntogether with E1: the direct and syntactic-CPS analyses "
              "are incomparable, as the paper concludes.\n");
  return 0;
}
