//===- clients/Reports.cpp - Human-readable analysis reports ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Reports.h"

#include "syntax/Printer.h"

#include <algorithm>

using namespace cpsflow;
using namespace cpsflow::clients;

std::string cpsflow::clients::describeCfg(const Context &Ctx,
                                          const analysis::DirectCfg &Cfg) {
  std::ostringstream O;
  for (const auto &[Site, Callees] : Cfg.Callees) {
    O << "  call #" << Site->id() << " "
      << syntax::print(Ctx, static_cast<const syntax::Term *>(Site))
      << " -> {";
    bool First = true;
    for (const domain::CloRef &C : Callees) {
      if (!First)
        O << ", ";
      O << C.str(Ctx);
      First = false;
    }
    O << "}\n";
  }
  for (const auto &[If, BI] : Cfg.Branches) {
    O << "  if0 #" << If->id() << " feasible:";
    if (BI.ThenFeasible)
      O << " then";
    if (BI.ElseFeasible)
      O << " else";
    O << "\n";
  }
  return O.str();
}

std::string cpsflow::clients::describeCfg(const Context &Ctx,
                                          const analysis::CpsCfg &Cfg) {
  std::ostringstream O;
  for (const auto &[Site, Callees] : Cfg.Callees) {
    O << "  call #" << Site->id() << " -> {";
    bool First = true;
    for (const domain::CpsCloRef &C : Callees) {
      if (!First)
        O << ", ";
      O << C.str(Ctx);
      First = false;
    }
    O << "}\n";
  }
  for (const auto &[If, BI] : Cfg.Branches) {
    O << "  if0 #" << If->id() << " feasible:";
    if (BI.ThenFeasible)
      O << " then";
    if (BI.ElseFeasible)
      O << " else";
    O << "\n";
  }
  for (const auto &[Ret, Konts] : Cfg.Returns) {
    O << "  return (" << Ctx.spelling(Ret->kvar()) << " _) #" << Ret->id()
      << " -> {";
    bool First = true;
    for (const domain::KontRef &K : Konts) {
      if (!First)
        O << ", ";
      O << K.str(Ctx);
      First = false;
    }
    O << "}";
    if (Konts.size() > 1)
      O << "   <-- FALSE RETURN (distinct returns confused)";
    O << "\n";
  }
  return O.str();
}

std::string
cpsflow::clients::describeStats(const analysis::AnalyzerStats &S) {
  std::ostringstream O;
  O << "goals=" << S.Goals << " cache-hits=" << S.CacheHits
    << " cuts=" << S.Cuts << " max-depth=" << S.MaxDepth;
  // Dead paths and pruned branches carry semantic weight (they mark where
  // Theorem 5.4's equality can fail — DESIGN.md section 7), so surface
  // them whenever they fired.
  if (S.DeadPaths)
    O << " dead-paths=" << S.DeadPaths;
  if (S.PrunedBranches)
    O << " pruned-branches=" << S.PrunedBranches;
  if (S.BudgetExhausted) {
    // Keep the historical tag for plain goal exhaustion; name the wall
    // for the governor's other trips.
    if (S.Degraded == support::DegradeReason::None ||
        S.Degraded == support::DegradeReason::Goals)
      O << " [budget exhausted]";
    else
      O << " [degraded: " << support::str(S.Degraded) << "]";
  }
  if (S.LoopBounded)
    O << " [loop join truncated]";
  return O.str();
}

std::string cpsflow::clients::metricsTable(
    const std::vector<std::pair<std::string, const support::MetricsRegistry *>>
        &Legs) {
  // Row order: union of the legs' metric names, first-seen order, so the
  // table is deterministic and every leg's counters line up.
  std::vector<std::string> Rows;
  auto addRow = [&](const std::string &Name) {
    for (const std::string &R : Rows)
      if (R == Name)
        return;
    Rows.push_back(Name);
  };
  for (const auto &[LegName, M] : Legs) {
    (void)LegName;
    if (M)
      M->forEach([&](const std::string &N, uint64_t) { addRow(N); },
                 [&](const std::string &N, const support::Histogram &) {
                   addRow(N);
                 });
  }

  // Render every cell up front so column widths can be computed.
  std::vector<std::vector<std::string>> Cells; // [row][col]
  for (const std::string &Row : Rows) {
    std::vector<std::string> Line;
    for (const auto &[LegName, M] : Legs) {
      (void)LegName;
      if (M && M->hasCounter(Row))
        Line.push_back(std::to_string(M->counter(Row)));
      else if (const support::Histogram *H = M ? M->findHistogram(Row)
                                               : nullptr)
        Line.push_back(H->str());
      else
        Line.push_back("-");
    }
    Cells.push_back(std::move(Line));
  }

  size_t NameWidth = std::string("metric").size();
  for (const std::string &Row : Rows)
    NameWidth = std::max(NameWidth, Row.size());
  std::vector<size_t> ColWidth(Legs.size());
  for (size_t C = 0; C < Legs.size(); ++C) {
    ColWidth[C] = Legs[C].first.size();
    for (const auto &Line : Cells)
      ColWidth[C] = std::max(ColWidth[C], Line[C].size());
  }

  std::ostringstream O;
  auto pad = [&](const std::string &S, size_t W) {
    O << S << std::string(W - S.size(), ' ');
  };
  pad("metric", NameWidth);
  for (size_t C = 0; C < Legs.size(); ++C) {
    O << "  ";
    pad(Legs[C].first, ColWidth[C]);
  }
  O << "\n";
  for (size_t R = 0; R < Rows.size(); ++R) {
    pad(Rows[R], NameWidth);
    for (size_t C = 0; C < Legs.size(); ++C) {
      O << "  ";
      pad(Cells[R][C], ColWidth[C]);
    }
    O << "\n";
  }
  return O.str();
}
