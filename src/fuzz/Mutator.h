//===- fuzz/Mutator.h - Structural program mutation -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural mutation and crossover of language-A programs for the fuzz
/// campaign. Mutations edit the AST (swap application operands, perturb
/// numerals, duplicate or drop let bindings, wrap a binding in if0,
/// eta-wrap an operator) and then re-establish the analyzer input
/// contract — anf::isAnf plus unique binders — by running the result
/// through anf::normalizeProgram. The mutator works source-text to
/// source-text: its output is printer output, so it parses back
/// identically (the PrinterRoundTrip property) and can be fed straight to
/// the oracles or persisted as a reproducer.
///
/// Deterministic: a Mutator is seeded once and every draw comes from the
/// seeded Rng, so (seed, input) pairs reproduce the same mutant on every
/// platform and thread count.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_FUZZ_MUTATOR_H
#define CPSFLOW_FUZZ_MUTATOR_H

#include "support/Rng.h"

#include <optional>
#include <string>

namespace cpsflow {
namespace fuzz {

class Mutator {
public:
  explicit Mutator(uint64_t Seed) : Random(Seed) {}

  /// \returns the printed ANF form of a structural mutant of \p Source
  /// (one to three random edits), or nullopt if \p Source does not parse
  /// (a corrupt seed file — the campaign reports those separately).
  std::optional<std::string> mutate(const std::string &Source);

  /// Splices the let-binding spine of \p A onto the program \p B: a
  /// cheap crossover that breeds past findings with fresh material.
  /// \returns nullopt if either side fails to parse.
  std::optional<std::string> crossover(const std::string &A,
                                       const std::string &B);

private:
  Rng Random;
};

} // namespace fuzz
} // namespace cpsflow

#endif // CPSFLOW_FUZZ_MUTATOR_H
