//===- examples/precision_lab.cpp - Random precision census -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random A-normal-form programs and classifies, per program,
/// how the direct analysis compares to the syntactic-CPS analysis — a
/// miniature of the paper's headline claim that the two are incomparable
/// in general (Theorems 5.1 and 5.2 give the witnesses in each strict
/// direction). Usage: precision_lab [seed [count]].
///
//===----------------------------------------------------------------------===//

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "cps/Transform.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <cstdio>
#include <cstdlib>

using namespace cpsflow;
using namespace cpsflow::analysis;
using CD = domain::ConstantDomain;

int main(int argc, char **argv) {
  uint64_t Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2024;
  int Count = argc > 2 ? std::atoi(argv[2]) : 200;

  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = Seed;
  Opts.ChainLength = 10;
  Opts.MaxDepth = 3;
  gen::ProgramGenerator Gen(Ctx, Opts);

  int Equal = 0, DirectWins = 0, CpsWins = 0, Incomparable = 0;
  std::string DirectExample, CpsExample, IncomparableExample;

  for (int I = 0; I < Count; ++I) {
    const syntax::Term *T = Gen.generate();
    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    if (!P)
      continue;

    std::vector<DirectBinding<CD>> BD;
    std::vector<CpsBinding<CD>> BC;
    for (Symbol S : syntax::freeVars(T)) {
      BD.push_back({S, domain::AbsVal<CD>::number(CD::top())});
      BC.push_back({S, domain::CpsAbsVal<CD>::number(CD::top())});
    }

    auto AD = DirectAnalyzer<CD>(Ctx, T, BD).run();
    auto AC = SyntacticCpsAnalyzer<CD>(Ctx, *P, BC).run();
    if (!AD.Stats.complete() || !AC.Stats.complete())
      continue;

    Comparison C = compareWithSyntactic<CD>(Ctx, AD, AC, *P,
                                            syntax::collectVariables(T));
    switch (C.Overall) {
    case PrecisionOrder::Equal:
      ++Equal;
      break;
    case PrecisionOrder::LeftMorePrecise:
      ++DirectWins;
      if (DirectExample.empty())
        DirectExample = syntax::print(Ctx, T);
      break;
    case PrecisionOrder::RightMorePrecise:
      ++CpsWins;
      if (CpsExample.empty())
        CpsExample = syntax::print(Ctx, T);
      break;
    case PrecisionOrder::Incomparable:
      ++Incomparable;
      if (IncomparableExample.empty())
        IncomparableExample = syntax::print(Ctx, T);
      break;
    }
  }

  int Total = Equal + DirectWins + CpsWins + Incomparable;
  std::printf("direct vs syntactic-CPS constant propagation over %d random "
              "programs (seed %llu):\n\n",
              Total, (unsigned long long)Seed);
  std::printf("  equal                 %5d  (%5.1f%%)\n", Equal,
              100.0 * Equal / Total);
  std::printf("  direct more precise   %5d  (%5.1f%%)   [Theorem 5.1 "
              "direction]\n",
              DirectWins, 100.0 * DirectWins / Total);
  std::printf("  cps more precise      %5d  (%5.1f%%)   [Theorem 5.2 "
              "direction]\n",
              CpsWins, 100.0 * CpsWins / Total);
  std::printf("  incomparable          %5d  (%5.1f%%)\n\n", Incomparable,
              100.0 * Incomparable / Total);

  if (!DirectExample.empty())
    std::printf("a program the direct analysis wins on:\n  %s\n\n",
                DirectExample.c_str());
  if (!CpsExample.empty())
    std::printf("a program the CPS analysis wins on:\n  %s\n\n",
                CpsExample.c_str());
  if (!IncomparableExample.empty())
    std::printf("a program where they are incomparable:\n  %s\n",
                IncomparableExample.c_str());
  return 0;
}
