; Section 6.2: (loop) yields every natural and never returns normally.
; The direct analyzer's loop rule is exact; the CPS analyzers must
; bound it (loopBounded in the stats).
(let (n (loop))
  (if0 n 1 (add1 n)))
