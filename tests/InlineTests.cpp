//===- tests/InlineTests.cpp - Heuristic inliner tests ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.3 coda as code: inlining call sites of let-bound lambdas
/// and then running the plain Figure 4 analyzer recovers — and on the
/// false-return side surpasses — the CPS analyses' precision, while
/// preserving the concrete semantics.
///
//===----------------------------------------------------------------------===//

#include "clients/Inline.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "gen/Generator.h"
#include "interp/Direct.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::clients;
using cpsflow::test::intBindings;
using cpsflow::test::mustParse;
using CD = domain::ConstantDomain;

namespace {

const syntax::Term *prepare(Context &Ctx, const char *Text) {
  return anf::normalizeProgram(Ctx, mustParse(Ctx, Text));
}

TEST(Inline, ExpandsASimpleCall) {
  Context Ctx;
  const syntax::Term *T =
      prepare(Ctx, "(let (f (lambda (x) (add1 x))) (f 1))");
  InlineResult R = inlineCalls(Ctx, T);
  EXPECT_EQ(R.InlinedCalls, 1u);
  EXPECT_TRUE(anf::isAnf(R.Inlined).hasValue());
  // No call remains: the only application left is the primitive.
  for (const syntax::LamValue *Lam : syntax::collectLambdas(R.Inlined))
    (void)Lam; // the dead lambda binding may remain; calls do not
  interp::DirectInterp I;
  interp::RunResult Run = I.run(R.Inlined);
  ASSERT_TRUE(Run.ok());
  EXPECT_EQ(Run.Value.Num, 2);
}

TEST(Inline, LeavesEscapingLambdasAlone) {
  Context Ctx;
  // f escapes as an argument to g, so it must not be inlined.
  const syntax::Term *T = prepare(
      Ctx, "(let (f (lambda (x) x)) (let (g (lambda (h) (h 5))) (g f)))");
  InlineResult R = inlineCalls(Ctx, T);
  // g itself is inlinable ((g f) -> (f 5)), which then exposes f at a
  // direct call site on the next pass — both are valid; what matters is
  // semantics preservation and termination.
  interp::DirectInterp I;
  interp::RunResult Run = I.run(R.Inlined);
  ASSERT_TRUE(Run.ok());
  EXPECT_EQ(Run.Value.Num, 5);
}

TEST(Inline, RespectsTheSizeHeuristic) {
  Context Ctx;
  const syntax::Term *T =
      prepare(Ctx, "(let (f (lambda (x) (add1 x))) (f 1))");
  InlineOptions Opts;
  Opts.MaxBodyNodes = 1; // nothing fits
  InlineResult R = inlineCalls(Ctx, T, Opts);
  EXPECT_EQ(R.InlinedCalls, 0u);
  EXPECT_TRUE(syntax::alphaEquivalent(T, R.Inlined));
}

TEST(Inline, RecoversTheorem51PrecisionWithALetBoundIdentity) {
  // The Theorem 5.1 shape with f let-bound: after inlining, each call
  // site has its own copy of the identity, so the direct analysis keeps
  // a1 = 1 AND a2 = 2 — more precise than every paper analyzer, which
  // merge x across the two calls.
  Context Ctx;
  const syntax::Term *T = prepare(
      Ctx, "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a2)))");

  auto Plain = analysis::DirectAnalyzer<CD>(Ctx, T).run();
  EXPECT_EQ(CD::str(Plain.valueOf(Ctx.intern("a1")).Num), "1");
  EXPECT_EQ(CD::str(Plain.valueOf(Ctx.intern("a2")).Num), "T");
  auto Semantic = analysis::SemanticCpsAnalyzer<CD>(Ctx, T).run();
  EXPECT_EQ(CD::str(Semantic.valueOf(Ctx.intern("a2")).Num), "T");

  InlineResult R = inlineCalls(Ctx, T);
  EXPECT_EQ(R.InlinedCalls, 2u);
  auto Inlined = analysis::DirectAnalyzer<CD>(Ctx, R.Inlined).run();
  EXPECT_EQ(CD::str(Inlined.valueOf(Ctx.intern("a1")).Num), "1");
  EXPECT_EQ(CD::str(Inlined.valueOf(Ctx.intern("a2")).Num), "2");
  EXPECT_EQ(CD::str(Inlined.Answer.Value.Num), "2");
}

TEST(Inline, RecursiveFunctionsAreUntouchedButStillRun) {
  Context Ctx;
  // Recursion goes through self-application; inlining must terminate and
  // preserve the countdown's semantics.
  const syntax::Term *T = prepare(
      Ctx, "(let (g (lambda (s) (lambda (n) (if0 n 0 ((s s) (sub1 n))))))"
           " ((g g) 6))");
  InlineResult R = inlineCalls(Ctx, T);
  interp::DirectInterp I;
  interp::RunResult Run = I.run(R.Inlined);
  ASSERT_TRUE(Run.ok());
  EXPECT_EQ(Run.Value.Num, 0);
}

class InlinePreservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InlinePreservation, SemanticsPreservedOnRandomPrograms) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  Opts.WellTyped = true;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 25; ++I) {
    const syntax::Term *T = Gen.generate();
    InlineResult R = inlineCalls(Ctx, T);
    ASSERT_TRUE(anf::isAnf(R.Inlined).hasValue());
    ASSERT_TRUE(syntax::checkUniqueBinders(Ctx, R.Inlined).hasValue());

    interp::RunLimits Limits;
    Limits.MaxSteps = 200000;
    interp::DirectInterp I1(Limits), I2(Limits);
    interp::RunResult R1 = I1.run(T, intBindings(T, {1, 2}));
    interp::RunResult R2 = I2.run(R.Inlined, intBindings(R.Inlined, {1, 2}));
    if (R1.Status == interp::RunStatus::OutOfFuel ||
        R2.Status == interp::RunStatus::OutOfFuel)
      continue;
    ASSERT_EQ(static_cast<int>(R1.Status), static_cast<int>(R2.Status))
        << syntax::print(Ctx, T);
    if (R1.ok() && R1.Value.isNum())
      ASSERT_EQ(R1.Value.Num, R2.Value.Num) << syntax::print(Ctx, T);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlinePreservation,
                         ::testing::Values(1201, 1202, 1203, 1204));

class InlinePrecision : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InlinePrecision, InlinedDirectAtLeastAsPreciseOnAnswers) {
  // On the answer value, inline+direct should never lose to plain direct
  // (it can win). Compared on cut-free runs only.
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  Opts.WellTyped = true;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 20; ++I) {
    const syntax::Term *T = Gen.generate();
    std::vector<analysis::DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    auto Plain = analysis::DirectAnalyzer<CD>(Ctx, T, Init).run();

    InlineResult R = inlineCalls(Ctx, T);
    std::vector<analysis::DirectBinding<CD>> Init2;
    for (Symbol S : syntax::freeVars(R.Inlined))
      Init2.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    auto Better = analysis::DirectAnalyzer<CD>(Ctx, R.Inlined, Init2).run();

    if (Plain.Stats.Cuts || Better.Stats.Cuts)
      continue;
    // Compare only the numeric part of the answers: inlining changes the
    // lambda universe, so closure sets are not directly comparable.
    EXPECT_TRUE(CD::leq(Better.Answer.Value.Num, Plain.Answer.Value.Num))
        << syntax::print(Ctx, T) << "\n inlined "
        << CD::str(Better.Answer.Value.Num) << " vs plain "
        << CD::str(Plain.Answer.Value.Num);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlinePrecision,
                         ::testing::Values(1301, 1302, 1303));

} // namespace
