//===- fuzz/Oracles.h - Differential fuzzing oracles ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable oracle set of `cpsflow fuzz`, each derived from a claim
/// of the paper (or from an invariant this codebase added on top):
///
///   O1 interp-agreement — the direct, semantic-CPS, and syntactic-CPS
///      interpreters agree on terminating runs (Lemmas 3.1 and 3.3).
///   O2 soundness — every abstract analyzer over-approximates its
///      concrete interpreter's answer and store (Section 4.3).
///   O3 precision-order — the Section 5 orderings between the direct and
///      CPS analyses: Theorem 5.4 (semantic at least as precise as
///      direct, the Theorem 5.1/5.2 direction made uniform) and Theorem
///      5.5 (semantic at least as precise as syntactic), with the cut
///      scoping documented in tests/SoundnessTests.cpp.
///   O4 reference-match — the hash-consed production analyzers produce
///      bitwise-identical answers and work counters to the naive
///      tests/reference/ oracles.
///   O5 determinism — re-parsing and re-analyzing the same source in a
///      fresh Context reproduces every answer and counter exactly (no
///      pointer-order or iteration-order dependence).
///   O6 governed-degradation — a resource-governed run never reports a
///      *more* precise value than the ungoverned run (degradation is a
///      sound over-approximation, as in tests/GovernorTests.cpp).
///   O7 pushdown-order — the pushdown analyzer dominates syntactic CPS
///      (never less precise, with the Theorem 5.5 cut scoping), and on
///      merge-free runs — both legs cut-free, no direct joins, no dead
///      paths — it reproduces the direct answer exactly. This is the
///      CFA2 claim made executable: call-return matching recovers
///      everything syntactic merging loses.
///
/// Checks are pure: one call parses the source, runs everything it
/// needs, and reports violations. Under CPSFLOW_FAULT_INJECTION each
/// oracle entry is a named fault site ("O1".."O7"), so an armed
/// fault::Plan turns into a deterministic, replayable violation — the
/// end-to-end test of the campaign's detect → shrink → replay path.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_FUZZ_ORACLES_H
#define CPSFLOW_FUZZ_ORACLES_H

#include "analysis/Common.h"
#include "support/Metrics.h"
#include "support/Result.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cpsflow {
namespace fuzz {

/// The oracle set. Values are bit positions in oracle masks.
enum class OracleId : uint8_t {
  InterpAgreement,    ///< O1
  Soundness,          ///< O2
  PrecisionOrder,     ///< O3
  ReferenceMatch,     ///< O4
  Determinism,        ///< O5
  GovernedDegrade,    ///< O6
  PushdownOrder,      ///< O7
};

constexpr unsigned NumOracles = 7;
constexpr uint32_t AllOracles = (1u << NumOracles) - 1;

constexpr uint32_t maskOf(OracleId Id) {
  return 1u << static_cast<unsigned>(Id);
}

/// Short tag: "O1".."O7".
const char *tag(OracleId Id);

/// Human-readable name, e.g. "interp-agreement".
const char *describe(OracleId Id);

/// Parses a comma-separated oracle list ("O1,O3" or
/// "interp-agreement,precision-order"; case-insensitive) into a mask.
Result<uint32_t> parseOracleMask(const std::string &List);

/// One violated oracle on one program.
struct OracleViolation {
  OracleId Id = OracleId::InterpAgreement;
  std::string Message;
};

/// Knobs for one oracle evaluation.
struct OracleOptions {
  /// Numeric domain name: constant|unit|sign|parity|interval.
  std::string Domain = "constant";
  /// Enabled oracles (bitmask over OracleId).
  uint32_t Mask = AllOracles;
  /// Per-analyzer goal budget for the abstract runs.
  uint64_t MaxGoals = 200'000;
  /// Concrete interpreter fuel.
  uint64_t MaxSteps = 200'000;
  /// Loop-unroll bound forwarded to the analyzers.
  uint32_t LoopUnroll = 64;
  /// Duplication budget for the dup analyzer leg.
  uint64_t DupBudget = 2;
  /// Concrete integers bound (cyclically) to the program's free
  /// variables; the abstract runs bind the matching constants.
  std::vector<int64_t> Inputs = {0, 3};

  /// Per-check governor for the abstract runs (the batch driver's knobs).
  /// A wall-clock deadline makes where degradation lands machine-
  /// dependent, so byte-stable campaigns leave DeadlineMs at 0.
  double DeadlineMs = 0;
  uint64_t MaxStoreBytes = 0;
  uint32_t MaxDepth = 0;
  /// Process-wide interrupt token (SIGINT/SIGTERM): in-flight abstract
  /// runs degrade through the governor when it fires, so a campaign stops
  /// within one oracle check, not one wave.
  std::shared_ptr<support::CancelToken> Interrupt;

  /// Observability, threaded into every analyzer run this check makes.
  support::MetricsRegistry *Metrics = nullptr;
  support::Tracer *Trace = nullptr;
  uint32_t TraceTid = 0;
};

/// Index of an analyzer leg in OracleOutcome::LegStats.
enum Leg : unsigned {
  LegDirect,
  LegSemantic,
  LegSyntactic,
  LegDup,
  LegPushdown,
  NumLegs
};

/// The result of evaluating the enabled oracles on one program.
struct OracleOutcome {
  /// Violations in oracle order (empty = clean).
  std::vector<OracleViolation> Violations;
  /// Oracles whose comparisons actually ran (some skip themselves when a
  /// precondition fails: fuel exhausted, budget exhausted, cuts).
  uint32_t Checked = 0;
  /// Stats of the ungoverned abstract runs, for report aggregation.
  analysis::AnalyzerStats LegStats[NumLegs];
};

/// Parses \p Source (sugared program syntax), A-normalizes it, and
/// evaluates every oracle enabled in \p Opts. An Error means the program
/// could not reach the oracles at all (parse or CPS-transform failure) —
/// campaign inputs are printer output, so that is an infrastructure bug,
/// not a finding.
Result<OracleOutcome> checkSource(const std::string &Source,
                                  const OracleOptions &Opts);

} // namespace fuzz
} // namespace cpsflow

#endif // CPSFLOW_FUZZ_ORACLES_H
