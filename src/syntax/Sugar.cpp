//===- syntax/Sugar.cpp - Surface-language desugaring -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Sugar.h"

#include "syntax/Builder.h"
#include "syntax/Parser.h"
#include "syntax/Sexpr.h"

#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

bool isReserved(const std::string &Text) {
  return Text == "let" || Text == "let*" || Text == "if0" ||
         Text == "lambda" || Text == "λ" || Text == "loop" ||
         Text == "add1" || Text == "sub1" || Text == "rec" ||
         Text == "define" || Text == "+" || Text == "-";
}

class Desugarer {
public:
  explicit Desugarer(Context &Ctx) : Ctx(Ctx), B(Ctx) {}

  Result<const Term *> term(const Sexpr &E) {
    // Same wall as TermParser::term: every desugaring form recurses
    // through here, so one guard bounds the native stack.
    if (Depth >= MaxTermDepth)
      return Error("program nesting exceeds the supported depth (" +
                       std::to_string(MaxTermDepth) + ")",
                   E.Loc);
    ++Depth;
    Result<const Term *> T = termImpl(E);
    --Depth;
    return T;
  }

  Result<const Term *> termImpl(const Sexpr &E) {
    if (E.isNumber())
      return static_cast<const Term *>(B.numTerm(E.Number, E.Loc));
    if (E.isSymbol())
      return symbol(E);
    if (E.size() == 0)
      return Error("empty application '()'", E.Loc);

    const Sexpr &Head = E[0];
    if (Head.isSymbol("lambda") || Head.isSymbol("λ"))
      return lambda(E);
    if (Head.isSymbol("let"))
      return letForm(E);
    if (Head.isSymbol("let*"))
      return letStar(E);
    if (Head.isSymbol("if0"))
      return if0Form(E);
    if (Head.isSymbol("loop"))
      return loopForm(E);
    if (Head.isSymbol("rec"))
      return recForm(E);
    if (Head.isSymbol("+") || Head.isSymbol("-"))
      return plusMinus(E);
    if (Head.isSymbol("define"))
      return Error("define is only legal at the top of a program", E.Loc);
    return application(E);
  }

  /// Zero or more defines, then one expression.
  Result<const Term *> program(const std::vector<Sexpr> &Forms) {
    if (Forms.empty())
      return Error("a program needs a final expression");

    // Desugar the trailing expression first, then wrap defines inside-out.
    Result<const Term *> Body = term(Forms.back());
    if (!Body)
      return Body;
    const Term *T = *Body;

    for (size_t I = Forms.size() - 1; I-- > 0;) {
      const Sexpr &Def = Forms[I];
      if (!Def.isList() || Def.size() < 1 || !Def[0].isSymbol("define"))
        return Error("only the final form may be a non-define expression",
                     Def.Loc);
      Result<std::pair<Symbol, const Term *>> Binding = define(Def);
      if (!Binding)
        return Binding.error();
      T = B.let(Binding->first, Binding->second, T, Def.Loc);
    }
    return T;
  }

private:
  Result<Symbol> variable(const Sexpr &E) {
    if (!E.isSymbol())
      return Error("expected a variable", E.Loc);
    if (isReserved(E.Text))
      return Error("reserved word '" + E.Text + "' cannot be a variable",
                   E.Loc);
    return Ctx.intern(E.Text);
  }

  Result<const Term *> symbol(const Sexpr &E) {
    if (E.Text == "add1")
      return static_cast<const Term *>(B.val(B.add1(E.Loc), E.Loc));
    if (E.Text == "sub1")
      return static_cast<const Term *>(B.val(B.sub1(E.Loc), E.Loc));
    Result<Symbol> V = variable(E);
    if (!V)
      return V.error();
    return static_cast<const Term *>(B.varTerm(*V, E.Loc));
  }

  // (lambda (x y ...) M) — curried.
  Result<const Term *> lambda(const Sexpr &E) {
    if (E.size() != 3 || !E[1].isList() || E[1].size() == 0)
      return Error("lambda expects a non-empty parameter list and a body",
                   E.Loc);
    std::vector<Symbol> Params;
    for (const Sexpr &P : E[1].Elements) {
      Result<Symbol> V = variable(P);
      if (!V)
        return V.error();
      Params.push_back(*V);
    }
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body;
    const Term *T = *Body;
    for (size_t I = Params.size(); I-- > 0;)
      T = B.val(B.lam(Params[I], T, E.Loc), E.Loc);
    return T;
  }

  Result<const Term *> letForm(const Sexpr &E) {
    if (E.size() != 3 || !E[1].isList() || E[1].size() != 2 ||
        !E[1][0].isSymbol())
      return Error("let expects (let (x M) M)", E.Loc);
    Result<Symbol> V = variable(E[1][0]);
    if (!V)
      return V.error();
    Result<const Term *> Bound = term(E[1][1]);
    if (!Bound)
      return Bound;
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body;
    return static_cast<const Term *>(B.let(*V, *Bound, *Body, E.Loc));
  }

  // (let* ((x M) (y M) ...) body) — nested lets.
  Result<const Term *> letStar(const Sexpr &E) {
    if (E.size() != 3 || !E[1].isList())
      return Error("let* expects a binding list and a body", E.Loc);
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body;
    const Term *T = *Body;
    for (size_t I = E[1].size(); I-- > 0;) {
      const Sexpr &Binding = E[1][I];
      if (!Binding.isList() || Binding.size() != 2)
        return Error("let* binding must be (x M)", Binding.Loc);
      Result<Symbol> V = variable(Binding[0]);
      if (!V)
        return V.error();
      Result<const Term *> Bound = term(Binding[1]);
      if (!Bound)
        return Bound;
      T = B.let(*V, *Bound, T, E.Loc);
    }
    return T;
  }

  Result<const Term *> if0Form(const Sexpr &E) {
    if (E.size() != 4)
      return Error("if0 expects three subterms", E.Loc);
    Result<const Term *> C = term(E[1]);
    if (!C)
      return C;
    Result<const Term *> T = term(E[2]);
    if (!T)
      return T;
    Result<const Term *> F = term(E[3]);
    if (!F)
      return F;
    return static_cast<const Term *>(B.if0(*C, *T, *F, E.Loc));
  }

  Result<const Term *> loopForm(const Sexpr &E) {
    if (E.size() != 1)
      return Error("loop takes no arguments", E.Loc);
    return static_cast<const Term *>(B.loop(E.Loc));
  }

  // (rec (f x) M): recursion by self-application —
  //   (let (g (lambda (s) (lambda (x) (let (f (s s)) M)))) (g g)).
  Result<const Term *> recForm(const Sexpr &E) {
    if (E.size() != 3 || !E[1].isList() || E[1].size() != 2)
      return Error("rec expects (rec (f x) M)", E.Loc);
    Result<Symbol> F = variable(E[1][0]);
    if (!F)
      return F.error();
    Result<Symbol> X = variable(E[1][1]);
    if (!X)
      return X.error();
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body;

    Symbol S = Ctx.fresh("self");
    Symbol G = Ctx.fresh("rec");
    const Term *Knot =
        B.let(*F, B.appVV(B.var(S, E.Loc), B.var(S, E.Loc), E.Loc), *Body,
              E.Loc);
    const Value *Inner = B.lam(*X, Knot, E.Loc);
    const Value *Outer = B.lam(S, B.val(Inner, E.Loc), E.Loc);
    return static_cast<const Term *>(
        B.let(G, B.val(Outer, E.Loc),
              B.appVV(B.var(G, E.Loc), B.var(G, E.Loc), E.Loc), E.Loc));
  }

  // (+ M k) / (- M k) with an integer literal k: add1/sub1 chains.
  Result<const Term *> plusMinus(const Sexpr &E) {
    if (E.size() != 3 || !E[2].isNumber())
      return Error("+/- expect (op M integer-literal); general addition "
                   "needs rec",
                   E.Loc);
    Result<const Term *> M = term(E[1]);
    if (!M)
      return M;
    int64_t K = E[2].Number;
    bool Plus = E[0].isSymbol("+");
    if (K < 0) {
      K = -K;
      Plus = !Plus;
    }
    const Term *T = *M;
    for (int64_t I = 0; I < K; ++I)
      T = B.app(B.val(Plus ? static_cast<const Value *>(B.add1(E.Loc))
                           : static_cast<const Value *>(B.sub1(E.Loc)),
                      E.Loc),
                T, E.Loc);
    return T;
  }

  // (M N1 N2 ...) — curried application.
  Result<const Term *> application(const Sexpr &E) {
    if (E.size() < 2)
      return Error("application expects an operator and arguments", E.Loc);
    Result<const Term *> Fun = term(E[0]);
    if (!Fun)
      return Fun;
    const Term *T = *Fun;
    for (size_t I = 1; I < E.size(); ++I) {
      Result<const Term *> Arg = term(E[I]);
      if (!Arg)
        return Arg;
      T = B.app(T, *Arg, E.Loc);
    }
    return T;
  }

  // (define (f x y ...) M) or (define x M); yields (name, bound term).
  Result<std::pair<Symbol, const Term *>> define(const Sexpr &E) {
    if (E.size() != 3)
      return Error("define expects (define (f x ...) M) or (define x M)",
                   E.Loc);
    if (E[1].isSymbol()) {
      Result<Symbol> V = variable(E[1]);
      if (!V)
        return V.error();
      Result<const Term *> Bound = term(E[2]);
      if (!Bound)
        return Bound.error();
      return std::make_pair(*V, *Bound);
    }
    if (!E[1].isList() || E[1].size() < 2)
      return Error("define header must be (f x ...)", E[1].Loc);
    Result<Symbol> F = variable(E[1][0]);
    if (!F)
      return F.error();

    // (define (f x y ...) M): if f is used in M this is a recursive
    // definition; desugar through rec on the first parameter and plain
    // lambdas for the rest.
    std::vector<Symbol> Params;
    for (size_t I = 1; I < E[1].size(); ++I) {
      Result<Symbol> P = variable(E[1][I]);
      if (!P)
        return P.error();
      Params.push_back(*P);
    }
    Result<const Term *> Body = term(E[2]);
    if (!Body)
      return Body.error();

    // Inner lambdas for parameters after the first.
    const Term *T = *Body;
    for (size_t I = Params.size(); I-- > 1;)
      T = B.val(B.lam(Params[I], T, E.Loc), E.Loc);

    // Recursive knot on the first parameter (harmless when f is unused).
    Symbol S = Ctx.fresh("self");
    Symbol G = Ctx.fresh("rec");
    const Term *Knot =
        B.let(*F, B.appVV(B.var(S, E.Loc), B.var(S, E.Loc), E.Loc), T,
              E.Loc);
    const Value *Inner = B.lam(Params[0], Knot, E.Loc);
    const Value *Outer = B.lam(S, B.val(Inner, E.Loc), E.Loc);
    const Term *Bound =
        B.let(G, B.val(Outer, E.Loc),
              B.appVV(B.var(G, E.Loc), B.var(G, E.Loc), E.Loc), E.Loc);
    return std::make_pair(*F, Bound);
  }

  Context &Ctx;
  Builder B;
  unsigned Depth = 0;
};

} // namespace

Result<const Term *>
cpsflow::syntax::parseSugaredTerm(Context &Ctx, std::string_view Source) {
  Result<Sexpr> E = parseSexpr(Source);
  if (!E)
    return E.error();
  return Desugarer(Ctx).term(*E);
}

Result<const Term *>
cpsflow::syntax::parseSugaredProgram(Context &Ctx, std::string_view Source) {
  Result<std::vector<Sexpr>> Forms = parseSexprList(Source);
  if (!Forms)
    return Forms.error();
  return Desugarer(Ctx).program(*Forms);
}
