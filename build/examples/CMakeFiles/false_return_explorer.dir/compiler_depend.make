# Empty compiler generated dependencies file for false_return_explorer.
# This may be replaced when dependencies are built.
