//===- tests/TraceTests.cpp - Chrome trace_event tracer ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event tracer: emitted documents are valid Chrome trace_event JSON,
/// RAII phase spans nest by containment, the in-process pipeline's phase
/// spans cover nearly all of the bracketing total span, and per-goal
/// instants sample at the configured rate.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "gen/Workloads.h"
#include "support/JsonParse.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::support;
using CD = domain::ConstantDomain;

namespace {

/// Parses \p T's document and returns the traceEvents array.
std::vector<JsonValue> eventsOf(const Tracer &T) {
  Result<JsonValue> Doc = parseJson(T.json());
  EXPECT_TRUE(Doc.hasValue()) << Doc.error().Message;
  if (!Doc)
    return {};
  const JsonValue *Events = Doc->find("traceEvents");
  EXPECT_NE(Events, nullptr);
  return Events ? Events->items() : std::vector<JsonValue>();
}

const JsonValue *eventNamed(const std::vector<JsonValue> &Events,
                            const std::string &Name) {
  for (const JsonValue &E : Events)
    if (const JsonValue *N = E.find("name"))
      if (N->asString() == Name)
        return &E;
  return nullptr;
}

TEST(Trace, DocumentIsValidChromeTraceJson) {
  Tracer T;
  T.span("parse", "phase", 0, 10);
  T.instant("goal", "analyze", 2, {{"depth", 4}, {"memoHit", 1}});
  Result<JsonValue> Doc = parseJson(T.json());
  ASSERT_TRUE(Doc.hasValue()) << Doc.error().Message;
  const JsonValue *Unit = Doc->find("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->asString(), "ms");

  std::vector<JsonValue> Events = eventsOf(T);
  ASSERT_EQ(Events.size(), 2u);
  // The complete span: ph=X with a duration.
  EXPECT_EQ(Events[0].find("ph")->asString(), "X");
  EXPECT_EQ(Events[0].numberOr("dur", -1), 10);
  EXPECT_EQ(Events[0].numberOr("pid", -1), 1);
  // The instant: ph=i, thread-scoped, args carried through.
  EXPECT_EQ(Events[1].find("ph")->asString(), "i");
  EXPECT_EQ(Events[1].find("s")->asString(), "t");
  EXPECT_EQ(Events[1].numberOr("tid", -1), 2);
  const JsonValue *Args = Events[1].find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_EQ(Args->numberOr("depth", -1), 4);
  EXPECT_EQ(Args->numberOr("memoHit", -1), 1);
}

TEST(Trace, NullTracerSpansAreNoOps) {
  // The zero-overhead contract's API half: every call site passes a
  // possibly-null tracer without branching.
  TraceSpan S(nullptr, "phase");
  S.close();
  S.close(); // idempotent on the null path too
  Tracer T;
  {
    TraceSpan Real(&T, "x");
    Real.close();
    Real.close(); // second close records nothing
  }
  EXPECT_EQ(T.eventCount(), 1u);
}

TEST(Trace, SpansNestByContainment) {
  Tracer T;
  {
    TraceSpan Outer(&T, "total");
    { TraceSpan Inner(&T, "parse"); }
    { TraceSpan Inner2(&T, "analyze:direct"); }
  }
  std::vector<JsonValue> Events = eventsOf(T);
  ASSERT_EQ(Events.size(), 3u);
  const JsonValue *Total = eventNamed(Events, "total");
  ASSERT_NE(Total, nullptr);
  double TotalTs = Total->numberOr("ts", 0);
  double TotalEnd = TotalTs + Total->numberOr("dur", 0);
  for (const char *Name : {"parse", "analyze:direct"}) {
    const JsonValue *E = eventNamed(Events, Name);
    ASSERT_NE(E, nullptr) << Name;
    double Ts = E->numberOr("ts", 0);
    double End = Ts + E->numberOr("dur", 0);
    EXPECT_GE(Ts, TotalTs) << Name;
    EXPECT_LE(End, TotalEnd) << Name << ": child span must nest inside";
  }
}

TEST(Trace, PipelinePhaseSpansCoverTheTotal) {
  // Replicates the CLI's span structure in-process: a "total" span
  // bracketing the build + analyze phases. The phases must tile nearly
  // all of the total — big gaps would mean untraced work.
  Context Ctx;
  Tracer T;
  {
    TraceSpan Total(&T, "total");
    analysis::Witness W = [&] {
      TraceSpan S(&T, "build");
      return gen::conditionalChain(Ctx, 12);
    }();
    analysis::AnalyzerOptions AOpts;
    {
      TraceSpan S(&T, "analyze:direct");
      analysis::DirectAnalyzer<CD>(Ctx, W.Anf,
                                   analysis::directBindings<CD>(W), AOpts)
          .run();
    }
  }
  std::vector<JsonValue> Events = eventsOf(T);
  const JsonValue *Total = eventNamed(Events, "total");
  ASSERT_NE(Total, nullptr);
  double TotalDur = Total->numberOr("dur", 0);
  double PhaseDur = 0;
  for (const char *Name : {"build", "analyze:direct"})
    PhaseDur += eventNamed(Events, Name)->numberOr("dur", 0);
  EXPECT_LE(PhaseDur, TotalDur);
  // 90% here (95% is the CLI-level target) absorbs scheduler noise on
  // the microsecond-scale gaps between spans.
  EXPECT_GE(PhaseDur, 0.9 * TotalDur)
      << "phase spans cover too little of the run: " << PhaseDur << " / "
      << TotalDur << " us";
}

TEST(Trace, AnalyzerEmitsSampledGoalInstants) {
  Context Ctx;
  analysis::Witness W = gen::conditionalChain(Ctx, 4);
  auto Init = analysis::directBindings<CD>(W);

  // Sampling every goal: one instant per goal, with the instrumentation
  // args attached.
  Tracer T;
  analysis::AnalyzerOptions AOpts;
  AOpts.Trace = &T;
  AOpts.TraceSampleEvery = 1;
  auto R = analysis::DirectAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  std::vector<JsonValue> Events = eventsOf(T);
  size_t Goals = 0;
  for (const JsonValue &E : Events)
    if (E.find("name")->asString() == "goal") {
      ++Goals;
      const JsonValue *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      EXPECT_NE(Args->find("depth"), nullptr);
      EXPECT_NE(Args->find("store"), nullptr);
      EXPECT_NE(Args->find("memoHit"), nullptr);
    }
  EXPECT_EQ(Goals, R.Stats.Goals);

  // Sparse sampling records strictly fewer events, and tracing must not
  // perturb the analysis itself.
  Tracer T2;
  analysis::AnalyzerOptions Sparse;
  Sparse.Trace = &T2;
  Sparse.TraceSampleEvery = 64;
  auto R2 = analysis::DirectAnalyzer<CD>(Ctx, W.Anf, Init, Sparse).run();
  EXPECT_TRUE(R.Answer == R2.Answer);
  EXPECT_EQ(R.Stats.Goals, R2.Stats.Goals);
  EXPECT_LT(T2.eventCount(), T.eventCount());
}

} // namespace
