//===- tests/AnalyzerEdgeTests.cpp - Edge cases and invariants --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression properties for the trickiest analyzer machinery:
///
///  * memoization transparency — the memo table (with its provisional-
///    result tracking around Section 4.4 cuts) must never change an
///    answer, only the cost;
///  * rerun determinism;
///  * budget exhaustion still yields a sound (cut-valued) answer;
///  * initial-store closures extend the variable and closure universes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "syntax/Builder.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using cpsflow::test::mustParse;
using CD = domain::ConstantDomain;

namespace {

class MemoTransparency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemoTransparency, MemoizationNeverChangesAnswers) {
  Context Ctx;
  gen::GenOptions GOpts;
  GOpts.Seed = GetParam();
  GOpts.ChainLength = 8;
  GOpts.MaxDepth = 2;
  gen::ProgramGenerator Gen(Ctx, GOpts);

  AnalyzerOptions On;
  AnalyzerOptions Off;
  Off.UseMemo = false;
  // Keep the no-memo runs affordable.
  Off.MaxGoals = On.MaxGoals = 3'000'000;

  for (int I = 0; I < 15; ++I) {
    const syntax::Term *T = Gen.generate();
    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});

    auto D1 = DirectAnalyzer<CD>(Ctx, T, Init, On).run();
    auto D2 = DirectAnalyzer<CD>(Ctx, T, Init, Off).run();
    if (!D1.Stats.BudgetExhausted && !D2.Stats.BudgetExhausted)
      EXPECT_TRUE(D1.Answer == D2.Answer) << syntax::print(Ctx, T);

    auto S1 = SemanticCpsAnalyzer<CD>(Ctx, T, Init, On).run();
    auto S2 = SemanticCpsAnalyzer<CD>(Ctx, T, Init, Off).run();
    if (!S1.Stats.BudgetExhausted && !S2.Stats.BudgetExhausted)
      EXPECT_TRUE(S1.Answer == S2.Answer) << syntax::print(Ctx, T);

    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    ASSERT_TRUE(P.hasValue());
    std::vector<CpsBinding<CD>> CInit;
    for (const DirectBinding<CD> &B : Init)
      CInit.push_back({B.Var, deltaE<CD>(B.Value, *P)});
    auto C1 = SyntacticCpsAnalyzer<CD>(Ctx, *P, CInit, On).run();
    auto C2 = SyntacticCpsAnalyzer<CD>(Ctx, *P, CInit, Off).run();
    if (!C1.Stats.BudgetExhausted && !C2.Stats.BudgetExhausted)
      EXPECT_TRUE(C1.Answer == C2.Answer) << syntax::print(Ctx, T);

    auto U1 = DupAnalyzer<CD>(Ctx, T, Init, 2, On).run();
    auto U2 = DupAnalyzer<CD>(Ctx, T, Init, 2, Off).run();
    if (!U1.Stats.BudgetExhausted && !U2.Stats.BudgetExhausted)
      EXPECT_TRUE(U1.Answer == U2.Answer) << syntax::print(Ctx, T);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoTransparency,
                         ::testing::Values(2101, 2102, 2103, 2104));

TEST(MemoTransparency, OnRecursiveWorkloads) {
  // The provisional-result machinery exists exactly for recursion through
  // the Section 4.4 cuts; the answers must agree memo-on and memo-off.
  Context Ctx;
  AnalyzerOptions Off;
  Off.UseMemo = false;
  for (Witness W : {gen::omega(Ctx), gen::counterLoop(Ctx, 4)}) {
    auto On = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto NoMemo =
        DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Off).run();
    EXPECT_TRUE(On.Answer == NoMemo.Answer) << W.Name;

    auto SOn =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto SOff =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Off)
            .run();
    EXPECT_TRUE(SOn.Answer == SOff.Answer) << W.Name;
  }
}

TEST(Determinism, RerunsProduceIdenticalResults) {
  Context Ctx;
  Witness W = gen::callMergeChain(Ctx, 3);
  auto A = SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto B = SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  EXPECT_TRUE(A.Answer == B.Answer);
  EXPECT_EQ(A.Stats.Goals, B.Stats.Goals);
  EXPECT_EQ(A.Stats.Cuts, B.Stats.Cuts);
}

TEST(BudgetExhaustion, AnswersRemainSoundOverApproximations) {
  // With a tiny goal budget the analysis bails with cut values; the
  // answer must still cover the concrete result.
  Context Ctx;
  Witness W = gen::closureTower(Ctx, 6); // concrete value: 6
  AnalyzerOptions Opts;
  Opts.MaxGoals = 5;
  auto R = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Opts).run();
  EXPECT_TRUE(R.Stats.BudgetExhausted);
  EXPECT_TRUE(CD::leq(CD::constant(6), R.Answer.Value.Num));
}

TEST(InitialStore, ClosureBindingsExtendTheUniverses) {
  Context Ctx;
  syntax::Builder B(Ctx);
  // A lambda that lives only in the initial store, with its own bound
  // variables, must be analyzable (its variables join the store universe,
  // its lambdas join CL_T).
  Symbol P = Ctx.intern("pp");
  Symbol Q = Ctx.intern("qq");
  const syntax::Term *LamBody =
      B.let(Q, B.appVV(B.add1(), B.var(P)), B.varTerm(Q));
  const syntax::LamValue *Lam = B.lam(P, LamBody);

  const syntax::Term *T = mustParse(Ctx, "(let (r (f 41)) r)");
  std::vector<DirectBinding<CD>> Init = {
      {Ctx.intern("f"),
       domain::AbsVal<CD>::closures(
           domain::CloSet::single(domain::CloRef::lam(Lam)))}};
  DirectAnalyzer<CD> A(Ctx, T, Init);
  EXPECT_TRUE(A.closureUniverse().contains(domain::CloRef::lam(Lam)));
  auto R = A.run();
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "42");
  EXPECT_EQ(CD::str(R.valueOf(Q).Num), "42");
  EXPECT_EQ(CD::str(R.valueOf(P).Num), "41");
}

TEST(DeadPaths, PropagateThroughSingleFeasibleBranches) {
  Context Ctx;
  // The only feasible branch dies (applies a number), so the whole chain
  // after the conditional is dead.
  auto R = DirectAnalyzer<CD>(
               Ctx, mustParse(Ctx, "(let (a (if0 0 (let (d (1 2)) d) 9)) "
                                   "(let (b 5) b))"))
               .run();
  EXPECT_GT(R.Stats.DeadPaths, 0u);
  EXPECT_TRUE(R.Answer.Value.isBot());
  EXPECT_TRUE(R.valueOf(Ctx.intern("b")).isBot());
}

TEST(DeadPaths, OneLiveCalleeKeepsTheChainAlive) {
  Context Ctx;
  // f is either a closure or a number; the number path contributes
  // nothing but the closure path survives.
  auto R = DirectAnalyzer<CD>(
               Ctx,
               mustParse(Ctx, "(let (f (if0 z (lambda (p) 7) 1)) "
                              "(let (a (f 0)) a))"),
               {{Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}})
               .run();
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "7");
}

} // namespace
