
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/constant_folder.cpp" "examples/CMakeFiles/constant_folder.dir/constant_folder.cpp.o" "gcc" "examples/CMakeFiles/constant_folder.dir/constant_folder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cpsflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/cpsflow_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cpsflow_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/cpsflow_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/cpsflow_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/anf/CMakeFiles/cpsflow_anf.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/cpsflow_syntax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
