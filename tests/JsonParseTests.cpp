//===- tests/JsonParseTests.cpp - JSON reader hardening ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial-input tests for support/JsonParse.h, the reader under
/// tools/bench_diff and the report self-checks. Exercises the failure
/// surface a fuzzer reaches first: truncated documents, the recursion
/// depth cap, malformed and unpaired \uXXXX escapes, overflowing
/// numerals, and trailing garbage. Every rejection must be a structured
/// Error, never a crash or a silently wrong value.
///
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <string>

using namespace cpsflow;

namespace {

TEST(JsonParse, TruncatedDocumentsAreErrors) {
  for (const char *Text :
       {"", "{", "[", "[1,", "{\"a\"", "{\"a\":", "{\"a\":1,", "\"abc",
        "\"abc\\", "tru", "-", "[1, 2", "{\"a\": [1, {\"b\": ", "1e",
        "\"\\u12"}) {
    Result<JsonValue> R = parseJson(Text);
    EXPECT_FALSE(R.hasValue()) << "accepted truncated input: " << Text;
  }
}

TEST(JsonParse, DepthCapRejectsDeepNesting) {
  // Just under the cap parses; past it is a structured error instead of
  // a stack overflow.
  std::string Ok(200, '[');
  Ok += "1";
  Ok.append(200, ']');
  EXPECT_TRUE(parseJson(Ok).hasValue());

  std::string Deep(300, '[');
  Deep += "1";
  Deep.append(300, ']');
  Result<JsonValue> R = parseJson(Deep);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().str().find("deep"), std::string::npos)
      << R.error().str();
}

// The serve layer parses untrusted request bodies with a tighter cap;
// the cap must be exact so admission behavior is predictable: below and
// exactly at the configured depth parse, one past it is a structured
// error naming the cap.
TEST(JsonParse, DepthCapIsConfigurableAndExact) {
  JsonParseOptions Opts;
  Opts.MaxDepth = 16;
  auto nested = [](unsigned N) {
    std::string S(N, '[');
    S += "1";
    S.append(N, ']');
    return S;
  };
  EXPECT_TRUE(parseJson(nested(Opts.MaxDepth - 1), Opts).hasValue());
  EXPECT_TRUE(parseJson(nested(Opts.MaxDepth), Opts).hasValue());
  Result<JsonValue> R = parseJson(nested(Opts.MaxDepth + 1), Opts);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().str().find("cap 16"), std::string::npos)
      << R.error().str();

  // Objects count against the same cap as arrays.
  Opts.MaxDepth = 2;
  EXPECT_TRUE(parseJson("{\"a\": {\"b\": 1}}", Opts).hasValue());
  EXPECT_FALSE(parseJson("{\"a\": {\"b\": {\"c\": 1}}}", Opts).hasValue());
}

TEST(JsonParse, BadUnicodeEscapesAreErrors) {
  for (const char *Text : {
           "\"\\uZZZZ\"",       // non-hex digits
           "\"\\u12G4\"",       // one bad digit
           "\"\\u123\"",        // too short, closing quote eats a digit
           "\"\\uD800\"",       // lone high surrogate
           "\"\\uDC00\"",       // lone low surrogate
           "\"\\uD800\\u0041\"" // high surrogate + non-surrogate
       }) {
    Result<JsonValue> R = parseJson(Text);
    EXPECT_FALSE(R.hasValue()) << "accepted bad escape: " << Text;
  }
}

TEST(JsonParse, GoodUnicodeEscapesDecodeToUtf8) {
  Result<JsonValue> Ascii = parseJson("\"\\u0041\"");
  ASSERT_TRUE(Ascii.hasValue());
  EXPECT_EQ(Ascii->asString(), "A");

  Result<JsonValue> TwoByte = parseJson("\"\\u00e9\"");
  ASSERT_TRUE(TwoByte.hasValue());
  EXPECT_EQ(TwoByte->asString(), "\xC3\xA9"); // é

  Result<JsonValue> ThreeByte = parseJson("\"\\u2603\"");
  ASSERT_TRUE(ThreeByte.hasValue());
  EXPECT_EQ(ThreeByte->asString(), "\xE2\x98\x83"); // snowman

  // Surrogate pair combines to one 4-byte code point (U+1D11E).
  Result<JsonValue> Pair = parseJson("\"\\uD834\\uDD1E\"");
  ASSERT_TRUE(Pair.hasValue());
  EXPECT_EQ(Pair->asString(), "\xF0\x9D\x84\x9E");
}

TEST(JsonParse, OverflowingNumbersAreErrors) {
  Result<JsonValue> R = parseJson("1e999");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().str().find("range"), std::string::npos)
      << R.error().str();
  EXPECT_FALSE(parseJson("[-1e999]").hasValue());
  // Subnormal underflow still yields a finite double; stays accepted.
  EXPECT_TRUE(parseJson("1e-999").hasValue());
}

TEST(JsonParse, TrailingGarbageIsAnError) {
  for (const char *Text : {"{} x", "1 2", "[1] ]", "null,", "\"a\" \"b\""}) {
    Result<JsonValue> R = parseJson(Text);
    ASSERT_FALSE(R.hasValue()) << Text;
    EXPECT_NE(R.error().str().find("trailing"), std::string::npos)
        << R.error().str();
  }
}

TEST(JsonParse, MalformedNumbersAreErrors) {
  for (const char *Text : {"-", "1.2.3", "1e+e", "--1", "+1", "01x"})
    EXPECT_FALSE(parseJson(Text).hasValue()) << Text;
}

TEST(JsonParse, ControlCharactersInStringsAreErrors) {
  EXPECT_FALSE(parseJson("\"a\nb\"").hasValue());
  EXPECT_FALSE(parseJson(std::string("\"a\0b\"", 5)).hasValue());
}

} // namespace
