file(REMOVE_RECURSE
  "CMakeFiles/theorem55.dir/theorem55.cpp.o"
  "CMakeFiles/theorem55.dir/theorem55.cpp.o.d"
  "theorem55"
  "theorem55.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem55.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
