//===- examples/false_return_explorer.cpp - Section 6.1 demo ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's Theorem 5.1 example — the program whose CPS
/// analysis confuses two distinct procedure returns (Shivers's 0CFA
/// example, p. 33 of his thesis, per Section 6.1) — and shows the false
/// return in the extracted control-flow graph.
///
//===----------------------------------------------------------------------===//

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "clients/Reports.h"
#include "cps/Transform.h"
#include "syntax/Printer.h"

#include <cstdio>

using namespace cpsflow;
using namespace cpsflow::analysis;
using CD = domain::ConstantDomain;

int main() {
  Context Ctx;
  Witness W = theorem51(Ctx);

  std::printf("The Theorem 5.1 witness, with f bound to the identity\n"
              "closure (cle x, x) in the initial abstract store:\n\n");
  std::printf("  source: %s\n", syntax::print(Ctx, W.Anf).c_str());
  std::printf("  cps:    %s\n\n", cps::printCps(Ctx, W.Cps.Root).c_str());

  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AC = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();

  std::printf("Direct analysis (Figure 4) of the source:\n%s\n",
              clients::describeVars(Ctx, AD, W.InterestingVars).c_str());
  std::printf("Syntactic-CPS analysis (Figure 6) of the transform:\n%s\n",
              clients::describeVars(Ctx, AC, W.InterestingVars).c_str());

  std::printf("CPS control-flow graph:\n%s\n",
              clients::describeCfg(Ctx, AC.Cfg).c_str());

  std::printf(
      "What happened: both calls to f bind their continuation into the\n"
      "same store entry for f's continuation parameter. At the return\n"
      "(k1 x), the analysis must apply *every* continuation collected\n"
      "there — including the first call's — with the merged argument\n"
      "x = T. The direct analysis has only one (implicit) continuation\n"
      "at any point, so a1 keeps the constant 1.\n\n");

  Comparison C = compareWithSyntactic<CD>(Ctx, AD, AC, W.Cps,
                                          W.InterestingVars);
  std::printf("Verdict per Theorem 5.1: the direct analysis is %s.\n",
              C.Overall == PrecisionOrder::LeftMorePrecise
                  ? "strictly more precise"
                  : str(C.Overall));
  return 0;
}
