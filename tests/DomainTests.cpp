//===- tests/DomainTests.cpp - Lattice law tests ----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests of the abstract domains: every numeric domain must be a
/// join-semilattice with monotone sound transfer functions, and the
/// product/powerset constructions must preserve the laws (Section 4.2).
///
//===----------------------------------------------------------------------===//

#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/NumDomain.h"
#include "syntax/Builder.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cpsflow;
using namespace cpsflow::domain;

namespace {

template <typename D> std::vector<typename D::Elem> samples() {
  std::vector<typename D::Elem> Out = {D::bot(), D::top(), D::naturals()};
  for (int64_t N : {-7, -1, 0, 1, 2, 3, 42})
    Out.push_back(D::constant(N));
  return Out;
}

template <typename D> class NumDomainLaws : public ::testing::Test {};

using AllDomains = ::testing::Types<ConstantDomain, UnitDomain, SignDomain,
                                    ParityDomain, IntervalDomain>;
TYPED_TEST_SUITE(NumDomainLaws, AllDomains);

TYPED_TEST(NumDomainLaws, JoinIsCommutativeAssociativeIdempotent) {
  using D = TypeParam;
  auto S = samples<D>();
  for (const auto &A : S) {
    EXPECT_TRUE(D::join(A, A) == A);
    for (const auto &B : S) {
      EXPECT_TRUE(D::join(A, B) == D::join(B, A));
      for (const auto &C : S)
        EXPECT_TRUE(D::join(D::join(A, B), C) == D::join(A, D::join(B, C)));
    }
  }
}

TYPED_TEST(NumDomainLaws, LeqIsAPartialOrderWithJoinAsLub) {
  using D = TypeParam;
  auto S = samples<D>();
  for (const auto &A : S) {
    EXPECT_TRUE(D::leq(A, A));
    EXPECT_TRUE(D::leq(D::bot(), A));
    EXPECT_TRUE(D::leq(A, D::top()));
    for (const auto &B : S) {
      // join is an upper bound...
      EXPECT_TRUE(D::leq(A, D::join(A, B)));
      EXPECT_TRUE(D::leq(B, D::join(A, B)));
      // ...and leq agrees with join-absorption.
      EXPECT_EQ(D::leq(A, B), D::join(A, B) == B);
      // antisymmetry
      if (D::leq(A, B) && D::leq(B, A))
        EXPECT_TRUE(A == B);
    }
  }
}

TYPED_TEST(NumDomainLaws, TransferFunctionsAreMonotone) {
  using D = TypeParam;
  auto S = samples<D>();
  for (const auto &A : S)
    for (const auto &B : S)
      if (D::leq(A, B)) {
        EXPECT_TRUE(D::leq(D::add1(A), D::add1(B)));
        EXPECT_TRUE(D::leq(D::sub1(A), D::sub1(B)));
      }
}

TYPED_TEST(NumDomainLaws, TransferFunctionsAreSound) {
  using D = TypeParam;
  for (int64_t N : {-5, -1, 0, 1, 7}) {
    EXPECT_TRUE(D::leq(D::constant(N + 1), D::add1(D::constant(N)))) << N;
    EXPECT_TRUE(D::leq(D::constant(N - 1), D::sub1(D::constant(N)))) << N;
  }
  // naturals() covers every natural.
  for (int64_t N : {0, 1, 2, 50})
    EXPECT_TRUE(D::leq(D::constant(N), D::naturals()));
}

TYPED_TEST(NumDomainLaws, ZeroTestIsSound) {
  using D = TypeParam;
  // constant(0) must admit zero; nonzero constants must not be "Zero".
  ZeroTest Z0 = D::isZero(D::constant(0));
  EXPECT_TRUE(Z0 == ZeroTest::Zero || Z0 == ZeroTest::Maybe);
  ZeroTest Z5 = D::isZero(D::constant(5));
  EXPECT_TRUE(Z5 == ZeroTest::NonZero || Z5 == ZeroTest::Maybe);
  EXPECT_EQ(D::isZero(D::bot()), ZeroTest::Bottom);
  EXPECT_EQ(D::isZero(D::top()), ZeroTest::Maybe);
}

TYPED_TEST(NumDomainLaws, HashRespectsEquality) {
  using D = TypeParam;
  auto S = samples<D>();
  for (const auto &A : S)
    for (const auto &B : S)
      if (A == B)
        EXPECT_EQ(D::hash(A), D::hash(B));
}

TEST(ConstantDomain, ExactOnConstants) {
  using D = ConstantDomain;
  EXPECT_EQ(D::str(D::add1(D::constant(41))), "42");
  EXPECT_EQ(D::str(D::join(D::constant(1), D::constant(1))), "1");
  EXPECT_EQ(D::str(D::join(D::constant(1), D::constant(2))), "T");
  EXPECT_EQ(D::isZero(D::constant(0)), ZeroTest::Zero);
  EXPECT_EQ(D::isZero(D::constant(3)), ZeroTest::NonZero);
}

TEST(SignDomain, TracksSigns) {
  using D = SignDomain;
  EXPECT_TRUE(D::constant(-3) == D::constant(-100));
  EXPECT_EQ(D::str(D::add1(D::constant(0))), "+");
  EXPECT_EQ(D::str(D::sub1(D::constant(0))), "-");
  // +1 applied to a negative may reach zero: must widen.
  EXPECT_EQ(D::str(D::add1(D::constant(-1))), "T");
}

TEST(IntervalDomain, TracksRangesAndClamps) {
  using D = IntervalDomain;
  EXPECT_EQ(D::str(D::constant(3)), "[3,3]");
  EXPECT_EQ(D::str(D::join(D::constant(1), D::constant(4))), "[1,4]");
  // Beyond the clamp the endpoint widens to infinity.
  EXPECT_EQ(D::str(D::constant(42)), "[16,+inf]");
  EXPECT_EQ(D::str(D::constant(-42)), "[-inf,-16]");
  EXPECT_EQ(D::str(D::naturals()), "[0,+inf]");
  EXPECT_EQ(D::str(D::add1(D::constant(2))), "[3,3]");
  EXPECT_EQ(D::isZero(D::make(1, 5)), ZeroTest::NonZero);
  EXPECT_EQ(D::isZero(D::make(-1, 5)), ZeroTest::Maybe);
  EXPECT_EQ(D::isZero(D::constant(0)), ZeroTest::Zero);
}

TEST(IntervalDomain, ChainsAreFinite) {
  // Repeated add1 from 0 must reach a fixed point (the clamp guarantees
  // finite ascending chains, which the analyzers' termination needs).
  using D = IntervalDomain;
  D::Elem E = D::constant(0);
  D::Elem Acc = E;
  for (int I = 0; I < 100; ++I) {
    E = D::add1(E);
    D::Elem Next = D::join(Acc, E);
    if (Next == Acc && I > 40) // stabilized
      return;
    Acc = Next;
  }
  D::Elem Final = Acc;
  EXPECT_EQ(D::str(Final), "[0,+inf]");
}

TEST(ParityDomain, FlipsParity) {
  using D = ParityDomain;
  EXPECT_TRUE(D::add1(D::constant(2)) == D::constant(3));
  EXPECT_TRUE(D::sub1(D::constant(2)) == D::constant(1));
  EXPECT_EQ(D::isZero(D::constant(3)), ZeroTest::NonZero); // odd != 0
  EXPECT_EQ(D::isZero(D::constant(2)), ZeroTest::Maybe);
}

//===----------------------------------------------------------------------===//
// Sets and product values
//===----------------------------------------------------------------------===//

TEST(SortedSet, BasicOperations) {
  Context Ctx;
  syntax::Builder B(Ctx);
  const syntax::LamValue *L1 = B.lam("a", B.numTerm(1));
  const syntax::LamValue *L2 = B.lam("b", B.numTerm(2));

  CloSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(CloRef::lam(L1)));
  EXPECT_FALSE(S.insert(CloRef::lam(L1))); // duplicate
  EXPECT_TRUE(S.insert(CloRef::inc()));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(CloRef::inc()));
  EXPECT_FALSE(S.contains(CloRef::lam(L2)));

  CloSet T = CloSet::single(CloRef::lam(L2));
  CloSet U = CloSet::join(S, T);
  EXPECT_EQ(U.size(), 3u);
  EXPECT_TRUE(CloSet::leq(S, U));
  EXPECT_TRUE(CloSet::leq(T, U));
  EXPECT_FALSE(CloSet::leq(U, S));
}

TEST(SortedSet, DeterministicOrderByNodeId) {
  Context Ctx;
  syntax::Builder B(Ctx);
  const syntax::LamValue *L1 = B.lam("a", B.numTerm(1));
  const syntax::LamValue *L2 = B.lam("b", B.numTerm(2));
  CloSet S = CloSet::of({CloRef::lam(L2), CloRef::lam(L1), CloRef::inc()});
  std::vector<CloRef> Order(S.begin(), S.end());
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0].Tag, CloRef::K::Inc);
  EXPECT_EQ(Order[1].Lam, L1);
  EXPECT_EQ(Order[2].Lam, L2);
}

TEST(AbsVal, ProductLatticeLaws) {
  using V = AbsVal<ConstantDomain>;
  Context Ctx;
  syntax::Builder B(Ctx);
  const syntax::LamValue *L = B.lam("a", B.numTerm(1));

  V Bot = V::bot();
  V N1 = V::number(ConstantDomain::constant(1));
  V C = V::closures(CloSet::single(CloRef::lam(L)));
  V Mixed = V::join(N1, C);

  EXPECT_TRUE(Bot.isBot());
  EXPECT_FALSE(N1.isBot());
  EXPECT_TRUE(V::leq(Bot, N1));
  EXPECT_TRUE(V::leq(N1, Mixed));
  EXPECT_TRUE(V::leq(C, Mixed));
  EXPECT_FALSE(V::leq(N1, C));
  EXPECT_FALSE(V::leq(C, N1));
  EXPECT_TRUE(V::join(Mixed, Mixed) == Mixed);
}

TEST(CpsAbsVal, TripleLatticeLaws) {
  using V = CpsAbsVal<ConstantDomain>;
  V Bot = V::bot();
  V K = V::konts(KontSet::single(KontRef::stop()));
  V N = V::number(ConstantDomain::constant(3));
  EXPECT_TRUE(V::leq(Bot, K));
  EXPECT_FALSE(V::leq(K, N));
  EXPECT_FALSE(V::leq(N, K));
  V J = V::join(K, N);
  EXPECT_TRUE(V::leq(K, J));
  EXPECT_TRUE(V::leq(N, J));
  EXPECT_NE(J.hashValue(), Bot.hashValue());
}

TEST(AbsStore, JoinAtGrowsMonotonically) {
  using V = AbsVal<ConstantDomain>;
  AbsStore<V> S(3);
  EXPECT_FALSE(S.joinAt(0, V::bot()));
  EXPECT_TRUE(S.joinAt(0, V::number(ConstantDomain::constant(1))));
  EXPECT_FALSE(S.joinAt(0, V::number(ConstantDomain::constant(1))));
  EXPECT_TRUE(S.joinAt(0, V::number(ConstantDomain::constant(2))));
  EXPECT_EQ(ConstantDomain::str(S.get(0).Num), "T");
}

TEST(AbsStore, JoinLeqHashConsistent) {
  using V = AbsVal<ConstantDomain>;
  AbsStore<V> A(2), B(2);
  A.joinAt(0, V::number(ConstantDomain::constant(1)));
  B.joinAt(1, V::number(ConstantDomain::constant(2)));
  AbsStore<V> J = AbsStore<V>::join(A, B);
  EXPECT_TRUE(AbsStore<V>::leq(A, J));
  EXPECT_TRUE(AbsStore<V>::leq(B, J));
  EXPECT_FALSE(AbsStore<V>::leq(J, A));
  EXPECT_FALSE(A == B);
  AbsStore<V> A2(2);
  A2.joinAt(0, V::number(ConstantDomain::constant(1)));
  EXPECT_TRUE(A == A2);
  EXPECT_EQ(A.hashValue(), A2.hashValue());
}

TEST(VarIndex, DeduplicatesAndLooksUp) {
  SymbolTable Table;
  Symbol X = Table.intern("x"), Y = Table.intern("y");
  VarIndex Idx({X, Y, X});
  EXPECT_EQ(Idx.size(), 2u);
  EXPECT_TRUE(Idx.contains(X));
  EXPECT_EQ(Idx.symbolAt(Idx.of(Y)), Y);
  EXPECT_FALSE(Idx.contains(Table.intern("z")));
}

} // namespace
