//===- tests/SyntaxTests.cpp - Reader, parser, printer, hygiene -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Analysis.h"
#include "syntax/Ast.h"
#include "syntax/Builder.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"
#include "syntax/Rename.h"
#include "syntax/Sexpr.h"
#include "gen/Generator.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

//===----------------------------------------------------------------------===//
// S-expressions
//===----------------------------------------------------------------------===//

TEST(Sexpr, ParsesAtomsAndLists) {
  Result<Sexpr> R = parseSexpr("(let (x 1) (add1 x)) ; comment");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(R->isList());
  EXPECT_EQ(R->size(), 3u);
  EXPECT_TRUE((*R)[0].isSymbol("let"));
  EXPECT_TRUE((*R)[1][1].isNumber());
  EXPECT_EQ((*R)[1][1].Number, 1);
}

TEST(Sexpr, NegativeNumerals) {
  Result<Sexpr> R = parseSexpr("-42");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(R->isNumber());
  EXPECT_EQ(R->Number, -42);
}

TEST(Sexpr, DashAloneIsASymbol) {
  Result<Sexpr> R = parseSexpr("-");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(R->isSymbol("-"));
}

TEST(Sexpr, ReportsUnterminatedList) {
  Result<Sexpr> R = parseSexpr("(a (b c)");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().Message.find("unterminated"), std::string::npos);
}

TEST(Sexpr, ReportsUnmatchedClose) {
  Result<Sexpr> R = parseSexpr(")");
  ASSERT_FALSE(R.hasValue());
}

TEST(Sexpr, ReportsTrailingInput) {
  Result<Sexpr> R = parseSexpr("(a) (b)");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().Message.find("trailing"), std::string::npos);
}

TEST(Sexpr, ListVariantParsesMany) {
  Result<std::vector<Sexpr>> R = parseSexprList("(a) 1 b ; end\n");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->size(), 3u);
}

TEST(Sexpr, RoundTripsThroughStr) {
  const char *Text = "(let (x 1) (if0 x (lambda (y) y) 2))";
  Result<Sexpr> R = parseSexpr(Text);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->str(), Text);
}

TEST(Sexpr, TracksLocations) {
  Result<Sexpr> R = parseSexpr("(a\n  b)");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ((*R)[1].Loc.Line, 2u);
  EXPECT_EQ((*R)[1].Loc.Column, 3u);
}

//===----------------------------------------------------------------------===//
// Language-A parser and printer
//===----------------------------------------------------------------------===//

TEST(Parser, ParsesEveryConstruct) {
  Context Ctx;
  const char *Text =
      "(let (f (lambda (x) (if0 x 0 (add1 x)))) (let (y (f 3)) y))";
  Result<const Term *> R = parseTerm(Ctx, Text);
  ASSERT_TRUE(R.hasValue()) << R.error().str();
  EXPECT_EQ(print(Ctx, *R), Text);
}

TEST(Parser, ParsesLoop) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "(let (x (loop)) x)");
  ASSERT_TRUE(R.hasValue());
  const auto *Let = dyn_cast<LetTerm>(*R);
  ASSERT_NE(Let, nullptr);
  EXPECT_TRUE(isa<LoopTerm>(Let->bound()));
}

TEST(Parser, ParsesGeneralApplications) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "((lambda (x) x) (add1 1))");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(isa<AppTerm>(*R));
}

TEST(Parser, LambdaUnicodeSpelling) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "(λ (x) x)");
  ASSERT_TRUE(R.hasValue());
}

TEST(Parser, RejectsReservedWordAsVariable) {
  Context Ctx;
  EXPECT_FALSE(parseTerm(Ctx, "(let (let 1) 2)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(lambda (if0) 3)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "loop").hasValue());
}

TEST(Parser, RejectsMalformedForms) {
  Context Ctx;
  EXPECT_FALSE(parseTerm(Ctx, "()").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(let x 1)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(if0 1 2)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(lambda (x y) x)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(f g h)").hasValue());
  EXPECT_FALSE(parseTerm(Ctx, "(loop 1)").hasValue());
}

// Builds `(f (f (f ... x)))` nested \p Levels deep — structurally valid
// at every level, so the only thing that can reject it is a depth guard.
static std::string deeplyNested(size_t Levels) {
  std::string P;
  P.reserve(Levels * 4 + 1);
  for (size_t I = 0; I < Levels; ++I)
    P += "(f ";
  P += "x";
  P.append(Levels, ')');
  return P;
}

// Adversarial nesting must come back as a structured parse error, never
// a native stack overflow. Two regimes: past the s-expression reader's
// 4000-element cap (the 100k case), and between the term parser's
// MaxTermDepth and the reader cap, where the new term-level guard is the
// one that fires.
TEST(Parser, DeeplyNestedProgramsAreParseErrors) {
  {
    Context Ctx;
    Result<const Term *> R = parseTerm(Ctx, deeplyNested(100000));
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().str().find("depth"), std::string::npos)
        << R.error().str();
  }
  {
    Context Ctx;
    Result<const Term *> R = parseTerm(Ctx, deeplyNested(MaxTermDepth + 500));
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.error().str().find("supported depth"), std::string::npos)
        << R.error().str();
  }
  // Just under the term cap parses (the guard is not over-eager).
  {
    Context Ctx;
    EXPECT_TRUE(parseTerm(Ctx, deeplyNested(MaxTermDepth - 10)).hasValue());
  }
}

TEST(Printer, RoundTripIsStructurallyEqual) {
  Context Ctx;
  const char *Text =
      "(let (f (lambda (x) (if0 x 0 (add1 x)))) ((f 1) (sub1 2)))";
  Result<const Term *> R1 = parseTerm(Ctx, Text);
  ASSERT_TRUE(R1.hasValue());
  Result<const Term *> R2 = parseTerm(Ctx, print(Ctx, *R1));
  ASSERT_TRUE(R2.hasValue());
  EXPECT_TRUE(structurallyEqual(*R1, *R2));
}

TEST(Printer, IndentedFormReparses) {
  Context Ctx;
  Result<const Term *> R = parseTerm(
      Ctx, "(let (f (lambda (x) (if0 x 0 1))) (let (y (f 3)) y))");
  ASSERT_TRUE(R.hasValue());
  std::string Pretty = printIndented(Ctx, *R);
  Result<const Term *> R2 = parseTerm(Ctx, Pretty);
  ASSERT_TRUE(R2.hasValue()) << Pretty;
  EXPECT_TRUE(structurallyEqual(*R, *R2));
}

//===----------------------------------------------------------------------===//
// Syntactic analyses
//===----------------------------------------------------------------------===//

TEST(FreeVars, ComputesCorrectSets) {
  Context Ctx;
  Result<const Term *> R =
      parseTerm(Ctx, "(let (x (f z)) (lambda (y) (x (y w))))");
  ASSERT_TRUE(R.hasValue());
  std::set<Symbol> Free = freeVars(*R);
  EXPECT_EQ(Free.size(), 3u);
  EXPECT_TRUE(Free.count(Ctx.intern("f")));
  EXPECT_TRUE(Free.count(Ctx.intern("z")));
  EXPECT_TRUE(Free.count(Ctx.intern("w")));
  EXPECT_FALSE(Free.count(Ctx.intern("x")));
  EXPECT_FALSE(Free.count(Ctx.intern("y")));
}

TEST(FreeVars, ShadowingRespected) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "(lambda (x) (let (x x) x))");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(freeVars(*R).empty());
}

TEST(BoundVars, CollectsLetAndLambda) {
  Context Ctx;
  Result<const Term *> R =
      parseTerm(Ctx, "(let (a 1) (lambda (b) (if0 b (let (c 2) c) a)))");
  ASSERT_TRUE(R.hasValue());
  std::set<Symbol> Bound = boundVars(*R);
  EXPECT_EQ(Bound.size(), 3u);
}

TEST(UniqueBinders, DetectsDuplicates) {
  Context Ctx;
  Result<const Term *> Ok = parseTerm(Ctx, "(let (a 1) (lambda (b) b))");
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_TRUE(checkUniqueBinders(Ctx, *Ok).hasValue());

  Result<const Term *> Dup = parseTerm(Ctx, "(let (a 1) (lambda (a) a))");
  ASSERT_TRUE(Dup.hasValue());
  EXPECT_FALSE(checkUniqueBinders(Ctx, *Dup).hasValue());

  // A binder shadowing a free variable also violates the hygiene rule.
  Result<const Term *> Shadow = parseTerm(Ctx, "(let (q z) (let (z 1) z))");
  ASSERT_TRUE(Shadow.hasValue());
  EXPECT_FALSE(checkUniqueBinders(Ctx, *Shadow).hasValue());
}

TEST(CheckClosed, FlagsUnboundVariables) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "(let (x z) x)");
  ASSERT_TRUE(R.hasValue());
  EXPECT_FALSE(checkClosed(Ctx, *R, {}).hasValue());
  EXPECT_TRUE(checkClosed(Ctx, *R, {Ctx.intern("z")}).hasValue());
}

TEST(Renamer, MakesBindersUnique) {
  Context Ctx;
  Result<const Term *> R = parseTerm(
      Ctx, "(let (a 1) (let (a (lambda (a) a)) (a (lambda (a) z))))");
  ASSERT_TRUE(R.hasValue());
  const Term *Renamed = renameUnique(Ctx, *R);
  EXPECT_TRUE(checkUniqueBinders(Ctx, Renamed).hasValue());
  // Free variables are untouched.
  EXPECT_TRUE(freeVars(Renamed).count(Ctx.intern("z")));
}

TEST(Renamer, NoOpOnAlreadyUniqueTerms) {
  Context Ctx;
  Result<const Term *> R =
      parseTerm(Ctx, "(let (a 1) (lambda (b) (b a)))");
  ASSERT_TRUE(R.hasValue());
  const Term *Renamed = renameUnique(Ctx, *R);
  EXPECT_TRUE(structurallyEqual(*R, Renamed));
}

TEST(Renamer, PreservesSemanticsOfShadowing) {
  Context Ctx;
  // (let (x 1) (let (x (add1 x)) x)) evaluates to 2; after renaming the
  // inner x must still refer to the right binder.
  Result<const Term *> R =
      parseTerm(Ctx, "(let (x 1) (let (x (add1 x)) x))");
  ASSERT_TRUE(R.hasValue());
  const Term *Renamed = renameUnique(Ctx, *R);
  EXPECT_TRUE(checkUniqueBinders(Ctx, Renamed).hasValue());
  // Shape: (let (x 1) (let (x' (add1 x)) x')).
  const auto *Outer = cast<LetTerm>(Renamed);
  const auto *Inner = cast<LetTerm>(Outer->body());
  EXPECT_NE(Outer->var(), Inner->var());
  const auto *Use = cast<ValueTerm>(Inner->body());
  EXPECT_EQ(cast<VarValue>(Use->value())->name(), Inner->var());
}

TEST(CountNodes, CountsTermsAndValues) {
  Context Ctx;
  Result<const Term *> R = parseTerm(Ctx, "(add1 1)");
  ASSERT_TRUE(R.hasValue());
  // App + 2 ValueTerms + 2 Values.
  EXPECT_EQ(countNodes(*R), 5u);
}

TEST(CollectLambdas, FindsNestedLambdas) {
  Context Ctx;
  Result<const Term *> R =
      parseTerm(Ctx, "(lambda (x) (lambda (y) (x y)))");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(collectLambdas(*R).size(), 2u);
}

TEST(StructuralEquality, DistinguishesDifferentTerms) {
  Context Ctx;
  const Term *A = *parseTerm(Ctx, "(let (x 1) x)");
  const Term *B = *parseTerm(Ctx, "(let (x 2) x)");
  const Term *C = *parseTerm(Ctx, "(let (y 1) y)");
  EXPECT_TRUE(structurallyEqual(A, A));
  EXPECT_FALSE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C)); // names matter
}

} // namespace

namespace {

TEST(AlphaEquivalence, IsAnEquivalenceRelationAndRespectsRenaming) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = 77;
  gen::ProgramGenerator Gen(Ctx, Opts);
  const Term *Prev = nullptr;
  for (int I = 0; I < 20; ++I) {
    const Term *T = Gen.generateFull();
    // Reflexive.
    EXPECT_TRUE(alphaEquivalent(T, T));
    // Renaming yields an alpha-equivalent term (symmetric check too).
    const Term *R = renameUnique(Ctx, T);
    EXPECT_TRUE(alphaEquivalent(T, R));
    EXPECT_TRUE(alphaEquivalent(R, T));
    // Programs of different sizes can never be alpha-equivalent.
    if (Prev && countNodes(T) != countNodes(Prev))
      EXPECT_FALSE(alphaEquivalent(T, Prev));
    Prev = T;
  }
}

} // namespace
