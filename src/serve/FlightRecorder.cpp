//===- serve/FlightRecorder.cpp - Last-N request ring ---------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/FlightRecorder.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace cpsflow;
using namespace cpsflow::serve;

namespace fs = std::filesystem;

namespace {

constexpr const char *Magic = "cpsflow-flight";

/// Same FNV-1a the ResultCache frames use; same threat model (torn
/// writes, not adversaries).
uint64_t checksumOf(const std::string &Payload) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Payload) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string frame(const std::string &Payload) {
  std::ostringstream O;
  O << Magic << ' ' << FlightRecorderSchemaVersion << ' ' << Payload.size()
    << ' ' << hex16(checksumOf(Payload)) << '\n'
    << Payload;
  return O.str();
}

} // namespace

FlightRecorder::FlightRecorder(size_t Capacity)
    : Cap(Capacity ? Capacity : 1) {}

void FlightRecorder::admit(const RequestRecord &R) {
  std::string Line = renderRequestRecord(R);
  std::lock_guard<std::mutex> Lock(Mu);
  InFlight[R.ReqId] = std::move(Line);
  ++Admitted;
}

void FlightRecorder::complete(const RequestRecord &R) {
  std::string Line = renderRequestRecord(R);
  std::lock_guard<std::mutex> Lock(Mu);
  InFlight.erase(R.ReqId);
  Recent.push_back(std::move(Line));
  while (Recent.size() > Cap)
    Recent.pop_front();
}

size_t FlightRecorder::inFlightCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return InFlight.size();
}

size_t FlightRecorder::recentCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Recent.size();
}

uint64_t FlightRecorder::admitted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Admitted;
}

std::string FlightRecorder::renderJsonLocked() const {
  std::ostringstream O;
  O << "{\"schemaVersion\":" << FlightRecorderSchemaVersion;
  O << ",\"capacity\":" << Cap;
  O << ",\"admitted\":" << Admitted;
  O << ",\"inFlight\":[";
  bool First = true;
  for (const auto &[Id, Line] : InFlight) {
    if (!First)
      O << ',';
    First = false;
    O << Line;
  }
  O << "],\"recent\":[";
  First = true;
  for (const std::string &Line : Recent) {
    if (!First)
      O << ',';
    First = false;
    O << Line;
  }
  O << "]}";
  return O.str();
}

std::string FlightRecorder::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return renderJsonLocked();
}

bool FlightRecorder::dumpTo(const std::string &Path) const {
  std::string Framed = frame(renderJson());

  // ResultCache publish discipline: unique temp file in the destination
  // directory (rename is only atomic within a filesystem), then rename.
  fs::path Target(Path);
  fs::path Dir = Target.parent_path();
  if (Dir.empty())
    Dir = ".";
  std::error_code Ec;
  fs::create_directories(Dir, Ec); // best effort; open() reports failure
  fs::path Tmp = Dir / (".tmp.flight." + std::to_string(::getpid()));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    Out.write(Framed.data(), static_cast<std::streamsize>(Framed.size()));
    Out.flush();
    if (!Out) {
      fs::remove(Tmp, Ec);
      return false;
    }
  }
  fs::rename(Tmp, Target, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

void FlightRecorder::fatalDump(const char *Path) const {
  // A fatal signal may have interrupted a thread holding Mu; waiting
  // would deadlock the handler. try_lock and proceed either way — a
  // half-updated record at worst tears the payload, and the checksum
  // frame lets the reader see that it did.
  bool Locked = Mu.try_lock();
  std::string Framed = frame(renderJsonLocked());
  if (Locked)
    Mu.unlock();

  char Tmp[512];
  std::snprintf(Tmp, sizeof(Tmp), "%s.crash-tmp", Path);
  int Fd = ::open(Tmp, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (Fd < 0)
    return;
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = ::write(Fd, Framed.data() + Off, Framed.size() - Off);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
  if (Off == Framed.size())
    ::rename(Tmp, Path);
}

bool FlightRecorder::checkFrame(const std::string &Raw,
                                std::string *PayloadOut) {
  size_t HeaderEnd = Raw.find('\n');
  if (HeaderEnd == std::string::npos)
    return false;
  std::istringstream Header(Raw.substr(0, HeaderEnd));
  std::string Word;
  int Version = 0;
  uint64_t DeclaredBytes = 0;
  std::string DeclaredSum;
  if (!(Header >> Word >> Version >> DeclaredBytes >> DeclaredSum) ||
      Word != Magic || Version != FlightRecorderSchemaVersion)
    return false;
  std::string Body = Raw.substr(HeaderEnd + 1);
  if (Body.size() != DeclaredBytes || hex16(checksumOf(Body)) != DeclaredSum)
    return false;
  if (PayloadOut)
    *PayloadOut = std::move(Body);
  return true;
}
