file(REMOVE_RECURSE
  "libcpsflow_gen.a"
)
