//===- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_BENCH_BENCHUTIL_H
#define CPSFLOW_BENCH_BENCHUTIL_H

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"

#include <cstdio>

namespace cpsflow {
namespace bench {

using CD = domain::ConstantDomain;

/// Results of all three Figure 4-6 analyzers on one witness.
struct Trio {
  analysis::DirectResult<CD> Direct;
  analysis::SemanticResult<CD> Semantic;
  analysis::SyntacticResult<CD> Syntactic;
};

inline Trio
runTrio(const Context &Ctx, const analysis::Witness &W,
        analysis::AnalyzerOptions Opts = analysis::AnalyzerOptions()) {
  Trio T;
  T.Direct = analysis::DirectAnalyzer<CD>(
                 Ctx, W.Anf, analysis::directBindings<CD>(W), Opts)
                 .run();
  T.Semantic = analysis::SemanticCpsAnalyzer<CD>(
                   Ctx, W.Anf, analysis::directBindings<CD>(W), Opts)
                   .run();
  T.Syntactic = analysis::SyntacticCpsAnalyzer<CD>(
                    Ctx, W.Cps, analysis::cpsBindings<CD>(W), Opts)
                    .run();
  return T;
}

/// Prints one "variable | direct | semantic | syntactic" row.
inline void printVarRow(const Context &Ctx, const Trio &T, Symbol X) {
  std::printf("  %-6s | %-12s | %-12s | %s\n",
              std::string(Ctx.spelling(X)).c_str(),
              T.Direct.valueOf(X).str(Ctx).c_str(),
              T.Semantic.valueOf(X).str(Ctx).c_str(),
              T.Syntactic.valueOf(X).str(Ctx).c_str());
}

inline void printHeader(const char *Title) {
  std::printf("\n===== %s =====\n", Title);
}

} // namespace bench
} // namespace cpsflow

#endif // CPSFLOW_BENCH_BENCHUTIL_H
