//===- bench/duplication_table.cpp - E6: duplication cost table -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E6 — Section 6.2's cost claim: "at each conditional and at each call
/// site, the continuation may be duplicated along each of the possible
/// paths, at an overall exponential cost". Prints proof-goal counts for
/// the three analyzers on conditional chains and call-merge chains of
/// growing length: the direct column grows linearly, the CPS columns
/// double per step. (Wall-clock timings for the same sweep are in the
/// google-benchmark binary duplication_cost.)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Workloads.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

void sweep(Context &Ctx, const char *Title,
           Witness (*Make)(Context &, uint32_t), uint32_t MaxN) {
  std::printf("\n%s\n", Title);
  std::printf("   n | direct goals | semantic goals | syntactic goals\n");
  std::printf("  ---+--------------+----------------+----------------\n");
  for (uint32_t N = 1; N <= MaxN; ++N) {
    Witness W = Make(Ctx, N);
    Trio T = runTrio(Ctx, W);
    std::printf("  %2u | %12llu | %14llu | %15llu\n", N,
                (unsigned long long)T.Direct.Stats.Goals,
                (unsigned long long)T.Semantic.Stats.Goals,
                (unsigned long long)T.Syntactic.Stats.Goals);
  }
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E6: the exponential cost of duplication (Section 6.2)");
  sweep(Ctx,
        "conditional chains (n unknown conditionals; paths double per "
        "conditional):",
        gen::conditionalChain, 14);
  sweep(Ctx,
        "call-merge chains (n two-callee call sites; paths double per "
        "call):",
        gen::callMergeChain, 10);
  sweep(Ctx, "closure towers (control: single-callee calls, linear "
             "everywhere):",
        gen::closureTower, 14);
  std::printf("\nexpected shape: direct linear in n; semantic-CPS and "
              "syntactic-CPS roughly doubling per step on the first two "
              "families.\n");
  return 0;
}
