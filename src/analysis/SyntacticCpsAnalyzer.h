//===- analysis/SyntacticCpsAnalyzer.h - Figure 6 analyzer ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic-CPS abstract collecting interpreter M_e^s of Figure 6,
/// derived from the Figure 3 interpreter. Abstract values are triples
/// (number, closures, continuations): because the CPS transformation
/// reifies the continuation into an ordinary value, the analysis must
/// *collect*, at each continuation variable k, the set of continuations k
/// may denote.
///
/// Characteristic behaviour:
///
///  * At a return `(k W)`, *every* continuation collected at k is applied
///    and the results merged — Section 6.1's *false return*: distinct
///    procedure returns are confused (Theorem 5.1's loss vs the direct
///    analysis, Theorem 5.5's loss vs the semantic-CPS analysis).
///  * At a conditional, each branch is a complete CPS program carrying its
///    continuation, so non-distributive information is propagated per
///    branch — Theorem 5.2's win over the direct analysis.
///  * The `loopk` rule mirrors the Figure 5 loop rule and is likewise
///    uncomputable exactly; see AnalyzerOptions::LoopUnroll.
///
/// Termination uses the Section 4.4 cut with the least precise value
/// (T, CL_T, K_T).
///
/// `SyntacticCpsAnalyzer` is a facade over two interchangeable engines:
///
///  * `detail::SynIrEngine` (SyntacticIrEngine.h) — the default. The
///    program is lowered to the flat label arena of cps/CpsIr.h, lattice
///    sets are 128-bit packed words, and (when enabled) continuation
///    summaries short-circuit the Theorem 5.1 re-walks. Used whenever the
///    closure/continuation universes fit in 128 elements and the IR
///    lowering's enumeration provably matches the universe enumeration.
///  * `detail::SynTreeEngine` (below) — the reference pointer-tree
///    evaluator, kept as the fallback for oversized universes and as the
///    executable specification the IR engine is tested against.
///
/// Both engines key goals by (term, StoreId) with hash-consed stores
/// (domain/StoreInterner.h) and produce byte-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_SYNTACTICCPSANALYZER_H
#define CPSFLOW_ANALYSIS_SYNTACTICCPSANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/SyntacticIrEngine.h"
#include "analysis/Universe.h"
#include "cps/CpsIr.h"
#include "cps/Transform.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/StoreInterner.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {
namespace detail {

/// The reference pointer-tree engine. Single-use; the facade constructs
/// it with the universes it already derived.
template <typename D> class SynTreeEngine {
public:
  using Val = domain::CpsAbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  SynTreeEngine(const cps::CpsProgram &Program,
                std::vector<CpsBinding<D>> Initial, AnalyzerOptions Opts,
                std::shared_ptr<domain::VarIndex> Vars,
                domain::CpsCloSet CloTop, domain::KontSet KontTop)
      : Program(Program), Initial(std::move(Initial)), Opts(Opts),
        Vars(std::move(Vars)), CloTop(std::move(CloTop)),
        KontTop(std::move(KontTop)) {
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(this->Vars->size());
  }

  /// Runs the analysis with TopK bound to {stop} (Section 5.1's initial
  /// store entry k |-> (bot, {}, {stop})).
  SyntacticResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const CpsBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, Vars->of(B.Var), B.Value);
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(B.Var), Next, Sigma0);
      Sigma0 = Next;
    }
    {
      domain::StoreId Next = Interner.joinAt(
          Sigma0, Vars->of(Program.TopK),
          Val::konts(domain::KontSet::single(domain::KontRef::stop())));
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(Program.TopK), Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalP(Program.Root, Sigma0, 0);
    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Prov)
      Opts.Prov->noteFinal(Out.A.Store);

    SyntacticResult<D> R;
    R.Answer = Answer{std::move(Out.A.Value), Interner.store(Out.A.Store)};
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  /// The run's hash-consing table (observability: distinct stores seen).
  const domain::StoreInterner<Val> &interner() const { return Interner; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  using IAns = InternedAnswerOf<Val>;

  struct EvalOut {
    IAns A;
    uint32_t MinDep;
  };

  struct Key {
    const void *Node;
    domain::StoreId Store;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.Store == B.Store;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashPointer(K.Node);
      hashCombine(H, K.Store);
      return H;
    }
  };

  IAns bottomAnswer() { return IAns{Val::bot(), Interner.bottom()}; }

  /// The Section 4.4 cut value (T, CL_T, K_T) with the current store.
  IAns cutAnswer(domain::StoreId Sigma) const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    V.Konts = KontTop;
    return IAns{std::move(V), Sigma};
  }

  // phi_e^s of Figure 6.
  Val phi(const cps::CpsValue *W, domain::StoreId Sigma) const {
    using namespace cps;
    switch (W->kind()) {
    case CpsValueKind::WK_Num:
      return Val::number(D::constant(cast<CpsNum>(W)->value()));
    case CpsValueKind::WK_Var:
      return Interner.get(Sigma, Vars->of(cast<CpsVar>(W)->name()));
    case CpsValueKind::WK_Prim:
      return Val::closures(domain::CpsCloSet::single(
          cast<CpsPrim>(W)->op() == CpsPrimOp::Add1k
              ? domain::CpsCloRef::inck()
              : domain::CpsCloRef::deck()));
    case CpsValueKind::WK_Lam:
      return Val::closures(domain::CpsCloSet::single(
          domain::CpsCloRef::lam(cast<CpsLam>(W))));
    }
    assert(false && "unknown cps value kind");
    return Val::bot();
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(const cps::CpsValue *W,
                             domain::StoreId Sigma) const {
    if (const auto *Var = cps::dyn_cast<cps::CpsVar>(W))
      return Opts.Prov->factOf(Vars->of(Var->name()), Sigma);
    return domain::NoProv;
  }

  /// appr_e^s over a single abstract continuation. The parameter write is
  /// recorded under \p Kind at \p Site: Flow for an ordinary delivery,
  /// CallMerge when the caller is a return point applying a multi-element
  /// continuation set (the Theorem 5.1 false-return loss).
  EvalOut applyKont(const domain::KontRef &K, const Val &U,
                    domain::StoreId Sigma, uint32_t Depth,
                    domain::ProvId UProv = domain::NoProv,
                    domain::EdgeKind Kind = domain::EdgeKind::Flow,
                    uint32_t SiteId = 0, SourceLoc SiteLoc = SourceLoc{}) {
    if (K.Tag == domain::KontRef::K::Stop)
      return EvalOut{IAns{U, Sigma}, Unconstrained};
    domain::StoreId S = Interner.joinAt(Sigma, Vars->of(K.Cont->param()), U);
    if (Opts.Prov)
      Opts.Prov->assign(Kind, Vars->of(K.Cont->param()), S, Sigma,
                        SiteId ? SiteId : K.Cont->id(),
                        SiteLoc.isValid() ? SiteLoc : K.Cont->loc(), UProv);
    return evalP(K.Cont->body(), S, Depth + 1);
  }

  /// appr_e^s over a continuation *set*: apply every continuation and
  /// merge — the false-return join of Section 6.1. \p Site is the return
  /// point (for Stats.CallMerges and provenance attribution).
  EvalOut applyKontSet(const domain::KontSet &Ks, const Val &U,
                       domain::StoreId Sigma, uint32_t Depth,
                       const cps::CpsRet *Site,
                       domain::ProvId UProv = domain::NoProv) {
    if (Ks.empty()) {
      ++Stats.DeadPaths; // join over no paths
      return EvalOut{bottomAnswer(), Unconstrained};
    }
    bool Merging = Ks.size() > 1;
    if (Merging)
      Stats.CallMerges += Ks.size() - 1; // Theorem 5.1 false return

    domain::EdgeKind Kind =
        Merging ? domain::EdgeKind::CallMerge : domain::EdgeKind::Flow;
    IAns Acc = bottomAnswer();
    uint32_t MinDep = Unconstrained;
    for (const domain::KontRef &K : Ks) {
      EvalOut Ri = applyKont(K, U, Sigma, Depth, UProv, Kind, Site->id(),
                             Site->loc());
      Acc = Opts.Prov ? joinAnswers(Interner, Acc, Ri.A, Opts.Prov, Kind,
                                    Site->id(), Site->loc())
                      : joinAnswers(Interner, Acc, Ri.A);
      MinDep = std::min(MinDep, Ri.MinDep);
    }
    return EvalOut{std::move(Acc), MinDep};
  }

  EvalOut evalP(const cps::CpsTerm *P, domain::StoreId Sigma,
                uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{cutAnswer(Sigma), 0};
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return EvalOut{cutAnswer(Sigma), 0};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key K{P, Sigma};
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(K) != 0; });
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      return EvalOut{It->second, Unconstrained};
    }
    if (auto It = Active.find(K); It != Active.end()) {
      ++Stats.Cuts;
      return EvalOut{cutAnswer(Sigma), It->second};
    }

    Active.emplace(K, Depth);
    EvalOut Out = evalUncached(P, Sigma, Depth);
    Active.erase(K);
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(K, Out.A);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  EvalOut evalUncached(const cps::CpsTerm *P, domain::StoreId Sigma,
                       uint32_t Depth) {
    using namespace cps;

    switch (P->kind()) {
    case CpsTermKind::PK_Ret: {
      // (k W): apply every continuation collected at k and merge.
      const auto *Ret = cast<CpsRet>(P);
      Val KVal = Interner.get(Sigma, Vars->of(Ret->kvar()));
      Val U = phi(Ret->arg(), Sigma);

      domain::KontSet &Rec = Cfg.Returns[Ret];
      for (const domain::KontRef &K : KVal.Konts)
        Rec.insert(K);

      return applyKontSet(KVal.Konts, U, Sigma, Depth, Ret,
                          Opts.Prov ? provOfValue(Ret->arg(), Sigma)
                                    : domain::NoProv);
    }

    case CpsTermKind::PK_LetVal: {
      const auto *Let = cast<CpsLetVal>(P);
      Val U = phi(Let->bound(), Sigma);
      domain::StoreId S = Interner.joinAt(Sigma, Vars->of(Let->var()), U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, Vars->of(Let->var()), S,
                          Sigma, Let->id(), Let->loc(),
                          provOfValue(Let->bound(), Sigma));
      return evalP(Let->body(), S, Depth + 1);
    }

    case CpsTermKind::PK_Call: {
      // (W1 W2 (lambda (x) P')): apply each closure; user closures get
      // the literal continuation *joined into* their k parameter's store
      // entry — the collection that later causes false returns.
      const auto *Call = cast<CpsCall>(P);
      Val Fun = phi(Call->fun(), Sigma);
      Val Arg = phi(Call->arg(), Sigma);
      domain::KontRef Kont = domain::KontRef::cont(Call->cont());

      domain::CpsCloSet &Rec = Cfg.Callees[Call];
      for (const domain::CpsCloRef &C : Fun.Clos)
        Rec.insert(C);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths; // join over no paths
        return EvalOut{bottomAnswer(), Unconstrained};
      }

      if (Fun.Clos.size() > 1)
        Stats.Joins += Fun.Clos.size() - 1; // multi-callee answer merge

      domain::ProvId ArgProv =
          Opts.Prov ? provOfValue(Call->arg(), Sigma) : domain::NoProv;
      IAns Acc = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      for (const domain::CpsCloRef &C : Fun.Clos) {
        EvalOut Ri;
        switch (C.Tag) {
        case domain::CpsCloRef::K::Inck:
          Ri = applyKont(Kont, Val::number(D::add1(Arg.Num)), Sigma,
                         Depth + 1, ArgProv, domain::EdgeKind::Flow,
                         Call->id(), Call->loc());
          break;
        case domain::CpsCloRef::K::Deck:
          Ri = applyKont(Kont, Val::number(D::sub1(Arg.Num)), Sigma,
                         Depth + 1, ArgProv, domain::EdgeKind::Flow,
                         Call->id(), Call->loc());
          break;
        case domain::CpsCloRef::K::Lam: {
          domain::StoreId S =
              Interner.joinAt(Sigma, Vars->of(C.Lam->param()), Arg);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow,
                              Vars->of(C.Lam->param()), S, Sigma, Call->id(),
                              Call->loc(), ArgProv);
          domain::StoreId S2 = Interner.joinAt(
              S, Vars->of(C.Lam->kparam()),
              Val::konts(domain::KontSet::single(Kont)));
          // The continuation-set collection at k — the raw material of a
          // later false return (the loss itself is tagged at the Ret).
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow,
                              Vars->of(C.Lam->kparam()), S2, S, Call->id(),
                              Call->loc());
          Ri = evalP(C.Lam->body(), S2, Depth + 1);
          break;
        }
        }
        Acc = Opts.Prov ? joinAnswers(Interner, Acc, Ri.A, Opts.Prov,
                                      domain::EdgeKind::Join, Call->id(),
                                      Call->loc())
                        : joinAnswers(Interner, Acc, Ri.A);
        MinDep = std::min(MinDep, Ri.MinDep);
      }
      return EvalOut{std::move(Acc), MinDep};
    }

    case CpsTermKind::PK_If: {
      // (let (k (lambda (x) P')) (if0 W0 P1 P2)): name the join
      // continuation, then each feasible branch is analyzed as a complete
      // program (per-branch duplication, Theorem 5.2).
      const auto *If = cast<CpsIf>(P);
      Val U0 = phi(If->cond(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty() &&
                      U0.Konts.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      domain::StoreId S = Interner.joinAt(
          Sigma, Vars->of(If->kvar()),
          Val::konts(domain::KontSet::single(
              domain::KontRef::cont(If->join()))));
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, Vars->of(If->kvar()), S,
                          Sigma, If->id(), If->loc());

      if (ThenOnly || ElseOnly)
        return evalP(ThenOnly ? If->thenBranch() : If->elseBranch(), S,
                     Depth + 1);

      ++Stats.Joins;
      EvalOut B1 = evalP(If->thenBranch(), S, Depth + 1);
      EvalOut B2 = evalP(If->elseBranch(), S, Depth + 1);
      IAns Joined = Opts.Prov
                        ? joinAnswers(Interner, B1.A, B2.A, Opts.Prov,
                                      domain::EdgeKind::Join, If->id(),
                                      If->loc())
                        : joinAnswers(Interner, B1.A, B2.A);
      return EvalOut{std::move(Joined), std::min(B1.MinDep, B2.MinDep)};
    }

    case CpsTermKind::PK_Loop: {
      // loopk: deliver each natural to the continuation and join —
      // uncomputable exactly (Section 6.2); bounded unroll as in Figure 5.
      const auto *Loop = cast<CpsLoop>(P);
      domain::KontRef Kont = domain::KontRef::cont(Loop->cont());
      // No finite unrolling is exact (Section 6.2): flag the truncation
      // unconditionally — a join that *looks* converged at the bound is
      // still untrustworthy (a probe beyond the bound may change it).
      Stats.LoopBounded = true;
      IAns Acc = bottomAnswer();
      uint32_t MinDep = Unconstrained;
      auto JoinIter = [&](const IAns &A) {
        return Opts.Prov ? joinAnswers(Interner, Acc, A, Opts.Prov,
                                       domain::EdgeKind::Widen, Loop->id(),
                                       Loop->loc())
                         : joinAnswers(Interner, Acc, A);
      };
      for (uint32_t I = 0; I < Opts.LoopUnroll; ++I) {
        EvalOut Bi =
            applyKont(Kont, Val::number(D::constant(I)), Sigma, Depth + 1,
                      domain::NoProv, domain::EdgeKind::Widen, Loop->id(),
                      Loop->loc());
        Acc = JoinIter(Bi.A);
        MinDep = std::min(MinDep, Bi.MinDep);
        if (Stats.BudgetExhausted)
          break;
      }
      if (Opts.LoopSoundSummary) {
        domain::ProvId WidenProv =
            Opts.Prov ? Opts.Prov->value(domain::EdgeKind::Widen, Loop->id(),
                                         Loop->loc())
                      : domain::NoProv;
        EvalOut Bs =
            applyKont(Kont, Val::number(D::naturals()), Sigma, Depth + 1,
                      WidenProv, domain::EdgeKind::Widen, Loop->id(),
                      Loop->loc());
        Acc = JoinIter(Bs.A);
        MinDep = std::min(MinDep, Bs.MinDep);
      }
      return EvalOut{std::move(Acc), MinDep};
    }
    }
    assert(false && "unknown cps term kind");
    return EvalOut{bottomAnswer(), Unconstrained};
  }

  const cps::CpsProgram &Program;
  std::vector<CpsBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CpsCloSet CloTop;
  domain::KontSet KontTop;
  domain::StoreInterner<Val> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  CpsCfg Cfg;

  std::unordered_map<Key, IAns, KeyHash> Memo;
  std::unordered_map<Key, uint32_t, KeyHash> Active;
};

} // namespace detail

/// The Figure 6 analyzer facade. Single-use: construct, run() once,
/// then (optionally) consult universes and the interner.
template <typename D> class SyntacticCpsAnalyzer {
public:
  using Val = domain::CpsAbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  SyntacticCpsAnalyzer(const Context &Ctx, const cps::CpsProgram &Program,
                       std::vector<CpsBinding<D>> Initial = {},
                       AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)), Opts(Opts) {
    for (const CpsBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CpsCloRef &C : B.Value.Clos)
        if (C.Tag == domain::CpsCloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        cpsVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = cpsClosureUniverse(Program, ExtraLams);
    KontTop = cpsKontUniverse(Program, ExtraLams);
  }

  /// Runs the analysis with TopK bound to {stop} (Section 5.1's initial
  /// store entry k |-> (bot, {}, {stop})).
  SyntacticResult<D> run() {
    if (tryBuildIrEngine())
      return IrEng->run();
    TreeEng = std::make_unique<detail::SynTreeEngine<D>>(
        Program, std::move(Initial), Opts, Vars, CloTop, KontTop);
    return TreeEng->run();
  }

  const domain::CpsCloSet &closureUniverse() const { return CloTop; }
  const domain::KontSet &kontUniverse() const { return KontTop; }

  /// The run's hash-consing table (observability: distinct stores seen;
  /// resolves provenance StoreIds). Before run(), an empty table.
  const domain::StoreInterner<Val> &interner() const {
    if (IrEng)
      return IrEng->publicInterner();
    if (TreeEng)
      return TreeEng->interner();
    if (!EmptyInterner) {
      EmptyInterner = std::make_unique<domain::StoreInterner<Val>>();
      EmptyInterner->reset(Vars->size());
    }
    return *EmptyInterner;
  }

private:
  /// Lowers the program to the flat IR and checks, element by element,
  /// that the IR's lambda/continuation enumeration coincides with the
  /// analyzer's universe enumeration — the invariant that makes the
  /// packed bit index == sorted-set rank isomorphism hold. Any mismatch
  /// (or an oversized universe) keeps the tree engine.
  bool tryBuildIrEngine() {
    if (CloTop.size() > 128 || KontTop.size() > 128)
      return false;
    auto SlotOf = [this](Symbol S) -> int64_t {
      if (auto I = Vars->tryOf(S))
        return static_cast<int64_t>(*I);
      return -1;
    };
    std::optional<cps::CpsIr> Ir = cps::buildCpsIr(Program, ExtraLams, SlotOf);
    if (!Ir)
      return false;
    if (CloTop.size() != 2 + Ir->Lams.size() ||
        KontTop.size() != 1 + Ir->Conts.size())
      return false;
    {
      uint32_t I = 0;
      for (const domain::CpsCloRef &C : CloTop) {
        bool Ok = I == 0   ? C.Tag == domain::CpsCloRef::K::Inck
                  : I == 1 ? C.Tag == domain::CpsCloRef::K::Deck
                           : C.Tag == domain::CpsCloRef::K::Lam &&
                                 C.Lam == Ir->Lams[I - 2].Src;
        if (!Ok)
          return false;
        ++I;
      }
    }
    {
      uint32_t I = 0;
      for (const domain::KontRef &K : KontTop) {
        bool Ok = I == 0 ? K.Tag == domain::KontRef::K::Stop
                         : K.Tag == domain::KontRef::K::Cont &&
                               K.Cont == Ir->Conts[I - 1].Src;
        if (!Ok)
          return false;
        ++I;
      }
    }

    std::unordered_map<const cps::CpsLam *, uint32_t> LamRank;
    for (uint32_t I = 0; I < Ir->Lams.size(); ++I)
      LamRank.emplace(Ir->Lams[I].Src, 2 + I);
    std::unordered_map<const cps::ContLam *, uint32_t> ContRank;
    for (uint32_t I = 0; I < Ir->Conts.size(); ++I)
      ContRank.emplace(Ir->Conts[I].Src, 1 + I);

    std::vector<detail::PackedCpsBinding<D>> Packed;
    Packed.reserve(Initial.size());
    for (const CpsBinding<D> &B : Initial) {
      detail::PackedCpsBinding<D> P;
      P.Slot = Vars->of(B.Var);
      P.Value.Num = B.Value.Num;
      for (const domain::CpsCloRef &C : B.Value.Clos) {
        if (C.Tag == domain::CpsCloRef::K::Inck) {
          P.Value.Clos.set(0);
        } else if (C.Tag == domain::CpsCloRef::K::Deck) {
          P.Value.Clos.set(1);
        } else {
          auto It = LamRank.find(C.Lam);
          if (It == LamRank.end())
            return false;
          P.Value.Clos.set(It->second);
        }
      }
      for (const domain::KontRef &K : B.Value.Konts) {
        if (K.Tag == domain::KontRef::K::Stop) {
          P.Value.Konts.set(0);
        } else {
          auto It = ContRank.find(K.Cont);
          if (It == ContRank.end())
            return false;
          P.Value.Konts.set(It->second);
        }
      }
      Packed.push_back(std::move(P));
    }

    IrEng = std::make_unique<detail::SynIrEngine<D>>(
        std::move(*Ir), Vars, std::move(Packed), Vars->of(Program.TopK),
        Opts);
    return true;
  }

  const Context &Ctx;
  const cps::CpsProgram &Program;
  std::vector<CpsBinding<D>> Initial;
  AnalyzerOptions Opts;

  std::vector<const cps::CpsLam *> ExtraLams;
  std::vector<Symbol> ExtraVars;
  std::shared_ptr<domain::VarIndex> Vars;
  domain::CpsCloSet CloTop;
  domain::KontSet KontTop;

  std::unique_ptr<detail::SynIrEngine<D>> IrEng;
  std::unique_ptr<detail::SynTreeEngine<D>> TreeEng;
  mutable std::unique_ptr<domain::StoreInterner<Val>> EmptyInterner;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_SYNTACTICCPSANALYZER_H
