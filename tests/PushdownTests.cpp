//===- tests/PushdownTests.cpp - The pushdown analyzer ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fifth analyzer's contract, pinned four ways:
///
///  * soundness — the pushdown answer and store over-approximate the
///    concrete interpreter on the witness programs and on the bounded-
///    exhaustive two-let universe;
///  * determinism — a batch over the corpus at --threads 1/2/4/8 renders
///    byte-identical reports, and a fresh-Context replay reproduces
///    every answer and counter;
///  * governed degradation — every governor trip (goals, deadline,
///    depth) degrades to a sound over-approximation with the same
///    DegradeReason taxonomy as the other four legs (GovernorTests);
///  * equivalence vs direct — on merge-free runs (both legs cut-free, no
///    direct joins, no dead paths) the pushdown and direct analyses
///    agree exactly; where they diverge, the pushdown side is the more
///    precise one.
///
/// Plus the analyzer-name registry: pd/cfa2 aliases canonicalize, and
/// unknown names are rejected with the valid choices listed.
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "anf/Anf.h"
#include "clients/Batch.h"
#include "gen/Enumerate.h"
#include "gen/Workloads.h"
#include "serve/Protocol.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::interp;
using cpsflow::support::DegradeReason;
using cpsflow::test::intBindings;
using CD = domain::ConstantDomain;

namespace {

/// alpha for the direct world (the ExhaustiveTests convention).
domain::AbsVal<CD> alphaOf(const RtValue &V) {
  using Val = domain::AbsVal<CD>;
  switch (V.Tag) {
  case RtValue::Kind::Num:
    return Val::number(CD::constant(V.Num));
  case RtValue::Kind::Inc:
    return Val::closures(domain::CloSet::single(domain::CloRef::inc()));
  case RtValue::Kind::Dec:
    return Val::closures(domain::CloSet::single(domain::CloRef::dec()));
  case RtValue::Kind::Closure:
    return Val::closures(domain::CloSet::single(domain::CloRef::lam(V.Lam)));
  }
  return Val::bot();
}

// --- Soundness ----------------------------------------------------------

TEST(Pushdown, SoundOnWitnessesAndWorkloads) {
  Context Ctx;
  std::vector<Witness> Ws;
  Ws.push_back(theorem51(Ctx));
  Ws.push_back(theorem52a(Ctx));
  Ws.push_back(theorem52b(Ctx));
  Ws.push_back(gen::conditionalChain(Ctx, 3));
  Ws.push_back(gen::callMergeChain(Ctx, 3));
  Ws.push_back(gen::closureTower(Ctx, 3));
  Ws.push_back(gen::counterLoop(Ctx, 3));
  Ws.push_back(gen::omega(Ctx));

  for (const Witness &W : Ws) {
    auto R = PushdownAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W),
                                  AnalyzerOptions())
                 .run();
    EXPECT_FALSE(R.Stats.BudgetExhausted) << W.Name;
    // The ungoverned runs terminate: omega and counterLoop through the
    // Section 4.4 cut, the rest exactly.
    EXPECT_EQ(R.Stats.Degraded, DegradeReason::None) << W.Name;
  }
}

TEST(ExhaustivePushdown, SoundOnEveryTwoLetProgram) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;
  RunLimits Limits;
  Limits.MaxSteps = 20000;

  size_t Checked = 0;
  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    DirectInterp CI(Limits);
    RunResult CR = CI.run(T, intBindings(T, {1}));
    if (!CR.ok())
      return;
    ++Checked;

    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::constant(1))});
    auto R = PushdownAnalyzer<CD>(Ctx, T, Init).run();

    // Value soundness.
    EXPECT_TRUE(domain::AbsVal<CD>::leq(alphaOf(CR.Value), R.Answer.Value))
        << syntax::print(Ctx, T);
    // Store soundness on every cell the concrete run wrote.
    for (const auto &Cell : CI.store().cells())
      EXPECT_TRUE(
          domain::AbsVal<CD>::leq(alphaOf(Cell.Value), R.valueOf(Cell.Var)))
          << syntax::print(Ctx, T) << " at "
          << Ctx.spelling(Cell.Var);
  });
  // 765 of the 1326 two-let programs terminate concretely on input 1;
  // the gate keeps the sweep from going vacuously green.
  EXPECT_GT(Checked, 700u);
}

// --- Equivalence and dominance on the exhaustive universe ---------------

TEST(ExhaustivePushdown, MatchesDirectOnMergeFreeTwoLetPrograms) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;

  size_t MergeFree = 0, Diverging = 0;
  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::constant(1))});
    auto AD = DirectAnalyzer<CD>(Ctx, T, Init).run();
    auto PD = PushdownAnalyzer<CD>(Ctx, T, Init).run();
    if (PD.Stats.Cuts != 0 || AD.Stats.Cuts != 0)
      return;

    std::vector<Symbol> Vars = syntax::collectVariables(T);
    Comparison C = compareDirectWorld<CD>(Ctx, PD, AD, Vars);
    bool IsMergeFree = AD.Stats.Joins == 0 && AD.Stats.DeadPaths == 0 &&
                       PD.Stats.DeadPaths == 0;
    if (IsMergeFree) {
      ++MergeFree;
      EXPECT_EQ(C.Overall, PrecisionOrder::Equal) << syntax::print(Ctx, T);
    } else {
      ++Diverging;
      // Where they diverge, the pushdown side is never the less precise
      // one (the MOP half of Theorem 5.4).
      EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                  C.Overall == PrecisionOrder::LeftMorePrecise)
          << syntax::print(Ctx, T) << ": " << str(C.Overall);
    }
  });
  // Both regimes must actually occur, or the gate is vacuous.
  EXPECT_GT(MergeFree, 100u);
  EXPECT_GT(Diverging, 100u);
}

TEST(ExhaustivePushdown, DominatesSyntacticOnEveryTwoLetProgram) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;

  size_t Checked = 0;
  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    ASSERT_TRUE(P.hasValue());

    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::constant(1))});
    std::vector<CpsBinding<CD>> CInit;
    for (const DirectBinding<CD> &B : Init)
      CInit.push_back({B.Var, deltaE<CD>(B.Value, *P)});

    auto PD = PushdownAnalyzer<CD>(Ctx, T, Init).run();
    auto AC = SyntacticCpsAnalyzer<CD>(Ctx, *P, CInit).run();
    if (PD.Stats.Cuts != 0 || AC.Stats.Cuts != 0)
      return;
    ++Checked;

    std::vector<Symbol> Vars = syntax::collectVariables(T);
    Comparison C = compareWithSyntactic<CD>(Ctx, PD, AC, *P, Vars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << syntax::print(Ctx, T) << ": " << str(C.Overall);
  });
  EXPECT_GT(Checked, 1000u);
}

// --- Determinism --------------------------------------------------------

TEST(Pushdown, BatchReportIsByteIdenticalAcrossThreadCounts) {
  // The corpus programs exercise calls, branches, and loops; the batch
  // report (timing off) must not depend on worker count or scheduling.
  std::vector<std::pair<std::string, std::string>> Sources = {
      {"t51.scm", "(let (f (lambda (x) x)) (let (a1 (f 1)) "
                  "(let (a2 (f 2)) a2)))"},
      {"branch.scm", "(let (a (if0 z 1 2)) (let (b (if0 z a 3)) b))"},
      {"loop.scm", "(let (x (loop)) (if0 x 7 9))"},
      {"tower.scm", "(let (f (lambda (x) (add1 x))) (let (g (lambda (y) "
                    "(f y))) (g 4)))"},
  };

  std::string Golden;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    clients::BatchOptions Opts;
    Opts.Threads = Threads;
    Opts.IncludeTiming = false;
    clients::BatchResult R = clients::runBatch(Sources, Opts);
    std::string Json = clients::batchJson(R, Opts);
    for (const clients::BatchProgramResult &P : R.Programs)
      EXPECT_TRUE(P.Ok) << P.Name << ": " << P.Error;
    if (Golden.empty())
      Golden = Json;
    else
      EXPECT_EQ(Json, Golden) << "threads=" << Threads;
  }
  // The fifth leg is actually in the document.
  EXPECT_NE(Golden.find("\"pushdown\""), std::string::npos);
}

TEST(Pushdown, FreshContextReplayReproducesAnswerAndCounters) {
  const std::string Source = "(let (f (lambda (x) x)) (let (a1 (f 1)) "
                             "(let (a2 (f 2)) a2)))";
  auto RunOnce = [&](Context &Ctx) {
    Result<const syntax::Term *> Raw =
        syntax::parseSugaredProgram(Ctx, Source);
    EXPECT_TRUE(Raw.hasValue());
    const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
    std::vector<DirectBinding<CD>> Init;
    return PushdownAnalyzer<CD>(Ctx, T, Init).run();
  };
  Context Ctx1, Ctx2;
  auto R1 = RunOnce(Ctx1);
  auto R2 = RunOnce(Ctx2);
  EXPECT_EQ(R1.Answer.Value.str(Ctx1), R2.Answer.Value.str(Ctx2));
  EXPECT_EQ(R1.Stats.Goals, R2.Stats.Goals);
  EXPECT_EQ(R1.Stats.CacheHits, R2.Stats.CacheHits);
  EXPECT_EQ(R1.Stats.Cuts, R2.Stats.Cuts);
  EXPECT_EQ(R1.Stats.MaxDepth, R2.Stats.MaxDepth);
  EXPECT_EQ(R1.Stats.DeadPaths, R2.Stats.DeadPaths);
  EXPECT_EQ(R1.Stats.Joins, R2.Stats.Joins);
}

// --- Governed degradation (GovernorTests parity) ------------------------

/// Asserts the tripped run is degraded with \p Want and its value half
/// over-approximates the exact ungoverned value (the GovernorTests
/// expectSoundTrip invariant; the store half carries no guarantee).
void expectSoundTrip(const char *What, const PushdownResult<CD> &Gov,
                     const PushdownResult<CD> &Exact, DegradeReason Want) {
  EXPECT_TRUE(Gov.Stats.BudgetExhausted) << What;
  EXPECT_EQ(Gov.Stats.Degraded, Want) << What;
  EXPECT_FALSE(Gov.Stats.complete()) << What;
  EXPECT_TRUE(
      domain::AbsVal<CD>::leq(Exact.Answer.Value, Gov.Answer.Value))
      << What << ": degraded value must over-approximate the exact value";
}

TEST(Pushdown, UngovernedRunStaysExact) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 4);
  auto R = PushdownAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W),
                                AnalyzerOptions())
               .run();
  EXPECT_EQ(R.Stats.Degraded, DegradeReason::None);
  EXPECT_FALSE(R.Stats.BudgetExhausted);
  EXPECT_TRUE(R.Stats.complete());
}

TEST(Pushdown, GoalBudgetTripRecordsReasonAndStaysSound) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 5);
  auto Init = directBindings<CD>(W);
  auto Exact =
      PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AnalyzerOptions()).run();
  AnalyzerOptions AOpts;
  AOpts.MaxGoals = 10;
  auto Gov = PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  expectSoundTrip("goals", Gov, Exact, DegradeReason::Goals);
}

TEST(Pushdown, ExpiredDeadlineTripsImmediatelyAndStaysSound) {
  Context Ctx;
  AnalyzerOptions AOpts;
  AOpts.Governor.Deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  for (Witness W : {gen::conditionalChain(Ctx, 4), theorem51(Ctx)}) {
    auto Init = directBindings<CD>(W);
    auto Exact =
        PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AnalyzerOptions()).run();
    auto Gov = PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
    expectSoundTrip(W.Name.c_str(), Gov, Exact, DegradeReason::Deadline);
    EXPECT_EQ(Gov.Stats.Goals, 1u) << W.Name;
  }
}

TEST(Pushdown, DepthCapTripsAndStaysSound) {
  Context Ctx;
  Witness W = gen::closureTower(Ctx, 6);
  auto Init = directBindings<CD>(W);
  auto Exact =
      PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AnalyzerOptions()).run();
  AnalyzerOptions AOpts;
  AOpts.Governor.MaxDepth = std::max<uint32_t>(
      1, static_cast<uint32_t>(Exact.Stats.MaxDepth / 2));
  AOpts.Governor.CheckPeriod = 1;
  auto Gov = PushdownAnalyzer<CD>(Ctx, W.Anf, Init, AOpts).run();
  expectSoundTrip("depth", Gov, Exact, DegradeReason::Depth);
}

// --- The analyzer-name registry -----------------------------------------

TEST(AnalyzerRegistry, AliasesCanonicalize) {
  auto Canon = [](const char *N) {
    std::optional<std::string> C = canonicalAnalyzerName(N);
    return C ? *C : std::string("<rejected>");
  };
  EXPECT_EQ(Canon("direct"), "direct");
  EXPECT_EQ(Canon("semantic"), "semantic");
  EXPECT_EQ(Canon("scps"), "semantic");
  EXPECT_EQ(Canon("syntactic"), "syntactic");
  EXPECT_EQ(Canon("syncps"), "syntactic");
  EXPECT_EQ(Canon("dup"), "dup");
  EXPECT_EQ(Canon("pushdown"), "pushdown");
  EXPECT_EQ(Canon("pd"), "pushdown");
  EXPECT_EQ(Canon("cfa2"), "pushdown");
}

TEST(AnalyzerRegistry, UnknownNamesAreRejectedListingChoices) {
  EXPECT_FALSE(canonicalAnalyzerName("bogus").has_value());
  EXPECT_FALSE(canonicalAnalyzerName("").has_value());
  EXPECT_FALSE(canonicalAnalyzerName("Pushdown").has_value());

  // The rendered choice lists — what every rejection message prints —
  // name all five legs and all four aliases.
  std::string Names = knownAnalyzerNames();
  for (const char *N :
       {"direct", "semantic", "syntactic", "dup", "pushdown"})
    EXPECT_NE(Names.find(N), std::string::npos) << N;
  std::string Aliases = knownAnalyzerAliases();
  for (const char *A : {"scps", "syncps", "pd", "cfa2"})
    EXPECT_NE(Aliases.find(A), std::string::npos) << A;
}

TEST(AnalyzerRegistry, ServeProtocolRejectsUnknownAndCanonicalizes) {
  Result<serve::ServeRequest> Bad = serve::parseServeRequest(
      "{\"op\":\"analyze\",\"program\":\"1\",\"analyzer\":\"quantum\"}");
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().Message.find("pushdown"), std::string::npos)
      << Bad.error().Message;
  EXPECT_NE(Bad.error().Message.find("direct"), std::string::npos);

  Result<serve::ServeRequest> Alias = serve::parseServeRequest(
      "{\"op\":\"analyze\",\"program\":\"1\",\"analyzer\":\"pd\"}");
  ASSERT_TRUE(Alias.hasValue());
  EXPECT_EQ(Alias->Analyzer, "pushdown");
}

} // namespace
