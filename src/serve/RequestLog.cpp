//===- serve/RequestLog.cpp - Structured per-request logging --------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestLog.h"

#include "support/Json.h"

#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace cpsflow;
using namespace cpsflow::serve;

namespace {

std::string hexDigest(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

void keyUs(std::ostringstream &O, const char *K, double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Us < 0 ? 0.0 : Us);
  O << ",\"" << K << "\":" << Buf;
}

} // namespace

std::string cpsflow::serve::renderRequestRecord(const RequestRecord &R) {
  std::ostringstream O;
  O << "{\"schema\":" << RequestLogSchemaVersion;
  O << ",\"req\":" << R.ReqId;
  if (R.HasClientId)
    O << ",\"id\":" << R.ClientId;
  O << ",\"analyzer\":\"" << jsonEscape(R.Analyzer) << '"';
  O << ",\"domain\":\"" << jsonEscape(R.Domain) << '"';
  O << ",\"sourceLen\":" << R.SourceLen;
  O << ",\"sourceDigest\":\"" << hexDigest(R.SourceDigest) << '"';
  O << ",\"outcome\":\"" << jsonEscape(R.Outcome) << '"';
  if (!R.ErrorKind.empty())
    O << ",\"errorKind\":\"" << jsonEscape(R.ErrorKind) << '"';
  if (!R.DegradeReason.empty())
    O << ",\"degradeReason\":\"" << jsonEscape(R.DegradeReason) << '"';
  if (!R.CacheOutcome.empty())
    O << ",\"cache\":\"" << jsonEscape(R.CacheOutcome) << '"';
  O << ",\"goals\":" << R.Goals;
  O << ",\"replayHits\":" << R.ReplayHits;
  O << ",\"replayMisses\":" << R.ReplayMisses;
  keyUs(O, "queueUs", R.QueueUs);
  keyUs(O, "parseUs", R.ParseUs);
  keyUs(O, "cpsUs", R.CpsUs);
  keyUs(O, "analyzeUs", R.AnalyzeUs);
  keyUs(O, "totalUs", R.TotalUs);
  O << ",\"worker\":" << R.Worker;
  if (!R.SlowTracePath.empty())
    O << ",\"slowTrace\":\"" << jsonEscape(R.SlowTracePath) << '"';
  O << '}';
  return O.str();
}

RequestLog::RequestLog(std::string Path, uint64_t RotateBytes)
    : Path(std::move(Path)), RotateBytes(RotateBytes) {
  Fd = ::open(this->Path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (Fd >= 0) {
    struct stat St;
    if (::fstat(Fd, &St) == 0)
      CurBytes = static_cast<uint64_t>(St.st_size);
  }
}

RequestLog::~RequestLog() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    ::close(Fd);
}

bool RequestLog::ok() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fd >= 0;
}

void RequestLog::rotateLocked() {
  // FILE -> FILE.1, replacing the previous generation: at most ~2x the
  // cap lives on disk, and the freshest records are always in FILE.
  ::close(Fd);
  Fd = -1;
  std::string Old = Path + ".1";
  if (::rename(Path.c_str(), Old.c_str()) != 0)
    ::unlink(Path.c_str()); // second-best: keep appending to a fresh file
  Fd = ::open(Path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  CurBytes = 0;
  ++Rotations;
}

void RequestLog::append(const RequestRecord &R) {
  std::string Line = renderRequestRecord(R);
  Line.push_back('\n');

  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0) {
    ++Failures;
    return;
  }
  if (RotateBytes && CurBytes && CurBytes + Line.size() > RotateBytes)
    rotateLocked();
  if (Fd < 0) {
    ++Failures;
    return;
  }
  // One write(2) per record: records from concurrent workers interleave
  // by whole lines, never by bytes (the mutex), and a crash mid-append
  // tears at most the final line — every earlier record stays readable.
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      ++Failures;
      return;
    }
    Off += static_cast<size_t>(N);
  }
  CurBytes += Line.size();
  ++Written;
}

uint64_t RequestLog::written() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Written;
}

uint64_t RequestLog::failures() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Failures;
}

uint64_t RequestLog::rotations() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Rotations;
}
