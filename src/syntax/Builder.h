//===- syntax/Builder.h - Convenience term constructors ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction helpers for language-A terms, used by the
/// A-normalizer, the program generator, tests, and the theorem-witness
/// factory. All nodes go into the Context's arena.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_BUILDER_H
#define CPSFLOW_SYNTAX_BUILDER_H

#include "syntax/Ast.h"

#include <string_view>

namespace cpsflow {
namespace syntax {

/// Builds language-A values and terms in a Context.
class Builder {
public:
  explicit Builder(Context &Ctx) : Ctx(Ctx) {}

  // Values ------------------------------------------------------------------

  const NumValue *num(int64_t N, SourceLoc Loc = SourceLoc()) {
    return Ctx.create<NumValue>(N, Loc);
  }

  const VarValue *var(Symbol Name, SourceLoc Loc = SourceLoc()) {
    return Ctx.create<VarValue>(Name, Loc);
  }

  const VarValue *var(std::string_view Name, SourceLoc Loc = SourceLoc()) {
    return var(Ctx.intern(Name), Loc);
  }

  const PrimValue *add1(SourceLoc Loc = SourceLoc()) {
    return Ctx.create<PrimValue>(PrimOp::Add1, Loc);
  }

  const PrimValue *sub1(SourceLoc Loc = SourceLoc()) {
    return Ctx.create<PrimValue>(PrimOp::Sub1, Loc);
  }

  const LamValue *lam(Symbol Param, const Term *Body,
                      SourceLoc Loc = SourceLoc()) {
    return Ctx.create<LamValue>(Param, Body, Loc);
  }

  const LamValue *lam(std::string_view Param, const Term *Body,
                      SourceLoc Loc = SourceLoc()) {
    return lam(Ctx.intern(Param), Body, Loc);
  }

  // Terms -------------------------------------------------------------------

  const ValueTerm *val(const Value *V, SourceLoc Loc = SourceLoc()) {
    return Ctx.create<ValueTerm>(V, Loc);
  }

  /// A numeral in term position.
  const ValueTerm *numTerm(int64_t N, SourceLoc Loc = SourceLoc()) {
    return val(num(N, Loc), Loc);
  }

  /// A variable in term position.
  const ValueTerm *varTerm(Symbol Name, SourceLoc Loc = SourceLoc()) {
    return val(var(Name, Loc), Loc);
  }

  const ValueTerm *varTerm(std::string_view Name,
                           SourceLoc Loc = SourceLoc()) {
    return varTerm(Ctx.intern(Name), Loc);
  }

  const AppTerm *app(const Term *Fun, const Term *Arg,
                     SourceLoc Loc = SourceLoc()) {
    return Ctx.create<AppTerm>(Fun, Arg, Loc);
  }

  /// Application of two syntactic values, the only application shape legal
  /// in A-normal form.
  const AppTerm *appVV(const Value *Fun, const Value *Arg,
                       SourceLoc Loc = SourceLoc()) {
    return app(val(Fun, Loc), val(Arg, Loc), Loc);
  }

  const LetTerm *let(Symbol Var, const Term *Bound, const Term *Body,
                     SourceLoc Loc = SourceLoc()) {
    return Ctx.create<LetTerm>(Var, Bound, Body, Loc);
  }

  const LetTerm *let(std::string_view Var, const Term *Bound,
                     const Term *Body, SourceLoc Loc = SourceLoc()) {
    return let(Ctx.intern(Var), Bound, Body, Loc);
  }

  const If0Term *if0(const Term *Cond, const Term *Then, const Term *Else,
                     SourceLoc Loc = SourceLoc()) {
    return Ctx.create<If0Term>(Cond, Then, Else, Loc);
  }

  const LoopTerm *loop(SourceLoc Loc = SourceLoc()) {
    return Ctx.create<LoopTerm>(Loc);
  }

  /// `(let (x (add1^Count v)) body)` chain: applies add1 to \p Seed
  /// \p Count times, binding intermediates to fresh names, and finally
  /// binds the sum to \p Out before \p Body. Used for the paper's
  /// `(+ a 3)` abbreviations in the Theorem 5.2 witnesses.
  const Term *plusConst(Symbol Out, const Value *Seed, int64_t Count,
                        const Term *Body) {
    if (Count == 0)
      return let(Out, val(Seed), Body);
    Symbol Tmp = Count == 1 ? Out : Ctx.fresh("t");
    const Term *Rest =
        Count == 1 ? Body : plusConstFrom(Out, Tmp, Count - 1, Body);
    return let(Tmp, appVV(add1(), Seed), Rest);
  }

private:
  const Term *plusConstFrom(Symbol Out, Symbol From, int64_t Count,
                            const Term *Body) {
    assert(Count >= 1 && "nothing left to add");
    Symbol Tmp = Count == 1 ? Out : Ctx.fresh("t");
    const Term *Rest =
        Count == 1 ? Body : plusConstFrom(Out, Tmp, Count - 1, Body);
    return let(Tmp, appVV(add1(), var(From)), Rest);
  }

  Context &Ctx;
};

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_BUILDER_H
