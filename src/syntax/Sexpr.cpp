//===- syntax/Sexpr.cpp - S-expression reader -------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Sexpr.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

/// Hand-rolled recursive-descent tokenizer/parser with location tracking.
class Reader {
public:
  explicit Reader(std::string_view Source) : Source(Source) {}

  Result<Sexpr> readOne() {
    skipTrivia();
    if (atEnd())
      return Error("expected an s-expression, found end of input", here());
    Result<Sexpr> E = readExpr();
    if (!E)
      return E;
    skipTrivia();
    if (!atEnd())
      return Error("trailing input after s-expression", here());
    return E;
  }

  Result<std::vector<Sexpr>> readMany() {
    std::vector<Sexpr> Out;
    skipTrivia();
    while (!atEnd()) {
      Result<Sexpr> E = readExpr();
      if (!E)
        return E.error();
      Out.push_back(E.take());
      skipTrivia();
    }
    return Out;
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return Source[Pos]; }

  SourceLoc here() const { return SourceLoc{Line, Column}; }

  void advance() {
    if (Source[Pos] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++Pos;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      break;
    }
  }

  static bool isDelimiter(char C) {
    return std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
           C == ')' || C == ';';
  }

  Result<Sexpr> readExpr() {
    SourceLoc Loc = here();
    char C = peek();
    if (C == ')')
      return Error("unmatched ')'", Loc);
    if (C == '(')
      return readList(Loc);
    return readAtom(Loc);
  }

  Result<Sexpr> readList(SourceLoc Loc) {
    // Recursive descent: bound the nesting so hostile inputs fail with a
    // diagnostic instead of exhausting the stack.
    if (Depth >= MaxDepth)
      return Error("expression nesting exceeds the supported depth", Loc);
    ++Depth;
    advance(); // consume '('
    Sexpr List;
    List.NodeKind = Sexpr::Kind::List;
    List.Loc = Loc;
    while (true) {
      skipTrivia();
      if (atEnd())
        return Error("unterminated list (missing ')')", Loc);
      if (peek() == ')') {
        advance();
        --Depth;
        return List;
      }
      Result<Sexpr> Child = readExpr();
      if (!Child)
        return Child;
      List.Elements.push_back(Child.take());
    }
  }

  Result<Sexpr> readAtom(SourceLoc Loc) {
    size_t Start = Pos;
    while (!atEnd() && !isDelimiter(peek()))
      advance();
    std::string_view Text = Source.substr(Start, Pos - Start);
    assert(!Text.empty() && "atom with no characters");

    // A token is a number iff it consists entirely of digits, with an
    // optional leading sign followed by at least one digit.
    bool Numeric = true;
    size_t DigitsFrom = (Text[0] == '-' || Text[0] == '+') ? 1 : 0;
    if (DigitsFrom == Text.size())
      Numeric = false;
    for (size_t I = DigitsFrom; I < Text.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Text[I])))
        Numeric = false;

    Sexpr Atom;
    Atom.Loc = Loc;
    if (Numeric) {
      Atom.NodeKind = Sexpr::Kind::Number;
      errno = 0;
      Atom.Number = std::strtoll(std::string(Text).c_str(), nullptr, 10);
      if (errno == ERANGE)
        return Error("numeral out of range", Loc);
    } else {
      Atom.NodeKind = Sexpr::Kind::Symbol;
      Atom.Text = std::string(Text);
    }
    return Atom;
  }

  static constexpr uint32_t MaxDepth = 4000;

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint32_t Depth = 0;
};

void printTo(const Sexpr &E, std::ostringstream &Out) {
  switch (E.NodeKind) {
  case Sexpr::Kind::Number:
    Out << E.Number;
    return;
  case Sexpr::Kind::Symbol:
    Out << E.Text;
    return;
  case Sexpr::Kind::List:
    Out << '(';
    for (size_t I = 0; I < E.Elements.size(); ++I) {
      if (I != 0)
        Out << ' ';
      printTo(E.Elements[I], Out);
    }
    Out << ')';
    return;
  }
}

} // namespace

std::string Sexpr::str() const {
  std::ostringstream Out;
  printTo(*this, Out);
  return Out.str();
}

Result<Sexpr> cpsflow::syntax::parseSexpr(std::string_view Source) {
  return Reader(Source).readOne();
}

Result<std::vector<Sexpr>>
cpsflow::syntax::parseSexprList(std::string_view Source) {
  return Reader(Source).readMany();
}
