//===- tests/DupAnalyzerTests.cpp - Section 6.3 analyzer --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-duplication direct analyzer: with budget 0 it coincides
/// with Figure 4; with enough budget it reproduces the CPS analyses'
/// precision on the Theorem 5.2 witnesses — the Section 6.3 claim that "a
/// direct analysis that relies on some amount of duplication would be as
/// satisfactory as a CPS analysis" — at a bounded cost.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using CD = domain::ConstantDomain;

namespace {

TEST(DupAnalyzer, BudgetZeroEqualsFigure4) {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto Fig4 = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto Dup0 =
        DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 0).run();
    EXPECT_TRUE(Fig4.Answer == Dup0.Answer) << W.Name;
  }
}

TEST(DupAnalyzer, RecoversTheorem52aPrecision) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto Dup = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 1).run();
  // With one level of duplication the direct analysis finds a2 = 3, like
  // the CPS analyses and unlike plain Figure 4.
  EXPECT_EQ(CD::str(Dup.valueOf(Ctx.intern("a2")).Num), "3");
}

TEST(DupAnalyzer, RecoversTheorem52bPrecision) {
  Context Ctx;
  Witness W = theorem52b(Ctx);
  auto Dup = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 1).run();
  EXPECT_EQ(CD::str(Dup.valueOf(Ctx.intern("a2")).Num), "5");
}

TEST(DupAnalyzer, NeverConfusesReturnsEitherWay) {
  // On the Theorem 5.1 witness the dup analyzer (like any direct
  // analysis) keeps a1 = 1 regardless of budget.
  Context Ctx;
  Witness W = theorem51(Ctx);
  for (uint32_t Budget : {0u, 1u, 3u}) {
    auto Dup =
        DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Budget).run();
    EXPECT_EQ(CD::str(Dup.valueOf(Ctx.intern("a1")).Num), "1") << Budget;
  }
}

TEST(DupAnalyzer, PrecisionIsMonotoneInBudget) {
  Context Ctx;
  Witness W = gen::callMergeChain(Ctx, 3);
  auto Prev =
      DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 0).run();
  for (uint32_t Budget = 1; Budget <= 4; ++Budget) {
    auto Cur =
        DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Budget).run();
    std::vector<Symbol> Vars = W.InterestingVars;
    Comparison C = compareDirectWorld<CD>(Ctx, Cur, Prev, Vars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << "budget " << Budget << ": " << str(C.Overall);
    Prev = std::move(Cur);
  }
}

TEST(DupAnalyzer, MatchesSemanticPrecisionOnCallMergeChain) {
  Context Ctx;
  Witness W = gen::callMergeChain(Ctx, 3);
  auto Sem =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  // The chain has three two-callee call sites; one duplication credit is
  // spent per site, so budget 3 matches the semantic precision.
  auto Dup = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 3).run();
  // Every probe variable reaches the semantic answer 5.
  for (Symbol B : W.InterestingVars) {
    EXPECT_EQ(CD::str(Sem.valueOf(B).Num), "5");
    EXPECT_EQ(CD::str(Dup.valueOf(B).Num), "5");
  }
}

TEST(DupAnalyzer, CostIsBoundedByBudgetNotProgramSize) {
  Context Ctx;
  // On a chain of 12 unknown conditionals, the semantic analyzer pays
  // 2^12 paths while the dup analyzer with budget 2 stays close to the
  // direct analyzer's linear cost.
  Witness W = gen::conditionalChain(Ctx, 12);
  auto Sem =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto Dup2 = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 2).run();
  EXPECT_LT(Dup2.Stats.Goals * 20, Sem.Stats.Goals);
}

TEST(DupAnalyzer, SoundOnRecursivePrograms) {
  Context Ctx;
  Witness W = gen::counterLoop(Ctx, 3);
  auto R = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 2).run();
  EXPECT_FALSE(R.Stats.BudgetExhausted);
  // The concrete answer 0 must be covered.
  EXPECT_TRUE(CD::leq(CD::constant(0), R.Answer.Value.Num));
}

class DupSoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DupSoundnessSweep, AlwaysAtLeastAsPreciseAsFigure4) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 20; ++I) {
    const syntax::Term *T = Gen.generate();
    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    auto Fig4 = DirectAnalyzer<CD>(Ctx, T, Init).run();
    auto Dup = DupAnalyzer<CD>(Ctx, T, Init, 2).run();
    if (Fig4.Stats.Cuts || Dup.Stats.Cuts)
      continue; // cut placement differs; only cut-free runs compare cleanly
    std::vector<Symbol> Vars = syntax::collectVariables(T);
    Comparison C = compareDirectWorld<CD>(Ctx, Dup, Fig4, Vars);
    EXPECT_TRUE(C.Overall == PrecisionOrder::Equal ||
                C.Overall == PrecisionOrder::LeftMorePrecise)
        << syntax::print(Ctx, T) << "\n " << str(C.Overall);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DupSoundnessSweep,
                         ::testing::Values(61, 62, 63));

} // namespace
