//===- serve/Protocol.cpp - Serve wire protocol -----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "analysis/PushdownAnalyzer.h"
#include "support/Json.h"
#include "support/JsonParse.h"

#include <cmath>

using namespace cpsflow;
using namespace cpsflow::serve;

const char *cpsflow::serve::str(ServeErrorKind K) {
  switch (K) {
  case ServeErrorKind::Parse:
    return "parse";
  case ServeErrorKind::Cps:
    return "cps";
  case ServeErrorKind::Deadline:
    return "deadline";
  case ServeErrorKind::Memory:
    return "memory";
  case ServeErrorKind::Internal:
    return "internal";
  case ServeErrorKind::Shed:
    return "shed";
  case ServeErrorKind::Protocol:
    return "protocol";
  }
  return "internal";
}

namespace {

bool knownDomain(const std::string &D) {
  return D == "constant" || D == "unit" || D == "sign" || D == "parity" ||
         D == "interval";
}

/// A non-negative integral number, or an error. Guards against "maxGoals":
/// 1.5 or -3 silently truncating.
Result<uint64_t> asCount(const JsonValue &V, const char *Field) {
  if (!V.isNumber())
    return Error(std::string("field '") + Field + "' must be a number");
  double N = V.asNumber();
  if (N < 0 || N != std::floor(N) || N > 9e15)
    return Error(std::string("field '") + Field +
                 "' must be a non-negative integer");
  return static_cast<uint64_t>(N);
}

} // namespace

Result<ServeRequest> cpsflow::serve::parseServeRequest(const std::string &Line) {
  if (Line.size() > MaxRequestBytes)
    return Error("request line exceeds " + std::to_string(MaxRequestBytes) +
                 " bytes");
  JsonParseOptions Opts;
  Opts.MaxDepth = MaxRequestJsonDepth;
  Result<JsonValue> Doc = parseJson(Line, Opts);
  if (!Doc)
    return Doc.error();
  if (!Doc->isObject())
    return Error("request must be a JSON object");

  ServeRequest Req;
  bool SawOp = false;
  bool SawFormat = false;
  for (const auto &[Key, Val] : Doc->members()) {
    if (Key == "op") {
      if (!Val.isString())
        return Error("field 'op' must be a string");
      const std::string &Op = Val.asString();
      if (Op == "analyze")
        Req.Kind = ServeRequest::Op::Analyze;
      else if (Op == "health")
        Req.Kind = ServeRequest::Op::Health;
      else if (Op == "stats")
        Req.Kind = ServeRequest::Op::Stats;
      else if (Op == "shutdown")
        Req.Kind = ServeRequest::Op::Shutdown;
      else if (Op == "metrics")
        Req.Kind = ServeRequest::Op::Metrics;
      else if (Op == "dump")
        Req.Kind = ServeRequest::Op::Dump;
      else
        return Error("unknown op '" + Op + "'");
      SawOp = true;
    } else if (Key == "id") {
      Result<uint64_t> N = asCount(Val, "id");
      if (!N)
        return N.error();
      Req.Id = *N;
      Req.HasId = true;
    } else if (Key == "program") {
      if (!Val.isString())
        return Error("field 'program' must be a string");
      Req.Program = Val.asString();
    } else if (Key == "analyzer") {
      // Canonicalize through the shared analyzer-name registry so aliases
      // (pd, scps, ...) resolve here exactly as in the CLI — and so the
      // MemoStore, keyed on the canonical spelling, never splits one
      // analyzer's results across an alias and its canonical name.
      std::optional<std::string> Canon;
      if (Val.isString())
        Canon = analysis::canonicalAnalyzerName(Val.asString());
      if (!Canon)
        return Error(std::string("field 'analyzer' must be one of ") +
                     analysis::knownAnalyzerNames() + " (aliases: " +
                     analysis::knownAnalyzerAliases() + ")");
      Req.Analyzer = *Canon;
    } else if (Key == "domain") {
      if (!Val.isString() || !knownDomain(Val.asString()))
        return Error("field 'domain' must be one of "
                     "constant|unit|sign|parity|interval");
      Req.Domain = Val.asString();
    } else if (Key == "maxGoals") {
      Result<uint64_t> N = asCount(Val, "maxGoals");
      if (!N)
        return N.error();
      Req.MaxGoals = *N;
    } else if (Key == "loopUnroll") {
      Result<uint64_t> N = asCount(Val, "loopUnroll");
      if (!N)
        return N.error();
      if (*N > 1u << 20)
        return Error("field 'loopUnroll' is unreasonably large");
      Req.LoopUnroll = static_cast<uint32_t>(*N);
    } else if (Key == "dupBudget") {
      Result<uint64_t> N = asCount(Val, "dupBudget");
      if (!N)
        return N.error();
      Req.DupBudget = *N;
    } else if (Key == "deadlineMs") {
      Result<uint64_t> N = asCount(Val, "deadlineMs");
      if (!N)
        return N.error();
      Req.DeadlineMs = static_cast<double>(*N);
    } else if (Key == "summaries") {
      if (!Val.isBool())
        return Error("field 'summaries' must be a boolean");
      Req.UseSummaries = Val.asBool();
    } else if (Key == "noCache") {
      if (!Val.isBool())
        return Error("field 'noCache' must be a boolean");
      Req.NoCache = Val.asBool();
    } else if (Key == "incremental") {
      if (!Val.isBool())
        return Error("field 'incremental' must be a boolean");
      Req.Incremental = Val.asBool();
    } else if (Key == "format") {
      if (!Val.isString() ||
          (Val.asString() != "json" && Val.asString() != "prometheus"))
        return Error("field 'format' must be \"json\" or \"prometheus\"");
      Req.Format = Val.asString();
      SawFormat = true;
    } else {
      return Error("unknown field '" + Key + "'");
    }
  }

  if (!SawOp)
    return Error("request needs an 'op' field");
  if (Req.Kind == ServeRequest::Op::Analyze && Req.Program.empty())
    return Error("analyze needs a non-empty 'program' field");
  if (SawFormat && Req.Kind != ServeRequest::Op::Metrics)
    return Error("field 'format' only applies to op 'metrics'");
  return Req;
}

std::string cpsflow::serve::errorResponse(const ServeRequest *Req,
                                          ServeErrorKind Kind,
                                          const std::string &Message) {
  JsonWriter W;
  W.beginObject();
  W.key("ok");
  W.value(false);
  if (Req && Req->HasId) {
    W.key("id");
    W.value(Req->Id);
  }
  W.key("error");
  W.beginObject();
  W.key("kind");
  W.value(str(Kind));
  W.key("message");
  W.value(Message);
  W.endObject();
  W.endObject();
  return W.str();
}

std::string cpsflow::serve::analyzeResponse(const ServeRequest &Req,
                                            const std::string &PayloadJson,
                                            bool Cached) {
  std::string Out = "{\"ok\":true";
  if (Req.HasId) {
    Out += ",\"id\":";
    Out += std::to_string(Req.Id);
  }
  Out += ",\"cached\":";
  Out += Cached ? "true" : "false";
  Out += ",\"result\":";
  Out += PayloadJson;
  Out += "}";
  return Out;
}
