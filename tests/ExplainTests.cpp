//===- tests/ExplainTests.cpp - Golden derivation chains --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests for `cpsflow explain`'s loss attribution on the Section 5
/// witness programs, under every numeric domain:
///
///  * Theorem 5.1 — whenever the syntactic-CPS leg is less precise than
///    the direct leg on a1, the first loss edge on a1's chain must be the
///    call-merge (the Section 6.1 false return). Domains too coarse to
///    tell 1 from 2 (unit; sign, where both are "+") lose nothing — there
///    the chain must be loss-free.
///  * Theorem 5.2a — the direct leg's a2 derivation must lead with the
///    if0 both-arms join, under *every* domain (both arms stay feasible
///    because z is unconstrained, regardless of how coarse the domain is).
///  * Theorem 5.2b — the direct leg's a1 derivation must lead with the
///    multi-callee application join, under every domain.
///
/// Plus format goldens: parsed sources carry real line:column locations
/// into the chain, and the DOT/JSON graph exports contain the documented
/// landmarks (docs/EXPLAIN.md).
///
//===----------------------------------------------------------------------===//

#include "analysis/DirectAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "anf/Anf.h"
#include "clients/Explain.h"
#include "cps/Transform.h"
#include "domain/NumDomain.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::analysis;

namespace {

namespace fs = std::filesystem;

/// Theorem 5.1: a1's loss on the syntactic leg is the call-merge —
/// exactly when there is a loss at all under domain \p D.
template <typename D> void checkTheorem51(const char *DomainName) {
  SCOPED_TRACE(DomainName);
  Context Ctx;
  Witness W = theorem51(Ctx);

  AnalyzerOptions Plain;
  DirectAnalyzer<D> DA(Ctx, W.Anf, directBindings<D>(W), Plain);
  auto DR = DA.run();

  domain::Provenance Prov;
  AnalyzerOptions Opts;
  Opts.Prov = &Prov;
  SyntacticCpsAnalyzer<D> SA(Ctx, W.Cps, cpsBindings<D>(W), Opts);
  auto SR = SA.run();

  Symbol A1 = Ctx.intern("a1");
  auto Slot = SR.Vars->tryOf(A1);
  ASSERT_TRUE(Slot.has_value());
  domain::ProvId Loss =
      clients::firstLossEdge(Prov, SA.interner(), *Slot, Prov.finalStore());

  bool Lost = D::str(DR.valueOf(A1).Num) != D::str(SR.valueOf(A1).Num);
  if (Lost) {
    // The paper's narrative: f's two returns are confused, so a1 absorbs
    // the second call's result through the continuation-set union.
    ASSERT_NE(Loss, domain::NoProv);
    EXPECT_EQ(Prov.edge(Loss).Kind, domain::EdgeKind::CallMerge);
  } else {
    // Domains that abstract 1 and 2 to the same element (unit, sign)
    // make every merge a copy-on-write no-op: nothing to attribute.
    EXPECT_EQ(Loss, domain::NoProv);
  }

  // Asking for summaries alongside provenance must not perturb the
  // explanation: provenance needs the full derivation, so the analyzer
  // quietly runs unsummarized, and the first-loss attribution is
  // identical edge for edge.
  domain::Provenance SumProv;
  AnalyzerOptions SumOpts;
  SumOpts.Prov = &SumProv;
  SumOpts.UseSummaries = true;
  SyntacticCpsAnalyzer<D> SSA(Ctx, W.Cps, cpsBindings<D>(W), SumOpts);
  auto SSR = SSA.run();
  EXPECT_TRUE(SSR.Answer == SR.Answer);
  EXPECT_EQ(SSR.Stats.SummaryHits, 0u);
  domain::ProvId SumLoss = clients::firstLossEdge(
      SumProv, SSA.interner(), *Slot, SumProv.finalStore());
  if (Lost) {
    ASSERT_NE(SumLoss, domain::NoProv);
    EXPECT_EQ(SumProv.edge(SumLoss).Kind, domain::EdgeKind::CallMerge);
    EXPECT_EQ(SumProv.edge(SumLoss).NodeId, Prov.edge(Loss).NodeId);
  } else {
    EXPECT_EQ(SumLoss, domain::NoProv);
  }
}

/// Theorem 5.2a: the direct leg's a2 loses through the if0 both-arms
/// join, under every domain (z is top, so both arms stay feasible).
template <typename D> void checkTheorem52a(const char *DomainName) {
  SCOPED_TRACE(DomainName);
  Context Ctx;
  Witness W = theorem52a(Ctx);
  domain::Provenance Prov;
  AnalyzerOptions Opts;
  Opts.Prov = &Prov;
  DirectAnalyzer<D> A(Ctx, W.Anf, directBindings<D>(W), Opts);
  auto R = A.run();
  auto Slot = R.Vars->tryOf(Ctx.intern("a2"));
  ASSERT_TRUE(Slot.has_value());
  domain::ProvId Loss =
      clients::firstLossEdge(Prov, A.interner(), *Slot, Prov.finalStore());
  ASSERT_NE(Loss, domain::NoProv);
  EXPECT_EQ(Prov.edge(Loss).Kind, domain::EdgeKind::Join);
}

/// Theorem 5.2b: the direct leg's a1 loses through the two-callee
/// application join, under every domain.
template <typename D> void checkTheorem52b(const char *DomainName) {
  SCOPED_TRACE(DomainName);
  Context Ctx;
  Witness W = theorem52b(Ctx);
  domain::Provenance Prov;
  AnalyzerOptions Opts;
  Opts.Prov = &Prov;
  DirectAnalyzer<D> A(Ctx, W.Anf, directBindings<D>(W), Opts);
  auto R = A.run();
  auto Slot = R.Vars->tryOf(Ctx.intern("a1"));
  ASSERT_TRUE(Slot.has_value());
  domain::ProvId Loss =
      clients::firstLossEdge(Prov, A.interner(), *Slot, Prov.finalStore());
  ASSERT_NE(Loss, domain::NoProv);
  EXPECT_EQ(Prov.edge(Loss).Kind, domain::EdgeKind::Join);
}

TEST(Explain, Theorem51AttributesLossToCallMergeUnderEveryDomain) {
  checkTheorem51<domain::ConstantDomain>("constant");
  checkTheorem51<domain::UnitDomain>("unit");
  checkTheorem51<domain::SignDomain>("sign");
  checkTheorem51<domain::ParityDomain>("parity");
  checkTheorem51<domain::IntervalDomain>("interval");
}

/// Theorem 5.1 resolved: the pushdown leg's a1 chain is loss-free under
/// \p D — call-return matching never creates the call-merge edge the
/// syntactic chain leads with.
template <typename D> void checkTheorem51Pushdown(const char *DomainName) {
  SCOPED_TRACE(DomainName);
  Context Ctx;
  Witness W = theorem51(Ctx);

  domain::Provenance Prov;
  AnalyzerOptions Opts;
  Opts.Prov = &Prov;
  PushdownAnalyzer<D> PA(Ctx, W.Anf, directBindings<D>(W), Opts);
  auto PR = PA.run();

  // The pushdown answer on a1 is the exact direct answer.
  AnalyzerOptions Plain;
  auto DR = DirectAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W), Plain).run();
  Symbol A1 = Ctx.intern("a1");
  EXPECT_EQ(D::str(PR.valueOf(A1).Num), D::str(DR.valueOf(A1).Num));

  // And its derivation chain carries no loss edge of any kind — no
  // call-merge, no join, no cut.
  auto Slot = PR.Vars->tryOf(A1);
  ASSERT_TRUE(Slot.has_value());
  domain::ProvId Loss =
      clients::firstLossEdge(Prov, PA.interner(), *Slot, Prov.finalStore());
  EXPECT_EQ(Loss, domain::NoProv);
}

TEST(Explain, Theorem51PushdownChainIsLossFreeUnderEveryDomain) {
  checkTheorem51Pushdown<domain::ConstantDomain>("constant");
  checkTheorem51Pushdown<domain::UnitDomain>("unit");
  checkTheorem51Pushdown<domain::SignDomain>("sign");
  checkTheorem51Pushdown<domain::ParityDomain>("parity");
  checkTheorem51Pushdown<domain::IntervalDomain>("interval");
}

TEST(Explain, Theorem52aAttributesDirectLossToJoinUnderEveryDomain) {
  checkTheorem52a<domain::ConstantDomain>("constant");
  checkTheorem52a<domain::UnitDomain>("unit");
  checkTheorem52a<domain::SignDomain>("sign");
  checkTheorem52a<domain::ParityDomain>("parity");
  checkTheorem52a<domain::IntervalDomain>("interval");
}

TEST(Explain, Theorem52bAttributesDirectLossToJoinUnderEveryDomain) {
  checkTheorem52b<domain::ConstantDomain>("constant");
  checkTheorem52b<domain::UnitDomain>("unit");
  checkTheorem52b<domain::SignDomain>("sign");
  checkTheorem52b<domain::ParityDomain>("parity");
  checkTheorem52b<domain::IntervalDomain>("interval");
}

using CD = domain::ConstantDomain;

/// Shared fixture bits for the format goldens: theorem51 from its parsed
/// source (real locations), syntactic leg with the recorder on.
struct ParsedT51 {
  Context Ctx;
  domain::Provenance Prov;
  std::optional<cps::CpsProgram> Cps;
  std::optional<SyntacticCpsAnalyzer<CD>> Analyzer;
  SyntacticResult<CD> R;

  void run() {
    fs::path Path =
        fs::path(CPSFLOW_SOURCE_DIR) / "examples/programs/theorem51.a";
    std::ifstream In(Path);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Result<const syntax::Term *> Raw =
        syntax::parseSugaredProgram(Ctx, Buf.str());
    ASSERT_TRUE(Raw.hasValue());
    const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    ASSERT_TRUE(P.hasValue());
    Cps.emplace(P.take());

    std::vector<CpsBinding<CD>> CInit;
    for (Symbol X : syntax::freeVars(T))
      CInit.push_back(
          {X, deltaE<CD>(domain::AbsVal<CD>::number(CD::top()), *Cps)});

    AnalyzerOptions Opts;
    Opts.Prov = &Prov;
    Analyzer.emplace(Ctx, *Cps, CInit, Opts);
    R = Analyzer->run();
  }
};

TEST(Explain, ParsedSourceChainCarriesRealLocations) {
  ParsedT51 F;
  F.run();
  if (HasFatalFailure())
    return;

  auto Slot = F.R.Vars->tryOf(F.Ctx.intern("a1"));
  ASSERT_TRUE(Slot.has_value());
  domain::ProvId Loss = clients::firstLossEdge(
      F.Prov, F.Analyzer->interner(), *Slot, F.Prov.finalStore());
  ASSERT_NE(Loss, domain::NoProv);
  EXPECT_EQ(F.Prov.edge(Loss).Kind, domain::EdgeKind::CallMerge);
  // Parsed programs carry line:column through ANF and the CPS transform
  // into the loss report — the whole point of `explain` on real sources.
  EXPECT_TRUE(F.Prov.edge(Loss).Loc.isValid());

  std::vector<std::string> Lines =
      clients::explainSlot(F.Prov, F.Analyzer->interner(), *F.R.Vars, F.Ctx,
                           *Slot, F.Prov.finalStore());
  ASSERT_FALSE(Lines.empty());
  bool FoundAttributed = false;
  for (const std::string &L : Lines)
    if (L.find("call-merge at ") != std::string::npos &&
        L.find("<unknown>") == std::string::npos)
      FoundAttributed = true;
  EXPECT_TRUE(FoundAttributed) << Lines.front();
}

TEST(Explain, GraphExportsContainDocumentedLandmarks) {
  ParsedT51 F;
  F.run();
  if (HasFatalFailure())
    return;

  std::string Dot = clients::provenanceDot(F.Prov, *F.R.Vars, F.Ctx);
  EXPECT_NE(Dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(Dot.find("call-merge"), std::string::npos);
  EXPECT_NE(Dot.find("rankdir=BT"), std::string::npos);

  std::string Json = clients::provenanceJson(F.Prov, *F.R.Vars, F.Ctx);
  EXPECT_NE(Json.find("\"schemaVersion\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"call-merge\""), std::string::npos);
  EXPECT_NE(Json.find("\"edges\":["), std::string::npos);
  EXPECT_NE(Json.find("\"finalStore\":"), std::string::npos);
}

} // namespace
