//===- analysis/DupAnalyzer.h - Bounded-duplication analyzer ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6.3 conclusion: "a practical analysis ... should
/// limit the amount of duplication", and "a direct data flow analysis that
/// relies on some amount of duplication would be as satisfactory as a CPS
/// analysis". This analyzer realizes that proposal: it is the Figure 4
/// direct analyzer extended with a *duplication budget* d.
///
/// At a conditional with an unknown test (or an application with several
/// callees), while budget remains the analyzer continues the let-body —
/// the textual continuation — separately per path with budget d-1, joining
/// only the final answers, exactly like the semantic-CPS analyzer but
/// without any CPS machinery. When the budget is exhausted it falls back
/// to Figure 4's merge.
///
///  * d = 0 is exactly the Figure 4 analysis.
///  * d >= nesting depth of the interesting merges reproduces the
///    semantic-CPS precision on the Theorem 5.2 witnesses.
///  * The work factor is bounded by (max paths)^d instead of
///    (max paths)^(program size).
///
/// Stores are hash-consed (domain/StoreInterner.h); goal keys are
/// (node pointer, credit, StoreId), built and compared in O(1).
///
//======---------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_DUPANALYZER_H
#define CPSFLOW_ANALYSIS_DUPANALYZER_H

#include "analysis/Cfg.h"
#include "analysis/Common.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/Universe.h"
#include "anf/Anf.h"
#include "domain/AbsStore.h"
#include "domain/AbsValue.h"
#include "domain/StoreInterner.h"
#include "syntax/Ast.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cpsflow {
namespace analysis {

/// The bounded-duplication analyzer. Single-use.
template <typename D> class DupAnalyzer {
public:
  using Val = domain::AbsVal<D>;
  using StoreT = domain::AbsStore<Val>;
  using Answer = AnswerOf<Val>;

  /// \p Budget is the duplication depth d described above.
  DupAnalyzer(const Context &Ctx, const syntax::Term *Program,
              std::vector<DirectBinding<D>> Initial = {},
              uint64_t Budget = 2, AnalyzerOptions Opts = AnalyzerOptions())
      : Ctx(Ctx), Program(Program), Initial(std::move(Initial)),
        Budget(Budget), Opts(Opts) {
    assert(anf::isAnfQuick(Program) && "requires A-normal form");

    std::vector<const syntax::LamValue *> ExtraLams;
    std::vector<Symbol> ExtraVars;
    for (const DirectBinding<D> &B : this->Initial) {
      ExtraVars.push_back(B.Var);
      for (const domain::CloRef &C : B.Value.Clos)
        if (C.Tag == domain::CloRef::K::Lam)
          ExtraLams.push_back(C.Lam);
    }
    Vars = std::make_shared<domain::VarIndex>(
        directVariableUniverse(Program, ExtraLams, ExtraVars));
    CloTop = directClosureUniverse(Program, ExtraLams);
    Interner.attachMetrics(this->Opts.Metrics);
    Interner.reset(Vars->size());
  }

  DirectResult<D> run() {
    domain::StoreId Sigma0 = Interner.bottom();
    for (const DirectBinding<D> &B : Initial) {
      domain::StoreId Next = Interner.joinAt(Sigma0, Vars->of(B.Var), B.Value);
      if (Opts.Prov)
        Opts.Prov->init(Vars->of(B.Var), Next, Sigma0);
      Sigma0 = Next;
    }

    EvalOut Out = evalTerm(Program, Sigma0, Budget, 0);
    finalizeRunStats(Stats, Interner, Memo.size(), Opts);
    if (Opts.Prov)
      Opts.Prov->noteFinal(Out.A ? Out.A->Store : Interner.bottom());

    DirectResult<D> R;
    R.Answer = Out.A ? Answer{std::move(Out.A->Value),
                              Interner.store(Out.A->Store)}
                     : Answer{Val::bot(), StoreT(Vars->size())};
    R.Stats = Stats;
    R.Cfg = std::move(Cfg);
    R.Vars = Vars;
    return R;
  }

  /// The run's hash-consing table (observability: distinct stores seen).
  const domain::StoreInterner<Val> &interner() const { return Interner; }

private:
  static constexpr uint32_t Unconstrained =
      std::numeric_limits<uint32_t>::max();

  using IAns = InternedAnswerOf<Val>;

  /// A disengaged answer means the goal is dead (join over zero paths);
  /// see DirectAnalyzer.
  struct EvalOut {
    std::optional<IAns> A;
    uint32_t MinDep;
  };

  struct Key {
    const void *Node;
    uint64_t Credit;
    domain::StoreId Store;

    friend bool operator==(const Key &A, const Key &B) {
      return A.Node == B.Node && A.Credit == B.Credit && A.Store == B.Store;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = hashPointer(K.Node);
      hashCombine(H, K.Credit);
      hashCombine(H, K.Store);
      return H;
    }
  };

  IAns cutAnswer(domain::StoreId Sigma) const {
    Val V;
    V.Num = D::top();
    V.Clos = CloTop;
    return IAns{std::move(V), Sigma};
  }

  Val phi(const syntax::Value *V, domain::StoreId Sigma) const {
    using namespace syntax;
    switch (V->kind()) {
    case ValueKind::VK_Num:
      return Val::number(D::constant(cast<NumValue>(V)->value()));
    case ValueKind::VK_Var:
      return Interner.get(Sigma, Vars->of(cast<VarValue>(V)->name()));
    case ValueKind::VK_Prim:
      return Val::closures(domain::CloSet::single(
          cast<PrimValue>(V)->op() == PrimOp::Add1 ? domain::CloRef::inc()
                                                   : domain::CloRef::dec()));
    case ValueKind::VK_Lam:
      return Val::closures(
          domain::CloSet::single(domain::CloRef::lam(cast<LamValue>(V))));
    }
    assert(false && "unknown value kind");
    return Val::bot();
  }

  EvalOut evalTerm(const syntax::Term *T, domain::StoreId Sigma,
                   uint64_t Credit, uint32_t Depth) {
    if (Stats.BudgetExhausted)
      return EvalOut{cutAnswer(Sigma), 0};
    ++Stats.Goals;
    CPSFLOW_FAULT_COUNTED(fault::Site::AnalyzerGoal, Stats.Goals);
    if (support::DegradeReason R =
            Gov.check(Stats.Goals, Depth, Interner.approxBytes());
        R != support::DegradeReason::None) {
      Stats.BudgetExhausted = true;
      Stats.Degraded = R;
      return EvalOut{cutAnswer(Sigma), 0};
    }
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, Depth);

    Key K{T, Credit, Sigma};
    observeGoal(Opts, Stats, Depth, Sigma,
                [&] { return Opts.UseMemo && Memo.count(K) != 0; });
    if (auto It = Memo.find(K); Opts.UseMemo && It != Memo.end()) {
      ++Stats.CacheHits;
      return EvalOut{It->second, Unconstrained};
    }
    // The cut key deliberately ignores the credit: recursion through the
    // same (term, store) at any credit level is the same loop.
    Key AKey{T, 0, Sigma};
    if (auto It = Active.find(AKey); It != Active.end()) {
      ++Stats.Cuts;
      return EvalOut{cutAnswer(Sigma), It->second};
    }

    Active.emplace(AKey, Depth);
    EvalOut Out = evalUncached(T, Sigma, Credit, Depth);
    Active.erase(AKey);
    if (Out.MinDep >= Depth && !Stats.BudgetExhausted) {
      if (Opts.UseMemo)
        Memo.emplace(K, Out.A);
      Out.MinDep = Unconstrained;
    }
    return Out;
  }

  /// Provenance of a value form: variables derive from the store fact
  /// they read; literals, lambdas, and primitives are leaves.
  domain::ProvId provOfValue(const syntax::Value *V,
                             domain::StoreId Sigma) const {
    if (const auto *Var = syntax::dyn_cast<syntax::VarValue>(V))
      return Opts.Prov->factOf(Vars->of(Var->name()), Sigma);
    return domain::NoProv;
  }

  EvalOut evalUncached(const syntax::Term *T, domain::StoreId Sigma,
                       uint64_t Credit, uint32_t Depth) {
    using namespace syntax;

    if (const auto *VT = dyn_cast<ValueTerm>(T))
      return EvalOut{IAns{phi(VT->value(), Sigma), Sigma}, Unconstrained};

    const auto *Let = cast<LetTerm>(T);
    const Term *Bound = Let->bound();
    uint32_t X = Vars->of(Let->var());

    switch (Bound->kind()) {
    case TermKind::TK_Value: {
      Val U = phi(cast<ValueTerm>(Bound)->value(), Sigma);
      domain::StoreId S = Interner.joinAt(Sigma, X, U);
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Sigma, Let->id(),
                          Let->loc(),
                          provOfValue(cast<ValueTerm>(Bound)->value(), Sigma));
      return evalTerm(Let->body(), S, Credit, Depth + 1);
    }

    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(Bound);
      Val Fun = phi(cast<ValueTerm>(App->fun())->value(), Sigma);
      Val Arg = phi(cast<ValueTerm>(App->arg())->value(), Sigma);

      domain::CloSet &Rec = Cfg.Callees[App];
      for (const domain::CloRef &C : Fun.Clos)
        Rec.insert(C);

      if (Fun.Clos.empty()) {
        ++Stats.DeadPaths;
        return EvalOut{std::nullopt, Unconstrained};
      }

      bool Duplicate = Credit > 0 && Fun.Clos.size() > 1;
      uint64_t SubCredit = Duplicate ? Credit - 1 : Credit;

      std::optional<IAns> Acc;
      uint32_t MinDep = Unconstrained;
      std::optional<IAns> BodyAcc; // used only when duplicating
      uint64_t Merged = 0;
      domain::ProvId ArgProv =
          Opts.Prov ? provOfValue(cast<ValueTerm>(App->arg())->value(), Sigma)
                    : domain::NoProv;
      for (const domain::CloRef &C : Fun.Clos) {
        std::optional<IAns> Ai;
        switch (C.Tag) {
        case domain::CloRef::K::Inc:
          Ai = IAns{Val::number(D::add1(Arg.Num)), Sigma};
          break;
        case domain::CloRef::K::Dec:
          Ai = IAns{Val::number(D::sub1(Arg.Num)), Sigma};
          break;
        case domain::CloRef::K::Lam: {
          domain::StoreId S =
              Interner.joinAt(Sigma, Vars->of(C.Lam->param()), Arg);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow,
                              Vars->of(C.Lam->param()), S, Sigma, App->id(),
                              App->loc(), ArgProv);
          EvalOut R = evalTerm(C.Lam->body(), S, SubCredit, Depth + 1);
          Ai = std::move(R.A);
          MinDep = std::min(MinDep, R.MinDep);
          break;
        }
        }
        if (!Ai)
          continue; // this callee path died
        ++Merged;
        if (Duplicate) {
          // Continue the let-body separately on this path.
          domain::StoreId S = Interner.joinAt(Ai->Store, X, Ai->Value);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Ai->Store,
                              App->id(), App->loc());
          EvalOut Body = evalTerm(Let->body(), S, SubCredit, Depth + 1);
          if (Body.A)
            BodyAcc = BodyAcc
                          ? (Opts.Prov
                                 ? joinAnswers(Interner, *BodyAcc, *Body.A,
                                               Opts.Prov,
                                               domain::EdgeKind::Join,
                                               App->id(), App->loc())
                                 : joinAnswers(Interner, *BodyAcc, *Body.A))
                          : std::move(*Body.A);
          MinDep = std::min(MinDep, Body.MinDep);
        } else {
          Acc = Acc ? (Opts.Prov
                           ? joinAnswers(Interner, *Acc, *Ai, Opts.Prov,
                                         domain::EdgeKind::Join, App->id(),
                                         App->loc())
                           : joinAnswers(Interner, *Acc, *Ai))
                    : std::move(*Ai);
        }
      }
      if (Merged > 1)
        Stats.Joins += Merged - 1; // multi-callee merge (either flavour)

      if (Duplicate)
        return EvalOut{std::move(BodyAcc), MinDep};
      if (!Acc)
        return EvalOut{std::nullopt, MinDep};

      domain::StoreId S = Interner.joinAt(Acc->Store, X, Acc->Value);
      if (Opts.Prov)
        Opts.Prov->assign(Merged > 1 ? domain::EdgeKind::Join
                                     : domain::EdgeKind::Flow,
                          X, S, Acc->Store, App->id(), App->loc());
      EvalOut Body = evalTerm(Let->body(), S, Credit, Depth + 1);
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(Bound);
      Val U0 = phi(cast<ValueTerm>(If->cond())->value(), Sigma);
      domain::ZeroTest Zt = D::isZero(U0.Num);

      bool ThenOnly = Zt == domain::ZeroTest::Zero && U0.Clos.empty();
      bool ElseOnly = Zt == domain::ZeroTest::NonZero ||
                      Zt == domain::ZeroTest::Bottom;

      BranchInfo &BI = Cfg.Branches[If];
      BI.ThenFeasible |= !ElseOnly;
      BI.ElseFeasible |= !ThenOnly;
      if (ThenOnly || ElseOnly)
        ++Stats.PrunedBranches;

      if (ThenOnly || ElseOnly) {
        const Term *Branch = ThenOnly ? If->thenBranch() : If->elseBranch();
        EvalOut Bi = evalTerm(Branch, Sigma, Credit, Depth + 1);
        if (!Bi.A)
          return EvalOut{std::nullopt, Bi.MinDep};
        domain::StoreId S = Interner.joinAt(Bi.A->Store, X, Bi.A->Value);
        if (Opts.Prov)
          Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Bi.A->Store,
                            If->id(), If->loc());
        EvalOut Body = evalTerm(Let->body(), S, Credit, Depth + 1);
        Body.MinDep = std::min(Body.MinDep, Bi.MinDep);
        return Body;
      }

      if (Credit > 0) {
        // Duplicate: each branch continues the body separately.
        ++Stats.Joins; // the final answers still get merged
        std::optional<IAns> Acc;
        uint32_t MinDep = Unconstrained;
        for (const Term *Branch : {If->thenBranch(), If->elseBranch()}) {
          EvalOut Bi = evalTerm(Branch, Sigma, Credit - 1, Depth + 1);
          MinDep = std::min(MinDep, Bi.MinDep);
          if (!Bi.A)
            continue;
          domain::StoreId S = Interner.joinAt(Bi.A->Store, X, Bi.A->Value);
          if (Opts.Prov)
            Opts.Prov->assign(domain::EdgeKind::Flow, X, S, Bi.A->Store,
                              If->id(), If->loc());
          EvalOut Body = evalTerm(Let->body(), S, Credit - 1, Depth + 1);
          if (Body.A)
            Acc = Acc ? (Opts.Prov
                             ? joinAnswers(Interner, *Acc, *Body.A,
                                           Opts.Prov, domain::EdgeKind::Join,
                                           If->id(), If->loc())
                             : joinAnswers(Interner, *Acc, *Body.A))
                      : std::move(*Body.A);
          MinDep = std::min(MinDep, Body.MinDep);
        }
        return EvalOut{std::move(Acc), MinDep};
      }

      // Out of budget: Figure 4's merge.
      EvalOut B1 = evalTerm(If->thenBranch(), Sigma, Credit, Depth + 1);
      EvalOut B2 = evalTerm(If->elseBranch(), Sigma, Credit, Depth + 1);
      uint32_t MinDep = std::min(B1.MinDep, B2.MinDep);
      std::optional<IAns> Joined;
      bool BothArms = B1.A && B2.A;
      if (BothArms) {
        ++Stats.Joins; // Figure 4's two-branch merge
        Joined = Opts.Prov
                     ? joinAnswers(Interner, *B1.A, *B2.A, Opts.Prov,
                                   domain::EdgeKind::Join, If->id(),
                                   If->loc())
                     : joinAnswers(Interner, *B1.A, *B2.A);
      } else if (B1.A)
        Joined = std::move(B1.A);
      else if (B2.A)
        Joined = std::move(B2.A);
      if (!Joined)
        return EvalOut{std::nullopt, MinDep};
      domain::StoreId S = Interner.joinAt(Joined->Store, X, Joined->Value);
      if (Opts.Prov)
        Opts.Prov->assign(BothArms ? domain::EdgeKind::Join
                                   : domain::EdgeKind::Flow,
                          X, S, Joined->Store, If->id(), If->loc());
      EvalOut Body = evalTerm(Let->body(), S, Credit, Depth + 1);
      Body.MinDep = std::min(Body.MinDep, MinDep);
      return Body;
    }

    case TermKind::TK_Loop: {
      domain::StoreId S =
          Interner.joinAt(Sigma, X, Val::number(D::naturals()));
      if (Opts.Prov)
        Opts.Prov->assign(domain::EdgeKind::Widen, X, S, Sigma, Let->id(),
                          Let->loc());
      return evalTerm(Let->body(), S, Credit, Depth + 1);
    }

    case TermKind::TK_Let:
      assert(false && "not ANF: let-bound let");
      return EvalOut{std::nullopt, Unconstrained};
    }
    assert(false && "unknown term kind");
    return EvalOut{std::nullopt, Unconstrained};
  }

  const Context &Ctx;
  const syntax::Term *Program;
  std::vector<DirectBinding<D>> Initial;
  uint64_t Budget;
  AnalyzerOptions Opts;

  std::shared_ptr<domain::VarIndex> Vars;
  domain::CloSet CloTop;
  domain::StoreInterner<Val> Interner;
  AnalyzerStats Stats;
  support::Governor Gov{Opts.Governor, Opts.MaxGoals};
  DirectCfg Cfg;

  std::unordered_map<Key, std::optional<IAns>, KeyHash> Memo;
  std::unordered_map<Key, uint32_t, KeyHash> Active;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_DUPANALYZER_H
