//===- analysis/Universe.cpp - Analysis universes ---------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Universe.h"

#include "syntax/Analysis.h"

using namespace cpsflow;
using namespace cpsflow::analysis;

std::vector<Symbol> cpsflow::analysis::directVariableUniverse(
    const syntax::Term *Program,
    const std::vector<const syntax::LamValue *> &ExtraLams,
    const std::vector<Symbol> &ExtraVars) {
  std::vector<Symbol> Vars = syntax::collectVariables(Program);
  for (const syntax::LamValue *Lam : ExtraLams) {
    Vars.push_back(Lam->param());
    for (Symbol S : syntax::collectVariables(Lam->body()))
      Vars.push_back(S);
  }
  for (Symbol S : ExtraVars)
    Vars.push_back(S);
  return Vars; // VarIndex deduplicates
}

domain::CloSet cpsflow::analysis::directClosureUniverse(
    const syntax::Term *Program,
    const std::vector<const syntax::LamValue *> &ExtraLams) {
  std::vector<domain::CloRef> Refs;
  Refs.push_back(domain::CloRef::inc());
  Refs.push_back(domain::CloRef::dec());
  for (const syntax::LamValue *Lam : syntax::collectLambdas(Program))
    Refs.push_back(domain::CloRef::lam(Lam));
  for (const syntax::LamValue *Lam : ExtraLams) {
    Refs.push_back(domain::CloRef::lam(Lam));
    for (const syntax::LamValue *Nested : syntax::collectLambdas(Lam->body()))
      Refs.push_back(domain::CloRef::lam(Nested));
  }
  return domain::CloSet::of(std::move(Refs));
}

std::vector<Symbol> cpsflow::analysis::cpsVariableUniverse(
    const cps::CpsProgram &Program,
    const std::vector<const cps::CpsLam *> &ExtraLams,
    const std::vector<Symbol> &ExtraVars) {
  std::vector<Symbol> Vars =
      cps::collectCpsVariables(Program.Root, Program.TopK);
  for (const cps::CpsLam *Lam : ExtraLams) {
    Vars.push_back(Lam->param());
    Vars.push_back(Lam->kparam());
    for (Symbol S : cps::collectCpsVariables(Lam->body(), Program.TopK))
      Vars.push_back(S);
  }
  for (Symbol S : ExtraVars)
    Vars.push_back(S);
  return Vars;
}

domain::CpsCloSet cpsflow::analysis::cpsClosureUniverse(
    const cps::CpsProgram &Program,
    const std::vector<const cps::CpsLam *> &ExtraLams) {
  std::vector<domain::CpsCloRef> Refs;
  Refs.push_back(domain::CpsCloRef::inck());
  Refs.push_back(domain::CpsCloRef::deck());
  for (const cps::CpsLam *Lam : cps::collectCpsLams(Program.Root))
    Refs.push_back(domain::CpsCloRef::lam(Lam));
  for (const cps::CpsLam *Lam : ExtraLams) {
    Refs.push_back(domain::CpsCloRef::lam(Lam));
    for (const cps::CpsLam *Nested : cps::collectCpsLams(Lam->body()))
      Refs.push_back(domain::CpsCloRef::lam(Nested));
  }
  return domain::CpsCloSet::of(std::move(Refs));
}

domain::KontSet cpsflow::analysis::cpsKontUniverse(
    const cps::CpsProgram &Program,
    const std::vector<const cps::CpsLam *> &ExtraLams) {
  std::vector<domain::KontRef> Refs;
  Refs.push_back(domain::KontRef::stop());
  for (const cps::ContLam *C : cps::collectContLams(Program.Root))
    Refs.push_back(domain::KontRef::cont(C));
  for (const cps::CpsLam *Lam : ExtraLams)
    for (const cps::ContLam *C : cps::collectContLams(Lam->body()))
      Refs.push_back(domain::KontRef::cont(C));
  return domain::KontSet::of(std::move(Refs));
}
