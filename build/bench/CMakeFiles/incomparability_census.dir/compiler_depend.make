# Empty compiler generated dependencies file for incomparability_census.
# This may be replaced when dependencies are built.
