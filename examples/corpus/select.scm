; Closure selection by a free test: the operator position holds a join
; of two abstract closures, so the call must analyze both targets.
(define (inc x) (add1 x))
(define (dec x) (sub1 x))
(let (f (if0 input inc dec))
  (f 10))
